//! Minimal, dependency-free stand-in for the `proptest` property-testing
//! framework.
//!
//! The build environment for this repository is fully offline, so the real
//! `proptest` crate cannot be fetched. This crate implements the slice of
//! its API our test suites use: the [`Strategy`] trait with `prop_map`,
//! strategies for integer ranges, tuples and `prop::collection::vec`,
//! [`any`] for primitives, [`ProptestConfig`], and the `proptest!`,
//! `prop_assert!` and `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * deterministic generation: case `i` of a test derives its RNG seed
//!   from the test name and `i` (override the base seed with
//!   `PROPTEST_SEED`), so failures reproduce without a regression file;
//! * no shrinking: a failing case reports its seed and input debug string
//!   instead of a minimized input.

use std::fmt;

/// Deterministic xorshift64* generator.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a nonzero-adjusted seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is irrelevant for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The real proptest builds shrinkable value *trees*;
/// this shim generates plain values.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug + Clone;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` passes (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug + Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// A strategy that always yields clones of one value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                assert!(s <= e, "empty range strategy");
                let span = (e - s + 1) as u64;
                // span == 0 means the full u64 domain.
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (s + off as i128) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// Full-domain strategy for a primitive type (proptest's `any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for one primitive (the `any::<T>()` backend).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_prim {
    ($($t:ty),+) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;

            fn arbitrary() -> AnyPrim<$t> {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )+};
}

impl_any_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;

    fn arbitrary() -> AnyPrim<bool> {
        AnyPrim(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy yielding `Vec`s of `elem` with a length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Vector of values from `elem`, length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed set of values.
    #[derive(Clone)]
    pub struct Select<T>(Vec<T>);

    /// Uniform choice among `values` (proptest's `sample::select`).
    pub fn select<T: std::fmt::Debug + Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from an empty set");
        Select(values)
    }

    impl<T: std::fmt::Debug + Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Seed for case `case` of test `name`: FNV-1a over the name, mixed with
/// the case index and the optional `PROPTEST_SEED` env override.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x005E_ED0F_5AFE_7E57);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h ^ base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Everything a property test file needs.
pub mod prelude {
    pub use super::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use super::{collection, sample};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use super::super::{collection, sample};
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), a, b
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let seed = $crate::case_seed(stringify!($name), case);
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let dbg = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                        $(&$arg),+
                    );
                    let run = || -> Result<(), String> {
                        $body
                        Ok(())
                    };
                    if let Err(msg) = run() {
                        panic!(
                            "proptest case {case} (seed {seed:#x}) failed: {msg}\ninputs:\n{dbg}"
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
