//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository is fully offline, so the real
//! `criterion` crate cannot be fetched. This crate implements the small
//! slice of its API the `bench` crate uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`/`iter_batched`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — with a plain warmup-then-measure loop.
//!
//! Differences from real criterion, by design:
//!
//! * no statistical analysis: we report the median of the sample set and
//!   min/max, which is enough for the CI perf-trajectory artifact;
//! * results are also appended as JSON lines to
//!   `target/sva-bench/<bench>.json` (override the directory with
//!   `SVA_BENCH_DIR`) so CI can upload a machine-readable artifact;
//! * `--quick` shrinks warmup/measurement so a full bench binary finishes
//!   in seconds; a positional argument filters benchmarks by substring,
//!   and the `--bench` flag cargo passes is accepted and ignored.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration batch.
    Bytes(u64),
    /// Abstract elements processed per iteration batch.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost. The shim runs every batch at
/// size 1, so the variants only exist for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Harness configuration shared by every group.
#[derive(Clone, Debug)]
struct Config {
    warmup: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            warmup: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            filter: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => {
                    cfg.warmup = Duration::from_millis(50);
                    cfg.measurement = Duration::from_millis(200);
                    cfg.sample_size = 10;
                }
                "--bench" | "--test" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    // Flags with a value we do not use.
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => cfg.filter = Some(s.to_string()),
            }
        }
        cfg
    }
}

/// Entry point object, mirroring `criterion::Criterion`.
pub struct Criterion {
    cfg: Config,
    bench_name: String,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_name = std::env::args()
            .next()
            .and_then(|p| {
                std::path::Path::new(&p)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
            })
            .map(|s| {
                // Strip the `-<hash>` suffix cargo appends to bench binaries.
                match s.rsplit_once('-') {
                    Some((stem, hash)) if hash.len() == 16 => stem.to_string(),
                    _ => s,
                }
            })
            .unwrap_or_else(|| "bench".to_string());
        Criterion {
            cfg: Config::from_args(),
            bench_name,
        }
    }
}

impl Criterion {
    /// Applies CLI arguments (already done in `default`; kept for API
    /// compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
            measurement: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    /// Annotates the group with a throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        if let Some(filter) = &self.c.cfg.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = self.sample_size.unwrap_or(self.c.cfg.sample_size).max(3);
        let budget = self.measurement.unwrap_or(self.c.cfg.measurement);
        // Warmup while estimating a per-iteration cost.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1000);
        while warm_start.elapsed() < self.c.cfg.warmup {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.iters > 0 && !b.elapsed.is_zero() {
                per_iter = b.elapsed / b.iters as u32;
            }
        }
        // Choose an iteration count so each sample takes ~budget/samples.
        let per_sample = budget / samples as u32;
        let iters =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u64;
        let mut ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        ns.sort_by(|a, b| a.total_cmp(b));
        let median = ns[ns.len() / 2];
        let (lo, hi) = (ns[0], ns[ns.len() - 1]);
        let mut line = format!(
            "{full:<44} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
        if let Some(Throughput::Bytes(bytes)) = self.throughput {
            let mbs = bytes as f64 / median * 1000.0; // ns → MB/s
            let _ = write!(line, "  thrpt: {mbs:.1} MB/s");
        }
        println!("{line}");
        record_json(&self.c.bench_name, &full, lo, median, hi, iters, samples);
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn default_bench_dir() -> std::path::PathBuf {
    // Cargo runs bench binaries with cwd set to the *package* directory, so a
    // plain relative path would land in crates/<pkg>/target. Anchor at the
    // workspace root instead: the nearest ancestor holding Cargo.lock (member
    // crates of a workspace don't have their own lockfile).
    let mut cur = std::env::var("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("target").join("sva-bench");
        }
        if !cur.pop() {
            return std::path::PathBuf::from("target/sva-bench");
        }
    }
}

fn record_json(bench: &str, id: &str, lo: f64, median: f64, hi: f64, iters: u64, samples: usize) {
    let dir = std::env::var("SVA_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| default_bench_dir());
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{bench}.json"));
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    let _ = writeln!(
        f,
        "{{\"bench\":\"{bench}\",\"id\":\"{id}\",\"ns_low\":{lo:.1},\"ns_median\":{median:.1},\
         \"ns_high\":{hi:.1},\"iters_per_sample\":{iters},\"samples\":{samples}}}"
    );
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the harness-chosen iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares the benchmark functions of a target, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
