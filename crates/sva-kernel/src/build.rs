//! Emits the miniature kernel as SVA IR.
//!
//! Everything the tests, exploits and benchmarks run is produced here, by
//! hand, through [`FunctionBuilder`] — a stand-in for the ported Linux
//! 2.4.22 sources of the paper (§6). The kernel is deliberately shaped
//! like the real thing where it matters to the safety compiler:
//!
//! * allocators are *declared* ([`Module::declare_allocator`]): a slab
//!   (`kmem_cache`) layer with per-object-size caches, `kmalloc` backed by
//!   it, `vmalloc`, and a raw page allocator (§4.4, §6.2);
//! * device dispatch goes through a relocated function-pointer table
//!   (`chr_fops`) with a §4.8 signature assertion at the indirect call;
//! * the protocol handlers reproduce the paper's exploit surfaces (§7.2):
//!   the `MCAST_MSFILTER` integer overflow, the IGMP report truncation,
//!   the Fig. 2 route-lookup unchecked index, the Bluetooth stack
//!   overflow, and the ELF loader `e_phnum` copy that the "as tested"
//!   exclusion of `lib/` lets slip through;
//! * processes, fork/exec/wait, pipes, signals and a ramfs VFS are real
//!   enough to schedule multiple address spaces through the SVA-OS
//!   interrupt-context intrinsics (§3.3).
//!
//! Userspace programs (`user_*`) live in the same module but are excluded
//! from kernel analysis; they only talk to the kernel through
//! `sva.syscall`.

use std::collections::HashMap;

use sva_ir::build::FunctionBuilder;
use sva_ir::{
    AllocKind, AllocatorDecl, AtomicOp, FuncId, GlobalId, GlobalInit, IPred, Intrinsic, Linkage,
    Module, Operand, RelocTarget, SizeSpec, TypeId,
};

use crate::nr;

/// Userspace program argument packing.
pub mod user {
    /// Packs `(iters, size, mode)` into the single `i64` argument every
    /// `user_*` program receives: `iters` in bits 0..24, `size` in bits
    /// 24..48, `mode` in bits 48..64.
    pub fn pack_arg(iters: u64, size: u64, mode: u64) -> u64 {
        (iters & 0xff_ffff) | ((size & 0xff_ffff) << 24) | (mode << 48)
    }
}

/// Build-time options for the kernel image. The default builds the full
/// kernel exactly as before.
#[derive(Clone, Debug, Default)]
pub struct KernelOptions {
    /// Register a violation-recovery domain around the boot sequence
    /// (DESIGN.md §4.3): `start_kernel` calls `sva.recover.register` and
    /// gains a handler block that releases quarantined pools, resumes the
    /// faulting user thread with `-EFAULT`, and halts the machine once a
    /// pool is poisoned.
    pub recovery: bool,
    /// Nested per-subsystem recovery domains (DESIGN.md §4.5): every
    /// syscall entry and the IRQ dispatch path run inside their own
    /// domain (`sysd_*` / `irqd_*` / per-driver `drvd_*` wrappers), so a
    /// violation unwinds to the subsystem boundary, fails that call with
    /// `-EFAULT`, and a poisoned subsystem degrades to `-ENOSYS` via the
    /// `subsys_health` table instead of halting the machine — then heals
    /// through the repair manager's probation/backoff state machine
    /// (DESIGN.md §4.8). Implies the boot domain of
    /// [`KernelOptions::recovery`] as the outermost fallback.
    pub nested: bool,
    /// Nonzero: model a *compatible rebuild* for live-upgrade testing
    /// (DESIGN.md §4.10) by appending one never-called cold function
    /// (`live_patch_pad_<salt>`) at the very end of the module. The
    /// resulting image has a different code identity but an identical
    /// module header and an identical function list up to the pad — the
    /// pure prefix extension the snapshot-migration code-adoption policy
    /// accepts. Zero (the default) builds the kernel byte-identically to
    /// a build without this option.
    pub patch_salt: u64,
}

// ---- kernel-wide constants ------------------------------------------------

/// Process table size.
const NPROC: i64 = 8;
/// Global open-file table size.
const NFILE: i64 = 16;
/// Per-process file-descriptor table size.
const NFDS: i64 = 8;
/// Number of ramfs inodes.
const NINODE: i64 = 8;
/// Number of signals.
const NSIG: i64 = 8;
/// Pipe ring-buffer capacity in bytes.
const PIPE_SZ: i64 = 512;

/// `-EINTR`: a blocked system call was interrupted by a signal.
const EINTR: i64 = -4;
/// `-EBADF`: bad file descriptor (also used for exhaustion).
const EBADF: i64 = -9;
/// Generic "no such thing" error.
const ENOENT: i64 = -1;
/// `-EFAULT`: the syscall was failed by a contained safety violation.
const EFAULT: i64 = -14;
/// `-ENOSYS`: the syscall is degraded — its subsystem poisoned a pool and
/// the nested kernel fenced it off (DESIGN.md §4.5).
const ENOSYS: i64 = -38;

/// Key space for `sva.save.integer` state buffers: one per process.
const SAVE_KEY_BASE: i64 = 0x6000_0000;
/// The `IcontextSave` slot used transiently by `sys_fork`.
const FORK_ISP: i64 = 1;

/// Process states.
const P_FREE: i64 = 0;
const P_RUNNING: i64 = 1;
/// Blocked in the kernel, runnable: resume via `sva.load.integer`.
const P_READY_KERNEL: i64 = 2;
const P_BLOCKED: i64 = 3;
const P_ZOMBIE: i64 = 4;
/// Never ran: start by `sva.iret`-ing into its interrupt context.
const P_READY_USER: i64 = 5;

/// Console I/O port (16550-flavoured).
const PORT_CONSOLE: i64 = 0x3f8;

/// file_t kinds.
const F_CHR: i64 = 1;
const F_REG: i64 = 2;
const F_PIPE_R: i64 = 3;
const F_PIPE_W: i64 = 4;

// Userspace memory map (inside the 256 KiB user window starting at
// `sva_vm::USER_BASE`); the brk heap above these is
// `crate::harness::USER_HEAP_BASE`.
const UBASE: i64 = sva_vm::USER_BASE as i64;
const FDBUF: i64 = UBASE + 0x6000;
const UBUF: i64 = UBASE + 0x8000;
const USRC: i64 = UBASE + 0x10000;
const UDST: i64 = UBASE + 0x18000;
const UTMP: i64 = UBASE + 0x20000;
const UHEAP: i64 = UBASE + 0x28000;

/// Base of the kernel brk heap mirrored by `mm_claim` (the VM maps
/// `sva_vm` kernel memory flat; this matches `sva_vm::mem::KHEAP_BASE`).
const KHEAP_BASE: i64 = 0x1020_0000;

/// The syscall table: `(number, handler, arity)` in registration order.
/// The nested kernel's `sysd_*` degradation wrappers, the leading
/// entries of the `subsys_health` global and the per-syscall
/// recovery-domain subsystem ids (`index + 1`; 0 is the boot domain,
/// [`IRQ_SUBSYS`] the IRQ path, [`driver_subsys`] the per-driver
/// domains) are all indexed by position in this table.
pub const SYSCALLS: &[(i64, &str, usize)] = &[
    (nr::EXIT, "sys_exit", 1),
    (nr::FORK, "sys_fork", 0),
    (nr::READ, "sys_read", 3),
    (nr::WRITE, "sys_write", 3),
    (nr::OPEN, "sys_open", 2),
    (nr::CLOSE, "sys_close", 1),
    (nr::WAITPID, "sys_waitpid", 1),
    (nr::EXECVE, "sys_execve", 3),
    (nr::LSEEK, "sys_lseek", 2),
    (nr::GETPID, "sys_getpid", 0),
    (nr::KILL, "sys_kill", 2),
    (nr::PIPE, "sys_pipe", 1),
    (nr::SBRK, "sys_sbrk", 1),
    (nr::SIGACTION, "sys_sigaction", 2),
    (nr::GETRUSAGE, "sys_getrusage", 1),
    (nr::GETTIMEOFDAY, "sys_gettimeofday", 1),
    (nr::YIELD, "sys_yield", 0),
    (nr::SOCKET, "sys_socket", 0),
    (nr::SETSOCKOPT, "sys_setsockopt", 4),
    (nr::NET_RX_IGMP, "sys_net_rx_igmp", 2),
    (nr::NET_RX_BT, "sys_net_rx_bt", 2),
    (nr::ROUTE_LOOKUP, "sys_route_lookup", 1),
];

/// Recovery-domain subsystem id of the IRQ dispatch path (the syscall
/// wrappers use `SYSCALLS` index + 1).
pub const IRQ_SUBSYS: i64 = SYSCALLS.len() as i64 + 1;

/// Per-driver recovery subsystems: `(wrapper, wrapped handler, arity)`.
/// These are the paper's §7.2 exploit surfaces — the four network
/// protocol handlers and the ELF loader — each given its own recovery
/// domain (`drvd_*` wrapper) so quarantine and health attribute to the
/// *driver*, not the compound syscall that happened to dispatch into it.
/// Subsystem ids follow the IRQ path: [`driver_subsys`]`(i)` =
/// [`IRQ_SUBSYS`]` + 1 + i`.
pub const DRIVERS: &[(&str, &str, usize)] = &[
    ("drvd_net_msfilter", "net_set_msfilter", 2),
    ("drvd_net_igmp", "net_rx_igmp", 2),
    ("drvd_net_bt", "net_rx_bt", 2),
    ("drvd_net_route", "net_route_lookup", 1),
    ("drvd_elf_load", "elf_load", 3),
];

/// Recovery-domain subsystem id of driver `DRIVERS[i]`.
pub fn driver_subsys(i: usize) -> i64 {
    IRQ_SUBSYS + 1 + i as i64
}

/// Human-readable name of a health-tracked subsystem id (1-based):
/// the syscall handler, `irq`, or the driver wrapper.
pub fn subsys_name(subsys: i64) -> String {
    if subsys >= 1 && (subsys as usize) <= SYSCALLS.len() {
        SYSCALLS[subsys as usize - 1].1.to_string()
    } else if subsys == IRQ_SUBSYS {
        "irq".to_string()
    } else if subsys > IRQ_SUBSYS && subsys <= IRQ_SUBSYS + DRIVERS.len() as i64 {
        DRIVERS[(subsys - IRQ_SUBSYS - 1) as usize].0.to_string()
    } else {
        format!("subsys#{subsys}")
    }
}

/// Total number of health-tracked subsystems: the syscalls, the IRQ
/// path, and the per-driver domains. `subsys_health[id - 1]` is the
/// packed health word of subsystem `id`.
pub const NSUBSYS: i64 = SYSCALLS.len() as i64 + 1 + DRIVERS.len() as i64;

// ---- the 3-state health machine (DESIGN.md §4.8) ---------------------------
//
// Each `subsys_health` entry packs one subsystem's health state machine
// into a single i64 word:
//
//   bits  0..4   state: 0 live, 1 degraded, 2 probation, 3 retired
//   bits  4..8   strikes (poison events survived so far)
//   bits  8..16  probation credits remaining (successful probes needed)
//   bits 16..24  current repair delay in IRQ ticks (exponential backoff)
//   bits 24..48  absolute repair-due tick (`repair_clock` value)
//
// A wrapper gates on state: degraded and retired fail fast with -ENOSYS
// (the IRQ wrapper drops the tick); live and probation run normally. The
// repair manager (`repair_scan`, driven from the IRQ tick) repairs due
// degraded entries into probation; `PROBATION_CREDITS` clean calls
// promote probation back to live, a re-poison during probation
// re-degrades with doubled delay, and `REPAIR_STRIKES` poisons retire
// the subsystem permanently.

/// Health state: fully in service.
pub const H_LIVE: i64 = 0;
/// Health state: degraded to `-ENOSYS`, repair pending after backoff.
pub const H_DEGRADED: i64 = 1;
/// Health state: repaired, back in service on probation.
pub const H_PROBATION: i64 = 2;
/// Health state: strike budget exhausted, permanently `-ENOSYS`.
pub const H_RETIRED: i64 = 3;
/// Initial repair delay (IRQ ticks) for a first-strike degradation.
pub const REPAIR_DELAY_INIT: i64 = 2;
/// Backoff cap on the repair delay (ticks).
pub const REPAIR_DELAY_CAP: i64 = 64;
/// Poison events after which a subsystem is permanently retired.
pub const REPAIR_STRIKES: i64 = 3;
/// Clean probation calls required to promote back to live.
pub const PROBATION_CREDITS: i64 = 2;

/// Decodes the state field (bits 0..4) of a packed health word.
pub fn health_state(word: u64) -> u64 {
    word & 0xf
}

/// Decodes the strike count (bits 4..8) of a packed health word.
pub fn health_strikes(word: u64) -> u64 {
    (word >> 4) & 0xf
}

/// Human-readable name of a health state.
pub fn health_state_name(state: u64) -> &'static str {
    match state {
        0 => "live",
        1 => "degraded",
        2 => "probation",
        3 => "retired",
        _ => "?",
    }
}

/// Name of the nested degradation wrapper for syscall handler `handler`
/// (`sys_write` → `sysd_write`).
pub fn sysd_name(handler: &str) -> String {
    format!("sysd_{}", handler.strip_prefix("sys_").unwrap_or(handler))
}

// ---- shared builder context ------------------------------------------------

/// Interned types, functions and globals the emitters share.
struct K {
    i8t: TypeId,
    i32t: TypeId,
    i64t: TypeId,
    pipe_t: TypeId,
    file_t: TypeId,
    chr_fn_t: TypeId,
    f: HashMap<String, FuncId>,
    g: HashMap<String, GlobalId>,
}

impl K {
    fn fid(&self, name: &str) -> FuncId {
        *self.f.get(name).unwrap_or_else(|| panic!("no fn {name}"))
    }
    fn gop(&self, name: &str) -> Operand {
        Operand::Global(
            *self
                .g
                .get(name)
                .unwrap_or_else(|| panic!("no global {name}")),
        )
    }
}

/// `i64` constant operand.
fn ci(k: &K, v: i64) -> Operand {
    Operand::ConstInt(v, k.i64t)
}

/// Emits `for i in 0..n { body }` over a stack counter (no φ-nodes, which
/// keeps dominance trivial). The closure must leave the insertion point in
/// a reachable block.
fn emit_loop<F>(b: &mut FunctionBuilder, k: &K, n: Operand, body: F)
where
    F: FnOnce(&mut FunctionBuilder, Operand),
{
    let slot = b.alloca(k.i64t);
    b.store(ci(k, 0), slot);
    let head = b.block("for.head");
    let bb = b.block("for.body");
    let done = b.block("for.done");
    b.br(head);
    b.switch_to(head);
    let i = b.load(slot);
    let cond = b.icmp(IPred::ULt, i, n);
    b.cond_br(cond, bb, done);
    b.switch_to(bb);
    body(b, i);
    let next = b.add(i, ci(k, 1));
    b.store(next, slot);
    b.br(head);
    b.switch_to(done);
}

/// Emits `if cond { return retval; }`.
fn ret_if(b: &mut FunctionBuilder, k: &K, cond: Operand, retval: i64) {
    let bad = b.block("guard.bad");
    let ok = b.block("guard.ok");
    b.cond_br(cond, bad, ok);
    b.switch_to(bad);
    b.ret(Some(ci(k, retval)));
    b.switch_to(ok);
}

/// Unsigned minimum.
fn umin(b: &mut FunctionBuilder, a: Operand, bb: Operand) -> Operand {
    let c = b.icmp(IPred::ULt, a, bb);
    b.select(c, a, bb)
}

/// `&proc_table[pid]`.
fn proc_at(b: &mut FunctionBuilder, k: &K, pid: Operand) -> Operand {
    let pt = k.gop("proc_table");
    b.array_elem_ptr(pt, pid)
}

/// The current pid (`proc_current`).
fn cur_pid(b: &mut FunctionBuilder, k: &K) -> Operand {
    let g = k.gop("proc_current");
    b.load(g)
}

// proc_t field indices.
const PF_STATE: usize = 0;
const PF_ICID: usize = 1;
const PF_RETVAL: usize = 2;
const PF_PARENT: usize = 3;
const PF_EXIT: usize = 4;
const PF_PENDING: usize = 5;
const PF_ASID: usize = 6;
const PF_UBRK: usize = 7;
const PF_SIGH: usize = 8;
const PF_FDS: usize = 9;

// file_t field indices.
const FF_KIND: usize = 0;
const FF_INO: usize = 1;
const FF_POS: usize = 2;
const FF_REFCNT: usize = 3;
const FF_PIPE: usize = 4;
const FF_CHR: usize = 5;

// pipe_t field indices.
const QF_RPOS: usize = 0;
const QF_WPOS: usize = 1;
const QF_READERS: usize = 2;
const QF_WRITERS: usize = 3;
const QF_BUF: usize = 4;

// inode_t field indices.
const NF_SIZE: usize = 0;
const NF_CAP: usize = 1;
const NF_DATA: usize = 2;

// cache_t field indices.
const CF_OBJSIZE: usize = 0;
const CF_NEXT: usize = 1;
const CF_LIMIT: usize = 2;

/// Loads `field` of the struct behind `p`.
fn fld(b: &mut FunctionBuilder, p: Operand, field: usize) -> Operand {
    let fp = b.field_ptr(p, field);
    b.load(fp)
}

/// Stores `v` into `field` of the struct behind `p`.
fn setfld(b: &mut FunctionBuilder, p: Operand, field: usize, v: Operand) {
    let fp = b.field_ptr(p, field);
    b.store(v, fp);
}

/// Builds the whole kernel module (plus userspace programs).
pub fn build_kernel(opts: &KernelOptions) -> Module {
    let mut m = Module::new("sva-kernel");
    let k = declare(&mut m);
    // Builders resolve `Operand::Global`/`Operand::Func` through interned
    // pointer types, so intern them before any body is emitted.
    m.intern_address_types();
    define_mm(&mut m, &k);
    define_lib_chr(&mut m, &k);
    define_proc(&mut m, &k);
    define_fs(&mut m, &k);
    define_pipe(&mut m, &k);
    define_net_elf(&mut m, &k);
    define_sys(&mut m, &k);
    define_sys_io(&mut m, &k, opts);
    define_sysd(&mut m, &k);
    define_boot(&mut m, &k, opts);
    define_user(&mut m, &k);
    if opts.patch_salt != 0 {
        // Appended last so every pre-existing function keeps its index,
        // body and printed text; only the module's code identity moves.
        let pad_ty = m.types.func(k.i64t, vec![], false);
        let pad = m.add_function(
            &format!("live_patch_pad_{}", opts.patch_salt),
            pad_ty,
            Linkage::Internal,
        );
        let mut b = FunctionBuilder::new(&mut m, pad);
        b.ret(Some(ci(&k, opts.patch_salt as i64)));
    }
    m.entry = Some(k.fid("start_kernel"));
    m.intern_address_types();
    m
}

/// Interns types, declares globals + allocators, and forward-declares every
/// function so bodies can call each other in any order.
fn declare(m: &mut Module) -> K {
    let i8t = m.types.i8();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let void = m.types.void();
    let p_i8 = m.types.byte_ptr();

    // Slab descriptor: object size, bump cursor, object limit.
    let cache_t = m.types.struct_type("cache_t", vec![i64t, i64t, i64t]);
    let p_cache = m.types.ptr(cache_t);
    // Pipe: ring positions, endpoint refcounts, ring buffer.
    let pipe_t = m
        .types
        .struct_type("pipe_t", vec![i64t, i64t, i64t, i64t, p_i8]);
    let p_pipe = m.types.ptr(pipe_t);
    // Character-device read: fn(user_buf, count) -> read.
    let chr_fn_t = m.types.func(i64t, vec![i64t, i64t], false);
    let p_chr_fn = m.types.ptr(chr_fn_t);
    // Open file: kind, inode index, position, refcount, pipe, chr handler.
    let file_t = m
        .types
        .struct_type("file_t", vec![i64t, i64t, i64t, i64t, p_pipe, p_chr_fn]);
    let p_file = m.types.ptr(file_t);
    // Ramfs inode: size, capacity, data buffer.
    let inode_t = m.types.struct_type("inode_t", vec![i64t, i64t, p_i8]);
    let p_inode = m.types.ptr(inode_t);
    // Process: state, icid, retval, parent, exit_code, pending_sig, asid,
    // ubrk, sig handler table, fd table.
    let sigh_arr = m.types.array(i64t, NSIG as u64);
    let fds_arr = m.types.array(i64t, NFDS as u64);
    let proc_t = m.types.struct_type(
        "proc_t",
        vec![
            i64t, i64t, i64t, i64t, i64t, i64t, i64t, i64t, sigh_arr, fds_arr,
        ],
    );
    // Userspace entry point: fn(packed_arg) -> exit-ish value.
    let user_fn_t = m.types.func(i64t, vec![i64t], false);
    let p_user_fn = m.types.ptr(user_fn_t);

    let mut g = HashMap::new();
    let mut gdecl = |m: &mut Module, name: &str, ty: TypeId, init: GlobalInit| {
        let id = m.add_global(name, ty, init, false);
        g.insert(name.to_string(), id);
    };

    // Globals. Declaration order fixes the layout: the exploit tests
    // inspect a 128-byte window starting 64 bytes into `net_bt_scratch`,
    // so the neighbours of the scratch buffer are chosen deliberately —
    // two guard arrays that are never legitimately written, and the two
    // boot parameter words the harness is allowed to touch.
    let scratch_arr = m.types.array(i8t, 64);
    let canary_arr = m.types.array(i8t, 24);
    let guard_arr = m.types.array(i8t, 32);
    gdecl(m, "net_bt_scratch", scratch_arr, GlobalInit::Zero);
    gdecl(m, "net_bt_canary", canary_arr, GlobalInit::Zero);
    gdecl(m, "boot_user_prog", i64t, GlobalInit::Zero);
    gdecl(m, "boot_user_arg", i64t, GlobalInit::Zero);
    gdecl(m, "net_bt_guard", guard_arr, GlobalInit::Zero);
    gdecl(m, "time_ticks", i64t, GlobalInit::Zero);
    gdecl(m, "mm_brk", i64t, GlobalInit::Zero);
    gdecl(m, "proc_current", i64t, GlobalInit::Zero);
    let proc_arr = m.types.array(proc_t, NPROC as u64);
    gdecl(m, "proc_table", proc_arr, GlobalInit::Zero);
    let ftab_arr = m.types.array(p_file, NFILE as u64);
    gdecl(m, "file_table", ftab_arr, GlobalInit::Zero);
    let itab_arr = m.types.array(inode_t, NINODE as u64);
    gdecl(m, "inode_table", itab_arr, GlobalInit::Zero);
    gdecl(m, "pipe_cache", cache_t, GlobalInit::Zero);
    gdecl(m, "file_cache", cache_t, GlobalInit::Zero);
    let rt_arr = m.types.array(i64t, 32);
    gdecl(m, "rt_table", rt_arr, GlobalInit::Zero);
    // Character-device dispatch table: /dev/zero and /dev/null readers.
    let fops_arr = m.types.array(p_chr_fn, 2);
    gdecl(
        m,
        "chr_fops",
        fops_arr,
        GlobalInit::Relocated {
            bytes: vec![0; 16],
            relocs: vec![
                (0, RelocTarget::Func("chr_zero_read".into())),
                (8, RelocTarget::Func("chr_null_read".into())),
            ],
        },
    );
    // "ELF" program table the exec path indirects through.
    let prog_arr = m.types.array(p_user_fn, 4);
    gdecl(
        m,
        "elf_prog_table",
        prog_arr,
        GlobalInit::Relocated {
            bytes: vec![0; 32],
            relocs: vec![(0, RelocTarget::Func("user_exec_child".into()))],
        },
    );
    gdecl(m, "net_rx_count", i64t, GlobalInit::Zero);
    // Recovery bookkeeping (only written by the `KernelOptions::recovery`
    // boot path; declared unconditionally so image layouts stay aligned).
    gdecl(m, "recov_count", i64t, GlobalInit::Zero);
    gdecl(m, "recov_last_code", i64t, GlobalInit::Zero);
    // Nested-domain bookkeeping (DESIGN.md §4.5/§4.8): one packed health
    // word per subsystem — syscalls by `SYSCALLS` position, then the IRQ
    // path, then the per-driver domains — plus the repair manager's tick
    // clock, its pending-repair count, and a contained-violation counter
    // for the `sysd_*` wrappers. Declared unconditionally, written only
    // by the `KernelOptions::nested` image.
    let health_arr = m.types.array(i64t, NSUBSYS as u64);
    gdecl(m, "subsys_health", health_arr, GlobalInit::Zero);
    gdecl(m, "repair_clock", i64t, GlobalInit::Zero);
    gdecl(m, "repair_pending", i64t, GlobalInit::Zero);
    gdecl(m, "recov_sysd_count", i64t, GlobalInit::Zero);
    // Scratch used by the dbg_* recovery-ordering probes.
    let order_arr = m.types.array(i64t, 4);
    gdecl(m, "dbg_order", order_arr, GlobalInit::Zero);
    gdecl(m, "dbg_order_n", i64t, GlobalInit::Zero);

    // Allocators (§4.4, §6.2): slab caches carved from raw pages, kmalloc
    // backed by the slab layer, vmalloc for large buffers, and the page
    // allocator itself.
    m.declare_allocator(AllocatorDecl {
        name: "kmem_cache".into(),
        kind: AllocKind::Pool,
        alloc_fn: "mm_kmem_cache_alloc".into(),
        dealloc_fn: Some("mm_kmem_cache_free".into()),
        pool_create_fn: Some("mm_cache_init".into()),
        pool_destroy_fn: None,
        size: SizeSpec::PoolObjectSize,
        size_fn: Some("mm_cache_objsize".into()),
        pool_arg: Some(0),
        backed_by: Some("pages".into()),
    });
    m.declare_allocator(AllocatorDecl {
        name: "kmalloc".into(),
        kind: AllocKind::Ordinary,
        alloc_fn: "mm_kmalloc".into(),
        dealloc_fn: Some("mm_kfree".into()),
        pool_create_fn: None,
        pool_destroy_fn: None,
        size: SizeSpec::Arg(0),
        size_fn: None,
        pool_arg: None,
        backed_by: Some("kmem_cache".into()),
    });
    m.declare_allocator(AllocatorDecl {
        name: "vmalloc".into(),
        kind: AllocKind::Ordinary,
        alloc_fn: "mm_vmalloc".into(),
        dealloc_fn: Some("mm_vfree".into()),
        pool_create_fn: None,
        pool_destroy_fn: None,
        size: SizeSpec::Arg(0),
        size_fn: None,
        pool_arg: None,
        backed_by: None,
    });
    m.declare_allocator(AllocatorDecl {
        name: "pages".into(),
        kind: AllocKind::Ordinary,
        alloc_fn: "mm_page_alloc".into(),
        dealloc_fn: None,
        pool_create_fn: None,
        pool_destroy_fn: None,
        size: SizeSpec::Arg(0),
        size_fn: None,
        pool_arg: None,
        backed_by: None,
    });

    // Function signatures.
    let f0_i = m.types.func(i64t, vec![], false);
    let f1_i = m.types.func(i64t, vec![i64t], false);
    let f2_i = m.types.func(i64t, vec![i64t, i64t], false);
    let f3_i = m.types.func(i64t, vec![i64t, i64t, i64t], false);
    let f4_i = m.types.func(i64t, vec![i64t, i64t, i64t, i64t], false);
    let f0_v = m.types.func(void, vec![], false);
    let f_claim = f1_i;
    let f_alloc = m.types.func(p_i8, vec![i64t], false);
    let f_free = m.types.func(void, vec![p_i8], false);
    let f_cinit = m.types.func(void, vec![p_cache, i64t, i64t], false);
    let f_cobjsz = m.types.func(i64t, vec![p_cache], false);
    let f_calloc = m.types.func(p_i8, vec![p_cache], false);
    let f_cfree = m.types.func(void, vec![p_cache, p_i8], false);
    let f_copy = m.types.func(i64t, vec![p_i8, i64t, i64t], false);
    let f_dbg = m.types.func(i64t, vec![p_i8], false);
    let f_getfile = m.types.func(p_file, vec![i64t], false);
    let f_allocfd = m.types.func(i64t, vec![p_file], false);
    let f_inodeof = m.types.func(p_inode, vec![p_file], false);
    let f_ensure = m.types.func(void, vec![p_inode, i64t], false);
    let f_fileio = m.types.func(i64t, vec![p_file, i64t, i64t], false);
    let f_pcreate = m.types.func(p_pipe, vec![], false);
    let f_pipeio = m.types.func(i64t, vec![p_pipe, i64t, i64t], false);

    let mut f = HashMap::new();
    let mut fdecl = |m: &mut Module, name: &str, ty: TypeId, link: Linkage| {
        let id = m.add_function(name, ty, link);
        f.insert(name.to_string(), id);
    };
    use Linkage::Public as Pub;

    fdecl(m, "mm_claim", f_claim, Pub);
    fdecl(m, "mm_init", f0_v, Pub);
    fdecl(m, "mm_cache_init", f_cinit, Pub);
    fdecl(m, "mm_cache_objsize", f_cobjsz, Pub);
    fdecl(m, "mm_kmem_cache_alloc", f_calloc, Pub);
    fdecl(m, "mm_kmem_cache_free", f_cfree, Pub);
    fdecl(m, "mm_kmalloc", f_alloc, Pub);
    fdecl(m, "mm_kfree", f_free, Pub);
    fdecl(m, "mm_vmalloc", f_alloc, Pub);
    fdecl(m, "mm_vfree", f_free, Pub);
    fdecl(m, "mm_page_alloc", f_alloc, Pub);

    fdecl(m, "lib_copy_from_user", f_copy, Pub);
    fdecl(m, "chr_zero_read", chr_fn_t, Pub);
    fdecl(m, "chr_null_read", chr_fn_t, Pub);
    fdecl(m, "chr_dbg_note", f_dbg, Pub);

    fdecl(m, "proc_find_free", f0_i, Pub);
    fdecl(m, "proc_schedule", f0_v, Pub);
    fdecl(m, "proc_block_current", f0_v, Pub);
    fdecl(m, "proc_wake_all", f0_v, Pub);
    fdecl(m, "sig_check_pending", f0_i, Pub);
    fdecl(m, "sig_timer_tick", f1_i, Pub);

    fdecl(m, "fs_get_file", f_getfile, Pub);
    fdecl(m, "fs_alloc_fd", f_allocfd, Pub);
    // Internal + small + called from exactly read and write: a function
    // cloning candidate (§4 compiler transforms).
    fdecl(m, "fs_inode_of", f_inodeof, Linkage::Internal);
    fdecl(m, "fs_ensure_cap", f_ensure, Pub);
    fdecl(m, "fs_file_read", f_fileio, Pub);
    fdecl(m, "fs_file_write", f_fileio, Pub);

    fdecl(m, "pipe_create", f_pcreate, Pub);
    fdecl(m, "pipe_read", f_pipeio, Pub);
    fdecl(m, "pipe_write", f_pipeio, Pub);

    fdecl(m, "net_set_msfilter", f2_i, Pub);
    fdecl(m, "net_rx_igmp", f2_i, Pub);
    fdecl(m, "net_rx_bt", f2_i, Pub);
    fdecl(m, "net_route_lookup", f1_i, Pub);
    fdecl(m, "elf_load", f3_i, Pub);

    fdecl(m, "sys_exit", f1_i, Pub);
    fdecl(m, "sys_fork", f0_i, Pub);
    fdecl(m, "sys_read", f3_i, Pub);
    fdecl(m, "sys_write", f3_i, Pub);
    fdecl(m, "sys_open", f2_i, Pub);
    fdecl(m, "sys_close", f1_i, Pub);
    fdecl(m, "sys_waitpid", f1_i, Pub);
    fdecl(m, "sys_execve", f3_i, Pub);
    fdecl(m, "sys_lseek", f2_i, Pub);
    fdecl(m, "sys_getpid", f0_i, Pub);
    fdecl(m, "sys_kill", f2_i, Pub);
    fdecl(m, "sys_pipe", f1_i, Pub);
    fdecl(m, "sys_sbrk", f1_i, Pub);
    fdecl(m, "sys_sigaction", f2_i, Pub);
    fdecl(m, "sys_getrusage", f1_i, Pub);
    fdecl(m, "sys_gettimeofday", f1_i, Pub);
    fdecl(m, "sys_yield", f0_i, Pub);
    fdecl(m, "sys_socket", f0_i, Pub);
    fdecl(m, "sys_setsockopt", f4_i, Pub);
    fdecl(m, "sys_net_rx_igmp", f2_i, Pub);
    fdecl(m, "sys_net_rx_bt", f2_i, Pub);
    fdecl(m, "sys_route_lookup", f1_i, Pub);

    // Nested degradation wrappers (DESIGN.md §4.5): one per syscall, same
    // signature as the wrapped handler, plus the IRQ-path wrapper and the
    // per-driver wrappers (DESIGN.md §4.8).
    for (_, handler, arity) in SYSCALLS {
        let ty = [f0_i, f1_i, f2_i, f3_i, f4_i][*arity];
        fdecl(m, &sysd_name(handler), ty, Pub);
    }
    fdecl(m, "irqd_timer_tick", f1_i, Pub);
    for (wrapper, _, arity) in DRIVERS {
        let ty = [f0_i, f1_i, f2_i, f3_i, f4_i][*arity];
        fdecl(m, wrapper, ty, Pub);
    }
    // The shared health state machine (DESIGN.md §4.8): degrade on
    // caught poison, credit a clean probation call, and the IRQ-driven
    // repair scan. Emitted once, called from every wrapper. The health
    // slot is passed as a pointer computed with a *constant* (statically
    // safe, check-elided) GEP at each call site: the degrade path runs
    // while a pool is poisoned, so it must never execute a bounds check
    // that the poison would fail — that unwind would land back at the
    // register point that called it.
    let p_i64 = m.types.ptr(i64t);
    let f_health = m.types.func(i64t, vec![p_i64, i64t], false);
    fdecl(m, "health_degrade", f_health, Pub);
    fdecl(m, "health_probe_ok", f_health, Pub);
    fdecl(m, "repair_scan", f0_i, Pub);
    // Recovery-semantics probes driven by the host-side tests.
    fdecl(m, "dbg_unwind", f0_i, Pub);
    fdecl(m, "dbg_nest", f0_i, Pub);
    fdecl(m, "dbg_release_unwind", f0_i, Pub);
    fdecl(m, "dbg_wedge", f0_i, Pub);

    fdecl(m, "start_kernel", f0_i, Pub);

    for name in [
        "user_hello",
        "user_getpid_loop",
        "user_openclose_loop",
        "user_pipe_loop",
        "user_fork_loop",
        "user_signal_demo",
        "user_sig_handler",
        "user_legit_net",
        "user_exploit_msfilter",
        "user_exploit_igmp",
        "user_exploit_bt",
        "user_exploit_route",
        "user_exploit_elf",
        "user_devzero",
        "user_fileverify",
        "user_multichild",
        "user_errorpaths",
        "user_killchild",
        "user_child_sig",
        "user_killwriter",
        "user_fileread_bw",
        "user_scp",
        "user_thttpd",
        "user_pipe_bw",
        "user_forkexec_loop",
        "user_exec_child",
        "user_getrusage_loop",
        "user_bzip2",
        "user_lame",
        "user_gcc",
        "user_ldd",
        "user_gettimeofday_loop",
        "user_sbrk_loop",
        "user_sigaction_loop",
        "user_write_loop",
        "user_unwind_attack",
        "user_repair_attack",
    ] {
        fdecl(m, name, user_fn_t, Pub);
    }
    fdecl(m, "user_fill", f3_i, Pub);
    fdecl(m, "user_verify", f3_i, Pub);
    fdecl(m, "user_check_zero", f2_i, Pub);

    K {
        i8t,
        i32t,
        i64t,
        pipe_t,
        file_t,
        chr_fn_t,
        f,
        g,
    }
}

// ---- mm: page allocator, slab caches, kmalloc/vmalloc ----------------------

fn define_mm(m: &mut Module, k: &K) {
    // mm_claim(n): bump-allocate n bytes (rounded to 8, min 8) of kernel
    // heap and return the old break.
    let mut b = FunctionBuilder::new(m, k.fid("mm_claim"));
    let n = b.param(0);
    let n7 = b.add(n, ci(k, 7));
    let rounded = b.and(n7, ci(k, !7));
    let isz = b.icmp(IPred::Eq, rounded, ci(k, 0));
    let want = b.select(isz, ci(k, 8), rounded);
    let brk = k.gop("mm_brk");
    let old = b.load(brk);
    let new = b.add(old, want);
    b.store(new, brk);
    b.ret(Some(old));

    // mm_page_alloc / mm_kmalloc / mm_vmalloc: thin wrappers returning the
    // claimed range as a byte pointer.
    for name in ["mm_page_alloc", "mm_kmalloc", "mm_vmalloc"] {
        let mut b = FunctionBuilder::new(m, k.fid(name));
        let n = b.param(0);
        let addr = b.call(k.fid("mm_claim"), vec![n]).unwrap();
        let p = b.inttoptr(addr, k.i8t);
        b.ret(Some(p));
    }
    // Frees are no-ops for the bump allocator; they still exist so the
    // safety checker learns object lifetimes from the dealloc calls.
    for name in ["mm_kfree", "mm_vfree"] {
        let mut b = FunctionBuilder::new(m, k.fid(name));
        b.ret(None);
    }

    // mm_cache_init(desc, objsize, count): carve a slab arena out of the
    // page allocator.
    let mut b = FunctionBuilder::new(m, k.fid("mm_cache_init"));
    let desc = b.param(0);
    let objsize = b.param(1);
    let count = b.param(2);
    setfld(&mut b, desc, CF_OBJSIZE, objsize);
    let total = b.mul(objsize, count);
    let arena = b.call(k.fid("mm_page_alloc"), vec![total]).unwrap();
    let base = b.ptrtoint(arena);
    setfld(&mut b, desc, CF_NEXT, base);
    let limit = b.add(base, total);
    setfld(&mut b, desc, CF_LIMIT, limit);
    b.ret(None);

    // mm_cache_objsize(desc).
    let mut b = FunctionBuilder::new(m, k.fid("mm_cache_objsize"));
    let desc = b.param(0);
    let sz = fld(&mut b, desc, CF_OBJSIZE);
    b.ret(Some(sz));

    // mm_kmem_cache_alloc(desc): bump within the arena, null when full.
    let mut b = FunctionBuilder::new(m, k.fid("mm_kmem_cache_alloc"));
    let desc = b.param(0);
    let nxt = fld(&mut b, desc, CF_NEXT);
    let lim = fld(&mut b, desc, CF_LIMIT);
    let sz = fld(&mut b, desc, CF_OBJSIZE);
    let end = b.add(nxt, sz);
    let over = b.icmp(IPred::UGt, end, lim);
    let full = b.block("slab.full");
    let ok = b.block("slab.ok");
    b.cond_br(over, full, ok);
    b.switch_to(full);
    let nullp = b.null_byte_ptr();
    b.ret(Some(nullp));
    b.switch_to(ok);
    setfld(&mut b, desc, CF_NEXT, end);
    let obj = b.inttoptr(nxt, k.i8t);
    b.ret(Some(obj));

    // mm_kmem_cache_free(desc, obj): no-op (objects are never reused, so a
    // stale pointer can only dangle, not alias a new object).
    let mut b = FunctionBuilder::new(m, k.fid("mm_kmem_cache_free"));
    b.ret(None);

    // mm_init: heap break, then the two slab caches the kernel uses.
    let mut b = FunctionBuilder::new(m, k.fid("mm_init"));
    b.store(ci(k, KHEAP_BASE), k.gop("mm_brk"));
    let pc = k.gop("pipe_cache");
    let fc = k.gop("file_cache");
    b.call(k.fid("mm_cache_init"), vec![pc, ci(k, 40), ci(k, 128)]);
    b.call(k.fid("mm_cache_init"), vec![fc, ci(k, 48), ci(k, 256)]);
    b.ret(None);
}

// ---- lib + character devices -----------------------------------------------

fn define_lib_chr(m: &mut Module, k: &K) {
    // lib_copy_from_user(dst, src, n): byte copy with *no* clamp — exactly
    // the pattern the §7.2 ELF-loader exploit abuses when lib/ is compiled
    // without checks ("as tested") and catches when it is included.
    let mut b = FunctionBuilder::new(m, k.fid("lib_copy_from_user"));
    let dst = b.param(0);
    let src = b.param(1);
    let n = b.param(2);
    emit_loop(&mut b, k, n, |b, i| {
        let sa = b.add(src, i);
        let sp = b.inttoptr(sa, k.i8t);
        let byte = b.load(sp);
        let dp = b.gep(dst, vec![i]);
        b.store(byte, dp);
    });
    b.ret(Some(n));

    // chr_zero_read(buf, count): /dev/zero.
    let mut b = FunctionBuilder::new(m, k.fid("chr_zero_read"));
    let buf = b.param(0);
    let count = b.param(1);
    emit_loop(&mut b, k, count, |b, i| {
        let ua = b.add(buf, i);
        let up = b.inttoptr(ua, k.i8t);
        b.store(Operand::ConstInt(0, k.i8t), up);
    });
    b.ret(Some(count));

    // chr_null_read: /dev/null — always EOF.
    let mut b = FunctionBuilder::new(m, k.fid("chr_null_read"));
    b.ret(Some(ci(k, 0)));

    // chr_dbg_note(p): a diagnostic hook the Bluetooth path hands its
    // scratch buffer to. chr_ is outside the analysed kernel in every
    // configuration, so this single escape makes the scratch pool
    // incomplete — load/store checks are relaxed there, but bounds checks
    // on known objects still fire (§4.2's "reduced checks" behaviour).
    let mut b = FunctionBuilder::new(m, k.fid("chr_dbg_note"));
    b.ret(Some(ci(k, 0)));
}

// ---- processes, scheduling, signals ----------------------------------------

fn define_proc(m: &mut Module, k: &K) {
    // proc_find_free: first FREE slot above pid 0, or -1.
    let mut b = FunctionBuilder::new(m, k.fid("proc_find_free"));
    let slot = b.alloca(k.i64t);
    b.store(ci(k, 1), slot);
    let head = b.block("scan.head");
    let body = b.block("scan.body");
    let cont = b.block("scan.cont");
    let none = b.block("scan.none");
    let found = b.block("scan.found");
    b.br(head);
    b.switch_to(head);
    let i = b.load(slot);
    let c = b.icmp(IPred::ULt, i, ci(k, NPROC));
    b.cond_br(c, body, none);
    b.switch_to(body);
    let pp = proc_at(&mut b, k, i);
    let st = fld(&mut b, pp, PF_STATE);
    let isfree = b.icmp(IPred::Eq, st, ci(k, P_FREE));
    b.cond_br(isfree, found, cont);
    b.switch_to(cont);
    let i1 = b.add(i, ci(k, 1));
    b.store(i1, slot);
    b.br(head);
    b.switch_to(found);
    b.ret(Some(i));
    b.switch_to(none);
    b.ret(Some(ci(k, -1)));

    // proc_schedule: round-robin from proc_current+1. READY_USER procs are
    // entered by sva.iret into their saved interrupt context; READY_KERNEL
    // procs resume their kernel continuation via sva.load.integer (§3.3).
    let mut b = FunctionBuilder::new(m, k.fid("proc_schedule"));
    let cur = cur_pid(&mut b, k);
    let slot = b.alloca(k.i64t);
    b.store(ci(k, 1), slot);
    let head = b.block("sched.head");
    let body = b.block("sched.body");
    let chk_kern = b.block("sched.kern?");
    let run_user = b.block("sched.user");
    let run_kern = b.block("sched.kernel");
    let cont = b.block("sched.cont");
    let none = b.block("sched.none");
    b.br(head);
    b.switch_to(head);
    let j = b.load(slot);
    let c = b.icmp(IPred::ULe, j, ci(k, NPROC));
    b.cond_br(c, body, none);
    b.switch_to(body);
    let sum = b.add(cur, j);
    let idx = b.urem(sum, ci(k, NPROC));
    let pp = proc_at(&mut b, k, idx);
    let st = fld(&mut b, pp, PF_STATE);
    let isuser = b.icmp(IPred::Eq, st, ci(k, P_READY_USER));
    b.cond_br(isuser, run_user, chk_kern);
    b.switch_to(run_user);
    setfld(&mut b, pp, PF_STATE, ci(k, P_RUNNING));
    b.store(idx, k.gop("proc_current"));
    let ic = fld(&mut b, pp, PF_ICID);
    let rv = fld(&mut b, pp, PF_RETVAL);
    b.intrinsic(Intrinsic::Iret, vec![ic, rv], None);
    b.ret(None);
    b.switch_to(run_kern);
    setfld(&mut b, pp, PF_STATE, ci(k, P_RUNNING));
    b.store(idx, k.gop("proc_current"));
    let key = b.add(ci(k, SAVE_KEY_BASE), idx);
    b.intrinsic(Intrinsic::LoadInteger, vec![key], None);
    b.ret(None);
    b.switch_to(chk_kern);
    let iskern = b.icmp(IPred::Eq, st, ci(k, P_READY_KERNEL));
    b.cond_br(iskern, run_kern, cont);
    b.switch_to(cont);
    let j1 = b.add(j, ci(k, 1));
    b.store(j1, slot);
    b.br(head);
    b.switch_to(none);
    // Nothing runnable: the kernel would idle forever, so halt loudly.
    b.intrinsic(Intrinsic::Abort, vec![ci(k, 99)], None);
    b.ret(None);

    // proc_block_current: mark BLOCKED, checkpoint this kernel
    // continuation, and go schedule someone else. The 1-return is the
    // save path; the 0-return is the wakeup path.
    let mut b = FunctionBuilder::new(m, k.fid("proc_block_current"));
    let cur = cur_pid(&mut b, k);
    let pp = proc_at(&mut b, k, cur);
    setfld(&mut b, pp, PF_STATE, ci(k, P_BLOCKED));
    let key = b.add(ci(k, SAVE_KEY_BASE), cur);
    let r = b
        .intrinsic(Intrinsic::SaveInteger, vec![key], Some(k.i64t))
        .unwrap();
    let saved = b.icmp(IPred::Eq, r, ci(k, 1));
    let sched = b.block("blk.sched");
    let resumed = b.block("blk.resumed");
    b.cond_br(saved, sched, resumed);
    b.switch_to(sched);
    b.call(k.fid("proc_schedule"), vec![]);
    b.ret(None);
    b.switch_to(resumed);
    b.ret(None);

    // proc_wake_all: every BLOCKED proc becomes READY_KERNEL. Wakeups are
    // broadcast; blocking loops re-check their condition.
    let mut b = FunctionBuilder::new(m, k.fid("proc_wake_all"));
    emit_loop(&mut b, k, ci(k, NPROC), |b, i| {
        let pp = proc_at(b, k, i);
        let st = fld(b, pp, PF_STATE);
        let isb = b.icmp(IPred::Eq, st, ci(k, P_BLOCKED));
        let yes = b.block("wake.yes");
        let cont = b.block("wake.cont");
        b.cond_br(isb, yes, cont);
        b.switch_to(yes);
        setfld(b, pp, PF_STATE, ci(k, P_READY_KERNEL));
        b.br(cont);
        b.switch_to(cont);
    });
    b.ret(None);

    // sig_check_pending: deliver at most one pending signal to the current
    // process by pushing its handler onto the interrupt context
    // (sva.ipush.function, §3.4). Returns 1 if a signal was consumed.
    let mut b = FunctionBuilder::new(m, k.fid("sig_check_pending"));
    let cur = cur_pid(&mut b, k);
    let pp = proc_at(&mut b, k, cur);
    let s = fld(&mut b, pp, PF_PENDING);
    let isz = b.icmp(IPred::Eq, s, ci(k, 0));
    ret_if(&mut b, k, isz, 0);
    setfld(&mut b, pp, PF_PENDING, ci(k, 0));
    let hp = b.field_ptr(pp, PF_SIGH);
    let idx = b.and(s, ci(k, NSIG - 1));
    let hslot = b.array_elem_ptr(hp, idx);
    let h = b.load(hslot);
    let isnz = b.icmp(IPred::Ne, h, ci(k, 0));
    let push = b.block("sig.push");
    let out = b.block("sig.out");
    b.cond_br(isnz, push, out);
    b.switch_to(push);
    let ic = b
        .intrinsic(Intrinsic::IcontextGet, vec![], Some(k.i64t))
        .unwrap();
    b.intrinsic(Intrinsic::IpushFunction, vec![ic, h, s], None);
    b.br(out);
    b.switch_to(out);
    b.ret(Some(ci(k, 1)));

    // sig_timer_tick: interrupt vector 0 — count ticks.
    let mut b = FunctionBuilder::new(m, k.fid("sig_timer_tick"));
    let t = b.load(k.gop("time_ticks"));
    let t1 = b.add(t, ci(k, 1));
    b.store(t1, k.gop("time_ticks"));
    b.ret(Some(ci(k, 0)));
}

// ---- ramfs VFS --------------------------------------------------------------

fn define_fs(m: &mut Module, k: &K) {
    // fs_get_file(fd) -> file_t* (null on any invalid fd).
    let mut b = FunctionBuilder::new(m, k.fid("fs_get_file"));
    let fd = b.param(0);
    let bad = b.block("gf.bad");
    let ok = b.block("gf.ok");
    let have = b.block("gf.have");
    let oor = b.icmp(IPred::UGe, fd, ci(k, NFDS));
    b.cond_br(oor, bad, ok);
    b.switch_to(ok);
    let cur = cur_pid(&mut b, k);
    let pp = proc_at(&mut b, k, cur);
    let fdsp = b.field_ptr(pp, PF_FDS);
    let slot = b.array_elem_ptr(fdsp, fd);
    let v = b.load(slot);
    let isz = b.icmp(IPred::Eq, v, ci(k, 0));
    b.cond_br(isz, bad, have);
    b.switch_to(have);
    // fd table stores file_table index + 1 so 0 means "closed".
    let idx = b.sub(v, ci(k, 1));
    let ftab = k.gop("file_table");
    let fslot = b.array_elem_ptr(ftab, idx);
    let f = b.load(fslot);
    b.ret(Some(f));
    b.switch_to(bad);
    let nullf = b.null(k.file_t);
    b.ret(Some(nullf));

    // fs_alloc_fd(f): park f in the global file table, then bind the first
    // free descriptor (>= 2; 0/1 are console-ish) of the current process.
    let mut b = FunctionBuilder::new(m, k.fid("fs_alloc_fd"));
    let f = b.param(0);
    // Scan file_table for a null slot.
    let islot = b.alloca(k.i64t);
    b.store(ci(k, 0), islot);
    let h1 = b.block("ft.head");
    let b1 = b.block("ft.body");
    let c1b = b.block("ft.cont");
    let f1 = b.block("ft.found");
    let n1 = b.block("ft.none");
    b.br(h1);
    b.switch_to(h1);
    let i = b.load(islot);
    let c = b.icmp(IPred::ULt, i, ci(k, NFILE));
    b.cond_br(c, b1, n1);
    b.switch_to(b1);
    let ftab = k.gop("file_table");
    let fslot = b.array_elem_ptr(ftab, i);
    let v = b.load(fslot);
    let vint = b.ptrtoint(v);
    let isz = b.icmp(IPred::Eq, vint, ci(k, 0));
    b.cond_br(isz, f1, c1b);
    b.switch_to(c1b);
    let i1 = b.add(i, ci(k, 1));
    b.store(i1, islot);
    b.br(h1);
    b.switch_to(n1);
    b.ret(Some(ci(k, EBADF)));
    b.switch_to(f1);
    b.store(f, fslot);
    // Scan the per-process fd table for a zero slot.
    let jslot = b.alloca(k.i64t);
    b.store(ci(k, 2), jslot);
    let h2 = b.block("fd.head");
    let b2 = b.block("fd.body");
    let c2b = b.block("fd.cont");
    let f2 = b.block("fd.found");
    let n2 = b.block("fd.none");
    b.br(h2);
    b.switch_to(h2);
    let j = b.load(jslot);
    let cj = b.icmp(IPred::ULt, j, ci(k, NFDS));
    b.cond_br(cj, b2, n2);
    b.switch_to(b2);
    let cur = cur_pid(&mut b, k);
    let pp = proc_at(&mut b, k, cur);
    let fdsp = b.field_ptr(pp, PF_FDS);
    let dslot = b.array_elem_ptr(fdsp, j);
    let dv = b.load(dslot);
    let dz = b.icmp(IPred::Eq, dv, ci(k, 0));
    b.cond_br(dz, f2, c2b);
    b.switch_to(c2b);
    let j1 = b.add(j, ci(k, 1));
    b.store(j1, jslot);
    b.br(h2);
    b.switch_to(n2);
    // No descriptor: release the table slot again.
    let nullf = b.null(k.file_t);
    b.store(nullf, fslot);
    b.ret(Some(ci(k, EBADF)));
    b.switch_to(f2);
    let iv = b.add(i, ci(k, 1));
    b.store(iv, dslot);
    b.ret(Some(j));

    // fs_inode_of(f) -> inode_t*.
    let mut b = FunctionBuilder::new(m, k.fid("fs_inode_of"));
    let f = b.param(0);
    let ino = fld(&mut b, f, FF_INO);
    let itab = k.gop("inode_table");
    let ip = b.array_elem_ptr(itab, ino);
    b.ret(Some(ip));

    // fs_ensure_cap(ip, need): grow the inode's data buffer (vmalloc,
    // copy, vfree the old buffer — the dealloc exercises pchk.drop.obj).
    let mut b = FunctionBuilder::new(m, k.fid("fs_ensure_cap"));
    let ip = b.param(0);
    let need = b.param(1);
    let cap = fld(&mut b, ip, NF_CAP);
    let fits = b.icmp(IPred::ULe, need, cap);
    let done = b.block("cap.done");
    let grow = b.block("cap.grow");
    b.cond_br(fits, done, grow);
    b.switch_to(done);
    b.ret(None);
    b.switch_to(grow);
    let n1 = b.add(need, ci(k, 1023));
    let newcap = b.and(n1, ci(k, !1023));
    let nd = b.call(k.fid("mm_vmalloc"), vec![newcap]).unwrap();
    let old = fld(&mut b, ip, NF_DATA);
    let size = fld(&mut b, ip, NF_SIZE);
    emit_loop(&mut b, k, size, |b, i| {
        let sp = b.gep(old, vec![i]);
        let byte = b.load(sp);
        let dp = b.gep(nd, vec![i]);
        b.store(byte, dp);
    });
    let oldint = b.ptrtoint(old);
    let hadold = b.icmp(IPred::Ne, oldint, ci(k, 0));
    let freeb = b.block("cap.free");
    let fin = b.block("cap.fin");
    b.cond_br(hadold, freeb, fin);
    b.switch_to(freeb);
    b.call(k.fid("mm_vfree"), vec![old]);
    b.br(fin);
    b.switch_to(fin);
    setfld(&mut b, ip, NF_DATA, nd);
    setfld(&mut b, ip, NF_CAP, newcap);
    b.ret(None);

    // fs_file_write(f, buf, n): copy user bytes in at f.pos.
    let mut b = FunctionBuilder::new(m, k.fid("fs_file_write"));
    let f = b.param(0);
    let buf = b.param(1);
    let n = b.param(2);
    let ip = b.call(k.fid("fs_inode_of"), vec![f]).unwrap();
    let pos = fld(&mut b, f, FF_POS);
    let end = b.add(pos, n);
    b.call(k.fid("fs_ensure_cap"), vec![ip, end]);
    let data = fld(&mut b, ip, NF_DATA);
    emit_loop(&mut b, k, n, |b, i| {
        let ua = b.add(buf, i);
        let up = b.inttoptr(ua, k.i8t);
        let byte = b.load(up);
        let off = b.add(pos, i);
        let dp = b.gep(data, vec![off]);
        b.store(byte, dp);
    });
    let size = fld(&mut b, ip, NF_SIZE);
    let bigger = b.icmp(IPred::UGt, end, size);
    let nsz = b.select(bigger, end, size);
    setfld(&mut b, ip, NF_SIZE, nsz);
    setfld(&mut b, f, FF_POS, end);
    b.ret(Some(n));

    // fs_file_read(f, buf, n): copy out from f.pos, clamped to size.
    let mut b = FunctionBuilder::new(m, k.fid("fs_file_read"));
    let f = b.param(0);
    let buf = b.param(1);
    let n = b.param(2);
    let ip = b.call(k.fid("fs_inode_of"), vec![f]).unwrap();
    let pos = fld(&mut b, f, FF_POS);
    let size = fld(&mut b, ip, NF_SIZE);
    let pastend = b.icmp(IPred::UGe, pos, size);
    ret_if(&mut b, k, pastend, 0);
    let avail = b.sub(size, pos);
    let c = umin(&mut b, avail, n);
    let data = fld(&mut b, ip, NF_DATA);
    emit_loop(&mut b, k, c, |b, i| {
        let off = b.add(pos, i);
        let sp = b.gep(data, vec![off]);
        let byte = b.load(sp);
        let ua = b.add(buf, i);
        let up = b.inttoptr(ua, k.i8t);
        b.store(byte, up);
    });
    let npos = b.add(pos, c);
    setfld(&mut b, f, FF_POS, npos);
    b.ret(Some(c));
}

// ---- pipes ------------------------------------------------------------------

fn define_pipe(m: &mut Module, k: &K) {
    // pipe_create: slab-allocated descriptor + kmalloc'd ring.
    let mut b = FunctionBuilder::new(m, k.fid("pipe_create"));
    let pc = k.gop("pipe_cache");
    let raw = b.call(k.fid("mm_kmem_cache_alloc"), vec![pc]).unwrap();
    let p = b.bitcast_ptr(raw, k.pipe_t);
    setfld(&mut b, p, QF_RPOS, ci(k, 0));
    setfld(&mut b, p, QF_WPOS, ci(k, 0));
    setfld(&mut b, p, QF_READERS, ci(k, 1));
    setfld(&mut b, p, QF_WRITERS, ci(k, 1));
    let ring = b.call(k.fid("mm_kmalloc"), vec![ci(k, PIPE_SZ)]).unwrap();
    setfld(&mut b, p, QF_BUF, ring);
    b.ret(Some(p));

    // pipe_write(p, buf, n): all-or-nothing write of min(n, PIPE_SZ),
    // blocking until space. Signals interrupt the wait (-EINTR).
    let mut b = FunctionBuilder::new(m, k.fid("pipe_write"));
    let p = b.param(0);
    let buf = b.param(1);
    let n = b.param(2);
    let c = umin(&mut b, n, ci(k, PIPE_SZ));
    let loop_b = b.block("pw.loop");
    let chk = b.block("pw.chk");
    let do_copy = b.block("pw.copy");
    let wait = b.block("pw.wait");
    let intr = b.block("pw.intr");
    b.br(loop_b);
    b.switch_to(loop_b);
    let sig = b.call(k.fid("sig_check_pending"), vec![]).unwrap();
    let gotsig = b.icmp(IPred::Ne, sig, ci(k, 0));
    b.cond_br(gotsig, intr, chk);
    b.switch_to(intr);
    b.ret(Some(ci(k, EINTR)));
    b.switch_to(chk);
    let rpos = fld(&mut b, p, QF_RPOS);
    let wpos = fld(&mut b, p, QF_WPOS);
    let used = b.sub(wpos, rpos);
    let space = b.sub(ci(k, PIPE_SZ), used);
    let fits = b.icmp(IPred::ULe, c, space);
    b.cond_br(fits, do_copy, wait);
    b.switch_to(wait);
    b.call(k.fid("proc_block_current"), vec![]);
    b.br(loop_b);
    b.switch_to(do_copy);
    let ring = fld(&mut b, p, QF_BUF);
    emit_loop(&mut b, k, c, |b, i| {
        let ua = b.add(buf, i);
        let up = b.inttoptr(ua, k.i8t);
        let byte = b.load(up);
        let w = b.add(wpos, i);
        let off = b.urem(w, ci(k, PIPE_SZ));
        let dp = b.gep(ring, vec![off]);
        b.store(byte, dp);
    });
    let nw = b.add(wpos, c);
    setfld(&mut b, p, QF_WPOS, nw);
    b.call(k.fid("proc_wake_all"), vec![]);
    b.ret(Some(c));

    // pipe_read(p, buf, n): blocking read of up to n bytes; 0 at EOF
    // (no writers), -EINTR on signal.
    let mut b = FunctionBuilder::new(m, k.fid("pipe_read"));
    let p = b.param(0);
    let buf = b.param(1);
    let n = b.param(2);
    let loop_b = b.block("pr.loop");
    let chk = b.block("pr.chk");
    let do_copy = b.block("pr.copy");
    let eofchk = b.block("pr.eof?");
    let eof = b.block("pr.eof");
    let wait = b.block("pr.wait");
    let intr = b.block("pr.intr");
    b.br(loop_b);
    b.switch_to(loop_b);
    let sig = b.call(k.fid("sig_check_pending"), vec![]).unwrap();
    let gotsig = b.icmp(IPred::Ne, sig, ci(k, 0));
    b.cond_br(gotsig, intr, chk);
    b.switch_to(intr);
    b.ret(Some(ci(k, EINTR)));
    b.switch_to(chk);
    let rpos = fld(&mut b, p, QF_RPOS);
    let wpos = fld(&mut b, p, QF_WPOS);
    let avail = b.sub(wpos, rpos);
    let has = b.icmp(IPred::UGt, avail, ci(k, 0));
    b.cond_br(has, do_copy, eofchk);
    b.switch_to(eofchk);
    let writers = fld(&mut b, p, QF_WRITERS);
    let nowr = b.icmp(IPred::Eq, writers, ci(k, 0));
    b.cond_br(nowr, eof, wait);
    b.switch_to(eof);
    b.ret(Some(ci(k, 0)));
    b.switch_to(wait);
    b.call(k.fid("proc_block_current"), vec![]);
    b.br(loop_b);
    b.switch_to(do_copy);
    let c = umin(&mut b, avail, n);
    let ring = fld(&mut b, p, QF_BUF);
    emit_loop(&mut b, k, c, |b, i| {
        let r = b.add(rpos, i);
        let off = b.urem(r, ci(k, PIPE_SZ));
        let sp = b.gep(ring, vec![off]);
        let byte = b.load(sp);
        let ua = b.add(buf, i);
        let up = b.inttoptr(ua, k.i8t);
        b.store(byte, up);
    });
    let nr2 = b.add(rpos, c);
    setfld(&mut b, p, QF_RPOS, nr2);
    b.call(k.fid("proc_wake_all"), vec![]);
    b.ret(Some(c));
}

// ---- network paths + ELF loader (the §7.2 exploit surfaces) -----------------

fn define_net_elf(m: &mut Module, k: &K) {
    // net_set_msfilter(n, src): the MCAST_MSFILTER bug — the allocation
    // size is computed in 32 bits (n * 8 truncated), the copy length in
    // 64. n = 0x2000_0001 allocates 8 bytes and copies far past them.
    let mut b = FunctionBuilder::new(m, k.fid("net_set_msfilter"));
    let n = b.param(0);
    let src = b.param(1);
    let n32 = b.trunc(n, k.i32t);
    let b32 = b.mul(n32, Operand::ConstInt(8, k.i32t));
    let bytes = b.zext(b32, k.i64t);
    let buf = b.call(k.fid("mm_kmalloc"), vec![bytes]).unwrap();
    let bi = b.ptrtoint(buf);
    let isnull = b.icmp(IPred::Eq, bi, ci(k, 0));
    ret_if(&mut b, k, isnull, ENOENT);
    let total = b.mul(n, ci(k, 8));
    let cap = umin(&mut b, total, ci(k, 4096));
    emit_loop(&mut b, k, cap, |b, i| {
        let sa = b.add(src, i);
        let sp = b.inttoptr(sa, k.i8t);
        let byte = b.load(sp);
        let dp = b.gep(buf, vec![i]);
        b.store(byte, dp);
    });
    b.ret(Some(ci(k, 0)));

    // net_rx_igmp(n, src): IGMP report parsing — group count is masked to
    // 8 bits for the allocation but the full count drives the copy.
    let mut b = FunctionBuilder::new(m, k.fid("net_rx_igmp"));
    let n = b.param(0);
    let src = b.param(1);
    let g = b.and(n, ci(k, 255));
    let bytes = b.mul(g, ci(k, 8));
    let buf = b.call(k.fid("mm_kmalloc"), vec![bytes]).unwrap();
    let bi = b.ptrtoint(buf);
    let isnull = b.icmp(IPred::Eq, bi, ci(k, 0));
    ret_if(&mut b, k, isnull, ENOENT);
    let total = b.mul(n, ci(k, 8));
    let cap = umin(&mut b, total, ci(k, 4096));
    emit_loop(&mut b, k, cap, |b, i| {
        let sa = b.add(src, i);
        let sp = b.inttoptr(sa, k.i8t);
        let byte = b.load(sp);
        let dp = b.gep(buf, vec![i]);
        b.store(byte, dp);
    });
    let cnt = b.load(k.gop("net_rx_count"));
    let cnt1 = b.add(cnt, ci(k, 1));
    b.store(cnt1, k.gop("net_rx_count"));
    b.ret(Some(ci(k, 0)));

    // net_rx_bt(n, src): Bluetooth packet staging — a fixed 64-byte global
    // scratch buffer, a length check that trusts the caller up to 80.
    let mut b = FunctionBuilder::new(m, k.fid("net_rx_bt"));
    let n = b.param(0);
    let src = b.param(1);
    let scratch = k.gop("net_bt_scratch");
    let sc8 = b.bitcast_ptr(scratch, k.i8t);
    b.call(k.fid("chr_dbg_note"), vec![sc8]);
    let cap = umin(&mut b, n, ci(k, 80));
    emit_loop(&mut b, k, cap, |b, i| {
        let sa = b.add(src, i);
        let sp = b.inttoptr(sa, k.i8t);
        let byte = b.load(sp);
        let dp = b.array_elem_ptr(scratch, i);
        b.store(byte, dp);
    });
    b.ret(Some(ci(k, 0)));

    // net_route_lookup(idx): Fig. 2 — array indexed by an unchecked,
    // attacker-controlled hash value.
    let mut b = FunctionBuilder::new(m, k.fid("net_route_lookup"));
    let idx = b.param(0);
    let rt = k.gop("rt_table");
    let ep = b.array_elem_ptr(rt, idx);
    let v = b.load(ep);
    b.ret(Some(v));

    // elf_load(prog, hdr, hdrlen): copy the "program headers" into an
    // 8-entry kernel buffer with the *user-supplied* length, then enter
    // the selected program. lib_copy_from_user has no clamp; whether the
    // overrun is caught depends on whether lib/ is inside the safety
    // boundary (the "as tested" vs "with copy lib" configurations).
    let mut b = FunctionBuilder::new(m, k.fid("elf_load"));
    let prog = b.param(0);
    let hdr = b.param(1);
    let hdrlen = b.param(2);
    let hbuf = b.call(k.fid("mm_kmalloc"), vec![ci(k, 64)]).unwrap();
    let hi = b.ptrtoint(hbuf);
    let isnull = b.icmp(IPred::Eq, hi, ci(k, 0));
    ret_if(&mut b, k, isnull, ENOENT);
    b.call(k.fid("lib_copy_from_user"), vec![hbuf, hdr, hdrlen]);
    let oob = b.icmp(IPred::UGe, prog, ci(k, 4));
    ret_if(&mut b, k, oob, ENOENT);
    let ptab = k.gop("elf_prog_table");
    let pslot = b.array_elem_ptr(ptab, prog);
    let fp = b.load(pslot);
    let fpi = b.ptrtoint(fp);
    let nof = b.icmp(IPred::Eq, fpi, ci(k, 0));
    ret_if(&mut b, k, nof, ENOENT);
    let ic = b
        .intrinsic(Intrinsic::IcontextGet, vec![], Some(k.i64t))
        .unwrap();
    b.intrinsic(Intrinsic::IcontextSetEntry, vec![ic, fpi, ci(k, 0)], None);
    b.ret(Some(ci(k, 0)));
}

// ---- system calls -----------------------------------------------------------

fn define_sys(m: &mut Module, k: &K) {
    // sys_exit(code): pid 0 halts the machine; everyone else zombifies,
    // releases descriptors, wakes waiters and schedules away.
    let mut b = FunctionBuilder::new(m, k.fid("sys_exit"));
    let code = b.param(0);
    let cur = cur_pid(&mut b, k);
    let is0 = b.icmp(IPred::Eq, cur, ci(k, 0));
    let halt = b.block("exit.halt");
    let zomb = b.block("exit.zombie");
    b.cond_br(is0, halt, zomb);
    b.switch_to(halt);
    b.intrinsic(Intrinsic::Abort, vec![code], None);
    b.ret(Some(ci(k, 0)));
    b.switch_to(zomb);
    let pp = proc_at(&mut b, k, cur);
    setfld(&mut b, pp, PF_STATE, ci(k, P_ZOMBIE));
    setfld(&mut b, pp, PF_EXIT, code);
    emit_loop(&mut b, k, ci(k, NFDS), |b, fd| {
        let fdsp = b.field_ptr(pp, PF_FDS);
        let slot = b.array_elem_ptr(fdsp, fd);
        let v = b.load(slot);
        let open = b.icmp(IPred::Ne, v, ci(k, 0));
        let yes = b.block("exit.close");
        let cont = b.block("exit.cont");
        b.cond_br(open, yes, cont);
        b.switch_to(yes);
        b.call(k.fid("sys_close"), vec![fd]);
        b.br(cont);
        b.switch_to(cont);
    });
    b.call(k.fid("proc_wake_all"), vec![]);
    b.call(k.fid("proc_schedule"), vec![]);
    b.ret(Some(ci(k, 0)));

    // sys_fork: clone the address space page by page, snapshot the parent's
    // interrupt context, and build the child from the snapshot (§5.2's
    // fork-from-icontext pattern). Parent gets the pid, child gets 0.
    let mut b = FunctionBuilder::new(m, k.fid("sys_fork"));
    let pid = b.call(k.fid("proc_find_free"), vec![]).unwrap();
    let nofree = b.icmp(IPred::SLt, pid, ci(k, 0));
    ret_if(&mut b, k, nofree, ENOENT);
    let casid = b
        .intrinsic(Intrinsic::MmuNewSpace, vec![], Some(k.i64t))
        .unwrap();
    emit_loop(&mut b, k, ci(k, 64), |b, pg| {
        let off = b.mul(pg, ci(k, 4096));
        let va = b.add(ci(k, UBASE), off);
        b.intrinsic(Intrinsic::MmuCopyPage, vec![casid, va], None);
    });
    let ic = b
        .intrinsic(Intrinsic::IcontextGet, vec![], Some(k.i64t))
        .unwrap();
    b.intrinsic(Intrinsic::IcontextSave, vec![ic, ci(k, FORK_ISP)], None);
    let cicid = b
        .intrinsic(
            Intrinsic::IcontextNew,
            vec![ci(k, FORK_ISP), casid],
            Some(k.i64t),
        )
        .unwrap();
    let cp = proc_at(&mut b, k, pid);
    setfld(&mut b, cp, PF_STATE, ci(k, P_READY_USER));
    setfld(&mut b, cp, PF_ICID, cicid);
    setfld(&mut b, cp, PF_RETVAL, ci(k, 0));
    let cur = cur_pid(&mut b, k);
    setfld(&mut b, cp, PF_PARENT, cur);
    setfld(&mut b, cp, PF_PENDING, ci(k, 0));
    setfld(&mut b, cp, PF_ASID, casid);
    let pp = proc_at(&mut b, k, cur);
    let ubrk = fld(&mut b, pp, PF_UBRK);
    setfld(&mut b, cp, PF_UBRK, ubrk);
    // Share open files (bump refcounts) and inherit signal handlers.
    emit_loop(&mut b, k, ci(k, NFDS), |b, fd| {
        let pfds = b.field_ptr(pp, PF_FDS);
        let ps = b.array_elem_ptr(pfds, fd);
        let v = b.load(ps);
        let cfds = b.field_ptr(cp, PF_FDS);
        let cs = b.array_elem_ptr(cfds, fd);
        b.store(v, cs);
        let open = b.icmp(IPred::Ne, v, ci(k, 0));
        let yes = b.block("fork.ref");
        let cont = b.block("fork.cont");
        b.cond_br(open, yes, cont);
        b.switch_to(yes);
        let idx = b.sub(v, ci(k, 1));
        let ftab = k.gop("file_table");
        let fslot = b.array_elem_ptr(ftab, idx);
        let f = b.load(fslot);
        let rc = fld(b, f, FF_REFCNT);
        let rc1 = b.add(rc, ci(k, 1));
        setfld(b, f, FF_REFCNT, rc1);
        b.br(cont);
        b.switch_to(cont);
    });
    emit_loop(&mut b, k, ci(k, NSIG), |b, s| {
        let ph = b.field_ptr(pp, PF_SIGH);
        let ps = b.array_elem_ptr(ph, s);
        let v = b.load(ps);
        let ch = b.field_ptr(cp, PF_SIGH);
        let cs = b.array_elem_ptr(ch, s);
        b.store(v, cs);
    });
    b.ret(Some(pid));

    // sys_waitpid(pid): block until the child is a zombie, then reap.
    let mut b = FunctionBuilder::new(m, k.fid("sys_waitpid"));
    let pid = b.param(0);
    let oor = b.icmp(IPred::UGe, pid, ci(k, NPROC));
    ret_if(&mut b, k, oor, ENOENT);
    let pp = proc_at(&mut b, k, pid);
    let loop_b = b.block("wp.loop");
    let chk = b.block("wp.chk");
    let chk2 = b.block("wp.chk2");
    let reap = b.block("wp.reap");
    let nochild = b.block("wp.nochild");
    let wait = b.block("wp.wait");
    let intr = b.block("wp.intr");
    b.br(loop_b);
    b.switch_to(loop_b);
    let sig = b.call(k.fid("sig_check_pending"), vec![]).unwrap();
    let gotsig = b.icmp(IPred::Ne, sig, ci(k, 0));
    b.cond_br(gotsig, intr, chk);
    b.switch_to(intr);
    b.ret(Some(ci(k, EINTR)));
    b.switch_to(chk);
    let st = fld(&mut b, pp, PF_STATE);
    let isz = b.icmp(IPred::Eq, st, ci(k, P_ZOMBIE));
    b.cond_br(isz, reap, chk2);
    b.switch_to(chk2);
    let isfree = b.icmp(IPred::Eq, st, ci(k, P_FREE));
    b.cond_br(isfree, nochild, wait);
    b.switch_to(nochild);
    b.ret(Some(ci(k, ENOENT)));
    b.switch_to(wait);
    b.call(k.fid("proc_block_current"), vec![]);
    b.br(loop_b);
    b.switch_to(reap);
    setfld(&mut b, pp, PF_STATE, ci(k, P_FREE));
    let ec = fld(&mut b, pp, PF_EXIT);
    b.ret(Some(ec));

    // sys_kill(pid, sig): post the signal; self-signals deliver now,
    // blocked targets are kicked awake to notice it.
    let mut b = FunctionBuilder::new(m, k.fid("sys_kill"));
    let pid = b.param(0);
    let sig = b.param(1);
    let oor = b.icmp(IPred::UGe, pid, ci(k, NPROC));
    ret_if(&mut b, k, oor, ENOENT);
    let soor = b.icmp(IPred::UGe, sig, ci(k, NSIG));
    ret_if(&mut b, k, soor, ENOENT);
    let pp = proc_at(&mut b, k, pid);
    let st = fld(&mut b, pp, PF_STATE);
    let isfree = b.icmp(IPred::Eq, st, ci(k, P_FREE));
    ret_if(&mut b, k, isfree, ENOENT);
    setfld(&mut b, pp, PF_PENDING, sig);
    let cur = cur_pid(&mut b, k);
    let isself = b.icmp(IPred::Eq, pid, cur);
    let selfb = b.block("kill.self");
    let other = b.block("kill.other");
    let kick = b.block("kill.kick");
    let out = b.block("kill.out");
    b.cond_br(isself, selfb, other);
    b.switch_to(selfb);
    b.call(k.fid("sig_check_pending"), vec![]);
    b.ret(Some(ci(k, 0)));
    b.switch_to(other);
    let isb = b.icmp(IPred::Eq, st, ci(k, P_BLOCKED));
    b.cond_br(isb, kick, out);
    b.switch_to(kick);
    setfld(&mut b, pp, PF_STATE, ci(k, P_READY_KERNEL));
    b.br(out);
    b.switch_to(out);
    b.ret(Some(ci(k, 0)));

    // sys_yield: requeue self and schedule.
    let mut b = FunctionBuilder::new(m, k.fid("sys_yield"));
    let cur = cur_pid(&mut b, k);
    let pp = proc_at(&mut b, k, cur);
    setfld(&mut b, pp, PF_STATE, ci(k, P_READY_KERNEL));
    let key = b.add(ci(k, SAVE_KEY_BASE), cur);
    let r = b
        .intrinsic(Intrinsic::SaveInteger, vec![key], Some(k.i64t))
        .unwrap();
    let saved = b.icmp(IPred::Eq, r, ci(k, 1));
    let sched = b.block("yield.sched");
    let resumed = b.block("yield.back");
    b.cond_br(saved, sched, resumed);
    b.switch_to(sched);
    b.call(k.fid("proc_schedule"), vec![]);
    b.ret(Some(ci(k, 0)));
    b.switch_to(resumed);
    let pp2 = proc_at(&mut b, k, cur);
    setfld(&mut b, pp2, PF_STATE, ci(k, P_RUNNING));
    b.ret(Some(ci(k, 0)));

    // sys_getpid.
    let mut b = FunctionBuilder::new(m, k.fid("sys_getpid"));
    let cur = cur_pid(&mut b, k);
    b.ret(Some(cur));

    // sys_sbrk(incr): classic break bump; returns the old break.
    let mut b = FunctionBuilder::new(m, k.fid("sys_sbrk"));
    let incr = b.param(0);
    let cur = cur_pid(&mut b, k);
    let pp = proc_at(&mut b, k, cur);
    let old = fld(&mut b, pp, PF_UBRK);
    let new = b.add(old, incr);
    setfld(&mut b, pp, PF_UBRK, new);
    b.ret(Some(old));

    // sys_sigaction(sig, handler): install a user handler address.
    let mut b = FunctionBuilder::new(m, k.fid("sys_sigaction"));
    let sig = b.param(0);
    let h = b.param(1);
    let oor = b.icmp(IPred::UGe, sig, ci(k, NSIG));
    ret_if(&mut b, k, oor, ENOENT);
    let cur = cur_pid(&mut b, k);
    let pp = proc_at(&mut b, k, cur);
    let hp = b.field_ptr(pp, PF_SIGH);
    let slot = b.array_elem_ptr(hp, sig);
    b.store(h, slot);
    b.ret(Some(ci(k, 0)));

    // sys_getrusage(ru): write tick count + context-switch-ish word
    // straight through the user pointer (two adjacent u64 stores).
    let mut b = FunctionBuilder::new(m, k.fid("sys_getrusage"));
    let ru = b.param(0);
    let t = b.load(k.gop("time_ticks"));
    let p0 = b.inttoptr(ru, k.i64t);
    b.store(t, p0);
    let p1 = b.index_ptr(p0, ci(k, 1));
    b.store(t, p1);
    b.ret(Some(ci(k, 0)));

    // sys_gettimeofday(tv): one u64 of "time".
    let mut b = FunctionBuilder::new(m, k.fid("sys_gettimeofday"));
    let tv = b.param(0);
    let t = b.load(k.gop("time_ticks"));
    let p0 = b.inttoptr(tv, k.i64t);
    b.store(t, p0);
    b.ret(Some(ci(k, 0)));
}

// ---- file/pipe/net system calls ---------------------------------------------

fn define_sys_io(m: &mut Module, k: &K, opts: &KernelOptions) {
    // Driver dispatch: the nested kernel routes the §7.2 exploit
    // surfaces through their per-driver recovery wrappers (DESIGN.md
    // §4.8) so a poison lands on the driver's own subsystem; other
    // flavors call the handlers directly (`define_boot` already differs
    // per flavor, so the image diverging here is nothing new).
    let drv = |i: usize, raw: &'static str| -> &'static str {
        if opts.nested {
            DRIVERS[i].0
        } else {
            raw
        }
    };
    let drv_msfilter = drv(0, "net_set_msfilter");
    let drv_igmp = drv(1, "net_rx_igmp");
    let drv_bt = drv(2, "net_rx_bt");
    let drv_route = drv(3, "net_route_lookup");
    let drv_elf = drv(4, "elf_load");
    // sys_open(path, flags): path < 0x10 selects a character device (bit 0
    // picks /dev/zero vs /dev/null through chr_fops); 0x10+i opens ramfs
    // inode i.
    let mut b = FunctionBuilder::new(m, k.fid("sys_open"));
    let path = b.param(0);
    let ischr = b.icmp(IPred::ULt, path, ci(k, 0x10));
    let kind = b.select(ischr, ci(k, F_CHR), ci(k, F_REG));
    let ino_r = b.sub(path, ci(k, 0x10));
    let ino = b.select(ischr, ci(k, 0), ino_r);
    let fidx = b.and(path, ci(k, 1));
    let fops = k.gop("chr_fops");
    let fslot = b.array_elem_ptr(fops, fidx);
    let h = b.load(fslot);
    let nb = b.null_byte_ptr();
    let nchr = b.bitcast_ptr(nb, k.chr_fn_t);
    let chr = b.select(ischr, h, nchr);
    let notchr = b.icmp(IPred::UGe, path, ci(k, 0x10));
    let oor = b.icmp(IPred::UGe, ino_r, ci(k, NINODE));
    let bad = b.and(notchr, oor);
    ret_if(&mut b, k, bad, ENOENT);
    let fc = k.gop("file_cache");
    let raw = b.call(k.fid("mm_kmem_cache_alloc"), vec![fc]).unwrap();
    let ri = b.ptrtoint(raw);
    let isnull = b.icmp(IPred::Eq, ri, ci(k, 0));
    ret_if(&mut b, k, isnull, EBADF);
    let f = b.bitcast_ptr(raw, k.file_t);
    setfld(&mut b, f, FF_KIND, kind);
    setfld(&mut b, f, FF_INO, ino);
    setfld(&mut b, f, FF_POS, ci(k, 0));
    setfld(&mut b, f, FF_REFCNT, ci(k, 1));
    let np = b.null(k.pipe_t);
    setfld(&mut b, f, FF_PIPE, np);
    setfld(&mut b, f, FF_CHR, chr);
    let fd = b.call(k.fid("fs_alloc_fd"), vec![f]).unwrap();
    b.ret(Some(fd));

    // sys_close(fd): drop the descriptor; the last reference updates pipe
    // endpoint counts, wakes sleepers, and frees the file object.
    let mut b = FunctionBuilder::new(m, k.fid("sys_close"));
    let fd = b.param(0);
    let oor = b.icmp(IPred::UGe, fd, ci(k, NFDS));
    ret_if(&mut b, k, oor, EBADF);
    let cur = cur_pid(&mut b, k);
    let pp = proc_at(&mut b, k, cur);
    let fdsp = b.field_ptr(pp, PF_FDS);
    let slot = b.array_elem_ptr(fdsp, fd);
    let v = b.load(slot);
    let isz = b.icmp(IPred::Eq, v, ci(k, 0));
    ret_if(&mut b, k, isz, EBADF);
    b.store(ci(k, 0), slot);
    let idx = b.sub(v, ci(k, 1));
    let ftab = k.gop("file_table");
    let fslot = b.array_elem_ptr(ftab, idx);
    let f = b.load(fslot);
    let rc = fld(&mut b, f, FF_REFCNT);
    let rc1 = b.sub(rc, ci(k, 1));
    setfld(&mut b, f, FF_REFCNT, rc1);
    let last = b.icmp(IPred::Eq, rc1, ci(k, 0));
    let teardown = b.block("close.last");
    let keep = b.block("close.keep");
    b.cond_br(last, teardown, keep);
    b.switch_to(keep);
    b.ret(Some(ci(k, 0)));
    b.switch_to(teardown);
    let kind = fld(&mut b, f, FF_KIND);
    let isr = b.icmp(IPred::Eq, kind, ci(k, F_PIPE_R));
    let rblk = b.block("close.rdend");
    let chkw = b.block("close.w?");
    let wblk = b.block("close.wrend");
    let fin = b.block("close.fin");
    b.cond_br(isr, rblk, chkw);
    b.switch_to(rblk);
    let p = fld(&mut b, f, FF_PIPE);
    let r = fld(&mut b, p, QF_READERS);
    let r1 = b.sub(r, ci(k, 1));
    setfld(&mut b, p, QF_READERS, r1);
    b.br(fin);
    b.switch_to(chkw);
    let isw = b.icmp(IPred::Eq, kind, ci(k, F_PIPE_W));
    b.cond_br(isw, wblk, fin);
    b.switch_to(wblk);
    let p2 = fld(&mut b, f, FF_PIPE);
    let w = fld(&mut b, p2, QF_WRITERS);
    let w1 = b.sub(w, ci(k, 1));
    setfld(&mut b, p2, QF_WRITERS, w1);
    b.br(fin);
    b.switch_to(fin);
    b.call(k.fid("proc_wake_all"), vec![]);
    let nullf = b.null(k.file_t);
    b.store(nullf, fslot);
    let raw = b.bitcast_ptr(f, k.i8t);
    let fc = k.gop("file_cache");
    b.call(k.fid("mm_kmem_cache_free"), vec![fc, raw]);
    b.ret(Some(ci(k, 0)));

    // sys_read(fd, buf, n): dispatch on file kind. The character-device
    // path is the kernel's one indirect call, carrying a §4.8 signature
    // assertion.
    let mut b = FunctionBuilder::new(m, k.fid("sys_read"));
    let fd = b.param(0);
    let buf = b.param(1);
    let n = b.param(2);
    let f = b.call(k.fid("fs_get_file"), vec![fd]).unwrap();
    let fi = b.ptrtoint(f);
    let isz = b.icmp(IPred::Eq, fi, ci(k, 0));
    ret_if(&mut b, k, isz, EBADF);
    let kind = fld(&mut b, f, FF_KIND);
    let chrb = b.block("read.chr");
    let c2 = b.block("read.reg?");
    let regb = b.block("read.reg");
    let c3 = b.block("read.pipe?");
    let pipb = b.block("read.pipe");
    let badb = b.block("read.bad");
    let ischr = b.icmp(IPred::Eq, kind, ci(k, F_CHR));
    b.cond_br(ischr, chrb, c2);
    b.switch_to(chrb);
    let h = fld(&mut b, f, FF_CHR);
    let r = b.call_indirect(h, vec![buf, n]).unwrap();
    b.assert_call_signature();
    b.ret(Some(r));
    b.switch_to(c2);
    let isreg = b.icmp(IPred::Eq, kind, ci(k, F_REG));
    b.cond_br(isreg, regb, c3);
    b.switch_to(regb);
    let rr = b.call(k.fid("fs_file_read"), vec![f, buf, n]).unwrap();
    b.ret(Some(rr));
    b.switch_to(c3);
    let isp = b.icmp(IPred::Eq, kind, ci(k, F_PIPE_R));
    b.cond_br(isp, pipb, badb);
    b.switch_to(pipb);
    let p = fld(&mut b, f, FF_PIPE);
    let pr = b.call(k.fid("pipe_read"), vec![p, buf, n]).unwrap();
    b.ret(Some(pr));
    b.switch_to(badb);
    b.ret(Some(ci(k, EBADF)));

    // sys_write(fd, buf, n): fd 1 is the console port; otherwise files and
    // pipe write ends.
    let mut b = FunctionBuilder::new(m, k.fid("sys_write"));
    let fd = b.param(0);
    let buf = b.param(1);
    let n = b.param(2);
    let iscon = b.icmp(IPred::Eq, fd, ci(k, 1));
    let conb = b.block("write.con");
    let fileb = b.block("write.file");
    b.cond_br(iscon, conb, fileb);
    b.switch_to(conb);
    emit_loop(&mut b, k, n, |b, i| {
        let ua = b.add(buf, i);
        let up = b.inttoptr(ua, k.i8t);
        let byte = b.load(up);
        let wide = b.zext(byte, k.i64t);
        b.intrinsic(Intrinsic::IoWrite, vec![ci(k, PORT_CONSOLE), wide], None);
    });
    b.ret(Some(n));
    b.switch_to(fileb);
    let f = b.call(k.fid("fs_get_file"), vec![fd]).unwrap();
    let fi = b.ptrtoint(f);
    let isz = b.icmp(IPred::Eq, fi, ci(k, 0));
    ret_if(&mut b, k, isz, EBADF);
    let kind = fld(&mut b, f, FF_KIND);
    let regb = b.block("write.reg");
    let c2 = b.block("write.pipe?");
    let pipb = b.block("write.pipe");
    let badb = b.block("write.bad");
    let isreg = b.icmp(IPred::Eq, kind, ci(k, F_REG));
    b.cond_br(isreg, regb, c2);
    b.switch_to(regb);
    let wr = b.call(k.fid("fs_file_write"), vec![f, buf, n]).unwrap();
    b.ret(Some(wr));
    b.switch_to(c2);
    let isp = b.icmp(IPred::Eq, kind, ci(k, F_PIPE_W));
    b.cond_br(isp, pipb, badb);
    b.switch_to(pipb);
    let p = fld(&mut b, f, FF_PIPE);
    let pw = b.call(k.fid("pipe_write"), vec![p, buf, n]).unwrap();
    b.ret(Some(pw));
    b.switch_to(badb);
    b.ret(Some(ci(k, EBADF)));

    // sys_lseek(fd, off): absolute seek only.
    let mut b = FunctionBuilder::new(m, k.fid("sys_lseek"));
    let fd = b.param(0);
    let off = b.param(1);
    let f = b.call(k.fid("fs_get_file"), vec![fd]).unwrap();
    let fi = b.ptrtoint(f);
    let isz = b.icmp(IPred::Eq, fi, ci(k, 0));
    ret_if(&mut b, k, isz, EBADF);
    setfld(&mut b, f, FF_POS, off);
    b.ret(Some(off));

    // sys_pipe(fdsp): create both endpoints, write the fd pair to user
    // memory as two u64s.
    let mut b = FunctionBuilder::new(m, k.fid("sys_pipe"));
    let fdsp = b.param(0);
    let p = b.call(k.fid("pipe_create"), vec![]).unwrap();
    let fc = k.gop("file_cache");
    let raw_r = b.call(k.fid("mm_kmem_cache_alloc"), vec![fc]).unwrap();
    let rri = b.ptrtoint(raw_r);
    let rnull = b.icmp(IPred::Eq, rri, ci(k, 0));
    ret_if(&mut b, k, rnull, EBADF);
    let fr = b.bitcast_ptr(raw_r, k.file_t);
    setfld(&mut b, fr, FF_KIND, ci(k, F_PIPE_R));
    setfld(&mut b, fr, FF_INO, ci(k, 0));
    setfld(&mut b, fr, FF_POS, ci(k, 0));
    setfld(&mut b, fr, FF_REFCNT, ci(k, 1));
    setfld(&mut b, fr, FF_PIPE, p);
    let nb = b.null_byte_ptr();
    let nchr = b.bitcast_ptr(nb, k.chr_fn_t);
    setfld(&mut b, fr, FF_CHR, nchr);
    let rfd = b.call(k.fid("fs_alloc_fd"), vec![fr]).unwrap();
    let raw_w = b.call(k.fid("mm_kmem_cache_alloc"), vec![fc]).unwrap();
    let wri = b.ptrtoint(raw_w);
    let wnull = b.icmp(IPred::Eq, wri, ci(k, 0));
    ret_if(&mut b, k, wnull, EBADF);
    let fw = b.bitcast_ptr(raw_w, k.file_t);
    setfld(&mut b, fw, FF_KIND, ci(k, F_PIPE_W));
    setfld(&mut b, fw, FF_INO, ci(k, 0));
    setfld(&mut b, fw, FF_POS, ci(k, 0));
    setfld(&mut b, fw, FF_REFCNT, ci(k, 1));
    setfld(&mut b, fw, FF_PIPE, p);
    let nb2 = b.null_byte_ptr();
    let nchr2 = b.bitcast_ptr(nb2, k.chr_fn_t);
    setfld(&mut b, fw, FF_CHR, nchr2);
    let wfd = b.call(k.fid("fs_alloc_fd"), vec![fw]).unwrap();
    let up0 = b.inttoptr(fdsp, k.i64t);
    b.store(rfd, up0);
    let up1 = b.index_ptr(up0, ci(k, 1));
    b.store(wfd, up1);
    b.ret(Some(ci(k, 0)));

    // sys_execve(prog, hdr, hdrlen) → ELF loader.
    let mut b = FunctionBuilder::new(m, k.fid("sys_execve"));
    let prog = b.param(0);
    let hdr = b.param(1);
    let len = b.param(2);
    let r = b.call(k.fid(drv_elf), vec![prog, hdr, len]).unwrap();
    b.ret(Some(r));

    // sys_socket: always "socket 0".
    let mut b = FunctionBuilder::new(m, k.fid("sys_socket"));
    b.ret(Some(ci(k, 0)));

    // sys_setsockopt(sock, opt, n, src) → MCAST_MSFILTER path.
    let mut b = FunctionBuilder::new(m, k.fid("sys_setsockopt"));
    let n = b.param(2);
    let src = b.param(3);
    let r = b.call(k.fid(drv_msfilter), vec![n, src]).unwrap();
    b.ret(Some(r));

    // Packet-injection syscalls (stand-ins for the network RX paths).
    let mut b = FunctionBuilder::new(m, k.fid("sys_net_rx_igmp"));
    let n = b.param(0);
    let src = b.param(1);
    let r = b.call(k.fid(drv_igmp), vec![n, src]).unwrap();
    b.ret(Some(r));
    let mut b = FunctionBuilder::new(m, k.fid("sys_net_rx_bt"));
    let n = b.param(0);
    let src = b.param(1);
    let r = b.call(k.fid(drv_bt), vec![n, src]).unwrap();
    b.ret(Some(r));
    let mut b = FunctionBuilder::new(m, k.fid("sys_route_lookup"));
    let idx = b.param(0);
    let r = b.call(k.fid(drv_route), vec![idx]).unwrap();
    b.ret(Some(r));
}

// ---- boot -------------------------------------------------------------------

// ---- nested recovery domains (DESIGN.md §4.5) -------------------------------

/// Emits `dbg_order[dbg_order_n++] = v` (the tests read the array back to
/// assert unwind ordering).
fn dbg_record(b: &mut FunctionBuilder, k: &K, v: Operand) {
    let np = k.gop("dbg_order_n");
    let n = b.load(np);
    let slot = b.array_elem_ptr(k.gop("dbg_order"), n);
    b.store(v, slot);
    let n1 = b.add(n, ci(k, 1));
    b.store(n1, np);
}

/// Emits the shared 3-state health machine (DESIGN.md §4.8): the
/// degrade transition every wrapper's caught-poison path calls, the
/// probation-credit bookkeeping of a clean call, and the IRQ-driven
/// repair scan. Emitted once so the policy (strikes, backoff, credits)
/// lives in exactly one place.
fn define_health_machine(m: &mut Module, k: &K) {
    // health_degrade(hp, subsys): a poison was caught under `subsys`,
    // whose health slot is `hp` — a pointer computed with a *constant*
    // (statically safe, check-elided) GEP at the call site. That matters:
    // this path runs while a pool is poisoned, so a dynamic GEP here
    // would emit a bounds check the poison fails, and that unwind would
    // land back at the register point that called us — forever. Strike
    // the subsystem; at REPAIR_STRIKES it is permanently retired,
    // otherwise it degrades with an exponentially-backed-off repair due
    // tick (doubling the previous delay, capped) and joins the repair
    // manager's pending set. A probation-time re-poison also reports
    // verdict 1 through `sva.recover.probation`.
    let mut b = FunctionBuilder::new(m, k.fid("health_degrade"));
    let hp = b.param(0);
    let subsys = b.param(1);
    let word = b.load(hp);
    let state = b.and(word, ci(k, 0xf));
    let strikes = {
        let sh = b.lshr(word, ci(k, 4));
        b.and(sh, ci(k, 0xf))
    };
    let strikes1 = b.add(strikes, ci(k, 1));
    let out = b.icmp(IPred::UGe, strikes1, ci(k, REPAIR_STRIKES));
    let retire = b.block("hd.retire");
    let degrade = b.block("hd.degrade");
    b.cond_br(out, retire, degrade);
    b.switch_to(retire);
    let sbits = b.shl(strikes1, ci(k, 4));
    let retired_word = b.or(sbits, ci(k, H_RETIRED));
    // Health transitions are single-shot CAS against the word the
    // decision was computed from (DESIGN.md §4.9): on a multi-vCPU
    // machine a racing transition loses the exchange instead of
    // clobbering it; single-CPU the exchange always succeeds.
    b.cmpxchg(hp, word, retired_word);
    b.intrinsic(
        Intrinsic::RecoverProbation,
        vec![subsys, ci(k, 2)],
        Some(k.i64t),
    );
    b.ret(Some(ci(k, 0)));
    b.switch_to(degrade);
    let prevd = {
        let sh = b.lshr(word, ci(k, 16));
        b.and(sh, ci(k, 0xff))
    };
    let doubled = b.mul(prevd, ci(k, 2));
    let first = b.icmp(IPred::Eq, prevd, ci(k, 0));
    let seed = b.select(first, ci(k, REPAIR_DELAY_INIT), doubled);
    let delay = umin(&mut b, seed, ci(k, REPAIR_DELAY_CAP));
    let clock = b.load(k.gop("repair_clock"));
    let due_raw = b.add(clock, delay);
    let due = b.and(due_raw, ci(k, 0xff_ffff));
    let sbits = b.shl(strikes1, ci(k, 4));
    let w1 = b.or(sbits, ci(k, H_DEGRADED));
    let dbits = b.shl(delay, ci(k, 16));
    let w2 = b.or(w1, dbits);
    let ubits = b.shl(due, ci(k, 24));
    let w3 = b.or(w2, ubits);
    b.cmpxchg(hp, word, w3);
    let pend_p = k.gop("repair_pending");
    b.atomic_rmw(AtomicOp::Add, pend_p, ci(k, 1));
    let was_prob = b.icmp(IPred::Eq, state, ci(k, H_PROBATION));
    let report = b.block("hd.reprob");
    let done = b.block("hd.done");
    b.cond_br(was_prob, report, done);
    b.switch_to(report);
    b.intrinsic(
        Intrinsic::RecoverProbation,
        vec![subsys, ci(k, 1)],
        Some(k.i64t),
    );
    b.br(done);
    b.switch_to(done);
    b.ret(Some(ci(k, 0)));

    // health_probe_ok(hp, subsys): a wrapped call completed cleanly
    // (`hp` is the constant-GEP health-slot pointer, as above). Outside
    // probation this is a no-op; in probation it spends one credit, and
    // the last credit promotes the subsystem back to live (verdict 0),
    // clearing strikes and backoff.
    let mut b = FunctionBuilder::new(m, k.fid("health_probe_ok"));
    let hp = b.param(0);
    let subsys = b.param(1);
    let word = b.load(hp);
    let state = b.and(word, ci(k, 0xf));
    let in_prob = b.icmp(IPred::Eq, state, ci(k, H_PROBATION));
    let prob = b.block("hp.prob");
    let out = b.block("hp.out");
    b.cond_br(in_prob, prob, out);
    b.switch_to(prob);
    let credits = {
        let sh = b.lshr(word, ci(k, 8));
        b.and(sh, ci(k, 0xff))
    };
    let c1 = b.sub(credits, ci(k, 1));
    let clean = b.icmp(IPred::Eq, c1, ci(k, 0));
    let live = b.block("hp.live");
    let keep = b.block("hp.keep");
    b.cond_br(clean, live, keep);
    b.switch_to(live);
    b.cmpxchg(hp, word, ci(k, H_LIVE));
    b.intrinsic(
        Intrinsic::RecoverProbation,
        vec![subsys, ci(k, 0)],
        Some(k.i64t),
    );
    b.ret(Some(ci(k, 1)));
    b.switch_to(keep);
    let cleared = b.and(word, ci(k, !0xff00));
    let cbits = b.shl(c1, ci(k, 8));
    let neww = b.or(cleared, cbits);
    b.cmpxchg(hp, word, neww);
    b.ret(Some(ci(k, 0)));
    b.switch_to(out);
    b.ret(Some(ci(k, 0)));

    // repair_scan(): the repair manager, driven once per IRQ tick. The
    // pending-count guard keeps the clean-run cost to a load and a
    // compare; with repairs due, each degraded entry whose due tick has
    // passed gets its pools torn down and reinitialized
    // (`sva.recover.repair`) and moves to probation with fresh credits.
    // The sweep is unrolled over constant indices rather than looped: it
    // runs exactly when some subsystem's pools are poisoned, so every
    // health-slot access must use a statically-safe (check-elided) GEP —
    // a dynamic index would emit a bounds check the poison fails, and
    // that unwind would escape to the boot domain.
    let mut b = FunctionBuilder::new(m, k.fid("repair_scan"));
    let pend = b.load(k.gop("repair_pending"));
    let idle = b.icmp(IPred::Eq, pend, ci(k, 0));
    ret_if(&mut b, k, idle, 0);
    let clock = b.load(k.gop("repair_clock"));
    for i in 0..NSUBSYS {
        let hp = b.array_elem_ptr(k.gop("subsys_health"), ci(k, i));
        let word = b.load(hp);
        let state = b.and(word, ci(k, 0xf));
        let isdeg = b.icmp(IPred::Eq, state, ci(k, H_DEGRADED));
        let due = {
            let sh = b.lshr(word, ci(k, 24));
            b.and(sh, ci(k, 0xff_ffff))
        };
        let isdue = b.icmp(IPred::ULe, due, clock);
        let fix = b.and(isdeg, isdue);
        let rep = b.block(&format!("rs.repair{i}"));
        let skip = b.block(&format!("rs.skip{i}"));
        b.cond_br(fix, rep, skip);
        b.switch_to(rep);
        b.intrinsic(Intrinsic::RecoverRepair, vec![ci(k, i + 1)], Some(k.i64t));
        let strikes = {
            let sh = b.lshr(word, ci(k, 4));
            b.and(sh, ci(k, 0xf))
        };
        let delay = {
            let sh = b.lshr(word, ci(k, 16));
            b.and(sh, ci(k, 0xff))
        };
        let sbits = b.shl(strikes, ci(k, 4));
        let base = ci(k, H_PROBATION | (PROBATION_CREDITS << 8));
        let w1 = b.or(sbits, base);
        let dbits = b.shl(delay, ci(k, 16));
        let w2 = b.or(w1, dbits);
        b.cmpxchg(hp, word, w2);
        let pend_p = k.gop("repair_pending");
        b.atomic_rmw(AtomicOp::Sub, pend_p, ci(k, 1));
        b.br(skip);
        b.switch_to(skip);
    }
    b.ret(Some(ci(k, 0)));
}

/// Emits one health-gated recovery-domain wrapper (DESIGN.md §4.8):
/// `wrapper(args…)` fences with `-ENOSYS` while subsystem `subsys` is
/// degraded or retired, runs `handler` inside a fresh recovery domain
/// otherwise (crediting probation on a clean return), and on a caught
/// poison hands the transition to `health_degrade`.
fn emit_health_wrapper(
    m: &mut Module,
    k: &K,
    wrapper: &str,
    handler: &str,
    arity: usize,
    subsys: i64,
) {
    let mut b = FunctionBuilder::new(m, k.fid(wrapper));
    let params: Vec<Operand> = (0..arity).map(|i| b.param(i)).collect();
    let hidx = subsys - 1;
    let hp = b.array_elem_ptr(k.gop("subsys_health"), ci(k, hidx));
    let word = b.load(hp);
    let state = b.and(word, ci(k, 0xf));
    let deg = b.icmp(IPred::Eq, state, ci(k, H_DEGRADED));
    let ret3 = b.icmp(IPred::Eq, state, ci(k, H_RETIRED));
    let fenced = b.or(deg, ret3);
    ret_if(&mut b, k, fenced, ENOSYS);
    let code = b
        .intrinsic(
            Intrinsic::RecoverRegister,
            vec![ci(k, subsys)],
            Some(k.i64t),
        )
        .unwrap();
    let run = b.block("sysd.run");
    let caught = b.block("sysd.caught");
    let fresh = b.icmp(IPred::Eq, code, ci(k, 0));
    b.cond_br(fresh, run, caught);

    b.switch_to(run);
    let r = b.call(k.fid(handler), params).unwrap();
    b.call(k.fid("health_probe_ok"), vec![hp, ci(k, subsys)]);
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(r));

    b.switch_to(caught);
    let cnt_p = k.gop("recov_sysd_count");
    let cnt = b.load(cnt_p);
    let cnt1 = b.add(cnt, ci(k, 1));
    b.store(cnt1, cnt_p);
    b.store(code, k.gop("recov_last_code"));
    let poisoned = {
        let sh = b.lshr(code, ci(k, 8));
        b.and(sh, ci(k, 1))
    };
    let degrade = b.block("sysd.degrade");
    let fail = b.block("sysd.fail");
    let pc = b.icmp(IPred::Ne, poisoned, ci(k, 0));
    b.cond_br(pc, degrade, fail);
    b.switch_to(degrade);
    b.call(k.fid("health_degrade"), vec![hp, ci(k, subsys)]);
    b.br(fail);
    b.switch_to(fail);
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(ci(k, EFAULT)));
}

/// Emits the nested-domain machinery: the shared health state machine,
/// one `sysd_*` degradation wrapper per syscall, the per-driver `drvd_*`
/// wrappers, the `irqd_timer_tick` IRQ wrapper, and the `dbg_*`
/// recovery-semantics probes. All are defined unconditionally (the image
/// stays identical across configurations); only the
/// [`KernelOptions::nested`] boot path registers the wrappers.
fn define_sysd(m: &mut Module, k: &K) {
    define_health_machine(m, k);

    // sysd_<name>(args...): fail fast while degraded or retired,
    // otherwise run the real handler inside its own recovery domain. A
    // contained violation unwinds back here: the syscall fails with
    // -EFAULT, and a poisoned pool hands the subsystem to the 3-state
    // health machine (DESIGN.md §4.8) — degraded now, repaired into
    // probation once the backoff expires.
    for (idx, (_num, handler, arity)) in SYSCALLS.iter().enumerate() {
        emit_health_wrapper(m, k, &sysd_name(handler), handler, *arity, idx as i64 + 1);
    }
    // drvd_*: the per-driver domains (DESIGN.md §4.8). Same shape as the
    // syscall wrappers, but the domain — and therefore quarantine, poison
    // attribution, and health — belongs to the *driver*, so one bad
    // protocol handler degrades itself, not the compound syscall path
    // that dispatched into it.
    for (i, (wrapper, handler, arity)) in DRIVERS.iter().enumerate() {
        emit_health_wrapper(m, k, wrapper, handler, *arity, driver_subsys(i));
    }

    // irqd_timer_tick(vector): the IRQ dispatch path's own domain. While
    // degraded, ticks are dropped rather than risked. The repair
    // manager's clock advances *before* the IRQ path's own health gate,
    // so repair time keeps flowing even while the timer subsystem itself
    // is degraded — otherwise nothing could ever repair it.
    let mut b = FunctionBuilder::new(m, k.fid("irqd_timer_tick"));
    let vector = b.param(0);
    let clock_p = k.gop("repair_clock");
    let clock = b.load(clock_p);
    let clock1 = b.add(clock, ci(k, 1));
    b.store(clock1, clock_p);
    b.call(k.fid("repair_scan"), vec![]);
    let hidx = IRQ_SUBSYS - 1;
    let hp = b.array_elem_ptr(k.gop("subsys_health"), ci(k, hidx));
    let word = b.load(hp);
    let state = b.and(word, ci(k, 0xf));
    let deg = b.icmp(IPred::Eq, state, ci(k, H_DEGRADED));
    let ret3 = b.icmp(IPred::Eq, state, ci(k, H_RETIRED));
    let fenced = b.or(deg, ret3);
    ret_if(&mut b, k, fenced, 0);
    let code = b
        .intrinsic(
            Intrinsic::RecoverRegister,
            vec![ci(k, IRQ_SUBSYS)],
            Some(k.i64t),
        )
        .unwrap();
    let run = b.block("irqd.run");
    let caught = b.block("irqd.caught");
    let fresh = b.icmp(IPred::Eq, code, ci(k, 0));
    b.cond_br(fresh, run, caught);
    b.switch_to(run);
    let r = b.call(k.fid("sig_timer_tick"), vec![vector]).unwrap();
    b.call(k.fid("health_probe_ok"), vec![hp, ci(k, IRQ_SUBSYS)]);
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(r));
    b.switch_to(caught);
    let cnt_p = k.gop("recov_sysd_count");
    let cnt = b.load(cnt_p);
    let cnt1 = b.add(cnt, ci(k, 1));
    b.store(cnt1, cnt_p);
    b.store(code, k.gop("recov_last_code"));
    let poisoned = {
        let sh = b.lshr(code, ci(k, 8));
        b.and(sh, ci(k, 1))
    };
    let degrade = b.block("irqd.degrade");
    let fail = b.block("irqd.fail");
    let pc = b.icmp(IPred::Ne, poisoned, ci(k, 0));
    b.cond_br(pc, degrade, fail);
    b.switch_to(degrade);
    b.call(k.fid("health_degrade"), vec![hp, ci(k, IRQ_SUBSYS)]);
    b.br(fail);
    b.switch_to(fail);
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(ci(k, 0)));

    // dbg_unwind: an unwind with no live domain — the host test expects
    // `NoRecoveryContext` from kernel mode (and `Privilege` from user
    // mode, checked before any context lookup).
    let mut b = FunctionBuilder::new(m, k.fid("dbg_unwind"));
    b.intrinsic(Intrinsic::RecoverUnwind, vec![ci(k, 1)], None);
    b.ret(Some(ci(k, 0)));

    // dbg_nest: 3-deep domain stack; one unwind cascades LIFO through all
    // three register points, recording subsystem ids in dbg_order.
    let mut b = FunctionBuilder::new(m, k.fid("dbg_nest"));
    let ca = b
        .intrinsic(Intrinsic::RecoverRegister, vec![ci(k, 11)], Some(k.i64t))
        .unwrap();
    let a_hit = b.block("nest.a_hit");
    let a_cold = b.block("nest.a_cold");
    let fa = b.icmp(IPred::Ne, ca, ci(k, 0));
    b.cond_br(fa, a_hit, a_cold);
    b.switch_to(a_hit);
    dbg_record(&mut b, k, ci(k, 11));
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(ci(k, 0)));
    b.switch_to(a_cold);
    let cb = b
        .intrinsic(Intrinsic::RecoverRegister, vec![ci(k, 12)], Some(k.i64t))
        .unwrap();
    let b_hit = b.block("nest.b_hit");
    let b_cold = b.block("nest.b_cold");
    let fb = b.icmp(IPred::Ne, cb, ci(k, 0));
    b.cond_br(fb, b_hit, b_cold);
    b.switch_to(b_hit);
    dbg_record(&mut b, k, ci(k, 12));
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.intrinsic(Intrinsic::RecoverUnwind, vec![ci(k, 99)], None);
    b.ret(Some(ci(k, -3)));
    b.switch_to(b_cold);
    let cc = b
        .intrinsic(Intrinsic::RecoverRegister, vec![ci(k, 13)], Some(k.i64t))
        .unwrap();
    let c_hit = b.block("nest.c_hit");
    let c_cold = b.block("nest.c_cold");
    let fc = b.icmp(IPred::Ne, cc, ci(k, 0));
    b.cond_br(fc, c_hit, c_cold);
    b.switch_to(c_hit);
    dbg_record(&mut b, k, ci(k, 13));
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.intrinsic(Intrinsic::RecoverUnwind, vec![ci(k, 99)], None);
    b.ret(Some(ci(k, -2)));
    b.switch_to(c_cold);
    b.intrinsic(Intrinsic::RecoverUnwind, vec![ci(k, 99)], None);
    b.ret(Some(ci(k, -1)));

    // dbg_release_unwind: push two domains, pop the inner one, then
    // unwind — the *outer* domain must catch, never the released one.
    let mut b = FunctionBuilder::new(m, k.fid("dbg_release_unwind"));
    let ca = b
        .intrinsic(Intrinsic::RecoverRegister, vec![ci(k, 21)], Some(k.i64t))
        .unwrap();
    let a_hit = b.block("relw.a_hit");
    let a_cold = b.block("relw.a_cold");
    let fa = b.icmp(IPred::Ne, ca, ci(k, 0));
    b.cond_br(fa, a_hit, a_cold);
    b.switch_to(a_hit);
    dbg_record(&mut b, k, ci(k, 21));
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(ca));
    b.switch_to(a_cold);
    let cb = b
        .intrinsic(Intrinsic::RecoverRegister, vec![ci(k, 22)], Some(k.i64t))
        .unwrap();
    let b_hit = b.block("relw.b_hit");
    let b_cold = b.block("relw.b_cold");
    let fb = b.icmp(IPred::Ne, cb, ci(k, 0));
    b.cond_br(fb, b_hit, b_cold);
    b.switch_to(b_hit);
    dbg_record(&mut b, k, ci(k, 22));
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(ci(k, -5)));
    b.switch_to(b_cold);
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.intrinsic(Intrinsic::RecoverUnwind, vec![ci(k, 77)], None);
    b.ret(Some(ci(k, -6)));

    // dbg_wedge: the inner domain spins forever; only the fuel watchdog
    // (VmConfig::domain_fuel) can force-pop it and unwind to the outer
    // domain with a kind-7 resume code.
    let mut b = FunctionBuilder::new(m, k.fid("dbg_wedge"));
    let ca = b
        .intrinsic(Intrinsic::RecoverRegister, vec![ci(k, 31)], Some(k.i64t))
        .unwrap();
    let a_hit = b.block("wedge.a_hit");
    let a_cold = b.block("wedge.a_cold");
    let fa = b.icmp(IPred::Ne, ca, ci(k, 0));
    b.cond_br(fa, a_hit, a_cold);
    b.switch_to(a_hit);
    dbg_record(&mut b, k, ci(k, 31));
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(ca));
    b.switch_to(a_cold);
    let cb = b
        .intrinsic(Intrinsic::RecoverRegister, vec![ci(k, 32)], Some(k.i64t))
        .unwrap();
    let b_hit = b.block("wedge.b_hit");
    let spin = b.block("wedge.spin");
    let fb = b.icmp(IPred::Ne, cb, ci(k, 0));
    b.cond_br(fb, b_hit, spin);
    b.switch_to(b_hit);
    dbg_record(&mut b, k, ci(k, 32));
    b.intrinsic(Intrinsic::RecoverRelease, vec![], Some(k.i64t));
    b.ret(Some(ci(k, -7)));
    b.switch_to(spin);
    b.br(spin);
}

fn define_boot(m: &mut Module, k: &K, opts: &KernelOptions) {
    let mut b = FunctionBuilder::new(m, k.fid("start_kernel"));
    b.call(k.fid("mm_init"), vec![]);
    // The nested kernel dispatches every syscall and the timer IRQ
    // through its degradation wrappers (DESIGN.md §4.5); the flat kernel
    // registers the raw handlers.
    // `exit` never returns, so a domain pushed for it could never pop
    // (a slow leak on the domain stack) — and degrading exit to -ENOSYS
    // would make processes unkillable. It stays unwrapped, covered by
    // the boot domain like every syscall on the flat kernel.
    for (num, handler, _arity) in SYSCALLS {
        let target = if opts.nested && *num != nr::EXIT {
            k.fid(&sysd_name(handler))
        } else {
            k.fid(handler)
        };
        b.intrinsic(
            Intrinsic::RegisterSyscall,
            vec![ci(k, *num), Operand::Func(target)],
            None,
        );
    }
    let irq_target = if opts.nested {
        k.fid("irqd_timer_tick")
    } else {
        k.fid("sig_timer_tick")
    };
    b.intrinsic(
        Intrinsic::RegisterInterrupt,
        vec![ci(k, 0), Operand::Func(irq_target)],
        None,
    );
    if opts.recovery || opts.nested {
        // Violation-recovery domain (DESIGN.md §4.3): every kernel-mode
        // safety violation from here on unwinds back to this point with a
        // nonzero packed resume code instead of stopping the machine.
        let code = b
            .intrinsic(Intrinsic::RecoverRegister, vec![], Some(k.i64t))
            .unwrap();
        let boot = b.block("boot.cold");
        let recovered = b.block("recov.handle");
        let fresh = b.icmp(IPred::Eq, code, ci(k, 0));
        b.cond_br(fresh, boot, recovered);

        // A violation unwound here. Record it, release the quarantined
        // pool if it still has budget, then either resume the faulting
        // user thread with -EFAULT or halt cleanly.
        b.switch_to(recovered);
        let cnt_p = k.gop("recov_count");
        let cnt = b.load(cnt_p);
        let cnt1 = b.add(cnt, ci(k, 1));
        b.store(cnt1, cnt_p);
        b.store(code, k.gop("recov_last_code"));
        let poisoned = {
            let sh = b.lshr(code, ci(k, 8));
            b.and(sh, ci(k, 1))
        };
        let pool_p1 = {
            let sh = b.lshr(code, ci(k, 16));
            b.and(sh, ci(k, 0xff_ffff))
        };
        let ic_p1 = b.lshr(code, ci(k, 40));

        // Pool attributed and not poisoned: lift the quarantine so the
        // kernel keeps running on it (the budget still counts up).
        let rel = b.block("recov.release");
        let after_rel = b.block("recov.after_release");
        let has_pool = b.icmp(IPred::Ne, pool_p1, ci(k, 0));
        let ok = b.icmp(IPred::Eq, poisoned, ci(k, 0));
        let both = b.and(has_pool, ok);
        b.cond_br(both, rel, after_rel);
        b.switch_to(rel);
        let pool = b.sub(pool_p1, ci(k, 1));
        b.intrinsic(Intrinsic::RecoverRelease, vec![pool], Some(k.i64t));
        b.br(after_rel);

        b.switch_to(after_rel);
        // Past the budget the pool stays poisoned. The flat kernel halts
        // with a distinct code rather than spin on a dead subsystem; the
        // nested kernel reserves halting for violations with nothing to
        // resume — the pool stays fenced and the faulting thread gets
        // -EFAULT, so one dead subsystem never takes the machine.
        let halt_poison = b.block("recov.halt_poison");
        let try_resume = b.block("recov.resume");
        let poisonc = b.icmp(IPred::Ne, poisoned, ci(k, 0));
        b.cond_br(poisonc, halt_poison, try_resume);
        b.switch_to(halt_poison);
        if opts.nested {
            let p_iret = b.block("recov.poison_iret");
            let p_halt = b.block("recov.poison_halt");
            let has_ic = b.icmp(IPred::Ne, ic_p1, ci(k, 0));
            b.cond_br(has_ic, p_iret, p_halt);
            b.switch_to(p_iret);
            let icid = b.sub(ic_p1, ci(k, 1));
            b.intrinsic(Intrinsic::Iret, vec![icid, ci(k, EFAULT)], None);
            b.ret(Some(ci(k, 0)));
            b.switch_to(p_halt);
        }
        b.intrinsic(Intrinsic::Abort, vec![ci(k, 41)], None);
        b.ret(Some(ci(k, 41)));

        // The violation interrupted a trap: fail that syscall with
        // -EFAULT and resume the user thread. Otherwise there is nothing
        // to resume — halt cleanly.
        b.switch_to(try_resume);
        let iret_bb = b.block("recov.iret");
        let halt_bb = b.block("recov.halt");
        let has_ic = b.icmp(IPred::Ne, ic_p1, ci(k, 0));
        b.cond_br(has_ic, iret_bb, halt_bb);
        b.switch_to(iret_bb);
        let icid = b.sub(ic_p1, ci(k, 1));
        b.intrinsic(Intrinsic::Iret, vec![icid, ci(k, -14)], None);
        b.ret(Some(ci(k, 0)));
        b.switch_to(halt_bb);
        b.intrinsic(Intrinsic::Abort, vec![ci(k, 42)], None);
        b.ret(Some(ci(k, 42)));

        b.switch_to(boot);
    }
    // Process 0 runs the boot program named by the harness globals.
    let p0 = proc_at(&mut b, k, ci(k, 0));
    setfld(&mut b, p0, PF_STATE, ci(k, P_RUNNING));
    setfld(&mut b, p0, PF_UBRK, ci(k, UHEAP));
    setfld(&mut b, p0, PF_ASID, ci(k, 0));
    let prog = b.load(k.gop("boot_user_prog"));
    let arg = b.load(k.gop("boot_user_arg"));
    let ic = b
        .intrinsic(
            Intrinsic::IcontextNew,
            vec![ci(k, 0), ci(k, 0)],
            Some(k.i64t),
        )
        .unwrap();
    b.intrinsic(Intrinsic::IcontextSetEntry, vec![ic, prog, arg], None);
    setfld(&mut b, p0, PF_ICID, ic);
    b.intrinsic(Intrinsic::Iret, vec![ic, ci(k, 0)], None);
    b.ret(Some(ci(k, 0)));
}

// ---- userspace --------------------------------------------------------------

/// Emits a syscall from user code.
fn sc(b: &mut FunctionBuilder, k: &K, num: i64, args: Vec<Operand>) -> Operand {
    let n = ci(k, num);
    b.syscall(n, args)
}

/// Unpacks the `pack_arg` fields of the program argument.
fn unpack(b: &mut FunctionBuilder, k: &K, arg: Operand) -> (Operand, Operand, Operand) {
    let iters = b.and(arg, ci(k, 0xff_ffff));
    let sh = b.lshr(arg, ci(k, 24));
    let size = b.and(sh, ci(k, 0xff_ffff));
    let mode = b.lshr(arg, ci(k, 48));
    (iters, size, mode)
}

/// `if val != want { exit(code) }` — user-side assertion.
fn u_expect(b: &mut FunctionBuilder, k: &K, val: Operand, want: Operand, code: i64) {
    let okc = b.icmp(IPred::Eq, val, want);
    let ok = b.block("u.ok");
    let bad = b.block("u.bad");
    b.cond_br(okc, ok, bad);
    b.switch_to(bad);
    sc(b, k, nr::EXIT, vec![ci(k, code)]);
    b.ret(Some(ci(k, 0)));
    b.switch_to(ok);
}

/// Emits the tail `exit(code); ret` every user program ends with.
fn u_exit(b: &mut FunctionBuilder, k: &K, code: i64) {
    sc(b, k, nr::EXIT, vec![ci(k, code)]);
    b.ret(Some(ci(k, 0)));
}

fn define_user(m: &mut Module, k: &K) {
    // user_fill(addr, len, seed): deterministic byte pattern.
    let mut b = FunctionBuilder::new(m, k.fid("user_fill"));
    let addr = b.param(0);
    let len = b.param(1);
    let seed = b.param(2);
    emit_loop(&mut b, k, len, |b, i| {
        let t = b.mul(i, ci(k, 31));
        let v = b.add(seed, t);
        let byte = b.trunc(v, k.i8t);
        let pa = b.add(addr, i);
        let p = b.inttoptr(pa, k.i8t);
        b.store(byte, p);
    });
    b.ret(Some(ci(k, 0)));

    // user_verify(a, b, len): 0 iff the two ranges match.
    let mut b = FunctionBuilder::new(m, k.fid("user_verify"));
    let a = b.param(0);
    let bb = b.param(1);
    let len = b.param(2);
    let acc = b.alloca(k.i64t);
    b.store(ci(k, 0), acc);
    emit_loop(&mut b, k, len, |b, i| {
        let pa = b.add(a, i);
        let p1 = b.inttoptr(pa, k.i8t);
        let x = b.load(p1);
        let pb = b.add(bb, i);
        let p2 = b.inttoptr(pb, k.i8t);
        let y = b.load(p2);
        let xw = b.zext(x, k.i64t);
        let yw = b.zext(y, k.i64t);
        let d = b.xor(xw, yw);
        let cur = b.load(acc);
        let nv = b.or(cur, d);
        b.store(nv, acc);
    });
    let out = b.load(acc);
    b.ret(Some(out));

    // user_check_zero(addr, len): 0 iff the range is all zero bytes.
    let mut b = FunctionBuilder::new(m, k.fid("user_check_zero"));
    let addr = b.param(0);
    let len = b.param(1);
    let acc = b.alloca(k.i64t);
    b.store(ci(k, 0), acc);
    emit_loop(&mut b, k, len, |b, i| {
        let pa = b.add(addr, i);
        let p = b.inttoptr(pa, k.i8t);
        let x = b.load(p);
        let xw = b.zext(x, k.i64t);
        let cur = b.load(acc);
        let nv = b.or(cur, xw);
        b.store(nv, acc);
    });
    let out = b.load(acc);
    b.ret(Some(out));

    // user_hello: the canonical console smoke test.
    let mut b = FunctionBuilder::new(m, k.fid("user_hello"));
    let msg = b"hello from userspace\n";
    for (i, ch) in msg.iter().enumerate() {
        let p = b.inttoptr(ci(k, UBUF + i as i64), k.i8t);
        b.store(Operand::ConstInt(*ch as i64, k.i8t), p);
    }
    sc(
        &mut b,
        k,
        nr::WRITE,
        vec![ci(k, 1), ci(k, UBUF), ci(k, msg.len() as i64)],
    );
    u_exit(&mut b, k, 0);

    // user_getpid_loop(iters): pure trap traffic.
    let mut b = FunctionBuilder::new(m, k.fid("user_getpid_loop"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, _i| {
        sc(b, k, nr::GETPID, vec![]);
    });
    u_exit(&mut b, k, 0);

    // user_openclose_loop(iters): descriptor churn on one ramfs inode.
    let mut b = FunctionBuilder::new(m, k.fid("user_openclose_loop"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, _i| {
        let fd = sc(b, k, nr::OPEN, vec![ci(k, 0x10), ci(k, 0)]);
        sc(b, k, nr::CLOSE, vec![fd]);
    });
    u_exit(&mut b, k, 0);

    // user_pipe_loop(iters, size): write/read/verify through one pipe.
    let mut b = FunctionBuilder::new(m, k.fid("user_pipe_loop"));
    let arg = b.param(0);
    let (iters, size, _) = unpack(&mut b, k, arg);
    let defsz = b.icmp(IPred::Eq, size, ci(k, 0));
    let sz0 = b.select(defsz, ci(k, 64), size);
    let csz = umin(&mut b, sz0, ci(k, 256));
    sc(&mut b, k, nr::PIPE, vec![ci(k, FDBUF)]);
    let rp = b.inttoptr(ci(k, FDBUF), k.i64t);
    let rfd = b.load(rp);
    let wp = b.inttoptr(ci(k, FDBUF + 8), k.i64t);
    let wfd = b.load(wp);
    emit_loop(&mut b, k, iters, |b, i| {
        b.call(k.fid("user_fill"), vec![ci(k, USRC), csz, i]);
        let w = sc(b, k, nr::WRITE, vec![wfd, ci(k, USRC), csz]);
        u_expect(b, k, w, csz, 11);
        let r = sc(b, k, nr::READ, vec![rfd, ci(k, UDST), csz]);
        u_expect(b, k, r, csz, 12);
        let v = b
            .call(k.fid("user_verify"), vec![ci(k, USRC), ci(k, UDST), csz])
            .unwrap();
        u_expect(b, k, v, ci(k, 0), 13);
    });
    u_exit(&mut b, k, 0);

    // user_fork_loop(iters): fork/exit/waitpid round trips.
    let mut b = FunctionBuilder::new(m, k.fid("user_fork_loop"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, _i| {
        let pid = sc(b, k, nr::FORK, vec![]);
        let isch = b.icmp(IPred::Eq, pid, ci(k, 0));
        let child = b.block("fl.child");
        let parent = b.block("fl.parent");
        b.cond_br(isch, child, parent);
        b.switch_to(child);
        sc(b, k, nr::EXIT, vec![ci(k, 0)]);
        b.ret(Some(ci(k, 0)));
        b.switch_to(parent);
        let rc = sc(b, k, nr::WAITPID, vec![pid]);
        u_expect(b, k, rc, ci(k, 0), 21);
    });
    u_exit(&mut b, k, 0);

    // user_signal_demo: install a handler, signal self; the handler exits
    // with 3 before control ever returns here.
    let mut b = FunctionBuilder::new(m, k.fid("user_signal_demo"));
    let h = b.ptrtoint(Operand::Func(k.fid("user_sig_handler")));
    sc(&mut b, k, nr::SIGACTION, vec![ci(k, 2), h]);
    let pid = sc(&mut b, k, nr::GETPID, vec![]);
    sc(&mut b, k, nr::KILL, vec![pid, ci(k, 2)]);
    u_exit(&mut b, k, 1);

    // user_sig_handler(sig): exit(3).
    let mut b = FunctionBuilder::new(m, k.fid("user_sig_handler"));
    u_exit(&mut b, k, 3);

    // user_child_sig(sig): benign handler — just return to the
    // interrupted code.
    let mut b = FunctionBuilder::new(m, k.fid("user_child_sig"));
    b.ret(Some(ci(k, 0)));

    // user_legit_net: in-bounds traffic through every exploit surface.
    let mut b = FunctionBuilder::new(m, k.fid("user_legit_net"));
    b.call(k.fid("user_fill"), vec![ci(k, USRC), ci(k, 64), ci(k, 7)]);
    sc(&mut b, k, nr::SOCKET, vec![]);
    sc(
        &mut b,
        k,
        nr::SETSOCKOPT,
        vec![ci(k, 0), ci(k, 0), ci(k, 2), ci(k, USRC)],
    );
    sc(&mut b, k, nr::NET_RX_IGMP, vec![ci(k, 3), ci(k, USRC)]);
    sc(&mut b, k, nr::ROUTE_LOOKUP, vec![ci(k, 5)]);
    u_exit(&mut b, k, 0);

    // user_exploit_msfilter: n*8 overflows 32 bits → 8-byte kmalloc,
    // 4 KiB copy.
    let mut b = FunctionBuilder::new(m, k.fid("user_exploit_msfilter"));
    sc(
        &mut b,
        k,
        nr::SETSOCKOPT,
        vec![ci(k, 0), ci(k, 0), ci(k, 0x2000_0001), ci(k, USRC)],
    );
    u_exit(&mut b, k, 1);

    // user_exploit_igmp: 260 groups, allocation masked to 4.
    let mut b = FunctionBuilder::new(m, k.fid("user_exploit_igmp"));
    sc(&mut b, k, nr::NET_RX_IGMP, vec![ci(k, 260), ci(k, USRC)]);
    u_exit(&mut b, k, 1);

    // user_exploit_bt: 80 bytes into the 64-byte scratch global.
    let mut b = FunctionBuilder::new(m, k.fid("user_exploit_bt"));
    b.call(k.fid("user_fill"), vec![ci(k, USRC), ci(k, 80), ci(k, 5)]);
    sc(&mut b, k, nr::NET_RX_BT, vec![ci(k, 80), ci(k, USRC)]);
    u_exit(&mut b, k, 1);

    // user_exploit_route: Fig. 2 — index 65536 of a 32-entry table.
    let mut b = FunctionBuilder::new(m, k.fid("user_exploit_route"));
    sc(&mut b, k, nr::ROUTE_LOOKUP, vec![ci(k, 65536)]);
    u_exit(&mut b, k, 1);

    // user_exploit_elf: 1 MiB "header" copy via lib_copy_from_user.
    let mut b = FunctionBuilder::new(m, k.fid("user_exploit_elf"));
    sc(
        &mut b,
        k,
        nr::EXECVE,
        vec![ci(k, 0), ci(k, UBUF), ci(k, 0x10_0000)],
    );
    u_exit(&mut b, k, 1);
    define_user2(m, k);
}

fn define_user2(m: &mut Module, k: &K) {
    // user_devzero(iters, size): /dev/zero must actually deliver zeros.
    let mut b = FunctionBuilder::new(m, k.fid("user_devzero"));
    let arg = b.param(0);
    let (it0, size, _) = unpack(&mut b, k, arg);
    let z = b.icmp(IPred::Eq, it0, ci(k, 0));
    let iters = b.select(z, ci(k, 1), it0);
    let fd = sc(&mut b, k, nr::OPEN, vec![ci(k, 0), ci(k, 0)]);
    let neg = b.icmp(IPred::SLt, fd, ci(k, 0));
    let bad = b.block("dz.bad");
    let ok = b.block("dz.ok");
    b.cond_br(neg, bad, ok);
    b.switch_to(bad);
    u_exit(&mut b, k, 31);
    b.switch_to(ok);
    emit_loop(&mut b, k, iters, |b, _i| {
        b.call(k.fid("user_fill"), vec![ci(k, UDST), size, ci(k, 9)]);
        let r = sc(b, k, nr::READ, vec![fd, ci(k, UDST), size]);
        u_expect(b, k, r, size, 32);
        let zz = b
            .call(k.fid("user_check_zero"), vec![ci(k, UDST), size])
            .unwrap();
        u_expect(b, k, zz, ci(k, 0), 33);
    });
    sc(&mut b, k, nr::CLOSE, vec![fd]);
    u_exit(&mut b, k, 0);

    // user_fileverify(iters, size): write/readback/compare across the
    // ramfs inodes.
    let mut b = FunctionBuilder::new(m, k.fid("user_fileverify"));
    let arg = b.param(0);
    let (iters, size, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, it| {
        let ino = b.urem(it, ci(k, NINODE));
        let path = b.add(ci(k, 0x10), ino);
        let fd = sc(b, k, nr::OPEN, vec![path, ci(k, 0)]);
        let neg = b.icmp(IPred::SLt, fd, ci(k, 0));
        let badb = b.block("fv.bad");
        let okb = b.block("fv.ok");
        b.cond_br(neg, badb, okb);
        b.switch_to(badb);
        u_exit(b, k, 40);
        b.switch_to(okb);
        let t7 = b.mul(it, ci(k, 7));
        let seed = b.add(t7, ci(k, 1));
        b.call(k.fid("user_fill"), vec![ci(k, USRC), size, seed]);
        let w = sc(b, k, nr::WRITE, vec![fd, ci(k, USRC), size]);
        u_expect(b, k, w, size, 41);
        sc(b, k, nr::LSEEK, vec![fd, ci(k, 0)]);
        let r = sc(b, k, nr::READ, vec![fd, ci(k, UDST), size]);
        u_expect(b, k, r, size, 42);
        let v = b
            .call(k.fid("user_verify"), vec![ci(k, USRC), ci(k, UDST), size])
            .unwrap();
        u_expect(b, k, v, ci(k, 0), 43);
        sc(b, k, nr::CLOSE, vec![fd]);
    });
    u_exit(&mut b, k, 0);

    // user_multichild: two sequential children print 'a' and 'b', the
    // parent prints 'p' — console must read "abp".
    let mut b = FunctionBuilder::new(m, k.fid("user_multichild"));
    for (ch, code) in [(b'a', 0i64), (b'b', 0)] {
        let pid = sc(&mut b, k, nr::FORK, vec![]);
        let isch = b.icmp(IPred::Eq, pid, ci(k, 0));
        let child = b.block("mc.child");
        let parent = b.block("mc.parent");
        b.cond_br(isch, child, parent);
        b.switch_to(child);
        let p = b.inttoptr(ci(k, UBUF), k.i8t);
        b.store(Operand::ConstInt(ch as i64, k.i8t), p);
        sc(&mut b, k, nr::WRITE, vec![ci(k, 1), ci(k, UBUF), ci(k, 1)]);
        u_exit(&mut b, k, code);
        b.switch_to(parent);
        let rc = sc(&mut b, k, nr::WAITPID, vec![pid]);
        u_expect(&mut b, k, rc, ci(k, code), 45);
    }
    let p = b.inttoptr(ci(k, UBUF), k.i8t);
    b.store(Operand::ConstInt(b'p' as i64, k.i8t), p);
    sc(&mut b, k, nr::WRITE, vec![ci(k, 1), ci(k, UBUF), ci(k, 1)]);
    u_exit(&mut b, k, 0);

    // user_errorpaths: every error return the VFS hands out.
    let mut b = FunctionBuilder::new(m, k.fid("user_errorpaths"));
    let r = sc(&mut b, k, nr::READ, vec![ci(k, 99), ci(k, UBUF), ci(k, 1)]);
    u_expect(&mut b, k, r, ci(k, EBADF), 51);
    let c = sc(&mut b, k, nr::CLOSE, vec![ci(k, 42)]);
    u_expect(&mut b, k, c, ci(k, EBADF), 52);
    let o = sc(&mut b, k, nr::OPEN, vec![ci(k, 0x10 + 99), ci(k, 0)]);
    u_expect(&mut b, k, o, ci(k, ENOENT), 53);
    let w = sc(&mut b, k, nr::WAITPID, vec![ci(k, 3)]);
    u_expect(&mut b, k, w, ci(k, ENOENT), 54);
    u_exit(&mut b, k, 0);

    // user_unwind_attack: user mode calls sva.recover.unwind directly.
    // The VM must reject it as a privilege violation *before* looking for
    // a recovery context (DESIGN.md §4.5) — the boot test asserts the
    // error kind.
    let mut b = FunctionBuilder::new(m, k.fid("user_unwind_attack"));
    b.intrinsic(Intrinsic::RecoverUnwind, vec![ci(k, 1)], None);
    u_exit(&mut b, k, 61);

    // user_repair_attack: user mode calls sva.recover.repair directly.
    // Same contract as the unwind attack — the VM's privilege gate must
    // fire before any health or pool state is touched (DESIGN.md §4.8).
    let mut b = FunctionBuilder::new(m, k.fid("user_repair_attack"));
    b.intrinsic(Intrinsic::RecoverRepair, vec![ci(k, 1)], Some(k.i64t));
    u_exit(&mut b, k, 62);

    // user_getrusage_loop(iters).
    let mut b = FunctionBuilder::new(m, k.fid("user_getrusage_loop"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, _i| {
        let r = sc(b, k, nr::GETRUSAGE, vec![ci(k, UHEAP)]);
        u_expect(b, k, r, ci(k, 0), 55);
    });
    u_exit(&mut b, k, 0);

    // user_killchild: a handled signal interrupts a blocking pipe read.
    let mut b = FunctionBuilder::new(m, k.fid("user_killchild"));
    sc(&mut b, k, nr::PIPE, vec![ci(k, FDBUF)]);
    let rp = b.inttoptr(ci(k, FDBUF), k.i64t);
    let rfd = b.load(rp);
    let pid = sc(&mut b, k, nr::FORK, vec![]);
    let isch = b.icmp(IPred::Eq, pid, ci(k, 0));
    let child = b.block("kc.child");
    let parent = b.block("kc.parent");
    b.cond_br(isch, child, parent);
    b.switch_to(child);
    let h = b.ptrtoint(Operand::Func(k.fid("user_child_sig")));
    sc(&mut b, k, nr::SIGACTION, vec![ci(k, 2), h]);
    let r = sc(&mut b, k, nr::READ, vec![rfd, ci(k, UBUF), ci(k, 8)]);
    u_expect(&mut b, k, r, ci(k, EINTR), 41);
    u_exit(&mut b, k, 42);
    b.switch_to(parent);
    sc(&mut b, k, nr::YIELD, vec![]);
    sc(&mut b, k, nr::KILL, vec![pid, ci(k, 2)]);
    let rc = sc(&mut b, k, nr::WAITPID, vec![pid]);
    u_expect(&mut b, k, rc, ci(k, 42), 61);
    u_exit(&mut b, k, 0);

    // user_killwriter: an unhandled signal interrupts a blocking pipe
    // write; exactly the completed first write's bytes flow through.
    let mut b = FunctionBuilder::new(m, k.fid("user_killwriter"));
    b.call(
        k.fid("user_fill"),
        vec![ci(k, USRC), ci(k, PIPE_SZ), ci(k, 3)],
    );
    sc(&mut b, k, nr::PIPE, vec![ci(k, FDBUF)]);
    let rp = b.inttoptr(ci(k, FDBUF), k.i64t);
    let rfd = b.load(rp);
    let wp = b.inttoptr(ci(k, FDBUF + 8), k.i64t);
    let wfd = b.load(wp);
    let pid = sc(&mut b, k, nr::FORK, vec![]);
    let isch = b.icmp(IPred::Eq, pid, ci(k, 0));
    let child = b.block("kw.child");
    let parent = b.block("kw.parent");
    b.cond_br(isch, child, parent);
    b.switch_to(child);
    let w1 = sc(&mut b, k, nr::WRITE, vec![wfd, ci(k, USRC), ci(k, PIPE_SZ)]);
    u_expect(&mut b, k, w1, ci(k, PIPE_SZ), 71);
    let w2 = sc(&mut b, k, nr::WRITE, vec![wfd, ci(k, USRC), ci(k, PIPE_SZ)]);
    u_expect(&mut b, k, w2, ci(k, EINTR), 72);
    u_exit(&mut b, k, 0);
    b.switch_to(parent);
    sc(&mut b, k, nr::YIELD, vec![]);
    sc(&mut b, k, nr::KILL, vec![pid, ci(k, 2)]);
    let r = sc(&mut b, k, nr::READ, vec![rfd, ci(k, UDST), ci(k, PIPE_SZ)]);
    u_expect(&mut b, k, r, ci(k, PIPE_SZ), 73);
    let v = b
        .call(
            k.fid("user_verify"),
            vec![ci(k, USRC), ci(k, UDST), ci(k, PIPE_SZ)],
        )
        .unwrap();
    u_expect(&mut b, k, v, ci(k, 0), 74);
    let rc = sc(&mut b, k, nr::WAITPID, vec![pid]);
    u_expect(&mut b, k, rc, ci(k, 0), 75);
    u_exit(&mut b, k, 0);

    // user_fileread_bw(iters, size): repeated full-file reads.
    let mut b = FunctionBuilder::new(m, k.fid("user_fileread_bw"));
    let arg = b.param(0);
    let (iters, size, _) = unpack(&mut b, k, arg);
    let fd = sc(&mut b, k, nr::OPEN, vec![ci(k, 0x13), ci(k, 0)]);
    b.call(k.fid("user_fill"), vec![ci(k, USRC), size, ci(k, 1)]);
    sc(&mut b, k, nr::WRITE, vec![fd, ci(k, USRC), size]);
    emit_loop(&mut b, k, iters, |b, _i| {
        sc(b, k, nr::LSEEK, vec![fd, ci(k, 0)]);
        let r = sc(b, k, nr::READ, vec![fd, ci(k, UDST), size]);
        u_expect(b, k, r, size, 81);
    });
    sc(&mut b, k, nr::CLOSE, vec![fd]);
    u_exit(&mut b, k, 0);

    // user_scp(iters, size): file-to-file copy in 512-byte chunks, then a
    // readback verify.
    let mut b = FunctionBuilder::new(m, k.fid("user_scp"));
    let arg = b.param(0);
    let (iters, size, _) = unpack(&mut b, k, arg);
    let sfd = sc(&mut b, k, nr::OPEN, vec![ci(k, 0x11), ci(k, 0)]);
    let dfd = sc(&mut b, k, nr::OPEN, vec![ci(k, 0x12), ci(k, 0)]);
    b.call(k.fid("user_fill"), vec![ci(k, USRC), size, ci(k, 2)]);
    let w = sc(&mut b, k, nr::WRITE, vec![sfd, ci(k, USRC), size]);
    u_expect(&mut b, k, w, size, 90);
    emit_loop(&mut b, k, iters, |b, _i| {
        sc(b, k, nr::LSEEK, vec![sfd, ci(k, 0)]);
        sc(b, k, nr::LSEEK, vec![dfd, ci(k, 0)]);
        let head = b.block("scp.head");
        let cpy = b.block("scp.copy");
        let done = b.block("scp.done");
        b.br(head);
        b.switch_to(head);
        let r = sc(b, k, nr::READ, vec![sfd, ci(k, UTMP), ci(k, 512)]);
        let more = b.icmp(IPred::SGt, r, ci(k, 0));
        b.cond_br(more, cpy, done);
        b.switch_to(cpy);
        sc(b, k, nr::WRITE, vec![dfd, ci(k, UTMP), r]);
        b.br(head);
        b.switch_to(done);
    });
    sc(&mut b, k, nr::LSEEK, vec![dfd, ci(k, 0)]);
    let r = sc(&mut b, k, nr::READ, vec![dfd, ci(k, UDST), size]);
    u_expect(&mut b, k, r, size, 91);
    let v = b
        .call(k.fid("user_verify"), vec![ci(k, USRC), ci(k, UDST), size])
        .unwrap();
    u_expect(&mut b, k, v, ci(k, 0), 92);
    u_exit(&mut b, k, 0);

    // user_thttpd(iters, size, mode): static-file server inner loop; mode 1
    // forks a worker per request like thttpd's CGI path.
    let mut b = FunctionBuilder::new(m, k.fid("user_thttpd"));
    let arg = b.param(0);
    let (iters, size, mode) = unpack(&mut b, k, arg);
    b.call(k.fid("user_fill"), vec![ci(k, USRC), size, ci(k, 4)]);
    let isfork = b.icmp(IPred::Eq, mode, ci(k, 1));
    let forkm = b.block("ht.fork");
    let loopm = b.block("ht.loop");
    b.cond_br(isfork, forkm, loopm);
    b.switch_to(loopm);
    let fd = sc(&mut b, k, nr::OPEN, vec![ci(k, 0x14), ci(k, 0)]);
    emit_loop(&mut b, k, iters, |b, it| {
        b.call(k.fid("user_fill"), vec![ci(k, USRC), size, it]);
        sc(b, k, nr::LSEEK, vec![fd, ci(k, 0)]);
        let w = sc(b, k, nr::WRITE, vec![fd, ci(k, USRC), size]);
        u_expect(b, k, w, size, 95);
        sc(b, k, nr::LSEEK, vec![fd, ci(k, 0)]);
        let r = sc(b, k, nr::READ, vec![fd, ci(k, UDST), size]);
        u_expect(b, k, r, size, 96);
        let v = b
            .call(k.fid("user_verify"), vec![ci(k, USRC), ci(k, UDST), size])
            .unwrap();
        u_expect(b, k, v, ci(k, 0), 97);
    });
    u_exit(&mut b, k, 0);
    b.switch_to(forkm);
    emit_loop(&mut b, k, iters, |b, _it| {
        let pid = sc(b, k, nr::FORK, vec![]);
        let isch = b.icmp(IPred::Eq, pid, ci(k, 0));
        let child = b.block("ht.child");
        let parent = b.block("ht.parent");
        b.cond_br(isch, child, parent);
        b.switch_to(child);
        let cfd = sc(b, k, nr::OPEN, vec![ci(k, 0x14), ci(k, 0)]);
        let w = sc(b, k, nr::WRITE, vec![cfd, ci(k, USRC), size]);
        u_expect(b, k, w, size, 98);
        sc(b, k, nr::CLOSE, vec![cfd]);
        sc(b, k, nr::EXIT, vec![ci(k, 0)]);
        b.ret(Some(ci(k, 0)));
        b.switch_to(parent);
        let rc = sc(b, k, nr::WAITPID, vec![pid]);
        u_expect(b, k, rc, ci(k, 0), 99);
    });
    u_exit(&mut b, k, 0);

    // user_pipe_bw(iters, size): bulk pipe throughput, child producer →
    // parent consumer.
    let mut b = FunctionBuilder::new(m, k.fid("user_pipe_bw"));
    let arg = b.param(0);
    let (iters, size, _) = unpack(&mut b, k, arg);
    let total = b.mul(iters, size);
    sc(&mut b, k, nr::PIPE, vec![ci(k, FDBUF)]);
    let rp = b.inttoptr(ci(k, FDBUF), k.i64t);
    let rfd = b.load(rp);
    let wp = b.inttoptr(ci(k, FDBUF + 8), k.i64t);
    let wfd = b.load(wp);
    b.call(
        k.fid("user_fill"),
        vec![ci(k, USRC), ci(k, PIPE_SZ), ci(k, 6)],
    );
    let pid = sc(&mut b, k, nr::FORK, vec![]);
    let isch = b.icmp(IPred::Eq, pid, ci(k, 0));
    let child = b.block("bw.child");
    let parent = b.block("bw.parent");
    b.cond_br(isch, child, parent);
    b.switch_to(child);
    {
        let sent = b.alloca(k.i64t);
        b.store(ci(k, 0), sent);
        let head = b.block("bw.whead");
        let body = b.block("bw.wbody");
        let done = b.block("bw.wdone");
        b.br(head);
        b.switch_to(head);
        let s = b.load(sent);
        let more = b.icmp(IPred::ULt, s, total);
        b.cond_br(more, body, done);
        b.switch_to(body);
        let left = b.sub(total, s);
        let chunk = umin(&mut b, left, ci(k, PIPE_SZ));
        let w = sc(&mut b, k, nr::WRITE, vec![wfd, ci(k, USRC), chunk]);
        let neg = b.icmp(IPred::SLt, w, ci(k, 0));
        let badw = b.block("bw.badw");
        let okw = b.block("bw.okw");
        b.cond_br(neg, badw, okw);
        b.switch_to(badw);
        u_exit(&mut b, k, 85);
        b.switch_to(okw);
        let s1 = b.add(s, w);
        b.store(s1, sent);
        b.br(head);
        b.switch_to(done);
        u_exit(&mut b, k, 0);
    }
    b.switch_to(parent);
    {
        let got = b.alloca(k.i64t);
        b.store(ci(k, 0), got);
        let head = b.block("bw.rhead");
        let body = b.block("bw.rbody");
        let done = b.block("bw.rdone");
        b.br(head);
        b.switch_to(head);
        let g = b.load(got);
        let more = b.icmp(IPred::ULt, g, total);
        b.cond_br(more, body, done);
        b.switch_to(body);
        let r = sc(&mut b, k, nr::READ, vec![rfd, ci(k, UDST), ci(k, PIPE_SZ)]);
        let bad = b.icmp(IPred::SLe, r, ci(k, 0));
        let badr = b.block("bw.badr");
        let okr = b.block("bw.okr");
        b.cond_br(bad, badr, okr);
        b.switch_to(badr);
        u_exit(&mut b, k, 86);
        b.switch_to(okr);
        let g1 = b.add(g, r);
        b.store(g1, got);
        b.br(head);
        b.switch_to(done);
        let rc = sc(&mut b, k, nr::WAITPID, vec![pid]);
        u_expect(&mut b, k, rc, ci(k, 0), 87);
        u_exit(&mut b, k, 0);
    }

    // user_forkexec_loop(iters): fork + execve into user_exec_child.
    let mut b = FunctionBuilder::new(m, k.fid("user_forkexec_loop"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, _i| {
        let pid = sc(b, k, nr::FORK, vec![]);
        let isch = b.icmp(IPred::Eq, pid, ci(k, 0));
        let child = b.block("fe.child");
        let parent = b.block("fe.parent");
        b.cond_br(isch, child, parent);
        b.switch_to(child);
        sc(b, k, nr::EXECVE, vec![ci(k, 0), ci(k, UBUF), ci(k, 32)]);
        sc(b, k, nr::EXIT, vec![ci(k, 8)]);
        b.ret(Some(ci(k, 0)));
        b.switch_to(parent);
        let rc = sc(b, k, nr::WAITPID, vec![pid]);
        u_expect(b, k, rc, ci(k, 7), 77);
    });
    u_exit(&mut b, k, 0);

    // user_exec_child: the execve target.
    let mut b = FunctionBuilder::new(m, k.fid("user_exec_child"));
    u_exit(&mut b, k, 7);

    define_user_bench(m, k);
}

// Benchmark-only userspace programs (Table 5 / Table 7 workloads).
fn define_user_bench(m: &mut Module, k: &K) {
    // user_bzip2(iters): compute-bound byte transform (RLE-ish mixing).
    let mut b = FunctionBuilder::new(m, k.fid("user_bzip2"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    b.call(
        k.fid("user_fill"),
        vec![ci(k, USRC), ci(k, 4096), ci(k, 13)],
    );
    emit_loop(&mut b, k, iters, |b, it| {
        emit_loop(b, k, ci(k, 4096), |b, i| {
            let pa = b.add(ci(k, USRC), i);
            let p1 = b.inttoptr(pa, k.i8t);
            let x = b.load(p1);
            let xw = b.zext(x, k.i64t);
            let t = b.mul(xw, ci(k, 31));
            let t2 = b.add(t, it);
            let byte = b.trunc(t2, k.i8t);
            let pb = b.add(ci(k, UDST), i);
            let p2 = b.inttoptr(pb, k.i8t);
            b.store(byte, p2);
        });
    });
    u_exit(&mut b, k, 0);

    // user_lame(iters): compute-bound "filter" over 2 KiB frames.
    let mut b = FunctionBuilder::new(m, k.fid("user_lame"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    b.call(
        k.fid("user_fill"),
        vec![ci(k, USRC), ci(k, 2048), ci(k, 17)],
    );
    emit_loop(&mut b, k, iters, |b, it| {
        emit_loop(b, k, ci(k, 2048), |b, i| {
            let pa = b.add(ci(k, USRC), i);
            let p1 = b.inttoptr(pa, k.i8t);
            let x = b.load(p1);
            let xw = b.zext(x, k.i64t);
            let t = b.shl(xw, ci(k, 3));
            let t2 = b.xor(t, it);
            let t3 = b.add(t2, xw);
            let byte = b.trunc(t3, k.i8t);
            let pb = b.add(ci(k, UDST), i);
            let p2 = b.inttoptr(pb, k.i8t);
            b.store(byte, p2);
        });
    });
    u_exit(&mut b, k, 0);

    // user_gcc(iters): mixed compute + descriptor traffic.
    let mut b = FunctionBuilder::new(m, k.fid("user_gcc"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    b.call(
        k.fid("user_fill"),
        vec![ci(k, USRC), ci(k, 1024), ci(k, 19)],
    );
    emit_loop(&mut b, k, iters, |b, it| {
        let fd = sc(b, k, nr::OPEN, vec![ci(k, 0x16), ci(k, 0)]);
        emit_loop(b, k, ci(k, 1024), |b, i| {
            let pa = b.add(ci(k, USRC), i);
            let p1 = b.inttoptr(pa, k.i8t);
            let x = b.load(p1);
            let xw = b.zext(x, k.i64t);
            let t = b.mul(xw, ci(k, 7));
            let t2 = b.add(t, it);
            let byte = b.trunc(t2, k.i8t);
            b.store(byte, p1);
        });
        sc(b, k, nr::CLOSE, vec![fd]);
    });
    u_exit(&mut b, k, 0);

    // user_ldd(iters): syscall-bound — pure getpid traffic.
    let mut b = FunctionBuilder::new(m, k.fid("user_ldd"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, _i| {
        sc(b, k, nr::GETPID, vec![]);
    });
    u_exit(&mut b, k, 0);

    // Table 7 latency loops.
    let mut b = FunctionBuilder::new(m, k.fid("user_gettimeofday_loop"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, _i| {
        sc(b, k, nr::GETTIMEOFDAY, vec![ci(k, UHEAP)]);
    });
    u_exit(&mut b, k, 0);

    let mut b = FunctionBuilder::new(m, k.fid("user_sbrk_loop"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    emit_loop(&mut b, k, iters, |b, _i| {
        sc(b, k, nr::SBRK, vec![ci(k, 16)]);
    });
    u_exit(&mut b, k, 0);

    let mut b = FunctionBuilder::new(m, k.fid("user_sigaction_loop"));
    let arg = b.param(0);
    let (iters, _, _) = unpack(&mut b, k, arg);
    let h = b.ptrtoint(Operand::Func(k.fid("user_child_sig")));
    emit_loop(&mut b, k, iters, |b, _i| {
        sc(b, k, nr::SIGACTION, vec![ci(k, 3), h]);
    });
    u_exit(&mut b, k, 0);

    let mut b = FunctionBuilder::new(m, k.fid("user_write_loop"));
    let arg = b.param(0);
    let (iters, size, _) = unpack(&mut b, k, arg);
    let fd = sc(&mut b, k, nr::OPEN, vec![ci(k, 0x15), ci(k, 0)]);
    b.call(k.fid("user_fill"), vec![ci(k, USRC), size, ci(k, 8)]);
    emit_loop(&mut b, k, iters, |b, _i| {
        sc(b, k, nr::LSEEK, vec![fd, ci(k, 0)]);
        let w = sc(b, k, nr::WRITE, vec![fd, ci(k, USRC), size]);
        u_expect(b, k, w, size, 89);
    });
    sc(&mut b, k, nr::CLOSE, vec![fd]);
    u_exit(&mut b, k, 0);
}
