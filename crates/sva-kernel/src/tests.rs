//! Kernel smoke tests: IR validity, boot, syscalls, processes, exploits.

use sva_vm::{KernelKind, VmError, VmExit};

use crate::harness::{boot_user, make_vm, pack_arg, raw_kernel, safe_kernel_module};
use crate::{AS_TESTED_EXCLUSIONS, ENTIRE_KERNEL_EXCLUSIONS};

#[test]
fn kernel_ir_is_well_formed() {
    let m = raw_kernel();
    let errs = sva_ir::verify::verify_module(&m);
    assert!(errs.is_empty(), "{:#?}", &errs[..errs.len().min(10)]);
    assert!(m.funcs.len() > 60, "kernel has {} functions", m.funcs.len());
}

#[test]
fn kernel_compiles_and_verifies_as_tested() {
    let m = safe_kernel_module(AS_TESTED_EXCLUSIONS);
    assert!(m.pool_annotations.is_some());
}

#[test]
fn kernel_compiles_and_verifies_entire() {
    let m = safe_kernel_module(ENTIRE_KERNEL_EXCLUSIONS);
    assert!(m.pool_annotations.is_some());
}

#[test]
fn boots_hello_on_all_kernels() {
    for kind in KernelKind::ALL {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_hello", 0).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}");
        assert_eq!(vm.console_string(), "hello from userspace\n", "{kind:?}");
    }
}

#[test]
fn getpid_loop_runs() {
    let mut vm = make_vm(KernelKind::SvaSafe);
    let exit = boot_user(&mut vm, "user_getpid_loop", pack_arg(50, 0, 0)).unwrap();
    assert_eq!(exit, VmExit::Halted(0));
    assert!(vm.stats().traps >= 51);
}

#[test]
fn fork_wait_works() {
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_fork_loop", pack_arg(3, 0, 0))
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}");
        assert!(vm.stats().context_switches >= 1, "{kind:?}");
    }
}

#[test]
fn pipes_and_blocking_work() {
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_pipe_bw", pack_arg(2, 9000, 0))
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}");
    }
}

#[test]
fn forkexec_works() {
    let mut vm = make_vm(KernelKind::Native);
    let exit = boot_user(&mut vm, "user_forkexec_loop", pack_arg(2, 0, 0)).unwrap();
    assert_eq!(exit, VmExit::Halted(0));
}

#[test]
fn signal_delivery_works() {
    let mut vm = make_vm(KernelKind::Native);
    let exit = boot_user(&mut vm, "user_signal_demo", 0).unwrap();
    assert_eq!(exit, VmExit::Halted(3), "handler must record signal 3");
}

#[test]
fn legit_net_paths_pass_under_checks() {
    let mut vm = make_vm(KernelKind::SvaSafe);
    let exit = boot_user(&mut vm, "user_legit_net", 0).unwrap();
    assert_eq!(
        exit,
        VmExit::Halted(0),
        "legit net use must not trip checks"
    );
}

#[test]
fn exploits_caught_under_sva_safe() {
    for prog in [
        "user_exploit_msfilter",
        "user_exploit_igmp",
        "user_exploit_bt",
        "user_exploit_route",
    ] {
        let mut vm = make_vm(KernelKind::SvaSafe);
        let r = boot_user(&mut vm, prog, 0);
        match r {
            Err(VmError::Safety(e)) => {
                // Either §4.5 check is a valid SVA catch: the undersized
                // object trips the bounds check on the indexing or the
                // load-store check on the first out-of-object store.
                assert!(
                    matches!(
                        e.kind,
                        sva_rt::CheckKind::Bounds | sva_rt::CheckKind::LoadStore
                    ),
                    "{prog}: {e}"
                );
            }
            other => panic!("{prog}: expected safety violation, got {other:?}"),
        }
    }
}

#[test]
fn exploits_succeed_on_native() {
    // Without SVA the same attacks corrupt memory silently (or crash the
    // machine) — either way, no *detection*.
    for prog in ["user_exploit_igmp", "user_exploit_bt", "user_exploit_route"] {
        let mut vm = make_vm(KernelKind::Native);
        let r = boot_user(&mut vm, prog, 0);
        assert!(
            !matches!(r, Err(VmError::Safety(_))),
            "{prog}: native kernel cannot detect the exploit"
        );
    }
}

#[test]
fn table4_port_report_is_populated() {
    let m = raw_kernel();
    let report = crate::port_report::port_report(&m);
    assert!(report.allocator_decls >= 4);
    let core = report.rows.get("core (syscalls)").expect("core row");
    assert!(core.sva_os_calls > 0, "{report:?}");
    let rendered = crate::port_report::render(&report);
    assert!(rendered.contains("Total"));
}

#[test]
fn chr_dispatch_through_fops_table() {
    // /dev/zero reads go through the indirect f_ops dispatch with a §4.8
    // signature assertion; it must work on every configuration.
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_devzero", pack_arg(0, 256, 0))
            .unwrap_or_else(|e| panic!("{kind:?}: {e}\nbt: {:?}", vm.backtrace()));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}");
    }
}

#[test]
fn sig_assertion_recorded_and_resolved() {
    use sva_analysis::{analyze, AnalysisConfig};
    let m = raw_kernel();
    // In the entire-kernel analysis the chr handlers are known and the
    // asserted site resolves to exactly the two table entries.
    let cfg = AnalysisConfig::kernel_excluding(crate::ENTIRE_KERNEL_EXCLUSIONS);
    let r = analyze(&m, &cfg);
    let f = m.func_by_name("sys_read").unwrap();
    let site = r
        .callsites
        .iter()
        .find(|((cf, _), info)| *cf == f && info.sig_asserted)
        .map(|(_, info)| info.clone())
        .expect("asserted callsite in sys_read");
    let names: Vec<&str> = site
        .targets
        .iter()
        .map(|t| m.func(*t).name.as_str())
        .collect();
    assert!(names.contains(&"chr_zero_read"), "{names:?}");
    assert!(names.contains(&"chr_null_read"), "{names:?}");
}

#[test]
fn file_contents_round_trip_through_grow() {
    // 8 chunks x 1 KiB: forces fs_grow to reallocate via vmalloc several
    // times; the user program verifies every byte.
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_fileverify", pack_arg(8, 1024, 0))
            .unwrap_or_else(|e| panic!("{kind:?}: {e}\nbt: {:?}", vm.backtrace()));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}: contents corrupted");
    }
}

#[test]
fn multiple_children_schedule_deterministically() {
    let mut base = None;
    for kind in KernelKind::ALL {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_multichild", 0)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}\nbt: {:?}", vm.backtrace()));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}");
        let console = vm.console_string();
        // Each child writes its letter before the parent's 'p'.
        assert_eq!(console.len(), 3, "{kind:?}: {console:?}");
        assert!(console.ends_with('p'), "{kind:?}: {console:?}");
        assert!(
            console.contains('a') && console.contains('b'),
            "{kind:?}: {console:?}"
        );
        match &base {
            None => base = Some(console),
            Some(b) => assert_eq!(&console, b, "{kind:?}: schedule must be deterministic"),
        }
    }
}

#[test]
fn transformed_kernel_boots_and_behaves_identically() {
    // §4.8 transforms (cloning + devirtualization) must preserve behavior
    // end to end: compile the kernel with them enabled, verify, boot.
    use sva_analysis::AnalysisConfig;
    use sva_core::compile::{compile, CompileOptions};
    use sva_core::verifier::verify_and_insert_checks;
    use sva_vm::{Vm, VmConfig};

    let m = raw_kernel();
    let cfg = AnalysisConfig::kernel_excluding(AS_TESTED_EXCLUSIONS);
    let opts = CompileOptions {
        clone_functions: true,
        devirtualize: true,
        ..Default::default()
    };
    let compiled = compile(m, &cfg, &opts);
    assert!(compiled.report.devirtualized >= 1 || compiled.report.clones >= 1);
    let verified = verify_and_insert_checks(compiled.module).expect("verifies");
    let mut vm = Vm::new(
        verified.module,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    let exit = boot_user(&mut vm, "user_devzero", pack_arg(0, 128, 0))
        .unwrap_or_else(|e| panic!("{e}\nbt: {:?}", vm.backtrace()));
    assert_eq!(exit, VmExit::Halted(0));
    // And the hello workload produces the same console output.
    let mut vm2 = Vm::new(
        safe_kernel_module(AS_TESTED_EXCLUSIONS),
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    boot_user(&mut vm2, "user_hello", 0).unwrap();
    let m2 = {
        let m = raw_kernel();
        let c = compile(m, &cfg, &opts);
        verify_and_insert_checks(c.module).unwrap().module
    };
    let mut vm3 = Vm::new(
        m2,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    boot_user(&mut vm3, "user_hello", 0).unwrap();
    assert_eq!(vm2.console_string(), vm3.console_string());
}

#[test]
fn th_heap_pools_use_dedicated_caches_only() {
    // The §4.4 invariant that makes dangling pointers harmless: memory of
    // a type-homogeneous pool is never handed to another pool. Our slab
    // pages are per-cache, so the invariant reduces to: every TH *heap*
    // metapool must be fed exclusively by a dedicated kmem_cache (like
    // pipe_cache), never by the shared kmalloc size classes (which stay
    // non-TH and therefore carry load-store checks that catch stale
    // pointers instead).
    use sva_analysis::{analyze, AnalysisConfig};
    let m = raw_kernel();
    for exclusions in [AS_TESTED_EXCLUSIONS, ENTIRE_KERNEL_EXCLUSIONS] {
        let cfg = AnalysisConfig::kernel_excluding(exclusions);
        let r = analyze(&m, &cfg);
        for rep in r.graph.reps() {
            if !r.graph.is_th(rep) || !r.graph.flags(rep).heap {
                continue;
            }
            let pools = r.graph.pools(rep);
            assert!(
                !pools.iter().any(|p| p.starts_with("kmalloc")),
                "TH heap pool fed by shared kmalloc pages: {pools:?}"
            );
        }
    }
}

#[test]
fn timer_interrupts_tick_through_checked_kernel() {
    // Hardware interrupts traverse the same interrupt-context machinery as
    // traps; the handler is analyzed, instrumented kernel code under
    // sva-safe.
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        let mut vm = make_vm(kind);
        for _ in 0..5 {
            vm.raise_interrupt(0);
        }
        let exit = boot_user(&mut vm, "user_getpid_loop", pack_arg(20, 0, 0))
            .unwrap_or_else(|e| panic!("{kind:?}: {e}\nbt: {:?}", vm.backtrace()));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}");
        assert_eq!(vm.stats().interrupts, 5, "{kind:?}");
        assert_eq!(vm.read_global_u64("time_ticks").unwrap(), 5, "{kind:?}");
    }
}

#[test]
fn kernel_error_paths_return_errors_not_crashes() {
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_errorpaths", 0)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}\nbt: {:?}", vm.backtrace()));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}: some misuse succeeded");
    }
}

#[test]
fn kill_interrupts_blocked_pipe_reader() {
    // Cross-process signal delivery against a reader blocked inside the
    // kernel: the sleep must be interruptible (-EINTR), the handler must
    // run on the return to user mode, and the parent must reap the child.
    // The whole dance runs under full checks on SvaSafe.
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_killchild", 0)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}\nbt: {:?}", vm.backtrace()));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}");
    }
}

#[test]
fn kill_interrupts_blocked_pipe_writer() {
    // The write-side twin: a writer blocked on a full pipe must also be
    // interruptible, and exactly one buffer's worth of data (the completed
    // first write) must remain in the pipe.
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        let mut vm = make_vm(kind);
        let exit = boot_user(&mut vm, "user_killwriter", 0)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}\nbt: {:?}", vm.backtrace()));
        assert_eq!(exit, VmExit::Halted(0), "{kind:?}");
    }
}
