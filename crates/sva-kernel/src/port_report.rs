//! Porting-effort report — the analog of the paper's Table 4.
//!
//! The paper counts source lines changed per kernel section for three kinds
//! of porting work: SVA-OS usage, allocator changes, and analysis
//! improvements. Our kernel is *born* ported, so the analog is the static
//! count of porting artifacts per subsystem: SVA-OS operation call sites,
//! allocator declarations/uses, and analysis annotations (signature
//! assertions, `pseudo_alloc` registrations).

use std::collections::BTreeMap;

use sva_ir::{Callee, Inst, Intrinsic, Module};

/// Per-subsystem porting counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PortRow {
    /// Functions in the subsystem.
    pub functions: u32,
    /// Total instructions (the "LOC" analog).
    pub instructions: u32,
    /// SVA-OS operation call sites (`llva.*`/`sva.*`, excluding `pchk`).
    pub sva_os_calls: u32,
    /// Allocator call sites (alloc/dealloc functions).
    pub allocator_calls: u32,
    /// Analysis annotations (`!sigassert` + `pseudo_alloc`).
    pub analysis_annotations: u32,
}

/// The full report: subsystem name → counts.
#[derive(Clone, Debug, Default)]
pub struct PortReport {
    /// Rows keyed by subsystem prefix.
    pub rows: BTreeMap<String, PortRow>,
    /// Allocator declarations in the module (the §4.4 porting step).
    pub allocator_decls: u32,
}

/// Subsystem of a function, by name prefix.
pub fn subsystem(name: &str) -> &'static str {
    for (p, label) in [
        ("mm_", "mm (memory)"),
        ("lib_", "lib (utility)"),
        ("chr_", "chr (drivers)"),
        ("fs_", "fs (vfs)"),
        ("pipe_", "fs (vfs)"),
        ("net_", "net (protocols)"),
        ("sys_net", "net (protocols)"),
        ("sys_setsockopt", "net (protocols)"),
        ("sys_route", "net (protocols)"),
        ("sys_", "core (syscalls)"),
        ("proc_", "core (syscalls)"),
        ("sig_", "core (syscalls)"),
        ("elf_", "fs (vfs)"),
        ("user_", "userspace"),
        ("boot_", "core (boot)"),
        ("start_kernel", "core (boot)"),
    ] {
        if name.starts_with(p) {
            return label;
        }
    }
    "other"
}

/// Computes the porting report for a kernel module.
pub fn port_report(m: &Module) -> PortReport {
    let mut report = PortReport {
        rows: BTreeMap::new(),
        allocator_decls: m.allocators.len() as u32,
    };
    let alloc_fns: Vec<String> = m
        .allocators
        .iter()
        .flat_map(|a| {
            [
                Some(a.alloc_fn.clone()),
                a.dealloc_fn.clone(),
                a.pool_create_fn.clone(),
                a.size_fn.clone(),
            ]
            .into_iter()
            .flatten()
        })
        .collect();
    for f in &m.funcs {
        let row = report
            .rows
            .entry(subsystem(&f.name).to_string())
            .or_default();
        row.functions += 1;
        row.instructions += f.insts.len() as u32;
        row.analysis_annotations += f.sig_asserted_calls.len() as u32;
        for inst in &f.insts {
            if let Inst::Call { callee, .. } = inst {
                match callee {
                    Callee::Intrinsic(Intrinsic::PseudoAlloc) => {
                        row.analysis_annotations += 1;
                        row.sva_os_calls += 1;
                    }
                    Callee::Intrinsic(i) if !i.verifier_only() => {
                        row.sva_os_calls += 1;
                    }
                    Callee::Direct(t) if alloc_fns.contains(&m.func(*t).name) => {
                        row.allocator_calls += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    report
}

/// Renders the report as an aligned text table (Table 4 analog).
pub fn render(report: &PortReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>6} {:>8} {:>8} {:>8} {:>10}\n",
        "Section", "Funcs", "Insts", "SVA-OS", "Alloc", "Analysis"
    ));
    let mut total = PortRow::default();
    for (name, r) in &report.rows {
        out.push_str(&format!(
            "{:<20} {:>6} {:>8} {:>8} {:>8} {:>10}\n",
            name,
            r.functions,
            r.instructions,
            r.sva_os_calls,
            r.allocator_calls,
            r.analysis_annotations
        ));
        total.functions += r.functions;
        total.instructions += r.instructions;
        total.sva_os_calls += r.sva_os_calls;
        total.allocator_calls += r.allocator_calls;
        total.analysis_annotations += r.analysis_annotations;
    }
    out.push_str(&format!(
        "{:<20} {:>6} {:>8} {:>8} {:>8} {:>10}\n",
        "Total",
        total.functions,
        total.instructions,
        total.sva_os_calls,
        total.allocator_calls,
        total.analysis_annotations
    ));
    out.push_str(&format!(
        "Allocator declarations: {}\n",
        report.allocator_decls
    ));
    out
}
