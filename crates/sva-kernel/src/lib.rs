//! # A miniature commodity kernel, written in SVA IR
//!
//! This crate plays the role Linux 2.4.22 played in the paper (§6): a
//! kernel *ported to SVA* — no inline assembly, every privileged operation
//! through SVA-OS, allocators declared to the safety compiler. It is
//! emitted through [`sva_ir::build::FunctionBuilder`], so the pointer
//! analysis, the safety-checking compiler and the verifier all operate on
//! genuine kernel-shaped bytecode.
//!
//! Subsystems (function name prefixes mirror the paper's Table 4 rows):
//!
//! | prefix | subsystem |
//! |---|---|
//! | `boot_`, `start_kernel` | architecture-independent core boot |
//! | `mm_` | bootmem, page allocator, `kmem_cache` slab, `kmalloc`, `vmalloc` |
//! | `proc_`, `sys_` | processes, scheduler, system calls |
//! | `sig_` | signals |
//! | `fs_` | ramfs VFS, file table |
//! | `pipe_` | pipes |
//! | `net_` | sockets, the vulnerable protocol handlers |
//! | `elf_` | the program loader |
//! | `lib_` | utility library (user-copy routines) |
//! | `chr_` | character-driver stand-in |
//! | `user_` | userspace programs (never analyzed as kernel code) |
//!
//! The paper's "as tested" kernel excluded the memory subsystem, two
//! utility libraries and the character drivers from the safety-checking
//! compiler (§7.1); [`AS_TESTED_EXCLUSIONS`] reproduces that split and is
//! what makes the ELF exploit slip through (§7.2).

pub mod build;
pub mod harness;
pub mod port_report;
pub mod postmortem;

pub use build::{
    build_kernel, driver_subsys, health_state, health_state_name, health_strikes, subsys_name,
    sysd_name, KernelOptions, DRIVERS, H_DEGRADED, H_LIVE, H_PROBATION, H_RETIRED, IRQ_SUBSYS,
    NSUBSYS, PROBATION_CREDITS, REPAIR_DELAY_CAP, REPAIR_DELAY_INIT, REPAIR_STRIKES, SYSCALLS,
};
pub use harness::{boot_user, make_vm, make_vm_traced, safe_kernel_module, KernelImage};
pub use port_report::{port_report, PortReport};
pub use postmortem::{check_reproduction, replay, Replay, ReplayError, ReplayExit};

/// Function-name prefixes excluded from the safety-checking compiler in the
/// paper's "as tested" configuration (§7.1: `mm/mm.o`, `lib/lib.a`, and the
/// character drivers), plus userspace programs which are never kernel code.
pub const AS_TESTED_EXCLUSIONS: &[&str] = &["mm_", "lib_", "chr_", "user_"];

/// Exclusions for the "entire kernel" configuration of Table 9: only
/// userspace programs stay out.
pub const ENTIRE_KERNEL_EXCLUSIONS: &[&str] = &["user_"];

/// System call numbers (Linux 2.4-flavoured).
pub mod nr {
    /// `exit(code)`.
    pub const EXIT: i64 = 1;
    /// `fork()`.
    pub const FORK: i64 = 2;
    /// `read(fd, buf, n)`.
    pub const READ: i64 = 3;
    /// `write(fd, buf, n)`.
    pub const WRITE: i64 = 4;
    /// `open(path, flags)`.
    pub const OPEN: i64 = 5;
    /// `close(fd)`.
    pub const CLOSE: i64 = 6;
    /// `waitpid(pid)`.
    pub const WAITPID: i64 = 7;
    /// `execve(path)`.
    pub const EXECVE: i64 = 11;
    /// `lseek(fd, off)`.
    pub const LSEEK: i64 = 19;
    /// `getpid()`.
    pub const GETPID: i64 = 20;
    /// `kill(pid, sig)`.
    pub const KILL: i64 = 37;
    /// `pipe(fds)`.
    pub const PIPE: i64 = 42;
    /// `sbrk(incr)`.
    pub const SBRK: i64 = 45;
    /// `sigaction(sig, handler)`.
    pub const SIGACTION: i64 = 67;
    /// `getrusage(ru)`.
    pub const GETRUSAGE: i64 = 77;
    /// `gettimeofday(tv)`.
    pub const GETTIMEOFDAY: i64 = 78;
    /// `yield()`.
    pub const YIELD: i64 = 158;
    /// `socket()`.
    pub const SOCKET: i64 = 200;
    /// `setsockopt(sock, optname, optval, optlen)` — the MCAST_MSFILTER
    /// integer-overflow surface (exploit 1).
    pub const SETSOCKOPT: i64 = 201;
    /// Deliver a raw IGMP packet (exploit 2).
    pub const NET_RX_IGMP: i64 = 202;
    /// Deliver a raw Bluetooth packet (exploit 4).
    pub const NET_RX_BT: i64 = 203;
    /// Route lookup by message type (exploit 3, the Fig. 2 pattern).
    pub const ROUTE_LOOKUP: i64 = 204;
}

#[cfg(test)]
mod tests;
