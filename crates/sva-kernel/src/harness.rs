//! Convenience harness: build → safety-compile → verify → load → boot.
//!
//! Building and safety-compiling the kernel takes real work, so compiled
//! images are cached per exclusion list and cloned into each VM.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use sva_analysis::AnalysisConfig;
use sva_core::compile::{compile, CompileOptions};
use sva_core::verifier::verify_and_insert_checks;
use sva_ir::Module;
use sva_vm::{KernelKind, Tracer, Vm, VmConfig, VmError, VmExit, USER_BASE};

use crate::build::{build_kernel, KernelOptions};
use crate::AS_TESTED_EXCLUSIONS;

/// Start of the user brk heap (above the big I/O buffer).
pub const USER_HEAP_BASE: u64 = USER_BASE + 0x28000;

/// Re-export of the user-program argument packer.
pub use crate::build::user::pack_arg;

/// A loaded kernel image: the module plus how it was prepared.
#[derive(Clone, Debug)]
pub struct KernelImage {
    /// The (possibly instrumented) kernel module.
    pub module: Module,
    /// Exclusion prefixes used for the safety compiler (empty = raw build).
    pub exclusions: Vec<String>,
}

fn cache() -> &'static Mutex<HashMap<String, Module>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Module>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The raw (uninstrumented) kernel module, cached.
pub fn raw_kernel() -> Module {
    let mut c = cache().lock().unwrap();
    c.entry("raw".to_string())
        .or_insert_with(|| build_kernel(&KernelOptions::default()))
        .clone()
}

/// The safety-compiled, verifier-checked kernel for the given exclusion
/// list (use [`AS_TESTED_EXCLUSIONS`] for the paper's configuration).
pub fn safe_kernel_module(exclusions: &[&str]) -> Module {
    safe_kernel_module_with(exclusions, &KernelOptions::default())
}

/// Like [`safe_kernel_module`] with explicit build options (e.g. the
/// recovery boot path).
pub fn safe_kernel_module_with(exclusions: &[&str], opts: &KernelOptions) -> Module {
    let key = format!(
        "safe:{}:{}:{}",
        match (opts.nested, opts.recovery) {
            (true, _) => "nested",
            (false, true) => "recov",
            (false, false) => "plain",
        },
        opts.patch_salt,
        exclusions.join(","),
    );
    let mut c = cache().lock().unwrap();
    c.entry(key)
        .or_insert_with(|| {
            let m = build_kernel(opts);
            let cfg = AnalysisConfig::kernel_excluding(exclusions);
            let compiled = compile(m, &cfg, &CompileOptions::default());
            let verified = verify_and_insert_checks(compiled.module)
                .expect("kernel fails metapool verification");
            verified.module
        })
        .clone()
}

/// Builds a VM running the kernel under the given configuration; the
/// `SvaSafe` configuration uses the paper's "as tested" exclusions.
pub fn make_vm(kind: KernelKind) -> Vm {
    make_vm_with(kind, AS_TESTED_EXCLUSIONS)
}

/// Like [`make_vm`] with explicit safety-compiler exclusions.
pub fn make_vm_with(kind: KernelKind, exclusions: &[&str]) -> Vm {
    let module = if kind.checks() {
        safe_kernel_module(exclusions)
    } else {
        raw_kernel()
    };
    Vm::new(
        module,
        VmConfig {
            kind,
            ..Default::default()
        },
    )
    .expect("kernel loads")
}

/// Like [`make_vm`] with a full [`VmConfig`] — opt level, hot profile,
/// fast-path/singleton toggles. The kernel image is chosen by `cfg.kind`
/// with the paper's "as tested" exclusions.
pub fn make_vm_cfg(cfg: VmConfig) -> Vm {
    let module = if cfg.kind.checks() {
        safe_kernel_module(AS_TESTED_EXCLUSIONS)
    } else {
        raw_kernel()
    };
    Vm::new(module, cfg).expect("kernel loads")
}

/// Like [`make_vm`] with an attached tracer (e.g. `RingTracer`). Uses the
/// paper's "as tested" exclusions, same as [`make_vm`].
pub fn make_vm_traced<T: Tracer>(kind: KernelKind, tracer: T) -> Vm<T> {
    let module = if kind.checks() {
        safe_kernel_module(AS_TESTED_EXCLUSIONS)
    } else {
        raw_kernel()
    };
    Vm::with_tracer(
        module,
        VmConfig {
            kind,
            ..Default::default()
        },
        tracer,
    )
    .expect("kernel loads")
}

/// Builds a safety-checked VM whose kernel registers a violation-recovery
/// domain at boot (DESIGN.md §4.3), under the given VM configuration.
/// `cfg.kind` is forced to `SvaSafe` — recovery is only meaningful with
/// checks live.
pub fn make_vm_recovering(mut cfg: VmConfig) -> Vm {
    cfg.kind = KernelKind::SvaSafe;
    let module = safe_kernel_module_with(
        AS_TESTED_EXCLUSIONS,
        &KernelOptions {
            recovery: true,
            ..Default::default()
        },
    );
    Vm::new(module, cfg).expect("kernel loads")
}

/// Like [`make_vm_recovering`] with an attached tracer.
pub fn make_vm_recovering_traced<T: Tracer>(mut cfg: VmConfig, tracer: T) -> Vm<T> {
    cfg.kind = KernelKind::SvaSafe;
    let module = safe_kernel_module_with(
        AS_TESTED_EXCLUSIONS,
        &KernelOptions {
            recovery: true,
            ..Default::default()
        },
    );
    Vm::with_tracer(module, cfg, tracer).expect("kernel loads")
}

/// Builds a safety-checked VM whose kernel runs every syscall and the IRQ
/// dispatch path inside its own nested recovery domain, on top of the
/// boot domain (DESIGN.md §4.5). `cfg.kind` is forced to `SvaSafe`.
pub fn make_vm_nested(mut cfg: VmConfig) -> Vm {
    cfg.kind = KernelKind::SvaSafe;
    let module = safe_kernel_module_with(
        AS_TESTED_EXCLUSIONS,
        &KernelOptions {
            recovery: true,
            nested: true,
            ..Default::default()
        },
    );
    Vm::new(module, cfg).expect("kernel loads")
}

/// Like [`make_vm_nested`] but modelling a *compatible rebuild*: the
/// kernel gains one never-called pad function appended at module end
/// (`KernelOptions::patch_salt`), so the machine has a different code
/// identity with an identical surface prefix — the build the snapshot
/// migration code-adoption policy (DESIGN.md §4.10) is meant to accept.
pub fn make_vm_nested_patched(mut cfg: VmConfig, salt: u64) -> Vm {
    cfg.kind = KernelKind::SvaSafe;
    let module = safe_kernel_module_with(
        AS_TESTED_EXCLUSIONS,
        &KernelOptions {
            recovery: true,
            nested: true,
            patch_salt: salt,
        },
    );
    Vm::new(module, cfg).expect("kernel loads")
}

/// Like [`make_vm_nested`] with an attached tracer.
pub fn make_vm_nested_traced<T: Tracer>(mut cfg: VmConfig, tracer: T) -> Vm<T> {
    cfg.kind = KernelKind::SvaSafe;
    let module = safe_kernel_module_with(
        AS_TESTED_EXCLUSIONS,
        &KernelOptions {
            recovery: true,
            nested: true,
            ..Default::default()
        },
    );
    Vm::with_tracer(module, cfg, tracer).expect("kernel loads")
}

/// Boots the kernel with `prog(arg)` as the init user program.
pub fn boot_user<T: Tracer>(vm: &mut Vm<T>, prog: &str, arg: u64) -> Result<VmExit, VmError> {
    let addr = vm
        .func_address(prog)
        .ok_or_else(|| VmError::Unsupported(format!("no user program @{prog}")))?;
    vm.write_global_u64("boot_user_prog", addr)?;
    vm.write_global_u64("boot_user_arg", arg)?;
    vm.boot()
}

/// Like [`boot_user`] but pauses the machine at the first user-mode
/// instruction — the post-boot point machine snapshots are taken at.
/// Returns `Ok(None)` when paused (resume with [`Vm::run`]); `Ok(Some)`
/// if the boot exited before ever entering user mode.
pub fn boot_user_paused<T: Tracer>(
    vm: &mut Vm<T>,
    prog: &str,
    arg: u64,
) -> Result<Option<VmExit>, VmError> {
    let addr = vm
        .func_address(prog)
        .ok_or_else(|| VmError::Unsupported(format!("no user program @{prog}")))?;
    vm.write_global_u64("boot_user_prog", addr)?;
    vm.write_global_u64("boot_user_arg", arg)?;
    vm.boot_to_user()
}
