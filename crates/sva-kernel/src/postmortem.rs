//! Crash-bundle replay: rebuild the machine a bundle describes and
//! reproduce its death (DESIGN.md §4.7).
//!
//! A [`sva_vm::CrashBundle`] carries the machine's config fingerprint and
//! code identity but not the kernel image itself — images are large and
//! every consumer of this crate can rebuild them from the cached module
//! builds. Replay therefore tries each kernel flavor this harness can
//! produce, in cost order, until [`Vm::restore`] accepts the embedded
//! snapshot ([`SnapshotError::CodeMismatch`] means "wrong flavor, try the
//! next one"; any other rejection is a real error and fails the replay).
//!
//! For a [`CrashReason::Halt`] bundle the replay is **bit-exact**: the
//! snapshot was captured with the halt latched, so the restored machine
//! re-halts with the same code, the same console transcript and the same
//! `recov_last_code` resume code — [`check_reproduction`] verifies all
//! three. Fuel exhaustion reproduces the `OutOfFuel` error. Safety-escape
//! and watchdog bundles replay from post-event state (the fault-injection
//! hook that caused them is deliberately not re-armed), so for those the
//! replay is forensic, not a reproduction gate.

use sva_vm::{
    BundleError, CrashBundle, CrashReason, KernelKind, SnapshotError, Vm, VmError, VmExit,
};

use crate::build::KernelOptions;
use crate::harness::{raw_kernel, safe_kernel_module, safe_kernel_module_with};
use crate::AS_TESTED_EXCLUSIONS;

/// How a replayed machine finished.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayExit {
    /// `sva.abort(code)` halted the machine.
    Halted(u64),
    /// The resumed entry returned.
    Returned(u64),
    /// `Vm::run` returned an error (display text).
    Error(String),
}

impl std::fmt::Display for ReplayExit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayExit::Halted(c) => write!(f, "halted({c})"),
            ReplayExit::Returned(v) => write!(f, "returned({v})"),
            ReplayExit::Error(e) => write!(f, "error: {e}"),
        }
    }
}

/// The result of replaying a bundle's snapshot to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Replay {
    /// Which kernel flavor accepted the snapshot.
    pub flavor: &'static str,
    /// How the replayed machine finished.
    pub exit: ReplayExit,
    /// Raw `recov_last_code` after the replay run.
    pub resume_code_raw: u64,
    /// Console bytes after the replay run.
    pub console: Vec<u8>,
}

/// Why a bundle could not be replayed.
#[derive(Clone, Debug)]
pub enum ReplayError {
    /// The bundle itself (or its embedded config/snapshot) was rejected.
    Bundle(BundleError),
    /// No kernel flavor this harness builds matches the bundle's code
    /// identity; carries each flavor's rejection.
    NoMatchingKernel(Vec<(&'static str, SnapshotError)>),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Bundle(e) => write!(f, "{e}"),
            ReplayError::NoMatchingKernel(tried) => {
                write!(f, "no kernel flavor matches the bundle's code identity:")?;
                for (flavor, e) in tried {
                    write!(f, " [{flavor}: {e}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Kernel flavors to try for a bundle of the given kind, cheapest-to-match
/// first (faultcamp bundles come from the recovery kernels).
fn flavors(kind: KernelKind) -> &'static [&'static str] {
    if kind.checks() {
        &["recovering", "nested", "plain"]
    } else {
        &["raw"]
    }
}

fn flavor_module(flavor: &'static str) -> sva_ir::Module {
    match flavor {
        "recovering" => safe_kernel_module_with(
            AS_TESTED_EXCLUSIONS,
            &KernelOptions {
                recovery: true,
                ..Default::default()
            },
        ),
        "nested" => safe_kernel_module_with(
            AS_TESTED_EXCLUSIONS,
            &KernelOptions {
                recovery: true,
                nested: true,
                ..Default::default()
            },
        ),
        "plain" => safe_kernel_module(AS_TESTED_EXCLUSIONS),
        _ => raw_kernel(),
    }
}

/// Migrates a (possibly previous-format) crash bundle to the current
/// layout, trying each kernel flavor this harness builds until one's
/// code identity — or compatible surface (DESIGN.md §4.10) — accepts
/// the embedded snapshot. Returns the migrated bytes, what the
/// migration did, and the accepting flavor. A bundle already at the
/// current format with a matching flavor passes through byte-identical.
pub fn migrate_bundle_any(
    bytes: &[u8],
) -> Result<(Vec<u8>, sva_vm::MigrationReport, &'static str), String> {
    let mut tried = Vec::new();
    for &flavor in &["nested", "recovering", "plain", "raw"] {
        let kind = if flavor == "raw" {
            KernelKind::Native
        } else {
            KernelKind::SvaSafe
        };
        let vm = match Vm::new(
            flavor_module(flavor),
            sva_vm::VmConfig {
                kind,
                ..Default::default()
            },
        ) {
            Ok(vm) => vm,
            Err(e) => {
                tried.push(format!("[{flavor}: vm load: {e}]"));
                continue;
            }
        };
        match sva_vm::migrate_bundle(&vm, bytes) {
            Ok((out, report)) => return Ok((out, report, flavor)),
            Err(e) => tried.push(format!("[{flavor}: {e}]")),
        }
    }
    Err(format!(
        "no kernel flavor accepts the bundle for migration: {}",
        tried.join(" ")
    ))
}

/// Replays a bundle: rebuilds the machine config from the bundle's
/// fingerprint, finds the kernel flavor whose code identity matches the
/// embedded snapshot, restores it and runs to the next exit.
pub fn replay(bundle: &CrashBundle) -> Result<Replay, ReplayError> {
    let cfg = bundle.vm_config().map_err(ReplayError::Bundle)?;
    let mut tried = Vec::new();
    for &flavor in flavors(cfg.kind) {
        let mut vm = match Vm::new(flavor_module(flavor), cfg.clone()) {
            Ok(vm) => vm,
            Err(e) => {
                tried.push((flavor, SnapshotError::Malformed(format!("vm load: {e}"))));
                continue;
            }
        };
        match vm.restore(&bundle.snapshot) {
            Ok(()) => {
                let exit = match vm.run() {
                    Ok(VmExit::Halted(c)) => ReplayExit::Halted(c),
                    Ok(VmExit::Returned(v)) => ReplayExit::Returned(v),
                    Err(e) => ReplayExit::Error(e.to_string()),
                };
                return Ok(Replay {
                    flavor,
                    exit,
                    resume_code_raw: vm.read_global_u64("recov_last_code").unwrap_or(0),
                    console: vm.console.clone(),
                });
            }
            Err(e @ SnapshotError::CodeMismatch { .. }) => tried.push((flavor, e)),
            Err(e) => return Err(ReplayError::Bundle(BundleError::Snapshot(e))),
        }
    }
    Err(ReplayError::NoMatchingKernel(tried))
}

/// Gates a replay against its bundle. For halt bundles the reproduction
/// must be bit-exact (same halt code, resume code and console); fuel
/// bundles must reproduce `OutOfFuel`; escape and watchdog bundles are
/// forensic replays and always pass.
pub fn check_reproduction(bundle: &CrashBundle, r: &Replay) -> Result<(), String> {
    match bundle.reason {
        CrashReason::Halt => {
            if r.exit != ReplayExit::Halted(bundle.halt_code) {
                return Err(format!(
                    "replay exit {} != captured halt({})",
                    r.exit, bundle.halt_code
                ));
            }
            if r.resume_code_raw != bundle.resume_code_raw {
                return Err(format!(
                    "replay resume code {:#x} != captured {:#x}",
                    r.resume_code_raw, bundle.resume_code_raw
                ));
            }
            if r.console != bundle.console {
                return Err(format!(
                    "replay console ({} bytes) != captured ({} bytes)",
                    r.console.len(),
                    bundle.console.len()
                ));
            }
            Ok(())
        }
        CrashReason::FuelExhausted => {
            let want = VmError::OutOfFuel.to_string();
            match &r.exit {
                ReplayExit::Error(e) if *e == want => Ok(()),
                other => Err(format!("replay exit {other} != fuel exhaustion")),
            }
        }
        CrashReason::SafetyEscape | CrashReason::Watchdog => Ok(()),
    }
}
