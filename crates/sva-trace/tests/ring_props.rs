//! Property tests for the event ring's pinning guarantee: no interleaving
//! of traffic may ever lose a violation-class event (short of the side
//! buffer's own explicit capacity, which is accounted, not silent).

use proptest::prelude::*;
use sva_trace::{EventClass, EventRing, RingConfig, TimedEvent, TraceEvent};

/// A compressed event script: each entry is (is_violation, burst_len).
fn gen_script() -> impl Strategy<Value = Vec<(bool, u16)>> {
    prop::collection::vec((any::<bool>(), 1u16..64), 1..64)
}

fn violation(i: u64) -> TraceEvent {
    TraceEvent::Violation {
        check: "pchk.lscheck".to_string(),
        pool: format!("MP{}", i % 7),
        addr: i,
        detail: format!("access #{i}"),
    }
}

fn noise(i: u64) -> TraceEvent {
    TraceEvent::Inst {
        func: (i % 13) as u32,
        opcode: "load",
        cost: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wraparound_never_drops_pinned_violations(
        script in gen_script(),
        capacity in 1usize..32,
    ) {
        let mut ring = EventRing::new(RingConfig {
            capacity,
            pinned: vec![EventClass::Violation],
            // Large enough that the side buffer never saturates here; the
            // property under test is wraparound, not the explicit cap.
            pinned_capacity: 1 << 16,
        });
        let mut ts = 0u64;
        let mut violations_pushed: Vec<u64> = Vec::new();
        for (is_violation, burst) in &script {
            for _ in 0..*burst {
                if *is_violation {
                    violations_pushed.push(ts);
                    ring.push(ts, violation(ts));
                } else {
                    ring.push(ts, noise(ts));
                }
                ts += 1;
            }
        }

        // Every violation ever pushed is still retrievable, in order.
        let held: Vec<&TimedEvent> = ring
            .iter()
            .filter(|e| e.event.class() == EventClass::Violation)
            .collect();
        let held_ts: Vec<u64> = held.iter().map(|e| e.ts).collect();
        prop_assert_eq!(&held_ts, &violations_pushed,
            "violations lost or reordered by wraparound");
        prop_assert_eq!(ring.pinned_overflow(), 0);

        // The iterator stays globally timestamp-ordered.
        let all_ts: Vec<u64> = ring.iter().map(|e| e.ts).collect();
        prop_assert!(all_ts.windows(2).all(|w| w[0] <= w[1]));

        // Accounting: everything pushed is held, dropped, or promoted.
        let pushed = ts;
        prop_assert_eq!(
            ring.len() as u64 + ring.dropped() + ring.pinned_overflow(),
            pushed
        );
    }

    #[test]
    fn jsonl_round_trip_is_lossless_for_random_streams(
        script in gen_script(),
    ) {
        let mut events: Vec<TimedEvent> = Vec::new();
        let mut ts = 0u64;
        for (is_violation, burst) in &script {
            for _ in 0..*burst {
                let event = if *is_violation { violation(ts) } else { noise(ts) };
                events.push(TimedEvent { ts, event });
                ts += 1;
            }
        }
        for ev in &events {
            let line = ev.to_json();
            let back = TimedEvent::from_json(&line);
            prop_assert_eq!(back.as_ref(), Some(ev), "line: {}", line);
        }
    }
}
