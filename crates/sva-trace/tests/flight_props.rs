//! Property tests for the flight recorder's black-box guarantee: no
//! interleaving of high-signal traffic may ever lose a violation- or
//! recovery-class event to tail wraparound, and the counters the
//! postmortem report is built from always agree with the stream.

use proptest::prelude::*;
use sva_trace::{EventClass, FlightConfig, FlightRecorder, TraceEvent, Tracer};

/// One scripted push: which event to record next.
#[derive(Clone, Copy, Debug)]
enum Op {
    Syscall,
    Irq,
    Violation,
    Unwind,
    Quarantine { poisoned: bool },
    Push,
    Pop { forced: bool },
}

fn gen_script() -> impl Strategy<Value = Vec<(Op, u16)>> {
    // Selector-weighted: noise (syscalls/IRQs) dominates so small tails
    // genuinely wrap around the pinned events.
    let op = (0u8..11, any::<bool>()).prop_map(|(sel, flag)| match sel {
        0..=3 => Op::Syscall,
        4 | 5 => Op::Irq,
        6 => Op::Violation,
        7 => Op::Unwind,
        8 => Op::Quarantine { poisoned: flag },
        9 => Op::Push,
        _ => Op::Pop { forced: flag },
    });
    prop::collection::vec((op, 1u16..32), 1..64)
}

fn event_for(op: Op, ts: u64) -> TraceEvent {
    match op {
        Op::Syscall => TraceEvent::SyscallExit {
            num: (ts % 9) as i64,
            cost: 100,
        },
        Op::Irq => TraceEvent::IrqDeliver {
            vector: 32,
            cost: 40,
        },
        Op::Violation => TraceEvent::Violation {
            check: "pchk.lscheck".to_string(),
            pool: format!("MP{}", ts % 7),
            addr: ts,
            detail: format!("access #{ts}"),
        },
        Op::Unwind => TraceEvent::RecoverUnwind {
            code: 2 | (1 << 9),
            pool: (ts % 7) as u32,
            poisoned: false,
            depth: 0,
            subsys: 1,
        },
        Op::Quarantine { poisoned } => TraceEvent::PoolQuarantine {
            pool: (ts % 7) as u32,
            violations: 1,
            poisoned,
        },
        Op::Push => TraceEvent::DomainPush {
            subsys: 1,
            depth: 1,
        },
        Op::Pop { forced } => TraceEvent::DomainPop {
            subsys: 1,
            depth: 0,
            forced,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pinned_classes_survive_arbitrary_wraparound(
        script in gen_script(),
        capacity in 1usize..32,
    ) {
        let mut f = FlightRecorder::new(FlightConfig {
            capacity,
            // Large enough that the side buffer never saturates here; the
            // property under test is wraparound, not the explicit cap.
            pinned_capacity: 1 << 16,
            sample_period: 4,
        });
        let mut ts = 0u64;
        let mut pinned_pushed: Vec<u64> = Vec::new();
        let (mut violations, mut quarantines, mut poisonings) = (0u64, 0u64, 0u64);
        let (mut syscalls, mut irqs, mut unwinds) = (0u64, 0u64, 0u64);
        let (mut pushes, mut pops, mut forced_pops) = (0u64, 0u64, 0u64);
        for (op, burst) in &script {
            for _ in 0..*burst {
                let ev = event_for(*op, ts);
                match op {
                    Op::Syscall => syscalls += 1,
                    Op::Irq => irqs += 1,
                    Op::Violation => violations += 1,
                    Op::Unwind => unwinds += 1,
                    Op::Quarantine { poisoned } => {
                        quarantines += 1;
                        poisonings += u64::from(*poisoned);
                    }
                    Op::Push => pushes += 1,
                    Op::Pop { forced } => {
                        pops += 1;
                        forced_pops += u64::from(*forced);
                    }
                }
                if matches!(
                    ev.class(),
                    EventClass::Violation | EventClass::Recovery
                ) {
                    pinned_pushed.push(ts);
                }
                f.record(ts, ev);
                ts += 1;
            }
        }

        // Every violation/recovery event ever recorded is still in the
        // tail, in order, no matter how much traffic wrapped the ring.
        let tail = f.recent_events();
        let held: Vec<u64> = tail
            .iter()
            .filter(|e| {
                matches!(
                    e.event.class(),
                    EventClass::Violation | EventClass::Recovery
                )
            })
            .map(|e| e.ts)
            .collect();
        prop_assert_eq!(&held, &pinned_pushed,
            "pinned events lost or reordered by wraparound");

        // The tail stays globally timestamp-ordered despite promotion.
        prop_assert!(tail.windows(2).all(|w| w[0].ts <= w[1].ts));

        // The postmortem counters agree with the stream exactly.
        prop_assert_eq!(f.violations(), violations);
        prop_assert_eq!(f.quarantines(), quarantines);
        prop_assert_eq!(f.pools_poisoned(), poisonings);
        prop_assert_eq!(f.syscalls(), syscalls);
        prop_assert_eq!(f.irqs(), irqs);
        prop_assert_eq!(f.unwinds(), unwinds);
        prop_assert_eq!(f.domain_pushes(), pushes);
        prop_assert_eq!(f.domain_pops(), pops);
        prop_assert_eq!(f.forced_pops(), forced_pops);
    }
}
