//! Exporters: Chrome `trace_event` JSON, JSONL, and a flame-style
//! top-N text report.
//!
//! All three read the same [`RingTracer`]: the ring supplies the event
//! *stream* (Chrome trace, JSONL), the online [`Profile`] supplies the
//! whole-run *aggregates* (the report), so a wrapped ring still yields a
//! complete attribution table.
//!
//! [`Profile`]: crate::tracer::Profile

use std::fmt::Write as _;

use crate::event::{json_escape, TraceEvent};
use crate::tracer::RingTracer;

/// Serializes the buffered event stream as JSONL, one event per line.
pub fn to_jsonl(tracer: &RingTracer) -> String {
    let mut out = String::new();
    for ev in tracer.ring().iter() {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// Serializes the buffered event stream in Chrome `trace_event` format
/// (load the file in `about://tracing` or ui.perfetto.dev).
///
/// Mapping: SVA-OS operations and syscalls become `B`/`E` duration spans,
/// instructions become `X` complete events with `dur = cost`, and checks,
/// pool traffic, interrupts and violations become `i` instant events.
/// Virtual cycles are reported as microseconds — the unit is fictional
/// either way, and 1 cycle = 1 µs keeps the timeline readable.
pub fn to_chrome_trace(tracer: &RingTracer) -> String {
    let mut events: Vec<String> = Vec::new();
    let common = "\"pid\":1,\"tid\":1";
    for te in tracer.ring().iter() {
        let ts = te.ts;
        match &te.event {
            TraceEvent::Inst { func, opcode, cost } => {
                // Complete event, anchored at the start of the instruction.
                let start = ts.saturating_sub(*cost);
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"inst\",\"ph\":\"X\",\"ts\":{start},\
                     \"dur\":{cost},{common},\"args\":{{\"func\":\"{}\"}}}}",
                    json_escape(opcode),
                    json_escape(&tracer.func_name(*func))
                ));
            }
            TraceEvent::OsEnter { op } => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"os\",\"ph\":\"B\",\"ts\":{ts},{common}}}",
                    json_escape(op)
                ));
            }
            TraceEvent::OsExit { op, cost } => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"os\",\"ph\":\"E\",\"ts\":{ts},{common},\
                     \"args\":{{\"cost\":{cost}}}}}",
                    json_escape(op)
                ));
            }
            TraceEvent::Check {
                check,
                pool,
                layer,
                passed,
                cost,
            } => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"check\",\"ph\":\"i\",\"ts\":{ts},{common},\
                     \"s\":\"t\",\"args\":{{\"pool\":\"{}\",\"layer\":\"{}\",\
                     \"passed\":{passed},\"cost\":{cost}}}}}",
                    json_escape(check),
                    json_escape(&tracer.pool_name(*pool)),
                    layer.name()
                ));
            }
            TraceEvent::PoolReg { pool, addr, len } => {
                events.push(format!(
                    "{{\"name\":\"pchk.reg.obj\",\"cat\":\"pool\",\"ph\":\"i\",\"ts\":{ts},\
                     {common},\"s\":\"t\",\"args\":{{\"pool\":\"{}\",\"addr\":{addr},\
                     \"len\":{len}}}}}",
                    json_escape(&tracer.pool_name(*pool))
                ));
            }
            TraceEvent::PoolDrop { pool, addr } => {
                events.push(format!(
                    "{{\"name\":\"pchk.drop.obj\",\"cat\":\"pool\",\"ph\":\"i\",\"ts\":{ts},\
                     {common},\"s\":\"t\",\"args\":{{\"pool\":\"{}\",\"addr\":{addr}}}}}",
                    json_escape(&tracer.pool_name(*pool))
                ));
            }
            TraceEvent::SyscallEnter { num } => {
                events.push(format!(
                    "{{\"name\":\"syscall {num}\",\"cat\":\"syscall\",\"ph\":\"B\",\
                     \"ts\":{ts},{common}}}"
                ));
            }
            TraceEvent::SyscallExit { num, cost } => {
                events.push(format!(
                    "{{\"name\":\"syscall {num}\",\"cat\":\"syscall\",\"ph\":\"E\",\
                     \"ts\":{ts},{common},\"args\":{{\"cost\":{cost}}}}}"
                ));
            }
            TraceEvent::IrqDeliver { vector, cost } => {
                events.push(format!(
                    "{{\"name\":\"irq {vector}\",\"cat\":\"irq\",\"ph\":\"i\",\"ts\":{ts},\
                     {common},\"s\":\"g\",\"args\":{{\"cost\":{cost}}}}}"
                ));
            }
            TraceEvent::Violation {
                check,
                pool,
                addr,
                detail,
            } => {
                events.push(format!(
                    "{{\"name\":\"VIOLATION {}\",\"cat\":\"violation\",\"ph\":\"i\",\
                     \"ts\":{ts},{common},\"s\":\"g\",\"args\":{{\"pool\":\"{}\",\
                     \"addr\":{addr},\"detail\":\"{}\"}}}}",
                    json_escape(check),
                    json_escape(pool),
                    json_escape(detail)
                ));
            }
            TraceEvent::RecoverUnwind {
                code,
                pool,
                poisoned,
                depth,
                subsys,
            } => {
                events.push(format!(
                    "{{\"name\":\"RECOVER unwind\",\"cat\":\"recovery\",\"ph\":\"i\",\
                     \"ts\":{ts},{common},\"s\":\"g\",\"args\":{{\"code\":{code},\
                     \"pool\":\"{}\",\"poisoned\":{poisoned},\"depth\":{depth},\
                     \"subsys\":{subsys}}}}}",
                    json_escape(&tracer.pool_name(*pool))
                ));
            }
            TraceEvent::DomainPush { subsys, depth } => {
                events.push(format!(
                    "{{\"name\":\"DOMAIN push\",\"cat\":\"recovery\",\"ph\":\"i\",\
                     \"ts\":{ts},{common},\"s\":\"t\",\"args\":{{\"subsys\":{subsys},\
                     \"depth\":{depth}}}}}"
                ));
            }
            TraceEvent::DomainPop {
                subsys,
                depth,
                forced,
            } => {
                events.push(format!(
                    "{{\"name\":\"DOMAIN pop\",\"cat\":\"recovery\",\"ph\":\"i\",\
                     \"ts\":{ts},{common},\"s\":\"t\",\"args\":{{\"subsys\":{subsys},\
                     \"depth\":{depth},\"forced\":{forced}}}}}"
                ));
            }
            TraceEvent::PoolQuarantine {
                pool,
                violations,
                poisoned,
            } => {
                events.push(format!(
                    "{{\"name\":\"QUARANTINE\",\"cat\":\"recovery\",\"ph\":\"i\",\
                     \"ts\":{ts},{common},\"s\":\"g\",\"args\":{{\"pool\":\"{}\",\
                     \"violations\":{violations},\"poisoned\":{poisoned}}}}}",
                    json_escape(&tracer.pool_name(*pool))
                ));
            }
            TraceEvent::Repair { subsys, pools } => {
                events.push(format!(
                    "{{\"name\":\"REPAIR\",\"cat\":\"repair\",\"ph\":\"i\",\
                     \"ts\":{ts},{common},\"s\":\"g\",\"args\":{{\"subsys\":{subsys},\
                     \"pools\":{pools}}}}}"
                ));
            }
            TraceEvent::Probation { subsys, verdict } => {
                events.push(format!(
                    "{{\"name\":\"PROBATION\",\"cat\":\"repair\",\"ph\":\"i\",\
                     \"ts\":{ts},{common},\"s\":\"t\",\"args\":{{\"subsys\":{subsys},\
                     \"verdict\":{verdict}}}}}"
                ));
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Sanitizes a metric name for the Prometheus exposition format:
/// `[a-zA-Z0-9_]` pass through, everything else becomes `_`, and the
/// whole name gains an `sva_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("sva_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Serializes the metrics registry in the Prometheus text exposition
/// format: every counter becomes a `counter` metric, every log2 latency
/// histogram a cumulative `histogram` with `_bucket{le=...}` series at the
/// occupied bucket *upper* bounds plus the mandatory `+Inf` bucket, `_sum`
/// and `_count`. Nightly CI diffs these distributions across runs, which
/// catches a latency shift that leaves the median untouched.
pub fn to_prometheus(tracer: &RingTracer) -> String {
    metrics_to_prometheus(tracer.metrics())
}

/// [`to_prometheus`] for a bare registry — the SMP path builds one by
/// [`crate::MetricsRegistry::fold_cpu`]-ing each vCPU's counters (so the
/// export carries `sva_cpu<N>_…` series alongside the machine totals)
/// without ever attaching a tracer.
pub fn metrics_to_prometheus(m: &crate::MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, v) in m.counters() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in m.histograms() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for (floor, count) in h.nonzero_buckets() {
            cumulative += count;
            // A log2 bucket with floor f covers [f, 2f); its Prometheus
            // upper bound is the *next* bucket floor.
            let le = if floor == 0 {
                1
            } else {
                floor.saturating_mul(2)
            };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

fn top<K: Clone, V: Clone>(
    map: &std::collections::HashMap<K, V>,
    key: impl Fn(&V) -> u64,
    n: usize,
) -> Vec<(K, V)> {
    let mut rows: Vec<(K, V)> = map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    rows.sort_by_key(|(_, v)| std::cmp::Reverse(key(v)));
    rows.truncate(n);
    rows
}

/// Renders the flame-style text report: coverage, then top functions /
/// opcodes / checks / pools by attributed virtual cycles, then SVA-OS and
/// syscall tables and the metrics registry.
///
/// `total_cycles` is the VM's final cycle counter; the coverage line
/// reports what fraction of it the profile attributes.
pub fn top_report(tracer: &RingTracer, total_cycles: u64, n: usize) -> String {
    let p = tracer.profile();
    let mut out = String::new();
    let pct = |c: u64| {
        if total_cycles == 0 {
            0.0
        } else {
            100.0 * c as f64 / total_cycles as f64
        }
    };

    let _ = writeln!(out, "== sva-trace profile ==");
    let _ = writeln!(
        out,
        "total cycles {total_cycles}, attributed {} ({:.2}%), violations {}",
        p.attributed_cycles,
        100.0 * p.coverage(total_cycles),
        p.violations
    );
    let _ = writeln!(
        out,
        "events recorded {} (buffered {}, dropped {}, pinned-overflow {})",
        tracer.ring().total_recorded(),
        tracer.ring().len(),
        tracer.ring().dropped(),
        tracer.ring().pinned_overflow()
    );

    let _ = writeln!(out, "\n-- top functions (by cycles) --");
    for (func, c) in top(&p.per_func, |c| c.cycles, n) {
        let _ = writeln!(
            out,
            "{:>12} cyc {:>6.2}% {:>10} inst  {}",
            c.cycles,
            pct(c.cycles),
            c.count,
            tracer.func_name(func)
        );
    }

    let _ = writeln!(out, "\n-- top opcodes (by cycles) --");
    for (op, c) in top(&p.per_opcode, |c| c.cycles, n) {
        let _ = writeln!(
            out,
            "{:>12} cyc {:>6.2}% {:>10} inst  {op}",
            c.cycles,
            pct(c.cycles),
            c.count
        );
    }

    let _ = writeln!(out, "\n-- top checks (by cycles) --");
    for (check, c) in top(&p.per_check, |c| c.cycles, n) {
        let _ = writeln!(
            out,
            "{:>12} cyc {:>6.2}% {:>10} exec {:>4} failed  {check}",
            c.cycles,
            pct(c.cycles),
            c.count,
            c.failed
        );
    }

    let _ = writeln!(out, "\n-- top pools (by check cycles) --");
    for (pool, pp) in top(&p.per_pool, |p| p.check_cycles, n) {
        let _ = writeln!(
            out,
            "{:>12} cyc {:>10} chk (single {} cache {} page {} tree {}) reg {} drop {}  {}",
            pp.check_cycles,
            pp.checks(),
            pp.singleton_hits,
            pp.cache_hits,
            pp.page_hits,
            pp.tree_walks,
            pp.registrations,
            pp.drops,
            tracer.pool_name(pool)
        );
    }

    if !p.per_os.is_empty() {
        let _ = writeln!(out, "\n-- SVA-OS operations (by cycles) --");
        for (op, c) in top(&p.per_os, |c| c.cycles, n) {
            let _ = writeln!(out, "{:>12} cyc {:>10} calls  {op}", c.cycles, c.count);
        }
    }

    if !p.per_syscall.is_empty() {
        let _ = writeln!(out, "\n-- syscalls (by cycles in kernel) --");
        for (num, c) in top(&p.per_syscall, |c| c.cycles, n) {
            let _ = writeln!(
                out,
                "{:>12} cyc {:>10} calls  syscall {num}",
                c.cycles, c.count
            );
        }
    }

    let m = tracer.metrics();
    if m.counters().next().is_some() || m.histograms().next().is_some() {
        let _ = writeln!(out, "\n-- metrics --");
        for (name, v) in m.counters() {
            let _ = writeln!(out, "{name} = {v}");
        }
        for (name, h) in m.histograms() {
            let _ = writeln!(out, "{name}: {h}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LookupLayer, TimedEvent};
    use crate::tracer::Tracer;

    fn traced() -> RingTracer {
        let mut t = RingTracer::default();
        t.note_function_names(&["boot".into(), "sys_write".into()]);
        t.note_pool_names(&["MP_kernel".into()]);
        t.record(
            1,
            TraceEvent::Inst {
                func: 0,
                opcode: "call",
                cost: 1,
            },
        );
        t.record(2, TraceEvent::OsEnter { op: "sva.syscall" });
        t.record(3, TraceEvent::SyscallEnter { num: 4 });
        t.record(
            20,
            TraceEvent::Check {
                check: "pchk.lscheck",
                pool: 0,
                layer: LookupLayer::Cache,
                passed: true,
                cost: 16,
            },
        );
        t.record(
            21,
            TraceEvent::PoolReg {
                pool: 0,
                addr: 0x40,
                len: 16,
            },
        );
        t.record(
            22,
            TraceEvent::PoolDrop {
                pool: 0,
                addr: 0x40,
            },
        );
        t.record(40, TraceEvent::SyscallExit { num: 4, cost: 37 });
        t.record(
            41,
            TraceEvent::OsExit {
                op: "sva.syscall",
                cost: 39,
            },
        );
        t.record(
            60,
            TraceEvent::IrqDeliver {
                vector: 32,
                cost: 40,
            },
        );
        t.record(
            70,
            TraceEvent::Violation {
                check: "pchk.bounds".into(),
                pool: "MP_kernel".into(),
                addr: 0xbad,
                detail: "out of object".into(),
            },
        );
        t
    }

    #[test]
    fn jsonl_round_trips_through_the_codec() {
        let t = traced();
        let jsonl = to_jsonl(&t);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.ring().len());
        for line in lines {
            assert!(TimedEvent::from_json(line).is_some(), "bad line: {line}");
        }
    }

    #[test]
    fn chrome_trace_has_balanced_spans_and_all_events() {
        let t = traced();
        let chrome = to_chrome_trace(&t);
        assert!(chrome.contains("\"traceEvents\""));
        let b = chrome.matches("\"ph\":\"B\"").count();
        let e = chrome.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 2); // os span + syscall span
        assert_eq!(b, e);
        assert!(chrome.contains("\"name\":\"VIOLATION pchk.bounds\""));
        assert!(chrome.contains("MP_kernel"));
        // The whole thing must be loadable JSON at least at the line level:
        // every event line we emitted parses as a flat-ish object start.
        assert!(chrome.matches("{\"name\"").count() >= t.ring().len());
    }

    #[test]
    fn prometheus_export_has_typed_counters_and_cumulative_histograms() {
        let mut t = traced();
        // Fold in a couple of counters with dotted names (the CheckStats
        // fold-in shape) and a histogram with values in distinct buckets.
        t.metrics_mut()
            .set_counter("check.lookup.singleton_hits", 3);
        t.metrics_mut().record("lat", 0);
        t.metrics_mut().record("lat", 5);
        t.metrics_mut().record("lat", 5);
        t.metrics_mut().record("lat", 100);
        let prom = to_prometheus(&t);
        assert!(prom.contains("# TYPE sva_check_lookup_singleton_hits counter"));
        assert!(prom.contains("sva_check_lookup_singleton_hits 3"));
        // The syscall histogram recorded one 37-cycle latency.
        assert!(prom.contains("# TYPE sva_syscall_cycles histogram"));
        // `lat`: 0 → le=1, two 5s → cumulative 3 at le=8, 100 → 4 at le=128.
        assert!(prom.contains("sva_lat_bucket{le=\"1\"} 1"), "{prom}");
        assert!(prom.contains("sva_lat_bucket{le=\"8\"} 3"), "{prom}");
        assert!(prom.contains("sva_lat_bucket{le=\"128\"} 4"), "{prom}");
        assert!(prom.contains("sva_lat_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("sva_lat_sum 110"));
        assert!(prom.contains("sva_lat_count 4"));
    }

    #[test]
    fn report_names_functions_pools_and_coverage() {
        let t = traced();
        let report = top_report(&t, 41, 10);
        assert!(report.contains("attributed 41 (100.00%)"), "{report}");
        assert!(report.contains("boot"));
        assert!(report.contains("MP_kernel"));
        assert!(report.contains("pchk.lscheck"));
        assert!(report.contains("syscall 4"));
        assert!(report.contains("violations 1"));
    }
}
