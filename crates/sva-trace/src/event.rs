//! Structured trace events and their JSONL codec.
//!
//! Events are small and mostly `Copy`-ish: hot fields are integers and
//! `&'static str` names (opcode and intrinsic names are static in the VM;
//! deserialization goes through a global [`intern`] table so round-tripped
//! events compare equal). Only the rare [`TraceEvent::Violation`] carries
//! owned strings — it happens at most once per run and wants full
//! provenance.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Which lookup layer answered a metapool object lookup (DESIGN.md §4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LookupLayer {
    /// No object lookup was involved (e.g. `funccheck`, static ranges).
    #[default]
    None,
    /// Layer 0: the singleton fast path — the pool held exactly one live
    /// object, so a two-compare test answered hit and definitive miss
    /// alike (DESIGN.md §4.4).
    Singleton,
    /// Layer 1: the 2-entry MRU last-hit cache.
    Cache,
    /// Layer 2: the page-granular interval index (hit or definitive miss).
    Page,
    /// Layer 3: a splay-tree walk.
    Tree,
}

impl LookupLayer {
    /// Stable short name (JSONL / report key).
    pub fn name(self) -> &'static str {
        match self {
            LookupLayer::None => "none",
            LookupLayer::Singleton => "singleton",
            LookupLayer::Cache => "cache",
            LookupLayer::Page => "page",
            LookupLayer::Tree => "tree",
        }
    }

    /// Parses [`LookupLayer::name`] output.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "none" => LookupLayer::None,
            "singleton" => LookupLayer::Singleton,
            "cache" => LookupLayer::Cache,
            "page" => LookupLayer::Page,
            "tree" => LookupLayer::Tree,
            _ => return None,
        })
    }

    /// Stable one-byte code for binary serialization (snapshot images).
    pub fn to_code(self) -> u8 {
        match self {
            LookupLayer::None => 0,
            LookupLayer::Singleton => 1,
            LookupLayer::Cache => 2,
            LookupLayer::Page => 3,
            LookupLayer::Tree => 4,
        }
    }

    /// Parses [`LookupLayer::to_code`] output.
    pub fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => LookupLayer::None,
            1 => LookupLayer::Singleton,
            2 => LookupLayer::Cache,
            3 => LookupLayer::Page,
            4 => LookupLayer::Tree,
            _ => return None,
        })
    }
}

impl fmt::Display for LookupLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Coarse event classification, used for ring-buffer pinning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventClass {
    /// Guest instruction retired.
    Inst,
    /// SVA-OS operation (intrinsic) enter/exit.
    Os,
    /// Run-time safety check executed.
    Check,
    /// Metapool object registration / release.
    Pool,
    /// User→kernel trap enter/exit.
    Syscall,
    /// Hardware interrupt delivery.
    Irq,
    /// A safety check fired.
    Violation,
    /// Violation containment: recovery unwind or pool quarantine.
    Recovery,
    /// Self-healing: subsystem repair and probation transitions
    /// (DESIGN.md §4.8).
    Repair,
}

impl EventClass {
    /// All classes (for "pin everything" configurations).
    pub const ALL: [EventClass; 9] = [
        EventClass::Inst,
        EventClass::Os,
        EventClass::Check,
        EventClass::Pool,
        EventClass::Syscall,
        EventClass::Irq,
        EventClass::Violation,
        EventClass::Recovery,
        EventClass::Repair,
    ];

    /// Bit of this class in a class mask (ring pinning, tracer
    /// [`crate::Tracer::WANTED`] filters). `const` so masks can be built
    /// in associated-constant position.
    pub const fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// One structured trace event. Timestamps live in [`TimedEvent`]; the
/// event itself is pure payload.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceEvent {
    /// One guest instruction retired. `cost` is the virtual-cycle delta the
    /// instruction was charged, including any SVA-OS ceremony it triggered
    /// — summing `cost` over all `Inst` events reproduces the cycle
    /// counter, which is what lets the profiler attribute ~100% of cycles.
    Inst {
        /// Function id (see the tracer's name table).
        func: u32,
        /// Static opcode name (`"load"`, `"call"`, `"br"`, ...).
        opcode: &'static str,
        /// Virtual cycles charged to this instruction.
        cost: u64,
    },
    /// An SVA-OS operation (intrinsic) began.
    OsEnter {
        /// Intrinsic name (`"sva.syscall"`, `"llva.load.integer"`, ...).
        op: &'static str,
    },
    /// The SVA-OS operation completed.
    OsExit {
        /// Intrinsic name.
        op: &'static str,
        /// Virtual cycles the operation added beyond the base instruction.
        cost: u64,
    },
    /// A run-time check executed.
    Check {
        /// Check intrinsic name (`"pchk.bounds"`, `"pchk.lscheck"`, ...).
        check: &'static str,
        /// Metapool id, or [`u32::MAX`] for checks with no pool (static
        /// ranges, funcsets).
        pool: u32,
        /// Which lookup layer resolved the object lookup.
        layer: LookupLayer,
        /// Whether the check passed.
        passed: bool,
        /// Virtual cycles charged.
        cost: u64,
    },
    /// An object was registered with a metapool (`pchk.reg.obj`).
    PoolReg {
        /// Metapool id.
        pool: u32,
        /// Object start address.
        addr: u64,
        /// Object length in bytes.
        len: u64,
    },
    /// An object was released from a metapool (`pchk.drop.obj`).
    PoolDrop {
        /// Metapool id.
        pool: u32,
        /// Object start address.
        addr: u64,
    },
    /// A user→kernel trap began (syscall dispatch).
    SyscallEnter {
        /// Syscall number.
        num: i64,
    },
    /// The trap returned to user mode (`sva.iret`).
    SyscallExit {
        /// Syscall number.
        num: i64,
        /// Virtual cycles between trap entry and return.
        cost: u64,
    },
    /// A hardware interrupt was delivered.
    IrqDeliver {
        /// Interrupt vector.
        vector: i64,
        /// Virtual cycles of the delivery ceremony.
        cost: u64,
    },
    /// A safety check fired: full object + access provenance.
    Violation {
        /// Check name.
        check: String,
        /// Metapool name.
        pool: String,
        /// Offending address.
        addr: u64,
        /// Human-readable context (object bounds, target set, ...).
        detail: String,
    },
    /// A kernel-mode violation was contained: the machine unwound to the
    /// innermost registered recovery domain instead of halting.
    RecoverUnwind {
        /// The resume code handed to the recovery continuation (packed
        /// kind / depth / pool / icontext, see DESIGN.md §4.3/§4.5).
        code: u64,
        /// Metapool id the violation was attributed to, or [`u32::MAX`]
        /// when no pool was involved (static ranges, funcsets, watchdog).
        pool: u32,
        /// Whether the pool crossed its violation budget on this unwind.
        poisoned: bool,
        /// Stack depth of the domain the thread unwound to (0 =
        /// outermost/boot).
        depth: u32,
        /// Owning-subsystem id of that domain.
        subsys: u64,
    },
    /// A recovery domain was pushed (`sva.recover.register`).
    DomainPush {
        /// Owning-subsystem id (`sva.recover.register` argument 0).
        subsys: u64,
        /// Stack depth the new domain occupies (0 = outermost).
        depth: u32,
    },
    /// A recovery domain was popped (no-argument `sva.recover.release`,
    /// or a watchdog force-pop).
    DomainPop {
        /// Owning-subsystem id of the popped domain.
        subsys: u64,
        /// Stack depth remaining after the pop.
        depth: u32,
        /// Whether the fuel watchdog forced the pop (a wedged domain).
        forced: bool,
    },
    /// A metapool's quarantine state changed after a violation.
    PoolQuarantine {
        /// Metapool id.
        pool: u32,
        /// Violations attributed to the pool so far.
        violations: u32,
        /// Whether the pool is now permanently poisoned.
        poisoned: bool,
    },
    /// `sva.recover.repair` tore down and reinitialized a subsystem's
    /// poisoned pools (DESIGN.md §4.8).
    Repair {
        /// Subsystem id whose pools were repaired.
        subsys: u64,
        /// Number of pools unpoisoned and reinitialized.
        pools: u32,
    },
    /// The kernel's repair manager reported a probation transition via
    /// `sva.recover.probation`.
    Probation {
        /// Subsystem id.
        subsys: u64,
        /// Transition verdict: 0 = probation passed (back to live),
        /// 1 = re-poisoned during probation (re-degraded, backoff
        /// doubled), 2 = strike budget exhausted (permanently retired).
        verdict: u64,
    },
}

impl TraceEvent {
    /// The event's class (pinning / filtering granularity).
    pub fn class(&self) -> EventClass {
        match self {
            TraceEvent::Inst { .. } => EventClass::Inst,
            TraceEvent::OsEnter { .. } | TraceEvent::OsExit { .. } => EventClass::Os,
            TraceEvent::Check { .. } => EventClass::Check,
            TraceEvent::PoolReg { .. } | TraceEvent::PoolDrop { .. } => EventClass::Pool,
            TraceEvent::SyscallEnter { .. } | TraceEvent::SyscallExit { .. } => EventClass::Syscall,
            TraceEvent::IrqDeliver { .. } => EventClass::Irq,
            TraceEvent::Violation { .. } => EventClass::Violation,
            TraceEvent::RecoverUnwind { .. }
            | TraceEvent::DomainPush { .. }
            | TraceEvent::DomainPop { .. }
            | TraceEvent::PoolQuarantine { .. } => EventClass::Recovery,
            TraceEvent::Repair { .. } | TraceEvent::Probation { .. } => EventClass::Repair,
        }
    }
}

/// A trace event with its virtual-cycle timestamp.
#[derive(Clone, PartialEq, Debug)]
pub struct TimedEvent {
    /// Virtual-cycle timestamp (the VM cycle counter when recorded).
    pub ts: u64,
    /// The event.
    pub event: TraceEvent,
}

// ---------------------------------------------------------------------------
// Interning (deserialized names become 'static).
// ---------------------------------------------------------------------------

/// Interns a string, returning a `'static` reference. Names in trace
/// events (opcodes, intrinsics, check kinds) form a small closed set, so
/// the table stays tiny; deserialization uses this to reconstruct the
/// `&'static str` fields.
pub fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let mut t = table.lock().unwrap();
    if let Some(existing) = t.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    t.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// JSONL codec (hand-rolled: the build environment is offline, no serde).
// ---------------------------------------------------------------------------

/// Escapes a string for a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TimedEvent {
    /// One-line JSON encoding (the JSONL exporter's record format).
    pub fn to_json(&self) -> String {
        use TraceEvent::*;
        let ts = self.ts;
        match &self.event {
            Inst { func, opcode, cost } => format!(
                "{{\"ts\":{ts},\"ev\":\"inst\",\"func\":{func},\"op\":\"{}\",\"cost\":{cost}}}",
                json_escape(opcode)
            ),
            OsEnter { op } => format!(
                "{{\"ts\":{ts},\"ev\":\"os_enter\",\"op\":\"{}\"}}",
                json_escape(op)
            ),
            OsExit { op, cost } => format!(
                "{{\"ts\":{ts},\"ev\":\"os_exit\",\"op\":\"{}\",\"cost\":{cost}}}",
                json_escape(op)
            ),
            Check {
                check,
                pool,
                layer,
                passed,
                cost,
            } => format!(
                "{{\"ts\":{ts},\"ev\":\"check\",\"check\":\"{}\",\"pool\":{pool},\
                 \"layer\":\"{}\",\"passed\":{passed},\"cost\":{cost}}}",
                json_escape(check),
                layer.name()
            ),
            PoolReg { pool, addr, len } => format!(
                "{{\"ts\":{ts},\"ev\":\"pool_reg\",\"pool\":{pool},\"addr\":{addr},\"len\":{len}}}"
            ),
            PoolDrop { pool, addr } => {
                format!("{{\"ts\":{ts},\"ev\":\"pool_drop\",\"pool\":{pool},\"addr\":{addr}}}")
            }
            SyscallEnter { num } => {
                format!("{{\"ts\":{ts},\"ev\":\"sys_enter\",\"num\":{num}}}")
            }
            SyscallExit { num, cost } => {
                format!("{{\"ts\":{ts},\"ev\":\"sys_exit\",\"num\":{num},\"cost\":{cost}}}")
            }
            IrqDeliver { vector, cost } => {
                format!("{{\"ts\":{ts},\"ev\":\"irq\",\"vector\":{vector},\"cost\":{cost}}}")
            }
            Violation {
                check,
                pool,
                addr,
                detail,
            } => format!(
                "{{\"ts\":{ts},\"ev\":\"violation\",\"check\":\"{}\",\"pool\":\"{}\",\
                 \"addr\":{addr},\"detail\":\"{}\"}}",
                json_escape(check),
                json_escape(pool),
                json_escape(detail)
            ),
            RecoverUnwind {
                code,
                pool,
                poisoned,
                depth,
                subsys,
            } => format!(
                "{{\"ts\":{ts},\"ev\":\"recover\",\"code\":{code},\"pool\":{pool},\
                 \"poisoned\":{poisoned},\"depth\":{depth},\"subsys\":{subsys}}}"
            ),
            DomainPush { subsys, depth } => {
                format!("{{\"ts\":{ts},\"ev\":\"dom_push\",\"subsys\":{subsys},\"depth\":{depth}}}")
            }
            DomainPop {
                subsys,
                depth,
                forced,
            } => format!(
                "{{\"ts\":{ts},\"ev\":\"dom_pop\",\"subsys\":{subsys},\"depth\":{depth},\
                 \"forced\":{forced}}}"
            ),
            PoolQuarantine {
                pool,
                violations,
                poisoned,
            } => format!(
                "{{\"ts\":{ts},\"ev\":\"quarantine\",\"pool\":{pool},\
                 \"violations\":{violations},\"poisoned\":{poisoned}}}"
            ),
            Repair { subsys, pools } => {
                format!("{{\"ts\":{ts},\"ev\":\"repair\",\"subsys\":{subsys},\"pools\":{pools}}}")
            }
            Probation { subsys, verdict } => format!(
                "{{\"ts\":{ts},\"ev\":\"probation\",\"subsys\":{subsys},\"verdict\":{verdict}}}"
            ),
        }
    }

    /// Parses one [`TimedEvent::to_json`] line back into an event.
    pub fn from_json(line: &str) -> Option<TimedEvent> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let num = |k: &str| -> Option<i128> {
            match get(k)? {
                JVal::Num(n) => Some(*n),
                JVal::Str(_) | JVal::Bool(_) => None,
            }
        };
        let s = |k: &str| -> Option<&str> {
            match get(k)? {
                JVal::Str(v) => Some(v.as_str()),
                _ => None,
            }
        };
        let b = |k: &str| -> Option<bool> {
            match get(k)? {
                JVal::Bool(v) => Some(*v),
                _ => None,
            }
        };
        let ts = num("ts")? as u64;
        let event = match s("ev")? {
            "inst" => TraceEvent::Inst {
                func: num("func")? as u32,
                opcode: intern(s("op")?),
                cost: num("cost")? as u64,
            },
            "os_enter" => TraceEvent::OsEnter {
                op: intern(s("op")?),
            },
            "os_exit" => TraceEvent::OsExit {
                op: intern(s("op")?),
                cost: num("cost")? as u64,
            },
            "check" => TraceEvent::Check {
                check: intern(s("check")?),
                pool: num("pool")? as u32,
                layer: LookupLayer::from_name(s("layer")?)?,
                passed: b("passed")?,
                cost: num("cost")? as u64,
            },
            "pool_reg" => TraceEvent::PoolReg {
                pool: num("pool")? as u32,
                addr: num("addr")? as u64,
                len: num("len")? as u64,
            },
            "pool_drop" => TraceEvent::PoolDrop {
                pool: num("pool")? as u32,
                addr: num("addr")? as u64,
            },
            "sys_enter" => TraceEvent::SyscallEnter {
                num: num("num")? as i64,
            },
            "sys_exit" => TraceEvent::SyscallExit {
                num: num("num")? as i64,
                cost: num("cost")? as u64,
            },
            "irq" => TraceEvent::IrqDeliver {
                vector: num("vector")? as i64,
                cost: num("cost")? as u64,
            },
            "violation" => TraceEvent::Violation {
                check: s("check")?.to_string(),
                pool: s("pool")?.to_string(),
                addr: num("addr")? as u64,
                detail: s("detail")?.to_string(),
            },
            "recover" => TraceEvent::RecoverUnwind {
                code: num("code")? as u64,
                pool: num("pool")? as u32,
                poisoned: b("poisoned")?,
                depth: num("depth")? as u32,
                subsys: num("subsys")? as u64,
            },
            "dom_push" => TraceEvent::DomainPush {
                subsys: num("subsys")? as u64,
                depth: num("depth")? as u32,
            },
            "dom_pop" => TraceEvent::DomainPop {
                subsys: num("subsys")? as u64,
                depth: num("depth")? as u32,
                forced: b("forced")?,
            },
            "quarantine" => TraceEvent::PoolQuarantine {
                pool: num("pool")? as u32,
                violations: num("violations")? as u32,
                poisoned: b("poisoned")?,
            },
            "repair" => TraceEvent::Repair {
                subsys: num("subsys")? as u64,
                pools: num("pools")? as u32,
            },
            "probation" => TraceEvent::Probation {
                subsys: num("subsys")? as u64,
                verdict: num("verdict")? as u64,
            },
            _ => return None,
        };
        Some(TimedEvent { ts, event })
    }
}

/// A flat JSON value (this codec never nests).
enum JVal {
    Num(i128),
    Str(String),
    Bool(bool),
}

/// Parses a single-level JSON object of string/number/bool values.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JVal)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                return Some(fields);
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let val = match chars.peek()? {
            '"' => JVal::Str(parse_string(&mut chars)?),
            't' => {
                for expect in "true".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                JVal::Bool(true)
            }
            'f' => {
                for expect in "false".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                JVal::Bool(false)
            }
            _ => {
                let mut text = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || *c == '-') {
                    text.push(chars.next()?);
                }
                JVal::Num(text.parse().ok()?)
            }
        };
        fields.push((key, val));
    }
}

/// Parses a JSON string literal (cursor on the opening quote).
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                ts: 1,
                event: TraceEvent::Inst {
                    func: 7,
                    opcode: "load",
                    cost: 1,
                },
            },
            TimedEvent {
                ts: 2,
                event: TraceEvent::OsEnter { op: "sva.syscall" },
            },
            TimedEvent {
                ts: 44,
                event: TraceEvent::OsExit {
                    op: "sva.syscall",
                    cost: 40,
                },
            },
            TimedEvent {
                ts: 45,
                event: TraceEvent::Check {
                    check: "pchk.bounds",
                    pool: 3,
                    layer: LookupLayer::Cache,
                    passed: true,
                    cost: 16,
                },
            },
            TimedEvent {
                ts: 46,
                event: TraceEvent::PoolReg {
                    pool: 3,
                    addr: 0x1000,
                    len: 64,
                },
            },
            TimedEvent {
                ts: 47,
                event: TraceEvent::PoolDrop {
                    pool: 3,
                    addr: 0x1000,
                },
            },
            TimedEvent {
                ts: 48,
                event: TraceEvent::SyscallEnter { num: -3 },
            },
            TimedEvent {
                ts: 90,
                event: TraceEvent::SyscallExit { num: -3, cost: 42 },
            },
            TimedEvent {
                ts: 91,
                event: TraceEvent::IrqDeliver {
                    vector: 32,
                    cost: 40,
                },
            },
            TimedEvent {
                ts: 99,
                event: TraceEvent::Violation {
                    check: "pchk.lscheck".into(),
                    pool: "MP4".into(),
                    addr: 0xdead,
                    detail: "object [0x1000, 0x1040) \"quoted\"\nline".into(),
                },
            },
            TimedEvent {
                ts: 100,
                event: TraceEvent::RecoverUnwind {
                    code: 0x0001_0002_0006,
                    pool: 4,
                    poisoned: false,
                    depth: 1,
                    subsys: 4,
                },
            },
            TimedEvent {
                ts: 100,
                event: TraceEvent::DomainPush {
                    subsys: 4,
                    depth: 1,
                },
            },
            TimedEvent {
                ts: 100,
                event: TraceEvent::DomainPop {
                    subsys: 4,
                    depth: 0,
                    forced: true,
                },
            },
            TimedEvent {
                ts: 101,
                event: TraceEvent::PoolQuarantine {
                    pool: 4,
                    violations: 3,
                    poisoned: true,
                },
            },
            TimedEvent {
                ts: 150,
                event: TraceEvent::Repair {
                    subsys: 4,
                    pools: 1,
                },
            },
            TimedEvent {
                ts: 151,
                event: TraceEvent::Probation {
                    subsys: 4,
                    verdict: 0,
                },
            },
        ]
    }

    #[test]
    fn json_round_trip_every_variant() {
        for ev in samples() {
            let line = ev.to_json();
            let back =
                TimedEvent::from_json(&line).unwrap_or_else(|| panic!("unparseable: {line}"));
            assert_eq!(back, ev, "round trip of {line}");
        }
    }

    #[test]
    fn classes_cover_every_variant() {
        let classes: Vec<EventClass> = samples().iter().map(|e| e.event.class()).collect();
        for c in EventClass::ALL {
            assert!(classes.contains(&c), "no sample with class {c:?}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{}",
            "{\"ts\":1}",
            "{\"ts\":1,\"ev\":\"nope\"}",
            "{\"ts\":1,\"ev\":\"inst\",\"func\":\"x\",\"op\":\"load\",\"cost\":1}",
            "not json at all",
        ] {
            assert!(TimedEvent::from_json(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn intern_returns_stable_references() {
        let a = intern("pchk.bounds");
        let b = intern("pchk.bounds");
        assert!(std::ptr::eq(a, b));
    }
}
