//! # `sva-trace`: tracing, metrics and profiling for the SVM
//!
//! The paper's evaluation (Tables 5–9) attributes overhead to individual
//! run-time checks and SVA-OS operations. This crate is the observability
//! substrate that makes such attribution possible *per event* instead of
//! only via after-the-fact aggregate counters:
//!
//! * [`TraceEvent`] — structured events: instruction retired, run-time
//!   check executed (with the lookup layer that resolved it), metapool
//!   registration/release, SVA-OS call enter/exit, syscall enter/exit,
//!   interrupt delivery, and safety violations with object + access
//!   provenance. Every event carries a virtual-cycle timestamp.
//! * [`EventRing`] — a lock-free (no locks, single writer) fixed-capacity
//!   ring buffer. Event classes can be *pinned*: wraparound moves pinned
//!   records to a side buffer instead of dropping them, so a violation
//!   observed once is never lost to later traffic.
//! * [`Tracer`] — the instrumentation-point trait. [`NullTracer`] sets
//!   [`Tracer::ENABLED`]` = false`; call sites guard with
//!   `if T::ENABLED { ... }` so the disabled path monomorphizes to
//!   nothing: no branch, no event construction, no timestamp read. The
//!   calibrated virtual-cycle tables are byte-identical with tracing on or
//!   off by construction — the tracer only *reads* the cycle counter.
//! * [`RingTracer`] — the live tracer: ring + online [`Profile`]
//!   aggregation (per-function / per-opcode / per-check / per-pool cycle
//!   attribution that survives ring wraparound) + a [`MetricsRegistry`] of
//!   counters and log2-bucketed latency [`Histogram`]s.
//! * Exporters — Chrome `trace_event` JSON (load in `about://tracing` or
//!   [ui.perfetto.dev](https://ui.perfetto.dev)), a JSONL event log, and a
//!   flame-style "top functions / top checks / top pools / top opcodes"
//!   text report.

//! * [`FlightRecorder`] — the third mode: an always-on black box. Only
//!   the high-signal classes ([`Tracer::WANTED`]) are compiled in, so the
//!   hot check path matches `NullTracer` byte for byte while syscall
//!   spans, IRQ storms, violations and recovery traffic land in a small
//!   pinned tail buffer that crash bundles embed.

pub mod event;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod ring;
pub mod tracer;

pub use event::{intern, EventClass, LookupLayer, TimedEvent, TraceEvent};
pub use export::{metrics_to_prometheus, to_chrome_trace, to_jsonl, to_prometheus, top_report};
pub use flight::{FlightConfig, FlightRecorder};
pub use metrics::{Histogram, MetricsRegistry};
pub use ring::{EventRing, RingConfig};
pub use tracer::{CycleCount, NullTracer, Profile, RingTracer, Tracer};
