//! Fixed-capacity event ring with pinned event classes.
//!
//! Single-writer, no locks, no allocation after construction (the pinned
//! side buffer reserves its capacity up front). Wraparound behaviour is
//! the interesting part: ordinary events are dropped oldest-first, but
//! records whose [`EventClass`] is *pinned* are promoted to a side buffer
//! instead — a safety violation observed once must survive arbitrarily
//! much later traffic.

use std::collections::VecDeque;

use crate::event::{EventClass, TimedEvent, TraceEvent};

/// Ring construction options.
#[derive(Clone, Debug)]
pub struct RingConfig {
    /// Maximum number of buffered events (oldest evicted first).
    pub capacity: usize,
    /// Event classes that wraparound must never drop.
    pub pinned: Vec<EventClass>,
    /// Maximum promoted (pinned) records kept aside; beyond this they are
    /// counted in [`EventRing::pinned_overflow`].
    pub pinned_capacity: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            capacity: 64 * 1024,
            pinned: vec![EventClass::Violation],
            pinned_capacity: 4096,
        }
    }
}

/// The ring buffer.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
    pinned_mask: u16,
    pinned: Vec<TimedEvent>,
    pinned_capacity: usize,
    dropped: u64,
    pinned_overflow: u64,
    total: u64,
}

impl EventRing {
    /// Creates a ring from its configuration.
    pub fn new(cfg: RingConfig) -> EventRing {
        let capacity = cfg.capacity.max(1);
        let mut pinned_mask = 0u16;
        for c in &cfg.pinned {
            pinned_mask |= c.bit();
        }
        EventRing {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            pinned_mask,
            pinned: Vec::new(),
            pinned_capacity: cfg.pinned_capacity,
            dropped: 0,
            pinned_overflow: 0,
            total: 0,
        }
    }

    /// Whether a class is pinned against wraparound loss.
    pub fn is_pinned(&self, class: EventClass) -> bool {
        self.pinned_mask & class.bit() != 0
    }

    /// Appends an event, evicting the oldest record when full.
    pub fn push(&mut self, ts: u64, event: TraceEvent) {
        self.total += 1;
        if self.buf.len() == self.capacity {
            // Eviction: pinned classes are promoted, the rest are lost.
            let old = self.buf.pop_front().expect("capacity >= 1");
            if self.is_pinned(old.event.class()) {
                if self.pinned.len() < self.pinned_capacity {
                    self.pinned.push(old);
                } else {
                    self.pinned_overflow += 1;
                }
            } else {
                self.dropped += 1;
            }
        }
        self.buf.push_back(TimedEvent { ts, event });
    }

    /// Events still held, oldest first. Promoted pinned records come
    /// first; they were evicted from the front of the ring in FIFO order,
    /// so the concatenation stays timestamp-ordered.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.pinned.iter().chain(self.buf.iter())
    }

    /// Number of events currently held (ring + promoted).
    pub fn len(&self) -> usize {
        self.pinned.len() + self.buf.len()
    }

    /// True if nothing was ever recorded or everything held was cleared.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Unpinned events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pinned events lost because the side buffer itself filled up.
    pub fn pinned_overflow(&self) -> u64 {
        self.pinned_overflow
    }

    /// Deterministic per-CPU merge (DESIGN.md §4.9): folds this ring's
    /// surviving events into `dst`, re-interleaving both streams by
    /// timestamp. The sort is stable, so same-timestamp events keep
    /// `dst`-before-`self` order — folding vCPU rings into one merged
    /// ring in cpu-id order always yields the same sequence. `dst` keeps
    /// its own capacity and pinning rules (re-pushing replays eviction),
    /// and the loss counters accumulate across both rings.
    pub fn fold_into(&self, dst: &mut EventRing) {
        let mut all: Vec<TimedEvent> = dst.iter().chain(self.iter()).cloned().collect();
        all.sort_by_key(|e| e.ts);
        let total = dst.total + self.total;
        dst.buf.clear();
        dst.pinned.clear();
        dst.dropped += self.dropped;
        dst.pinned_overflow += self.pinned_overflow;
        for e in all {
            dst.push(e.ts, e.event);
        }
        dst.total = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LookupLayer;

    fn inst(i: u64) -> TraceEvent {
        TraceEvent::Inst {
            func: i as u32,
            opcode: "add",
            cost: 1,
        }
    }

    fn violation(i: u64) -> TraceEvent {
        TraceEvent::Violation {
            check: "pchk.bounds".into(),
            pool: format!("MP{i}"),
            addr: i,
            detail: String::new(),
        }
    }

    #[test]
    fn wraparound_drops_oldest_unpinned() {
        let mut r = EventRing::new(RingConfig {
            capacity: 4,
            pinned: vec![],
            pinned_capacity: 0,
        });
        for i in 0..10 {
            r.push(i, inst(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_recorded(), 10);
        let ts: Vec<u64> = r.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn pinned_events_survive_wraparound() {
        let mut r = EventRing::new(RingConfig {
            capacity: 3,
            pinned: vec![EventClass::Violation],
            pinned_capacity: 64,
        });
        r.push(0, violation(0));
        for i in 1..50 {
            r.push(i, inst(i));
        }
        let held: Vec<&TimedEvent> = r.iter().collect();
        assert!(matches!(held[0].event, TraceEvent::Violation { .. }));
        assert_eq!(held[0].ts, 0);
        // Still timestamp-ordered.
        assert!(held.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn pinned_side_buffer_overflow_is_counted() {
        let mut r = EventRing::new(RingConfig {
            capacity: 1,
            pinned: vec![EventClass::Violation],
            pinned_capacity: 2,
        });
        for i in 0..5 {
            r.push(i, violation(i));
        }
        // 5 pushed, 1 in ring, 2 promoted, 2 lost to the side-buffer cap.
        assert_eq!(r.len(), 3);
        assert_eq!(r.pinned_overflow(), 2);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn fold_into_merges_by_timestamp_deterministically() {
        let mk = |ts: &[u64]| {
            let mut r = EventRing::new(RingConfig {
                capacity: 16,
                pinned: vec![],
                pinned_capacity: 0,
            });
            for &t in ts {
                r.push(t, inst(t));
            }
            r
        };
        // Two "vCPU" rings with interleaved timestamps and one tie (5).
        let cpu0 = mk(&[1, 5, 9]);
        let cpu1 = mk(&[2, 5, 7]);
        let mut merged = EventRing::new(RingConfig {
            capacity: 16,
            pinned: vec![],
            pinned_capacity: 0,
        });
        cpu0.fold_into(&mut merged);
        cpu1.fold_into(&mut merged);
        let ts: Vec<u64> = merged.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![1, 2, 5, 5, 7, 9]);
        assert_eq!(merged.total_recorded(), 6);
        // Stable tie-break: cpu0's event at ts=5 precedes cpu1's.
        let funcs: Vec<u32> = merged
            .iter()
            .filter(|e| e.ts == 5)
            .map(|e| match e.event {
                TraceEvent::Inst { func, .. } => func,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(funcs, vec![5, 5]);
        // Same fold order → identical sequence.
        let mut again = EventRing::new(RingConfig {
            capacity: 16,
            pinned: vec![],
            pinned_capacity: 0,
        });
        cpu0.fold_into(&mut again);
        cpu1.fold_into(&mut again);
        assert_eq!(
            merged.iter().collect::<Vec<_>>(),
            again.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn fold_into_respects_destination_capacity() {
        let mut src = EventRing::new(RingConfig {
            capacity: 8,
            pinned: vec![EventClass::Violation],
            pinned_capacity: 8,
        });
        src.push(0, violation(0));
        for i in 1..6 {
            src.push(i, inst(i));
        }
        let mut dst = EventRing::new(RingConfig {
            capacity: 2,
            pinned: vec![EventClass::Violation],
            pinned_capacity: 8,
        });
        src.fold_into(&mut dst);
        // 6 events through a 2-slot ring: the violation is promoted, the
        // overflowing instructions are dropped, totals carry over.
        assert_eq!(dst.total_recorded(), 6);
        assert!(dst
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Violation { .. })));
        assert_eq!(dst.dropped(), 3);
    }

    #[test]
    fn check_events_pinnable_too() {
        let mut r = EventRing::new(RingConfig {
            capacity: 2,
            pinned: vec![EventClass::Check],
            pinned_capacity: 64,
        });
        r.push(
            0,
            TraceEvent::Check {
                check: "pchk.lscheck",
                pool: 0,
                layer: LookupLayer::Tree,
                passed: false,
                cost: 16,
            },
        );
        for i in 1..10 {
            r.push(i, inst(i));
        }
        assert!(r
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Check { .. })));
    }
}
