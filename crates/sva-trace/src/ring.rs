//! Fixed-capacity event ring with pinned event classes.
//!
//! Single-writer, no locks, no allocation after construction (the pinned
//! side buffer reserves its capacity up front). Wraparound behaviour is
//! the interesting part: ordinary events are dropped oldest-first, but
//! records whose [`EventClass`] is *pinned* are promoted to a side buffer
//! instead — a safety violation observed once must survive arbitrarily
//! much later traffic.

use std::collections::VecDeque;

use crate::event::{EventClass, TimedEvent, TraceEvent};

/// Ring construction options.
#[derive(Clone, Debug)]
pub struct RingConfig {
    /// Maximum number of buffered events (oldest evicted first).
    pub capacity: usize,
    /// Event classes that wraparound must never drop.
    pub pinned: Vec<EventClass>,
    /// Maximum promoted (pinned) records kept aside; beyond this they are
    /// counted in [`EventRing::pinned_overflow`].
    pub pinned_capacity: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            capacity: 64 * 1024,
            pinned: vec![EventClass::Violation],
            pinned_capacity: 4096,
        }
    }
}

/// The ring buffer.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
    pinned_mask: u16,
    pinned: Vec<TimedEvent>,
    pinned_capacity: usize,
    dropped: u64,
    pinned_overflow: u64,
    total: u64,
}

impl EventRing {
    /// Creates a ring from its configuration.
    pub fn new(cfg: RingConfig) -> EventRing {
        let capacity = cfg.capacity.max(1);
        let mut pinned_mask = 0u16;
        for c in &cfg.pinned {
            pinned_mask |= c.bit();
        }
        EventRing {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            pinned_mask,
            pinned: Vec::new(),
            pinned_capacity: cfg.pinned_capacity,
            dropped: 0,
            pinned_overflow: 0,
            total: 0,
        }
    }

    /// Whether a class is pinned against wraparound loss.
    pub fn is_pinned(&self, class: EventClass) -> bool {
        self.pinned_mask & class.bit() != 0
    }

    /// Appends an event, evicting the oldest record when full.
    pub fn push(&mut self, ts: u64, event: TraceEvent) {
        self.total += 1;
        if self.buf.len() == self.capacity {
            // Eviction: pinned classes are promoted, the rest are lost.
            let old = self.buf.pop_front().expect("capacity >= 1");
            if self.is_pinned(old.event.class()) {
                if self.pinned.len() < self.pinned_capacity {
                    self.pinned.push(old);
                } else {
                    self.pinned_overflow += 1;
                }
            } else {
                self.dropped += 1;
            }
        }
        self.buf.push_back(TimedEvent { ts, event });
    }

    /// Events still held, oldest first. Promoted pinned records come
    /// first; they were evicted from the front of the ring in FIFO order,
    /// so the concatenation stays timestamp-ordered.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.pinned.iter().chain(self.buf.iter())
    }

    /// Number of events currently held (ring + promoted).
    pub fn len(&self) -> usize {
        self.pinned.len() + self.buf.len()
    }

    /// True if nothing was ever recorded or everything held was cleared.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Unpinned events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pinned events lost because the side buffer itself filled up.
    pub fn pinned_overflow(&self) -> u64 {
        self.pinned_overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LookupLayer;

    fn inst(i: u64) -> TraceEvent {
        TraceEvent::Inst {
            func: i as u32,
            opcode: "add",
            cost: 1,
        }
    }

    fn violation(i: u64) -> TraceEvent {
        TraceEvent::Violation {
            check: "pchk.bounds".into(),
            pool: format!("MP{i}"),
            addr: i,
            detail: String::new(),
        }
    }

    #[test]
    fn wraparound_drops_oldest_unpinned() {
        let mut r = EventRing::new(RingConfig {
            capacity: 4,
            pinned: vec![],
            pinned_capacity: 0,
        });
        for i in 0..10 {
            r.push(i, inst(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_recorded(), 10);
        let ts: Vec<u64> = r.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn pinned_events_survive_wraparound() {
        let mut r = EventRing::new(RingConfig {
            capacity: 3,
            pinned: vec![EventClass::Violation],
            pinned_capacity: 64,
        });
        r.push(0, violation(0));
        for i in 1..50 {
            r.push(i, inst(i));
        }
        let held: Vec<&TimedEvent> = r.iter().collect();
        assert!(matches!(held[0].event, TraceEvent::Violation { .. }));
        assert_eq!(held[0].ts, 0);
        // Still timestamp-ordered.
        assert!(held.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn pinned_side_buffer_overflow_is_counted() {
        let mut r = EventRing::new(RingConfig {
            capacity: 1,
            pinned: vec![EventClass::Violation],
            pinned_capacity: 2,
        });
        for i in 0..5 {
            r.push(i, violation(i));
        }
        // 5 pushed, 1 in ring, 2 promoted, 2 lost to the side-buffer cap.
        assert_eq!(r.len(), 3);
        assert_eq!(r.pinned_overflow(), 2);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn check_events_pinnable_too() {
        let mut r = EventRing::new(RingConfig {
            capacity: 2,
            pinned: vec![EventClass::Check],
            pinned_capacity: 64,
        });
        r.push(
            0,
            TraceEvent::Check {
                check: "pchk.lscheck",
                pool: 0,
                layer: LookupLayer::Tree,
                passed: false,
                cost: 16,
            },
        );
        for i in 1..10 {
            r.push(i, inst(i));
        }
        assert!(r
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Check { .. })));
    }
}
