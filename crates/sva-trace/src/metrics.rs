//! Counters and log2-bucketed histograms.
//!
//! The registry is the "metrics" face of the tracing layer: cheap scalar
//! counters (folded in from `CheckStats`/`VmStats` at the end of a run)
//! plus latency histograms with power-of-two buckets, the standard shape
//! for virtual-cycle latencies that span several orders of magnitude
//! (a cache-served check vs a fork syscall).

use std::collections::BTreeMap;
use std::fmt;

/// A histogram with 65 log2 buckets: bucket `i` counts values `v` with
/// `floor(log2(v)) == i - 1` (bucket 0 counts zeros), i.e. bucket
/// boundaries at 1, 2, 4, 8, ...
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `i` (inclusive).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the floor of the bucket containing the
    /// `q`-quantile observation (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(i));
            }
        }
        Some(Self::bucket_floor(64))
    }

    /// Occupied `(bucket_floor, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    /// A compact one-line rendering: `count` / `mean` / `p50` / `p99` /
    /// `max` — what the top-N report prints per histogram.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50≥{} p99≥{} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
            self.max().unwrap_or(0)
        )
    }
}

/// Named counters and histograms. `BTreeMap` keeps report output sorted
/// and deterministic.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `v` to counter `name` (creating it at zero).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets counter `name` to `v` (for fold-in of externally maintained
    /// totals like `CheckStats`, where adding would double-count).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Current value of a counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a value into histogram `name` (creating it).
    pub fn record(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, name-sorted.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sums every counter and merges every histogram of `other` into
    /// this registry.
    pub fn fold(&mut self, other: &MetricsRegistry) {
        for (k, v) in other.counters() {
            self.add_counter(k, v);
        }
        for (k, h) in other.histograms() {
            self.histograms.entry(k.to_string()).or_default().merge(h);
        }
    }

    /// Per-CPU fold (DESIGN.md §4.9): every series of `other` lands
    /// twice — under `cpu<id>.<name>` for the per-vCPU view the nightly
    /// `--prom-diff` tracks, and summed into the unprefixed machine
    /// total. Fold each vCPU's registry exactly once, in cpu-id order,
    /// into a fresh registry; the result is deterministic because both
    /// maps iterate name-sorted.
    pub fn fold_cpu(&mut self, cpu: u32, other: &MetricsRegistry) {
        for (k, v) in other.counters() {
            self.add_counter(&format!("cpu{cpu}.{k}"), v);
            self.add_counter(k, v);
        }
        for (k, h) in other.histograms() {
            self.histograms
                .entry(format!("cpu{cpu}.{k}"))
                .or_default()
                .merge(h);
            self.histograms.entry(k.to_string()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_cpu_builds_prefixed_and_total_series() {
        let mut cpu0 = MetricsRegistry::new();
        cpu0.add_counter("recovery.repairs", 2);
        cpu0.record("check.cost", 16);
        let mut cpu1 = MetricsRegistry::new();
        cpu1.add_counter("recovery.repairs", 3);
        cpu1.add_counter("check.ls_checks", 7);
        cpu1.record("check.cost", 32);

        let mut m = MetricsRegistry::new();
        m.fold_cpu(0, &cpu0);
        m.fold_cpu(1, &cpu1);
        assert_eq!(m.counter("cpu0.recovery.repairs"), 2);
        assert_eq!(m.counter("cpu1.recovery.repairs"), 3);
        assert_eq!(m.counter("recovery.repairs"), 5);
        assert_eq!(m.counter("cpu1.check.ls_checks"), 7);
        assert_eq!(m.counter("cpu0.check.ls_checks"), 0);
        assert_eq!(m.histogram("check.cost").unwrap().count(), 2);
        assert_eq!(m.histogram("cpu0.check.cost").unwrap().count(), 1);

        // Plain fold: unprefixed sum only.
        let mut flat = MetricsRegistry::new();
        flat.fold(&cpu0);
        flat.fold(&cpu1);
        assert_eq!(flat.counter("recovery.repairs"), 5);
        assert_eq!(flat.histogram("check.cost").unwrap().count(), 2);
    }

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        let got = h.nonzero_buckets();
        // 0→bucket0; 1→[1,2); 2,3→[2,4); 4,7→[4,8); 8→[8,16); 1024; MAX.
        assert_eq!(
            got,
            vec![
                (0, 1),
                (1, 1),
                (2, 2),
                (4, 2),
                (8, 1),
                (1024, 1),
                (1 << 63, 1)
            ]
        );
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(16);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), Some(16));
        assert_eq!(h.quantile(0.99), Some(16));
        assert_eq!(h.quantile(1.0), Some(1 << 20));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.min(), Some(4));
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut m = MetricsRegistry::new();
        m.add_counter("checks", 3);
        m.add_counter("checks", 2);
        m.set_counter("pools", 7);
        m.record("lat", 8);
        m.record("lat", 9);
        assert_eq!(m.counter("checks"), 5);
        assert_eq!(m.counter("pools"), 7);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["checks", "pools"]);
    }
}
