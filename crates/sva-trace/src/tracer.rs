//! The [`Tracer`] trait and its two implementations.
//!
//! Instrumentation points in the VM are written as
//!
//! ```ignore
//! if T::ENABLED {
//!     self.tracer.record(ts, TraceEvent::...);
//! }
//! ```
//!
//! with `T: Tracer` a *type parameter* of the VM. For [`NullTracer`]
//! (`ENABLED = false`) the whole block is dead code after monomorphization
//! — no branch, no event construction, no timestamp read — which is the
//! "zero overhead when off" discipline: the traced and untraced VMs are
//! distinct compiled functions, and the untraced one is the pre-tracing
//! code, byte for byte in behaviour.

use std::collections::HashMap;

use crate::event::{EventClass, LookupLayer, TimedEvent, TraceEvent};
use crate::metrics::MetricsRegistry;
use crate::ring::{EventRing, RingConfig};

/// An instrumentation sink for VM and runtime events.
pub trait Tracer {
    /// Whether this tracer records anything. Instrumentation points guard
    /// on this associated constant so disabled tracing compiles away.
    const ENABLED: bool;

    /// Bitmask of [`EventClass`] bits this tracer consumes (build it from
    /// [`EventClass::bit`]). Instrumentation points for a class outside the
    /// mask guard with [`Tracer::wants`] and monomorphize away exactly like
    /// the `NullTracer` path — which is how the flight recorder stays off
    /// the per-instruction and per-check hot paths while still seeing
    /// every violation and unwind. Defaults to all classes.
    const WANTED: u16 = u16::MAX;

    /// Whether instrumentation for `class` should be compiled in. Both
    /// operands are associated constants, so each call site folds to
    /// `true` or `false` at monomorphization time.
    #[inline(always)]
    fn wants(class: EventClass) -> bool
    where
        Self: Sized,
    {
        Self::ENABLED && (Self::WANTED & class.bit()) != 0
    }

    /// Records one event at virtual-cycle timestamp `ts`.
    fn record(&mut self, ts: u64, event: TraceEvent);

    /// The most recent buffered events, oldest first — what a crash
    /// bundle embeds as the black-box timeline. Tracers without a buffer
    /// return nothing.
    fn recent_events(&self) -> Vec<TimedEvent> {
        Vec::new()
    }

    /// Supplies the guest function-name table (index = function id).
    fn note_function_names(&mut self, _names: &[String]) {}

    /// Supplies the metapool-name table (index = pool id).
    fn note_pool_names(&mut self, _names: &[String]) {}

    /// Notifies the tracer that the machine's state was replaced by a
    /// snapshot restore: `cycles` is the image's virtual-cycle counter, so
    /// every subsequent event timestamp continues on the *image's* clock,
    /// not the pre-restore one. The default does nothing.
    fn on_restore(&mut self, _cycles: u64) {}
}

/// The disabled tracer: every instrumentation point compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _ts: u64, _event: TraceEvent) {}
}

/// Cycle/count accumulator for one profile key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleCount {
    /// Occurrences.
    pub count: u64,
    /// Virtual cycles attributed.
    pub cycles: u64,
}

impl CycleCount {
    fn add(&mut self, cycles: u64) {
        self.count += 1;
        self.cycles += cycles;
    }
}

/// Per-pool lookup-layer and registration traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolProfile {
    /// Checks resolved by the singleton fast path (one live object).
    pub singleton_hits: u64,
    /// Checks resolved by the MRU cache.
    pub cache_hits: u64,
    /// Checks resolved by the page index.
    pub page_hits: u64,
    /// Checks that walked the splay tree.
    pub tree_walks: u64,
    /// Checks with no object lookup.
    pub no_lookup: u64,
    /// Check cycles attributed to this pool.
    pub check_cycles: u64,
    /// Object registrations.
    pub registrations: u64,
    /// Object drops.
    pub drops: u64,
}

impl PoolProfile {
    /// Total checks observed against this pool.
    pub fn checks(&self) -> u64 {
        self.singleton_hits + self.cache_hits + self.page_hits + self.tree_walks + self.no_lookup
    }
}

/// Per-check aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckProfile {
    /// Executions.
    pub count: u64,
    /// Executions that failed (at most one per run: a violation halts).
    pub failed: u64,
    /// Virtual cycles charged.
    pub cycles: u64,
}

/// Online flame-style aggregation. Fed every event as it is recorded, so
/// its totals survive ring-buffer wraparound: the ring holds the *recent*
/// event stream, the profile holds the *whole run's* attribution.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Cycles attributed per guest function (from `Inst` events).
    pub per_func: HashMap<u32, CycleCount>,
    /// Cycles attributed per opcode.
    pub per_opcode: HashMap<&'static str, CycleCount>,
    /// SVA-OS operation counts/cycles (from `OsExit`).
    pub per_os: HashMap<&'static str, CycleCount>,
    /// Syscall counts/latencies (from `SyscallExit`).
    pub per_syscall: HashMap<i64, CycleCount>,
    /// Run-time check aggregates.
    pub per_check: HashMap<&'static str, CheckProfile>,
    /// Per-pool lookup-layer breakdown.
    pub per_pool: HashMap<u32, PoolProfile>,
    /// Cycles attributed to instructions + interrupt delivery. Compared
    /// against the VM's final cycle counter this is the profile coverage;
    /// the instrumentation is built to keep it at ~100%.
    pub attributed_cycles: u64,
    /// Violations observed.
    pub violations: u64,
    /// Recovery unwinds observed (contained kernel-mode violations).
    pub recoveries: u64,
    /// Recovery domains pushed (`sva.recover.register`).
    pub domain_pushes: u64,
    /// Recovery domains popped (release or watchdog force-pop).
    pub domain_pops: u64,
    /// Quarantine transitions observed (quarantine or poison).
    pub quarantines: u64,
    /// Subsystem repairs observed (`sva.recover.repair`).
    pub repairs: u64,
    /// Probation transitions observed (`sva.recover.probation`).
    pub probations: u64,
}

impl Profile {
    fn absorb(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Inst { func, opcode, cost } => {
                self.per_func.entry(*func).or_default().add(*cost);
                self.per_opcode.entry(opcode).or_default().add(*cost);
                self.attributed_cycles += cost;
            }
            TraceEvent::OsEnter { .. } => {}
            TraceEvent::OsExit { op, cost } => {
                self.per_os.entry(op).or_default().add(*cost);
            }
            TraceEvent::Check {
                check,
                pool,
                layer,
                passed,
                cost,
            } => {
                let c = self.per_check.entry(check).or_default();
                c.count += 1;
                c.cycles += cost;
                if !passed {
                    c.failed += 1;
                }
                let p = self.per_pool.entry(*pool).or_default();
                p.check_cycles += cost;
                match layer {
                    LookupLayer::Singleton => p.singleton_hits += 1,
                    LookupLayer::Cache => p.cache_hits += 1,
                    LookupLayer::Page => p.page_hits += 1,
                    LookupLayer::Tree => p.tree_walks += 1,
                    LookupLayer::None => p.no_lookup += 1,
                }
            }
            TraceEvent::PoolReg { pool, .. } => {
                self.per_pool.entry(*pool).or_default().registrations += 1;
            }
            TraceEvent::PoolDrop { pool, .. } => {
                self.per_pool.entry(*pool).or_default().drops += 1;
            }
            TraceEvent::SyscallEnter { .. } => {}
            TraceEvent::SyscallExit { num, cost } => {
                self.per_syscall.entry(*num).or_default().add(*cost);
            }
            TraceEvent::IrqDeliver { cost, .. } => {
                self.attributed_cycles += cost;
            }
            TraceEvent::Violation { .. } => {
                self.violations += 1;
            }
            TraceEvent::RecoverUnwind { .. } => {
                self.recoveries += 1;
            }
            TraceEvent::DomainPush { .. } => {
                self.domain_pushes += 1;
            }
            TraceEvent::DomainPop { .. } => {
                self.domain_pops += 1;
            }
            TraceEvent::PoolQuarantine { .. } => {
                self.quarantines += 1;
            }
            TraceEvent::Repair { .. } => {
                self.repairs += 1;
            }
            TraceEvent::Probation { .. } => {
                self.probations += 1;
            }
        }
    }

    /// Fraction of `total_cycles` the profile attributes (0..=1).
    pub fn coverage(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.attributed_cycles as f64 / total_cycles as f64
        }
    }
}

/// The live tracer: ring buffer + online profile + metrics registry.
#[derive(Clone, Debug)]
pub struct RingTracer {
    ring: EventRing,
    profile: Profile,
    metrics: MetricsRegistry,
    func_names: Vec<String>,
    pool_names: Vec<String>,
}

impl Default for RingTracer {
    fn default() -> Self {
        RingTracer::new(RingConfig::default())
    }
}

impl RingTracer {
    /// Creates a tracer with the given ring configuration.
    pub fn new(cfg: RingConfig) -> RingTracer {
        RingTracer {
            ring: EventRing::new(cfg),
            profile: Profile::default(),
            metrics: MetricsRegistry::new(),
            func_names: Vec::new(),
            pool_names: Vec::new(),
        }
    }

    /// The buffered event stream.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// The whole-run profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable metrics access (for folding in external counters like
    /// `CheckStats` at the end of a run).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Name of guest function `id` (falls back to `fn#id`).
    pub fn func_name(&self, id: u32) -> String {
        self.func_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("fn#{id}"))
    }

    /// Name of metapool `id` (`u32::MAX` means "no pool").
    pub fn pool_name(&self, id: u32) -> String {
        if id == u32::MAX {
            return "(static)".to_string();
        }
        self.pool_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("pool#{id}"))
    }
}

impl Tracer for RingTracer {
    const ENABLED: bool = true;

    fn record(&mut self, ts: u64, event: TraceEvent) {
        self.profile.absorb(&event);
        match &event {
            TraceEvent::Check { cost, .. } => self.metrics.record("check_cycles", *cost),
            TraceEvent::SyscallExit { cost, .. } => self.metrics.record("syscall_cycles", *cost),
            TraceEvent::OsExit { cost, .. } => self.metrics.record("os_op_cycles", *cost),
            _ => {}
        }
        self.ring.push(ts, event);
    }

    fn recent_events(&self) -> Vec<TimedEvent> {
        self.ring.iter().cloned().collect()
    }

    fn note_function_names(&mut self, names: &[String]) {
        self.func_names = names.to_vec();
    }

    fn note_pool_names(&mut self, names: &[String]) {
        self.pool_names = names.to_vec();
    }

    fn on_restore(&mut self, cycles: u64) {
        // Counted rather than traced as an event: the event stream stays
        // byte-comparable with an uninterrupted run of the same machine,
        // while exporters can still surface that a restore happened.
        self.metrics.add_counter("snapshot_restores", 1);
        self.metrics.set_counter("snapshot_restore_cycles", cycles);
    }
}

/// Iterate the buffered events (exporters use this).
impl<'a> IntoIterator for &'a RingTracer {
    type Item = &'a TimedEvent;
    type IntoIter = Box<dyn Iterator<Item = &'a TimedEvent> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.ring.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_disabled() {
        const { assert!(!NullTracer::ENABLED) };
        // And recording is a no-op (compiles, does nothing).
        NullTracer.record(0, TraceEvent::SyscallEnter { num: 1 });
    }

    #[test]
    fn profile_attributes_inst_and_irq_cycles() {
        let mut t = RingTracer::default();
        t.record(
            1,
            TraceEvent::Inst {
                func: 0,
                opcode: "add",
                cost: 1,
            },
        );
        t.record(
            2,
            TraceEvent::Inst {
                func: 0,
                opcode: "call",
                cost: 41,
            },
        );
        t.record(
            50,
            TraceEvent::IrqDeliver {
                vector: 3,
                cost: 40,
            },
        );
        let p = t.profile();
        assert_eq!(p.attributed_cycles, 82);
        assert_eq!(p.per_func[&0].count, 2);
        assert_eq!(p.per_func[&0].cycles, 42);
        assert_eq!(p.per_opcode["call"].cycles, 41);
        assert!((p.coverage(82) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_layers_and_checks() {
        let mut t = RingTracer::default();
        for (layer, passed) in [
            (LookupLayer::Cache, true),
            (LookupLayer::Page, true),
            (LookupLayer::Tree, false),
        ] {
            t.record(
                0,
                TraceEvent::Check {
                    check: "pchk.bounds",
                    pool: 2,
                    layer,
                    passed,
                    cost: 16,
                },
            );
        }
        t.record(
            0,
            TraceEvent::PoolReg {
                pool: 2,
                addr: 0x100,
                len: 8,
            },
        );
        t.record(
            0,
            TraceEvent::PoolDrop {
                pool: 2,
                addr: 0x100,
            },
        );
        let p = &t.profile().per_pool[&2];
        assert_eq!((p.cache_hits, p.page_hits, p.tree_walks), (1, 1, 1));
        assert_eq!(p.checks(), 3);
        assert_eq!((p.registrations, p.drops), (1, 1));
        let c = &t.profile().per_check["pchk.bounds"];
        assert_eq!((c.count, c.failed, c.cycles), (3, 1, 48));
        assert_eq!(t.metrics().histogram("check_cycles").unwrap().count(), 3);
    }

    #[test]
    fn name_tables_resolve_with_fallback() {
        let mut t = RingTracer::default();
        t.note_function_names(&["boot".to_string(), "main".to_string()]);
        t.note_pool_names(&["MP0".to_string()]);
        assert_eq!(t.func_name(1), "main");
        assert_eq!(t.func_name(9), "fn#9");
        assert_eq!(t.pool_name(0), "MP0");
        assert_eq!(t.pool_name(u32::MAX), "(static)");
        assert_eq!(t.pool_name(5), "pool#5");
    }

    #[test]
    fn syscall_latencies_hit_the_histogram() {
        let mut t = RingTracer::default();
        t.record(0, TraceEvent::SyscallEnter { num: 7 });
        t.record(120, TraceEvent::SyscallExit { num: 7, cost: 120 });
        assert_eq!(t.profile().per_syscall[&7].cycles, 120);
        let h = t.metrics().histogram("syscall_cycles").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(120));
    }
}
