//! The always-on flight recorder: a third tracer mode between
//! [`NullTracer`](crate::NullTracer) (blind) and
//! [`RingTracer`](crate::RingTracer) (full attribution, expensive).
//!
//! The [`FlightRecorder`] is what a production machine flies with. It
//! records only the high-signal event classes — syscall spans, IRQ
//! delivery, violations, and recovery traffic (unwinds, quarantines,
//! domain push/pop) — into a small fixed-size tail buffer with violations
//! and recovery events pinned against wraparound. Everything else
//! (per-instruction retirement, per-check execution, SVA-OS spans, pool
//! registration churn) is *outside* [`FlightRecorder::WANTED`], so those
//! instrumentation points monomorphize away exactly as they do for
//! `NullTracer`: the repeat-hit check path of a flight-recorded machine is
//! the same compiled code as an untraced one. Check *failures* are still
//! captured, because the VM emits a distinct `Violation` event when a
//! check fires.
//!
//! On top of the tail it keeps coarse sampled cycle attribution: 1 in
//! [`FlightConfig::sample_period`] syscall exits contributes its latency
//! to a per-syscall-number accumulator, and IRQ delivery is watched for
//! storms (longest burst of back-to-back deliveries with no intervening
//! syscall progress). That is deliberately crude — enough for a postmortem
//! to say "syscall 7 was where the cycles went and the timer was storming",
//! at a cost that never shows up on the hot path.

use std::collections::HashMap;

use crate::event::{EventClass, TimedEvent, TraceEvent};
use crate::ring::{EventRing, RingConfig};
use crate::tracer::{CycleCount, Tracer};

/// Flight-recorder construction options.
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Tail-buffer capacity (events). Small by design: this is a black
    /// box, not a profiler.
    pub capacity: usize,
    /// Side-buffer capacity for pinned (violation/recovery) records
    /// promoted on wraparound.
    pub pinned_capacity: usize,
    /// Sampling decimation for cycle attribution: 1 in `sample_period`
    /// syscall exits is attributed. 1 = attribute everything, 0 is
    /// treated as 1.
    pub sample_period: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 256,
            pinned_capacity: 128,
            sample_period: 8,
        }
    }
}

/// The always-on tail recorder. See the module docs for what it keeps.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    tail: EventRing,
    sample_period: u64,
    /// Sampled per-syscall-number latency attribution.
    sampled_syscalls: HashMap<i64, CycleCount>,
    /// Totals (cheap integer bumps; never decimated).
    syscalls: u64,
    irqs: u64,
    violations: u64,
    unwinds: u64,
    quarantines: u64,
    pools_poisoned: u64,
    forced_pops: u64,
    domain_pushes: u64,
    domain_pops: u64,
    restores: u64,
    /// IRQ-storm tracking: current and longest run of IRQ deliveries with
    /// no syscall completing in between.
    irq_burst: u64,
    irq_burst_max: u64,
    /// Self-healing traffic (DESIGN.md §4.8).
    repairs: u64,
    probations: u64,
    retirements: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightConfig::default())
    }
}

impl FlightRecorder {
    /// Creates a recorder with the given configuration.
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            tail: EventRing::new(RingConfig {
                capacity: cfg.capacity,
                pinned: vec![
                    EventClass::Violation,
                    EventClass::Recovery,
                    EventClass::Repair,
                ],
                pinned_capacity: cfg.pinned_capacity,
            }),
            sample_period: cfg.sample_period.max(1),
            sampled_syscalls: HashMap::new(),
            syscalls: 0,
            irqs: 0,
            violations: 0,
            unwinds: 0,
            quarantines: 0,
            pools_poisoned: 0,
            forced_pops: 0,
            domain_pushes: 0,
            domain_pops: 0,
            restores: 0,
            irq_burst: 0,
            irq_burst_max: 0,
            repairs: 0,
            probations: 0,
            retirements: 0,
        }
    }

    /// The tail buffer (oldest first via [`EventRing::iter`]).
    pub fn tail(&self) -> &EventRing {
        &self.tail
    }

    /// Sampled per-syscall cycle attribution (1 in
    /// [`FlightConfig::sample_period`] exits).
    pub fn sampled_syscalls(&self) -> &HashMap<i64, CycleCount> {
        &self.sampled_syscalls
    }

    /// Syscalls completed.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// IRQs delivered.
    pub fn irqs(&self) -> u64 {
        self.irqs
    }

    /// Safety violations observed.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Recovery unwinds observed.
    pub fn unwinds(&self) -> u64 {
        self.unwinds
    }

    /// Pool quarantine transitions observed.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Quarantine transitions that poisoned the pool permanently.
    pub fn pools_poisoned(&self) -> u64 {
        self.pools_poisoned
    }

    /// Watchdog force-pops observed (wedged recovery domains).
    pub fn forced_pops(&self) -> u64 {
        self.forced_pops
    }

    /// Recovery domains pushed.
    pub fn domain_pushes(&self) -> u64 {
        self.domain_pushes
    }

    /// Recovery domains popped.
    pub fn domain_pops(&self) -> u64 {
        self.domain_pops
    }

    /// Snapshot restores this recorder lived through.
    pub fn restores(&self) -> u64 {
        self.restores
    }

    /// Longest run of IRQ deliveries with no syscall completing between
    /// them — the "IRQ storm" indicator.
    pub fn irq_burst_max(&self) -> u64 {
        self.irq_burst_max
    }

    /// Subsystem repairs observed (`sva.recover.repair` teardown/reinit).
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Probation transitions observed (`sva.recover.probation`).
    pub fn probations(&self) -> u64 {
        self.probations
    }

    /// Probation transitions that permanently retired the subsystem
    /// (strike budget exhausted).
    pub fn retirements(&self) -> u64 {
        self.retirements
    }
}

impl Tracer for FlightRecorder {
    const ENABLED: bool = true;

    /// Only the high-signal classes. `Inst`/`Os`/`Check`/`Pool`
    /// instrumentation compiles away entirely — that exclusion, not any
    /// cleverness in `record`, is what keeps flight recording within noise
    /// of `NullTracer` on the repeat-hit check path (gated in
    /// `bench_gate`).
    const WANTED: u16 = EventClass::Syscall.bit()
        | EventClass::Irq.bit()
        | EventClass::Violation.bit()
        | EventClass::Recovery.bit()
        | EventClass::Repair.bit();

    fn record(&mut self, ts: u64, event: TraceEvent) {
        match &event {
            TraceEvent::SyscallExit { num, cost } => {
                self.syscalls += 1;
                self.irq_burst = 0;
                if self.syscalls.is_multiple_of(self.sample_period) {
                    let c = self.sampled_syscalls.entry(*num).or_default();
                    c.count += 1;
                    c.cycles += cost;
                }
            }
            TraceEvent::IrqDeliver { .. } => {
                self.irqs += 1;
                self.irq_burst += 1;
                self.irq_burst_max = self.irq_burst_max.max(self.irq_burst);
            }
            TraceEvent::Violation { .. } => self.violations += 1,
            TraceEvent::RecoverUnwind { .. } => self.unwinds += 1,
            TraceEvent::PoolQuarantine { poisoned, .. } => {
                self.quarantines += 1;
                if *poisoned {
                    self.pools_poisoned += 1;
                }
            }
            TraceEvent::DomainPush { .. } => self.domain_pushes += 1,
            TraceEvent::DomainPop { forced, .. } => {
                self.domain_pops += 1;
                if *forced {
                    self.forced_pops += 1;
                }
            }
            TraceEvent::Repair { .. } => self.repairs += 1,
            TraceEvent::Probation { verdict, .. } => {
                self.probations += 1;
                if *verdict == 2 {
                    self.retirements += 1;
                }
            }
            // Classes outside WANTED: unreachable via gated VM sites, but
            // record() is also callable directly — just buffer them.
            _ => {}
        }
        self.tail.push(ts, event);
    }

    fn recent_events(&self) -> Vec<TimedEvent> {
        self.tail.iter().cloned().collect()
    }

    fn on_restore(&mut self, _cycles: u64) {
        // The black box restarts at the restore point: the restored image
        // is a different timeline, and a crash after a restore should not
        // show pre-restore events as if they led up to it.
        let cfg = FlightConfig {
            capacity: self.tail.len().max(1).max(256),
            pinned_capacity: 128,
            sample_period: self.sample_period,
        };
        let restores = self.restores + 1;
        *self = FlightRecorder::new(cfg);
        self.restores = restores;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys_exit(num: i64, cost: u64) -> TraceEvent {
        TraceEvent::SyscallExit { num, cost }
    }

    #[test]
    fn wanted_mask_excludes_hot_classes() {
        assert!(FlightRecorder::wants(EventClass::Syscall));
        assert!(FlightRecorder::wants(EventClass::Irq));
        assert!(FlightRecorder::wants(EventClass::Violation));
        assert!(FlightRecorder::wants(EventClass::Recovery));
        assert!(!FlightRecorder::wants(EventClass::Inst));
        assert!(!FlightRecorder::wants(EventClass::Check));
        assert!(!FlightRecorder::wants(EventClass::Os));
        assert!(!FlightRecorder::wants(EventClass::Pool));
        // And the null/ring reference points.
        assert!(!crate::NullTracer::wants(EventClass::Violation));
        assert!(crate::RingTracer::wants(EventClass::Inst));
    }

    #[test]
    fn sampling_decimates_attribution_but_not_totals() {
        let mut f = FlightRecorder::new(FlightConfig {
            capacity: 16,
            pinned_capacity: 8,
            sample_period: 4,
        });
        for i in 0..16 {
            f.record(i, sys_exit(7, 100));
        }
        assert_eq!(f.syscalls(), 16);
        let c = f.sampled_syscalls()[&7];
        assert_eq!(c.count, 4); // 1 in 4
        assert_eq!(c.cycles, 400);
    }

    #[test]
    fn irq_storm_burst_resets_on_syscall_progress() {
        let mut f = FlightRecorder::default();
        for i in 0..5 {
            f.record(
                i,
                TraceEvent::IrqDeliver {
                    vector: 32,
                    cost: 40,
                },
            );
        }
        f.record(6, sys_exit(1, 10));
        for i in 7..10 {
            f.record(
                i,
                TraceEvent::IrqDeliver {
                    vector: 32,
                    cost: 40,
                },
            );
        }
        assert_eq!(f.irqs(), 8);
        assert_eq!(f.irq_burst_max(), 5);
    }

    #[test]
    fn violations_and_recovery_survive_tail_wraparound() {
        let mut f = FlightRecorder::new(FlightConfig {
            capacity: 4,
            pinned_capacity: 16,
            sample_period: 1,
        });
        f.record(
            0,
            TraceEvent::Violation {
                check: "pchk.lscheck".into(),
                pool: "MP1".into(),
                addr: 0xbad,
                detail: "oob".into(),
            },
        );
        f.record(
            1,
            TraceEvent::PoolQuarantine {
                pool: 1,
                violations: 1,
                poisoned: true,
            },
        );
        for i in 2..200 {
            f.record(i, sys_exit(3, 10));
        }
        let tail = f.recent_events();
        assert!(tail
            .iter()
            .any(|e| matches!(e.event, TraceEvent::Violation { .. })));
        assert!(tail
            .iter()
            .any(|e| matches!(e.event, TraceEvent::PoolQuarantine { .. })));
        assert_eq!(f.violations(), 1);
        assert_eq!(f.pools_poisoned(), 1);
        // Tail stays timestamp-ordered despite promotion.
        assert!(tail.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn restore_clears_the_black_box_but_counts_itself() {
        let mut f = FlightRecorder::default();
        f.record(0, sys_exit(1, 10));
        f.record(
            1,
            TraceEvent::IrqDeliver {
                vector: 32,
                cost: 40,
            },
        );
        f.on_restore(1000);
        assert!(f.recent_events().is_empty());
        assert_eq!(f.syscalls(), 0);
        assert_eq!(f.restores(), 1);
        f.record(1001, sys_exit(2, 20));
        assert_eq!(f.syscalls(), 1);
    }
}
