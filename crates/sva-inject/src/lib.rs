//! Deterministic machine-level fault injection for the SVM.
//!
//! A [`FaultPlan`] is a [`FaultHook`] that perturbs the machine at
//! user→kernel trap boundaries according to one of six [`FaultClass`]es.
//! Plans are pure functions of `(seed, trap_index)` — the same plan on
//! the same workload injects the same faults at the same traps, so a
//! campaign run replays bit-identically (DESIGN.md §4.3).

use std::sync::Mutex;

use sva_vm::{FaultAction, FaultHook, TrapInfo};

/// The injected fault classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Dereference a wild kernel pointer inside a syscall handler, and
    /// hand the handler a wild pointer argument.
    WildPtr,
    /// Skew the results of upcoming kernel-mode GEPs so derived pointers
    /// land out of bounds.
    GepSkew,
    /// Dereference an address previously freed from a metapool
    /// (use-after-free), learned live from pool drops.
    StaleUse,
    /// Corrupt a metapool's object metadata.
    PoolMetaCorrupt,
    /// Force upcoming object registrations to fail, as if allocator
    /// metadata ran out.
    AllocFail,
    /// Queue a burst of timer interrupts mid-syscall.
    IrqStorm,
}

impl FaultClass {
    /// Every class, in campaign order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::WildPtr,
        FaultClass::GepSkew,
        FaultClass::StaleUse,
        FaultClass::PoolMetaCorrupt,
        FaultClass::AllocFail,
        FaultClass::IrqStorm,
    ];

    /// Stable name used in campaign reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::WildPtr => "wild_ptr",
            FaultClass::GepSkew => "gep_skew",
            FaultClass::StaleUse => "stale_use",
            FaultClass::PoolMetaCorrupt => "pool_meta_corrupt",
            FaultClass::AllocFail => "alloc_fail",
            FaultClass::IrqStorm => "irq_storm",
        }
    }
}

/// splitmix64: tiny, high-quality, and fully deterministic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Wild kernel addresses land in this window (kernel heap-ish, but never
/// registered with any pool).
const WILD_BASE: u64 = 0x11f0_0000;

/// A good [`FaultPlan::with_defer`] depth: stale probes fire (and GEP
/// skews arm) this many kernel-mode instructions into the handler body
/// rather than at handler entry, so on a nested kernel the modelled
/// fault happens inside the per-syscall recovery domain the handler
/// pushes (DESIGN.md §4.5). Deep enough to clear the wrapper prologue —
/// including the health-table fence the wrapper evaluates *before*
/// registering its domain (DESIGN.md §4.8) — yet shallow enough that
/// even the shortest handlers are still in kernel mode (the post-handler
/// `health_probe_ok` bookkeeping extends that window). Deferred faults
/// count run-loop steps, so they are *not* invariant under
/// superinstruction fusion — plans that must replay identically across
/// opt levels keep the default immediate form.
pub const PROBE_DEFER: u64 = 16;

struct PlanState {
    injected: u64,
    /// Learned `(pool, addr)` pairs from recent drops (use-after-free
    /// candidates), newest last, capped.
    freed: Vec<(u32, u64)>,
}

/// A seeded, fully deterministic fault plan for one campaign run.
pub struct FaultPlan {
    class: FaultClass,
    seed: u64,
    /// Inject on every `period`-th trap.
    period: u64,
    /// Metapool ids with complete points-to info — the pools whose checks
    /// actually reject unknown addresses.
    targets: Vec<u32>,
    /// Kernel-mode instructions to defer stale probes by (0 = probe at
    /// handler entry, the historical behavior).
    defer: u64,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A plan injecting `class` faults every `period` traps. `targets`
    /// should list the ids of *complete* metapools (incomplete pools run
    /// reduced checks and pass unknown addresses, so probing them never
    /// trips a violation).
    pub fn new(class: FaultClass, seed: u64, period: u64, targets: Vec<u32>) -> FaultPlan {
        FaultPlan {
            class,
            seed,
            period: period.max(1),
            targets,
            defer: 0,
            state: Mutex::new(PlanState {
                injected: 0,
                freed: Vec::new(),
            }),
        }
    }

    /// Defers stale probes and GEP-skew arming `n` kernel-mode
    /// instructions into the handler body (see [`PROBE_DEFER`]).
    pub fn with_defer(mut self, n: u64) -> FaultPlan {
        self.defer = n;
        self
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().map(|s| s.injected).unwrap_or(0)
    }

    /// Replays a recorded pool-drop history into this plan's learned
    /// use-after-free candidates, exactly as if [`FaultHook::on_pool_drop`]
    /// had observed each drop live. Snapshot-forked campaigns boot once
    /// with a [`DropRecorder`] attached, then replay the boot-time drops
    /// into each fork's fresh plan so the fork starts with the same
    /// learned state a re-booted machine would have.
    pub fn replay_drops(&self, drops: &[(u32, u64)]) {
        for &(pool, addr) in drops {
            self.on_pool_drop(pool, addr);
        }
    }

    /// Exports the plan's mutable state (faults injected so far, learned
    /// use-after-free candidates) as plain data. A plan is a pure
    /// function of `(seed, trap_index, state)`, so a fresh plan with the
    /// same constructor arguments plus [`FaultPlan::restore_state`] of
    /// this image continues injecting exactly where this one would —
    /// which is what lets the upgrade differential campaign re-arm a
    /// twin machine restored from a mid-flight snapshot.
    pub fn state_image(&self) -> (u64, Vec<(u32, u64)>) {
        match self.state.lock() {
            Ok(s) => (s.injected, s.freed.clone()),
            Err(_) => (0, Vec::new()),
        }
    }

    /// Overwrites the plan's mutable state with a [`FaultPlan::state_image`]
    /// export. The constructor arguments (class, seed, period, targets,
    /// defer) are *not* part of the image — the twin must be built with
    /// the same ones, exactly as a restored machine must be built from
    /// the same module.
    pub fn restore_state(&self, image: (u64, Vec<(u32, u64)>)) {
        if let Ok(mut s) = self.state.lock() {
            s.injected = image.0;
            s.freed = image.1;
        }
    }

    fn target(&self, r: u64) -> Option<u32> {
        if self.targets.is_empty() {
            None
        } else {
            Some(self.targets[(r % self.targets.len() as u64) as usize])
        }
    }
}

impl FaultHook for FaultPlan {
    fn on_trap(&self, info: &TrapInfo<'_>) -> FaultAction {
        if info.trap_index % self.period != self.period - 1 {
            return FaultAction::default();
        }
        let r = splitmix64(self.seed ^ info.trap_index.wrapping_mul(0x51ed));
        let mut action = FaultAction::default();
        match self.class {
            FaultClass::WildPtr => {
                let wild = WILD_BASE + (r & 0xf_fff8);
                if let Some(pool) = self.target(r >> 20) {
                    action.probe_stale = Some((pool, wild));
                }
                if !info.args.is_empty() {
                    action.mutate_args = vec![(r as usize % info.args.len(), wild)];
                }
            }
            FaultClass::GepSkew => {
                let count = 1 + (r % 4) as u32;
                let delta = 0x4000 + (r >> 8 & 0x3ff8) as i64;
                action.gep_skew = Some((count, if r & 1 == 0 { delta } else { -delta }));
            }
            FaultClass::StaleUse => {
                let mut st = self.state.lock().unwrap();
                if let Some(&(pool, addr)) = st.freed.last() {
                    st.freed.pop();
                    action.probe_stale = Some((pool, addr));
                } else if let Some(pool) = self.target(r) {
                    // Nothing freed yet: degrade to a wild probe so the
                    // injection slot is not wasted.
                    action.probe_stale = Some((pool, WILD_BASE + (r & 0xfff8)));
                }
            }
            FaultClass::PoolMetaCorrupt => {
                if let Some(pool) = self.target(r) {
                    action.corrupt_pool = Some((pool, r >> 16));
                }
            }
            FaultClass::AllocFail => {
                if let Some(pool) = self.target(r) {
                    action.fail_allocs = Some((pool, 1 + (r >> 16 & 3) as u32));
                }
            }
            FaultClass::IrqStorm => {
                action.raise_irqs = 1 + (r & 7) as u32;
            }
        }
        if action.probe_stale.is_some() || action.gep_skew.is_some() {
            action.probe_defer = self.defer;
        }
        let default = action.mutate_args.is_empty()
            && action.gep_skew.is_none()
            && action.probe_stale.is_none()
            && action.corrupt_pool.is_none()
            && action.fail_allocs.is_none()
            && action.raise_irqs == 0;
        if !default {
            if let Ok(mut st) = self.state.lock() {
                st.injected += 1;
            }
        }
        action
    }

    fn on_pool_drop(&self, pool: u32, addr: u64) {
        if self.class != FaultClass::StaleUse || !self.targets.contains(&pool) {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if st.freed.len() >= 64 {
            st.freed.remove(0);
        }
        st.freed.push((pool, addr));
    }
}

/// A passive [`FaultHook`] that injects nothing and records every pool
/// drop it observes. Snapshot-forked campaigns attach one during the
/// single boot so the boot-time drop history can be replayed (via
/// [`FaultPlan::replay_drops`]) into each fork's fresh plan — keeping a
/// forked run byte-identical to a freshly re-booted one even for the
/// drop-learning `StaleUse` class.
#[derive(Default)]
pub struct DropRecorder {
    drops: Mutex<Vec<(u32, u64)>>,
}

impl DropRecorder {
    /// An empty recorder.
    pub fn new() -> DropRecorder {
        DropRecorder::default()
    }

    /// The recorded `(pool, addr)` drops, in observation order.
    pub fn drops(&self) -> Vec<(u32, u64)> {
        self.drops.lock().map(|d| d.clone()).unwrap_or_default()
    }
}

impl FaultHook for DropRecorder {
    fn on_trap(&self, _info: &TrapInfo<'_>) -> FaultAction {
        FaultAction::default()
    }

    fn on_pool_drop(&self, pool: u32, addr: u64) {
        if let Ok(mut d) = self.drops.lock() {
            d.push((pool, addr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(idx: u64) -> (u64, Vec<u64>) {
        (idx, vec![1, 2, 3])
    }

    #[test]
    fn plans_are_deterministic_across_instances() {
        for class in FaultClass::ALL {
            let a = FaultPlan::new(class, 42, 3, vec![0, 2, 5]);
            let b = FaultPlan::new(class, 42, 3, vec![0, 2, 5]);
            for idx in 0..50 {
                let (trap_index, args) = info(idx);
                let ia = TrapInfo {
                    trap_index,
                    syscall: 4,
                    args: &args,
                };
                let ra = a.on_trap(&ia);
                let rb = b.on_trap(&ia);
                assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "{class:?} @ {idx}");
            }
            assert_eq!(a.injected(), b.injected());
            assert!(a.injected() > 0, "{class:?} never injected");
        }
    }

    #[test]
    fn injection_respects_the_period() {
        let p = FaultPlan::new(FaultClass::IrqStorm, 7, 5, vec![]);
        for idx in 0..20 {
            let (trap_index, args) = info(idx);
            let i = TrapInfo {
                trap_index,
                syscall: 1,
                args: &args,
            };
            let a = p.on_trap(&i);
            assert_eq!(a.raise_irqs > 0, idx % 5 == 4, "trap {idx}");
        }
        assert_eq!(p.injected(), 4);
    }

    #[test]
    fn stale_use_prefers_learned_addresses() {
        let p = FaultPlan::new(FaultClass::StaleUse, 9, 1, vec![3]);
        p.on_pool_drop(3, 0x1000);
        p.on_pool_drop(7, 0xdead); // not a target: ignored
        let args = [0u64; 2];
        let a = p.on_trap(&TrapInfo {
            trap_index: 0,
            syscall: 4,
            args: &args,
        });
        assert_eq!(a.probe_stale, Some((3, 0x1000)));
        // Learned address consumed; the next probe degrades to wild.
        let b = p.on_trap(&TrapInfo {
            trap_index: 1,
            syscall: 4,
            args: &args,
        });
        let (pool, addr) = b.probe_stale.unwrap();
        assert_eq!(pool, 3);
        assert!(addr >= WILD_BASE);
    }
}
