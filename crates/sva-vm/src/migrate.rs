//! Live-upgrade image migration (DESIGN.md §4.10).
//!
//! [`Vm::restore`] is deliberately strict: exact format version, exact
//! code identity. That is the right default for a *state* capture — but
//! the fleet story needs state to survive the software changing
//! underneath it: last night's golden snapshot must restore into
//! tonight's build, and a crash bundle captured by v(N) must replay on
//! v(N+1). This module is the deliberate, fail-closed bridge:
//!
//! * **Versioned upcasters.** A registry of per-version steps rewrites a
//!   v(N) image into v(N+1) form (appended-with-default stats words,
//!   pool poison attribution, single-vCPU identity, capture origin +
//!   code manifest). [`migrate`] chains them; a step that cannot carry a
//!   field forward fails closed with [`MigrateError::Incompatible`]
//!   naming that field — it never invents data.
//!
//! * **The `code_id` policy split.** A v4 image carries a
//!   [`crate::snapshot::CodeManifest`]: the module's surface fingerprint
//!   and per-function body hashes. A *rebuilt* kernel may adopt the
//!   image when its surface is identical (or a pure extension — new
//!   functions appended, nothing moved) **and** every function with a
//!   live frame in the image has a byte-identical body. Cold functions
//!   may differ — that is the live-patch case. Anything else (reordered
//!   functions, changed globals, a live function edited mid-flight)
//!   rejects with the first incompatible field named.
//!
//! * **Bundle migration.** `SVAB` crash bundles follow the same chain:
//!   legacy layouts are rewritten to the current one and the embedded
//!   snapshot is migrated along the way, so `svadbg --replay` works on
//!   bundles from older builds.
//!
//! Decoding is structural and fail-closed in the snapshot.rs tradition
//! (the mutation proptests in `tests/fuzz.rs` drive bit-flipped and
//! truncated images through [`migrate`]); sections whose wire layout
//! never changed across versions are carried verbatim as byte spans, so
//! migration cost is dominated by one pass over the image.

use std::collections::BTreeSet;

use sva_rt::{CheckStats, PoolImage, PoolSummary};
use sva_trace::Tracer;

use crate::bundle::{CrashBundle, CrashReason, DomainDump, BUNDLE_MAGIC, BUNDLE_VERSION};
use crate::snapshot::{
    fingerprint_words, fnv64, read_frames, read_icontext, read_manifest, read_origin,
    read_pool_image, read_recovery, read_saved_state, surface_fp_of, write_manifest,
    write_pool_image, CodeManifest, SnapshotError, FP_FIELDS, HEADER_LEN as SNAP_HEADER,
    ORIGIN_CHECKPOINT, R, SNAPSHOT_MAGIC, SNAPSHOT_VERSION, W,
};
use crate::vm::{Frame, Vm, VmStats};

/// The oldest snapshot format [`migrate`] can still read.
pub const OLDEST_SUPPORTED: u32 = 1;
/// The oldest bundle format [`migrate_bundle`] can still read.
pub const OLDEST_BUNDLE_SUPPORTED: u32 = 1;

/// Why an image could not be migrated. Migration never partially
/// applies and never invents state: any step that cannot carry a field
/// forward names it and stops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MigrateError {
    /// The image failed structural decoding (truncation, bad magic,
    /// checksum mismatch, malformed section).
    Image(SnapshotError),
    /// The image's format version is outside `[OLDEST_SUPPORTED,
    /// SNAPSHOT_VERSION]` (or the bundle equivalent) — including images
    /// from a *newer* build, which this build cannot interpret.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Newest version this build writes.
        newest: u32,
    },
    /// One migration step cannot carry a field forward (or backward).
    Incompatible {
        /// Step source version.
        from: u32,
        /// Step target version.
        to: u32,
        /// The first field that cannot be carried.
        field: &'static str,
        /// Human-readable specifics (pool / function names, values).
        detail: String,
    },
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::Image(e) => write!(f, "image rejected: {e}"),
            MigrateError::UnsupportedVersion { found, newest } => {
                write!(
                    f,
                    "format version {found} unsupported (this build migrates up to v{newest})"
                )
            }
            MigrateError::Incompatible {
                from,
                to,
                field,
                detail,
            } => write!(f, "cannot migrate v{from}→v{to}: field `{field}`: {detail}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<SnapshotError> for MigrateError {
    fn from(e: SnapshotError) -> MigrateError {
        MigrateError::Image(e)
    }
}

// ---------------------------------------------------------------------------
// Upcaster registry.
// ---------------------------------------------------------------------------

/// One registered upcaster: the version edge it rewrites and what it
/// does, for plan printing (`svadbg --migrate`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Upcaster {
    /// Source format version.
    pub from: u32,
    /// Target format version.
    pub to: u32,
    /// Short name (`"v1→v2"`).
    pub name: &'static str,
    /// What the step rewrites.
    pub summary: &'static str,
}

/// The registry, in chain order. `migrate` applies the suffix starting
/// at the image's version.
pub const UPCASTERS: [Upcaster; 3] = [
    Upcaster {
        from: 1,
        to: 2,
        name: "v1→v2",
        summary: "pool poison attribution (`poisoned_by`/`repairs`) and the five \
                  self-healing stats words, appended with zero defaults; fails \
                  closed on an already-poisoned pool (no attribution to invent)",
    },
    Upcaster {
        from: 2,
        to: 3,
        name: "v2→v3",
        summary: "single-vCPU identity: `vcpus=1` joins the config fingerprint \
                  and the payload gains `cpu_id=0`",
    },
    Upcaster {
        from: 3,
        to: 4,
        name: "v3→v4",
        summary: "capture origin (checkpoint) and the code manifest; a v3 image \
                  carries no manifest, so this step requires the restoring \
                  build to run the exact code the image was taken under",
    },
];

/// What a given artifact would take to reach the current formats, from
/// the header alone (no target machine needed). `svadbg --migrate`
/// prints this.
#[derive(Clone, Debug)]
pub struct MigrationPlan {
    /// `"snapshot"` or `"bundle"`.
    pub kind: &'static str,
    /// Format version in the header.
    pub version: u32,
    /// Version this build writes.
    pub target: u32,
    /// Code identity recorded in the artifact (snapshot header, bundle
    /// payload).
    pub code_id: u64,
    /// Upcaster chain the snapshot (or embedded snapshot) would take.
    pub steps: Vec<Upcaster>,
    /// For bundles: the bundle's own layout rewrite, if any.
    pub bundle_step: Option<String>,
}

/// What [`migrate`] actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Format version the image arrived at.
    pub from_version: u32,
    /// Names of the upcaster steps applied (empty when already current).
    pub steps: Vec<&'static str>,
    /// Whether the image was adopted across a `code_id` change
    /// (compatible-rebuild path).
    pub code_migrated: bool,
}

// ---------------------------------------------------------------------------
// Structural decode: version-variant sections typed, invariant sections
// carried as verbatim byte spans.
// ---------------------------------------------------------------------------

/// Stats-word field names appended after v1, for fail-closed downgrade
/// messages. Index 0 is stats word 17.
const STATS_V2_FIELDS: [&str; 5] = [
    "repairs",
    "pools_repaired",
    "probation_passed",
    "probation_failed",
    "subsys_retired",
];

struct MigImage<'a> {
    version: u32,
    code_id: u64,
    /// Config fingerprint words: 9 (v1/v2) or 10 (v3+).
    fp: Vec<u64>,
    /// Kernel memory through the interrupt table — layout-invariant
    /// across every supported version, carried verbatim.
    mid: &'a [u8],
    pools: Vec<PoolImage>,
    /// Function check-stats words + console — invariant, verbatim.
    func_console: &'a [u8],
    /// 17 (v1) or 22 (v2+) stats words.
    stats: Vec<u64>,
    /// Fuel through `trap_count` — invariant, verbatim.
    tail: &'a [u8],
    cpu_id: Option<u32>,
    origin: Option<u8>,
    manifest: Option<CodeManifest>,
    /// Function indices with at least one live frame anywhere in the
    /// image (thread, interrupt contexts, saved states, recovery stack).
    live_funcs: BTreeSet<u32>,
}

fn note_frames(live: &mut BTreeSet<u32>, frames: &[Frame]) {
    for f in frames {
        live.insert(f.func);
    }
}

/// Reads a v1 pool image (no `poisoned_by`/`repairs` on the wire) into
/// the current struct with zero defaults.
fn read_pool_image_v1(r: &mut R<'_>) -> Result<PoolImage, SnapshotError> {
    let name = r.str()?;
    let n = r.len("pool ranges")?;
    let mut ranges = Vec::with_capacity(n);
    for _ in 0..n {
        ranges.push((r.u64()?, r.u64()?));
    }
    let mut stats = [0u64; CheckStats::WORDS];
    for word in &mut stats {
        *word = r.u64()?;
    }
    let fast_path = r.bool()?;
    let singleton_path = r.bool()?;
    let mut mru = [None; 2];
    for slot in &mut mru {
        if r.bool()? {
            *slot = Some((r.u64()?, r.u64()?));
        }
    }
    Ok(PoolImage {
        name,
        ranges,
        stats,
        fast_path,
        singleton_path,
        mru,
        quiet_lookups: r.u32()?,
        last_layer: r.u8()?,
        quarantined: r.bool()?,
        poisoned: r.bool()?,
        violations: r.u32()?,
        scope_violations: r.u32()?,
        forced_reg_failures: r.u32()?,
        poisoned_by: 0,
        repairs: 0,
    })
}

/// Parses any supported header, returning `(version, code_id, payload)`.
fn split_image(image: &[u8]) -> Result<(u32, u64, &[u8]), MigrateError> {
    if image.len() < SNAP_HEADER {
        return Err(SnapshotError::Truncated {
            need: SNAP_HEADER,
            have: image.len(),
        }
        .into());
    }
    let magic: [u8; 4] = image[0..4].try_into().unwrap();
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic(magic).into());
    }
    let version = u32::from_le_bytes(image[4..8].try_into().unwrap());
    if !(OLDEST_SUPPORTED..=SNAPSHOT_VERSION).contains(&version) {
        return Err(MigrateError::UnsupportedVersion {
            found: version,
            newest: SNAPSHOT_VERSION,
        });
    }
    let code_id = u64::from_le_bytes(image[16..24].try_into().unwrap());
    let payload_len = u64::from_le_bytes(image[24..32].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(image[32..40].try_into().unwrap());
    if image.len() < SNAP_HEADER + payload_len {
        return Err(SnapshotError::Truncated {
            need: SNAP_HEADER + payload_len,
            have: image.len(),
        }
        .into());
    }
    let payload = &image[SNAP_HEADER..SNAP_HEADER + payload_len];
    let computed = fnv64(payload);
    if computed != checksum {
        return Err(SnapshotError::Corrupt {
            stored: checksum,
            computed,
        }
        .into());
    }
    Ok((version, code_id, payload))
}

fn decode(image: &[u8]) -> Result<MigImage<'_>, MigrateError> {
    let (version, code_id, payload) = split_image(image)?;
    let mut live_funcs = BTreeSet::new();
    let r = &mut R::new(payload);
    let nfp = if version >= 3 { 10 } else { 9 };
    let mut fp = Vec::with_capacity(nfp);
    for _ in 0..nfp {
        fp.push(r.u64()?);
    }
    // Memory through the interrupt table: walk structurally (to validate
    // and harvest live frame functions), carry verbatim.
    let mid_start = r.pos;
    r.sparse()?; // kernel
    let nspaces = r.len("address spaces")?;
    for _ in 0..nspaces {
        r.bool()?;
        r.sparse()?;
    }
    r.u32()?; // current_asid
    note_frames(&mut live_funcs, &read_frames(r)?); // thread frames
    r.u32()?; // thread.asid
    r.opt_u32()?; // thread.icid
    r.u64()?; // ksp
    r.u64()?; // usp
    r.bool()?; // fp_dirty
    let nic = r.len("interrupt contexts")?;
    for _ in 0..nic {
        note_frames(&mut live_funcs, &read_icontext(r)?.frames);
    }
    let n = r.len("saved integer states")?;
    for _ in 0..n {
        r.u64()?;
        note_frames(&mut live_funcs, &read_saved_state(r)?.frames);
    }
    let n = r.len("saved user states")?;
    for _ in 0..n {
        r.u64()?;
        note_frames(&mut live_funcs, &read_icontext(r)?.frames);
    }
    let n = r.len("syscall table")?;
    for _ in 0..n {
        r.i64()?;
        r.u32()?;
    }
    let n = r.len("interrupt table")?;
    for _ in 0..n {
        r.i64()?;
        r.u32()?;
    }
    let mid = &payload[mid_start..r.pos];
    // Pools: version-variant.
    let n = r.len("pool images")?;
    let mut pools = Vec::with_capacity(n);
    for _ in 0..n {
        pools.push(if version >= 2 {
            read_pool_image(r)?
        } else {
            read_pool_image_v1(r)?
        });
    }
    // Function stats + console: invariant.
    let fc_start = r.pos;
    for _ in 0..CheckStats::WORDS {
        r.u64()?;
    }
    r.bytes()?; // console
    let func_console = &payload[fc_start..r.pos];
    // Stats: 17 (v1) or 22 words.
    let nstats = if version >= 2 { 22 } else { 17 };
    let mut stats = Vec::with_capacity(nstats);
    for _ in 0..nstats {
        stats.push(r.u64()?);
    }
    // Fuel through trap_count: walk structurally, carry verbatim.
    let tail_start = r.pos;
    r.u64()?; // fuel
    if r.bool()? {
        r.u64()?; // halted code
    }
    let n = r.len("pending irqs")?;
    for _ in 0..n {
        r.i64()?;
    }
    let n = r.len("recovery stack")?;
    for _ in 0..n {
        note_frames(&mut live_funcs, &read_recovery(r)?.frames);
    }
    if r.bool()? {
        r.u32()?;
        r.i64()?;
    } // gep_skew
    if r.bool()? {
        r.u64()?;
        r.u32()?;
        r.u64()?;
    } // pending_probe
    if r.bool()? {
        r.u64()?;
        r.u32()?;
        r.i64()?;
    } // pending_skew
    r.u64()?; // call_floor
    r.u64()?; // trap_count
    let tail = &payload[tail_start..r.pos];
    let cpu_id = if version >= 3 { Some(r.u32()?) } else { None };
    let (origin, manifest) = if version >= 4 {
        (Some(read_origin(r)?), Some(read_manifest(r)?))
    } else {
        (None, None)
    };
    if r.pos != payload.len() {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing payload bytes",
            payload.len() - r.pos
        ))
        .into());
    }
    Ok(MigImage {
        version,
        code_id,
        fp,
        mid,
        pools,
        func_console,
        stats,
        tail,
        cpu_id,
        origin,
        manifest,
        live_funcs,
    })
}

/// Re-encodes a decoded image at format version `to`. The caller has
/// already stepped the in-memory fields to that version's shape.
fn encode_at(img: &MigImage<'_>, to: u32) -> Vec<u8> {
    let mut w = W::default();
    for &word in &img.fp {
        w.u64(word);
    }
    w.buf.extend_from_slice(img.mid);
    w.u64(img.pools.len() as u64);
    for p in &img.pools {
        if to >= 2 {
            write_pool_image(&mut w, p);
        } else {
            write_pool_image_v1(&mut w, p);
        }
    }
    w.buf.extend_from_slice(img.func_console);
    for &word in &img.stats {
        w.u64(word);
    }
    w.buf.extend_from_slice(img.tail);
    if let Some(cpu) = img.cpu_id {
        w.u32(cpu);
    }
    if to >= 4 {
        w.u8(img.origin.unwrap_or(ORIGIN_CHECKPOINT));
        write_manifest(
            &mut w,
            img.manifest.as_ref().expect("v4 image has a manifest"),
        );
    }
    let payload = w.buf;
    let mut out = Vec::with_capacity(SNAP_HEADER + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&to.to_le_bytes());
    let fp_bytes: Vec<u8> = img.fp.iter().flat_map(|w| w.to_le_bytes()).collect();
    out.extend_from_slice(&fnv64(&fp_bytes).to_le_bytes());
    out.extend_from_slice(&img.code_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn write_pool_image_v1(w: &mut W, img: &PoolImage) {
    w.str(&img.name);
    w.u64(img.ranges.len() as u64);
    for &(s, e) in &img.ranges {
        w.u64(s);
        w.u64(e);
    }
    for &word in &img.stats {
        w.u64(word);
    }
    w.bool(img.fast_path);
    w.bool(img.singleton_path);
    for slot in img.mru {
        match slot {
            Some((s, e)) => {
                w.bool(true);
                w.u64(s);
                w.u64(e);
            }
            None => w.bool(false),
        }
    }
    w.u32(img.quiet_lookups);
    w.u8(img.last_layer);
    w.bool(img.quarantined);
    w.bool(img.poisoned);
    w.u32(img.violations);
    w.u32(img.scope_violations);
    w.u32(img.forced_reg_failures);
}

// ---------------------------------------------------------------------------
// Upcast / downcast steps over the in-memory image.
// ---------------------------------------------------------------------------

/// What `migrate` needs to know about the restoring build.
struct TargetInfo {
    code_id: u64,
    manifest: CodeManifest,
    fp: [u64; FP_FIELDS.len()],
}

fn upcast(
    img: &mut MigImage<'_>,
    step: &Upcaster,
    target: Option<&TargetInfo>,
) -> Result<(), MigrateError> {
    match (step.from, step.to) {
        (1, 2) => {
            // v1 pools carry no poison attribution. Zero-defaulting the
            // new fields is only sound for pools that were never
            // poisoned; an already-poisoned pool would need an inventing
            // `poisoned_by`, so fail closed naming it.
            if let Some(p) = img.pools.iter().find(|p| p.poisoned) {
                return Err(MigrateError::Incompatible {
                    from: 1,
                    to: 2,
                    field: "poisoned_by",
                    detail: format!(
                        "pool `{}` is poisoned but a v1 image records no poisoning \
                         subsystem to attribute it to",
                        p.name
                    ),
                });
            }
            img.stats.extend_from_slice(&[0; 5]);
        }
        (2, 3) => {
            // Pre-SMP images are single-vCPU machines by construction.
            img.fp.push(1);
            img.cpu_id = Some(0);
        }
        (3, 4) => {
            // A v3 image has no manifest of its own code; the only sound
            // source is the restoring build — and only when it runs the
            // exact code the image was taken under. Cross-build adoption
            // of v3 images is therefore impossible by design.
            let t = target.ok_or_else(|| MigrateError::Incompatible {
                from: 3,
                to: 4,
                field: "code_manifest",
                detail: "reaching v4 requires the restoring machine's code manifest; \
                         migrate against a target build"
                    .into(),
            })?;
            if img.code_id != t.code_id {
                return Err(MigrateError::Incompatible {
                    from: 3,
                    to: 4,
                    field: "code_id",
                    detail: format!(
                        "a v3 image carries no code manifest, so it can only cross \
                         format versions onto the same build (image {:#x}, target {:#x})",
                        img.code_id, t.code_id
                    ),
                });
            }
            img.origin = Some(ORIGIN_CHECKPOINT);
            img.manifest = Some(t.manifest.clone());
        }
        _ => unreachable!("unregistered upcast {}→{}", step.from, step.to),
    }
    img.version = step.to;
    Ok(())
}

fn downcast(img: &mut MigImage<'_>, from: u32) -> Result<(), MigrateError> {
    let to = from - 1;
    match from {
        4 => {
            img.origin = None;
            img.manifest = None;
        }
        3 => {
            if img.fp.get(9).copied() != Some(1) {
                return Err(MigrateError::Incompatible {
                    from,
                    to,
                    field: "vcpus",
                    detail: format!(
                        "v2 images are single-vCPU; this machine had vcpus={}",
                        img.fp.get(9).copied().unwrap_or(0)
                    ),
                });
            }
            if img.cpu_id != Some(0) {
                return Err(MigrateError::Incompatible {
                    from,
                    to,
                    field: "cpu_id",
                    detail: format!(
                        "v2 images have no vCPU identity; this one was vCPU {}",
                        img.cpu_id.unwrap_or(0)
                    ),
                });
            }
            img.fp.truncate(9);
            img.cpu_id = None;
        }
        2 => {
            for (i, name) in STATS_V2_FIELDS.iter().enumerate() {
                if img.stats[17 + i] != 0 {
                    return Err(MigrateError::Incompatible {
                        from,
                        to,
                        field: name,
                        detail: format!(
                            "v1 images have no `{name}` stats word; this machine counted {}",
                            img.stats[17 + i]
                        ),
                    });
                }
            }
            if let Some(p) = img
                .pools
                .iter()
                .find(|p| p.poisoned_by != 0 || p.repairs != 0)
            {
                return Err(MigrateError::Incompatible {
                    from,
                    to,
                    field: if p.poisoned_by != 0 {
                        "poisoned_by"
                    } else {
                        "repairs"
                    },
                    detail: format!(
                        "pool `{}` carries poison attribution / repair history a v1 \
                         image cannot express",
                        p.name
                    ),
                });
            }
            img.stats.truncate(17);
        }
        _ => unreachable!("no downcast from v{from}"),
    }
    img.version = to;
    Ok(())
}

/// Adopts the image onto a *different* build: sound only when the
/// rebuild kept the module surface (exactly, or extended it purely by
/// appending functions — indices, global addresses and dispatch tables
/// stay meaningful) and every function with a live frame kept its body.
fn adopt_code(img: &mut MigImage<'_>, t: &TargetInfo) -> Result<(), MigrateError> {
    let v = SNAPSHOT_VERSION;
    let m = img.manifest.as_ref().expect("v4 image has a manifest");
    if m.surface_fp != t.manifest.surface_fp {
        // Not the same surface: a pure append is still adoptable.
        if m.globals_fp != t.manifest.globals_fp {
            return Err(MigrateError::Incompatible {
                from: v,
                to: v,
                field: "module_header",
                detail: format!(
                    "globals / struct layouts / allocators differ across builds \
                     (image {:#x}, target {:#x}); global addresses baked into the \
                     memory image would be wrong",
                    m.globals_fp, t.manifest.globals_fp
                ),
            });
        }
        if m.funcs.len() > t.manifest.funcs.len() {
            return Err(MigrateError::Incompatible {
                from: v,
                to: v,
                field: "function_count",
                detail: format!(
                    "image build has {} functions, target only {} — functions were \
                     removed, which would dangle dispatch entries",
                    m.funcs.len(),
                    t.manifest.funcs.len()
                ),
            });
        }
        if let Some((i, (a, b))) = m
            .funcs
            .iter()
            .zip(&t.manifest.funcs)
            .enumerate()
            .find(|(_, (a, b))| a.name != b.name || a.sig_fp != b.sig_fp)
        {
            return Err(MigrateError::Incompatible {
                from: v,
                to: v,
                field: "function_surface",
                detail: format!(
                    "function #{i} is `@{}` in the image build but `@{}` (or a \
                     different signature) in the target — indices baked into frames \
                     and dispatch tables would be remapped unsoundly",
                    a.name, b.name
                ),
            });
        }
        // Prefix holds: recompute what the image's surface would hash to
        // under the target's header, as a final consistency check.
        debug_assert_eq!(
            surface_fp_of(m.globals_fp, &m.funcs),
            m.surface_fp,
            "manifest surface_fp is self-consistent"
        );
    }
    // Live frames pin function bodies: a frame's pc/block indices only
    // mean anything in the body they were captured in.
    for &idx in &img.live_funcs {
        let old = m
            .funcs
            .get(idx as usize)
            .ok_or_else(|| MigrateError::Incompatible {
                from: v,
                to: v,
                field: "live_function",
                detail: format!(
                    "a frame references function #{idx}, outside the image's {}-entry manifest",
                    m.funcs.len()
                ),
            })?;
        let new = &t.manifest.funcs[idx as usize];
        if old.body_hash != new.body_hash {
            return Err(MigrateError::Incompatible {
                from: v,
                to: v,
                field: "live_function",
                detail: format!(
                    "`@{}` has a live frame in the image but its body changed across \
                     builds; only cold functions may be patched",
                    old.name
                ),
            });
        }
    }
    img.code_id = t.code_id;
    img.manifest = Some(t.manifest.clone());
    // `fused_sites` is code-derived, not config: adopt the target's.
    img.fp[7] = t.fp[7];
    Ok(())
}

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

impl<T: Tracer> Vm<T> {
    fn target_info(&self) -> TargetInfo {
        TargetInfo {
            code_id: self.code_identity(),
            manifest: self.code.manifest().clone(),
            fp: fingerprint_words(&self.cfg, self.fused_sites()),
        }
    }

    /// Restores an image of *any* supported version, migrating it to the
    /// current format (and across a compatible rebuild) first. The
    /// strictness split: [`Vm::restore`] takes exactly what this build
    /// wrote; `restore_migrated` is the deliberate upgrade path.
    pub fn restore_migrated(&mut self, image: &[u8]) -> Result<MigrationReport, MigrateError> {
        let (bytes, report) = migrate(self, image)?;
        self.restore(&bytes)?;
        Ok(report)
    }
}

/// Rewrites `image` (any supported snapshot version) into the current
/// format for the `target` machine, chaining [`UPCASTERS`] and — when
/// the image was taken under a different build — the compatible-rebuild
/// adoption policy. Returns the rewritten image and a report of the
/// steps taken. Idempotent: an image already at the current version
/// under the same code is returned byte-identically.
pub fn migrate<T: Tracer>(
    target: &Vm<T>,
    image: &[u8],
) -> Result<(Vec<u8>, MigrationReport), MigrateError> {
    let mut img = decode(image)?;
    let t = target.target_info();
    let mut report = MigrationReport {
        from_version: img.version,
        ..Default::default()
    };
    if img.version == SNAPSHOT_VERSION && img.code_id == t.code_id {
        return Ok((image.to_vec(), report));
    }
    let start = img.version;
    for step in UPCASTERS.iter().filter(|s| s.from >= start) {
        upcast(&mut img, step, Some(&t))?;
        report.steps.push(step.name);
    }
    if img.code_id != t.code_id {
        adopt_code(&mut img, &t)?;
        report.code_migrated = true;
    }
    Ok((encode_at(&img, SNAPSHOT_VERSION), report))
}

/// Re-encodes a snapshot at format version `to`, upcasting or
/// downcasting as needed — the compat tool behind the composition
/// proptests and the differential campaign's cross-version twins.
/// Upcasting to v4 needs a target build ([`migrate`]); this function
/// handles every other edge and fails closed (naming the field) on
/// state an older format cannot express.
pub fn reencode_at(image: &[u8], to: u32) -> Result<Vec<u8>, MigrateError> {
    if !(OLDEST_SUPPORTED..=SNAPSHOT_VERSION).contains(&to) {
        return Err(MigrateError::UnsupportedVersion {
            found: to,
            newest: SNAPSHOT_VERSION,
        });
    }
    let mut img = decode(image)?;
    if to == SNAPSHOT_VERSION && img.version != SNAPSHOT_VERSION {
        return Err(MigrateError::Incompatible {
            from: img.version,
            to,
            field: "code_manifest",
            detail: "upcasting to the current version requires a target build; \
                     use `migrate`"
                .into(),
        });
    }
    while img.version > to {
        let from = img.version;
        downcast(&mut img, from)?;
    }
    while img.version < to {
        let step = UPCASTERS
            .iter()
            .find(|s| s.from == img.version)
            .expect("contiguous registry");
        upcast(&mut img, step, None)?;
    }
    Ok(encode_at(&img, to))
}

/// Header-level migration plan for a snapshot or bundle file — what
/// `svadbg --migrate` prints. Validates magic, version and checksum;
/// for bundles, decodes the payload far enough to reach the embedded
/// snapshot's version.
pub fn plan(bytes: &[u8]) -> Result<MigrationPlan, MigrateError> {
    if bytes.len() >= 4 && bytes[0..4] == BUNDLE_MAGIC {
        let (bversion, bundle) = decode_bundle_any(bytes)?;
        let (sversion, code_id, _) = split_image(&bundle.snapshot)?;
        return Ok(MigrationPlan {
            kind: "bundle",
            version: bversion,
            target: BUNDLE_VERSION,
            code_id,
            steps: UPCASTERS
                .iter()
                .filter(|s| s.from >= sversion)
                .copied()
                .collect(),
            bundle_step: (bversion != BUNDLE_VERSION).then(|| {
                format!(
                    "SVAB v{bversion}→v{BUNDLE_VERSION}: widen config fingerprint \
                     and stats block, default vCPU id / pool repair counters"
                )
            }),
        });
    }
    let (version, code_id, _) = split_image(bytes)?;
    Ok(MigrationPlan {
        kind: "snapshot",
        version,
        target: SNAPSHOT_VERSION,
        code_id,
        steps: UPCASTERS
            .iter()
            .filter(|s| s.from >= version)
            .copied()
            .collect(),
        bundle_step: None,
    })
}

// ---------------------------------------------------------------------------
// Bundle migration.
// ---------------------------------------------------------------------------

/// Decodes an `SVAB` bundle of any supported version into the current
/// in-memory form (legacy fields defaulted exactly like the snapshot
/// upcasters do), returning the wire version alongside.
fn decode_bundle_any(bytes: &[u8]) -> Result<(u32, CrashBundle), MigrateError> {
    const BUNDLE_HEADER: usize = 24;
    let err = |e: SnapshotError| MigrateError::Image(e);
    if bytes.len() < BUNDLE_HEADER {
        return Err(err(SnapshotError::Truncated {
            need: BUNDLE_HEADER,
            have: bytes.len(),
        }));
    }
    let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if magic != BUNDLE_MAGIC {
        return Err(err(SnapshotError::BadMagic(magic)));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if !(OLDEST_BUNDLE_SUPPORTED..=BUNDLE_VERSION).contains(&version) {
        return Err(MigrateError::UnsupportedVersion {
            found: version,
            newest: BUNDLE_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if bytes.len() < BUNDLE_HEADER + payload_len {
        return Err(err(SnapshotError::Truncated {
            need: BUNDLE_HEADER + payload_len,
            have: bytes.len(),
        }));
    }
    let payload = &bytes[BUNDLE_HEADER..BUNDLE_HEADER + payload_len];
    let computed = fnv64(payload);
    if computed != checksum {
        return Err(err(SnapshotError::Corrupt {
            stored: checksum,
            computed,
        }));
    }
    let r = &mut R::new(payload);
    let reason_code = r.u8()?;
    let reason = CrashReason::from_code(reason_code).ok_or_else(|| {
        err(SnapshotError::Malformed(format!(
            "bad reason byte {reason_code}"
        )))
    })?;
    let halt_code = r.u64()?;
    let resume_code_raw = r.u64()?;
    let detail = r.str()?;
    let cpu = if version >= 3 { r.u32()? } else { 0 };
    let nfp = if version >= 3 { 10 } else { 9 };
    let mut config_words = [0u64; FP_FIELDS.len()];
    for w in config_words.iter_mut().take(nfp) {
        *w = r.u64()?;
    }
    if version < 3 {
        config_words[9] = 1; // pre-SMP bundles are single-vCPU machines
    }
    let code_id = r.u64()?;
    let nstats = if version >= 2 { 22 } else { 17 };
    let mut stat_words = [0u64; 22];
    for w in stat_words.iter_mut().take(nstats) {
        *w = r.u64()?;
    }
    let stats: VmStats = crate::snapshot::stats_from_words(stat_words);
    let console = r.bytes()?;
    let ndomains = r.len("domains")?;
    let mut domains = Vec::with_capacity(ndomains);
    for _ in 0..ndomains {
        let subsys = r.u64()?;
        let fuel = r.u64()?;
        let npools = r.len("domain quarantined pools")?;
        let mut quarantined_pools = Vec::with_capacity(npools);
        for _ in 0..npools {
            quarantined_pools.push(r.u32()?);
        }
        domains.push(DomainDump {
            subsys,
            fuel,
            quarantined_pools,
        });
    }
    let npools = r.len("pool summaries")?;
    let mut pools = Vec::with_capacity(npools);
    for _ in 0..npools {
        pools.push(PoolSummary {
            id: r.u32()?,
            name: r.str()?,
            complete: r.bool()?,
            live_objects: r.u64()?,
            checks: r.u64()?,
            violations: r.u32()?,
            quarantined: r.bool()?,
            poisoned: r.bool()?,
            repairs: if version >= 2 { r.u32()? } else { 0 },
        });
    }
    let nhealth = r.len("health entries")?;
    let mut health = Vec::with_capacity(nhealth);
    for _ in 0..nhealth {
        health.push((r.u64()?, r.u64()?));
    }
    let jsonl = r.bytes()?;
    let jsonl = String::from_utf8(jsonl)
        .map_err(|_| err(SnapshotError::Malformed("non-UTF-8 flight tail".into())))?;
    let mut flight = Vec::new();
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        flight.push(sva_trace::TimedEvent::from_json(line).ok_or_else(|| {
            err(SnapshotError::Malformed(format!(
                "unparseable flight event: {line}"
            )))
        })?);
    }
    let snapshot = r.bytes()?;
    if r.pos != payload.len() {
        return Err(err(SnapshotError::Malformed(format!(
            "{} trailing payload bytes",
            payload.len() - r.pos
        ))));
    }
    Ok((
        version,
        CrashBundle {
            reason,
            halt_code,
            resume_code_raw,
            detail,
            cpu,
            config_words,
            code_id,
            stats,
            console,
            domains,
            pools,
            health,
            flight,
            snapshot,
        },
    ))
}

/// Rewrites an `SVAB` crash bundle of any supported version into the
/// current bundle format for the `target` build, migrating the embedded
/// snapshot along the way (so `svadbg --replay` works on bundles from
/// older builds). Idempotent like [`migrate`].
pub fn migrate_bundle<T: Tracer>(
    target: &Vm<T>,
    bytes: &[u8],
) -> Result<(Vec<u8>, MigrationReport), MigrateError> {
    let (version, mut bundle) = decode_bundle_any(bytes)?;
    let (snap, mut report) = migrate(target, &bundle.snapshot)?;
    if version == BUNDLE_VERSION && report.steps.is_empty() && !report.code_migrated {
        return Ok((bytes.to_vec(), report));
    }
    bundle.snapshot = snap;
    if report.code_migrated {
        bundle.code_id = target.code_identity();
        // `fused_sites` is code-derived (same rewrite the snapshot took).
        bundle.config_words[7] = fingerprint_words(&target.cfg, target.fused_sites())[7];
    }
    report.from_version = version.min(report.from_version);
    Ok((bundle.to_bytes(), report))
}
