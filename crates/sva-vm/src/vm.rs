//! The Secure Virtual Machine.
//!
//! The SVM implements SVA "by performing bytecode verification,
//! translation, native code caching and authentication, and implementing
//! the SVA-OS instructions" (paper §3.4). This implementation:
//!
//! * loads a module, lays out globals in kernel memory and patches
//!   relocations;
//! * **translates** bytecode to a pre-resolved flat instruction stream
//!   (the "native code cache"), signed together with the bytecode;
//! * executes either the flat code or the tree-walking interpreter — the
//!   two code generators behind the paper's GCC/LLVM comparison columns;
//! * implements every SVA-OS operation: interrupt contexts, integer/FP
//!   state save/restore, MMU mediation, I/O, syscall dispatch;
//! * when safety enforcement is on, runs the metapool checks from `sva-rt`
//!   and refuses to run modules that did not pass the bytecode verifier.

use std::collections::HashMap;
use std::sync::Arc;

use sva_ir::bytecode::SignedModule;
use sva_ir::{
    AtomicOp, BinOp, Callee, CastOp, GlobalInit, IPred, Inst, Intrinsic, Module, Operand,
    RelocTarget, Type, TypeId,
};
use sva_rt::{CheckError, MetaPool, MetaPoolTable};
use sva_trace::{EventClass, LookupLayer, NullTracer, TraceEvent, Tracer};

use crate::mem::{
    addr_func, extern_addr, func_addr, Memory, Mode, KSTACK_BASE, KSTACK_END, PAGE_SIZE, USER_BASE,
    USER_END, USER_SIZE,
};
use crate::opt::HotProfile;
use crate::resume::{check_kind_code, ResumeCode, RESUME_KIND_WATCHDOG};

/// Errors that abort VM execution.
#[derive(Clone, Debug)]
pub enum VmError {
    /// Access to unmapped memory (the hardware fault SAFECode relies on for
    /// uninitialized pointers).
    Fault {
        /// Offending address.
        addr: u64,
        /// Access length.
        len: u64,
    },
    /// User-mode access to privileged memory or instructions.
    Privilege {
        /// Offending address (or 0 for instruction traps).
        addr: u64,
    },
    /// Unknown or dead address space.
    BadAsid(u32),
    /// Integer division by zero.
    DivZero,
    /// `unreachable` executed.
    Unreachable,
    /// A run-time safety check fired (the SVA result).
    Safety(CheckError),
    /// Trap to an unregistered system call.
    UnknownSyscall(i64),
    /// Indirect call through a non-function address.
    BadIndirect(u64),
    /// Call to a declared-but-undefined external function.
    CallToExternal(String),
    /// Kernel or user stack exhausted.
    StackOverflow,
    /// Bad interrupt-context handle.
    BadIContext(u64),
    /// `llva.load.integer` from a buffer never saved to.
    BadStateBuffer(u64),
    /// Safety enforcement requested for a module without verifier output.
    NotVerified,
    /// Native-code cache signature mismatch (paper §3.4).
    BadSignature,
    /// Execution exceeded the configured fuel limit.
    OutOfFuel,
    /// `sva.recover.unwind` without a registered recovery context.
    NoRecoveryContext,
    /// Broken VM invariant surfaced as a structured error instead of a
    /// host panic (malformed inputs must never abort the host process).
    Internal(&'static str),
    /// Malformed module or unsupported construct.
    Unsupported(String),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Fault { addr, len } => write!(f, "memory fault at {addr:#x} (+{len})"),
            VmError::Privilege { addr } => write!(f, "privilege violation at {addr:#x}"),
            VmError::BadAsid(a) => write!(f, "bad address space {a}"),
            VmError::DivZero => write!(f, "division by zero"),
            VmError::Unreachable => write!(f, "unreachable executed"),
            VmError::Safety(e) => write!(f, "{e}"),
            VmError::UnknownSyscall(n) => write!(f, "unknown syscall {n}"),
            VmError::BadIndirect(a) => write!(f, "indirect call to {a:#x}"),
            VmError::CallToExternal(n) => write!(f, "call to external @{n}"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::BadIContext(i) => write!(f, "bad interrupt context {i}"),
            VmError::BadStateBuffer(a) => write!(f, "no integer state saved at {a:#x}"),
            VmError::NotVerified => write!(f, "safety enforcement requires verified bytecode"),
            VmError::BadSignature => write!(f, "native code cache signature mismatch"),
            VmError::OutOfFuel => write!(f, "execution exceeded fuel limit"),
            VmError::NoRecoveryContext => write!(f, "no recovery context registered"),
            VmError::Internal(s) => write!(f, "internal VM invariant violated: {s}"),
            VmError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Normal VM exits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmExit {
    /// The entry function returned this value.
    Returned(u64),
    /// `sva.abort(code)` halted the machine.
    Halted(u64),
}

/// The four kernel configurations of the paper's evaluation (§7.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelKind {
    /// "Linux-native": translated code, SVA-OS fast paths, no checks.
    Native,
    /// "Linux-SVA-GCC": tree-walking code generator, full SVA-OS, no checks.
    SvaGcc,
    /// "Linux-SVA-LLVM": translated code, full SVA-OS, no checks.
    SvaLlvm,
    /// "Linux-SVA-Safe": translated code, full SVA-OS, run-time checks.
    SvaSafe,
}

impl KernelKind {
    /// All four, in the paper's column order.
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Native,
        KernelKind::SvaGcc,
        KernelKind::SvaLlvm,
        KernelKind::SvaSafe,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Native => "native",
            KernelKind::SvaGcc => "sva-gcc",
            KernelKind::SvaLlvm => "sva-llvm",
            KernelKind::SvaSafe => "sva-safe",
        }
    }

    fn flat(self) -> bool {
        !matches!(self, KernelKind::SvaGcc)
    }

    fn fast_os(self) -> bool {
        matches!(self, KernelKind::Native)
    }

    /// Whether run-time safety checks execute.
    pub fn checks(self) -> bool {
        matches!(self, KernelKind::SvaSafe)
    }
}

/// VM construction options.
#[derive(Clone)]
pub struct VmConfig {
    /// Kernel configuration.
    pub kind: KernelKind,
    /// Key for the native-code-cache signature.
    pub sign_key: u64,
    /// Instruction budget (guards against runaway guests); `u64::MAX` for
    /// unlimited.
    pub fuel: u64,
    /// Layered lookup fast path in the metapool runtime (MRU cache + page
    /// index in front of the splay tree). On by default; benchmarks disable
    /// it to measure the splay-only baseline.
    pub fast_path: bool,
    /// Safety violations a metapool may absorb *within one recovery-domain
    /// scope* before it is permanently poisoned (DESIGN.md §4.3/§4.5).
    pub violation_budget: u32,
    /// Watchdog fuel per recovery domain (DESIGN.md §4.5): kernel-mode
    /// instructions the innermost domain may execute before the VM
    /// force-unwinds it with a watchdog resume code (kind 7), so a wedged
    /// handler cannot hang the machine. `u64::MAX` (the default) disables
    /// the watchdog.
    pub domain_fuel: u64,
    /// Deterministic fault-injection hook consulted at every user→kernel
    /// trap. `None` (the default) leaves the machine untouched.
    pub fault_hook: Option<Arc<dyn FaultHook>>,
    /// Optimizing-translation tier (DESIGN.md §4.4). `0` (the default)
    /// translates exactly as the baseline tier — no fusion, byte-identical
    /// flat code. `1` fuses only functions named hot by `hot_profile`
    /// (nothing without a profile). `2` and above fuse hot functions when a
    /// profile is present and *every* function otherwise.
    pub opt_level: u8,
    /// Profile-guided function selection for the optimizing tier, exported
    /// by `svaprof --profile-out` from a previous traced run.
    pub hot_profile: Option<Arc<HotProfile>>,
    /// Singleton-pool check elision in the metapool runtime: pools holding
    /// exactly one live object answer lookups with a two-compare bounds
    /// test instead of the layered MRU/page/splay path. On by default;
    /// benchmarks disable it to isolate the layered path.
    pub singleton_path: bool,
    /// Virtual CPUs of the machine (DESIGN.md §4.9). `1` (the default) is
    /// the classic single-threaded machine, bit-identical to the pre-SMP
    /// VM. At 2+ the [`crate::smp::SmpMachine`] runner forks one full VM
    /// per vCPU sharing the code image and an epoch-published metapool
    /// plane; each vCPU keeps its private MRU, check counters and trace
    /// rings, merged deterministically at halt.
    pub vcpus: u32,
    /// How SMP machines route queued interrupts to vCPUs (ignored at
    /// `vcpus == 1`).
    pub irq_affinity: IrqAffinity,
}

/// Interrupt routing policy of an SMP machine (DESIGN.md §4.9).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IrqAffinity {
    /// Fan queued IRQs out round-robin across vCPUs (timer ticks load-
    /// balance). The default.
    #[default]
    Spread,
    /// Pin every IRQ to one vCPU (classic IRQ-owning-CPU kernels).
    Pin(u32),
    /// Deliver each IRQ to *every* vCPU (TLB-shootdown-style broadcast).
    Broadcast,
}

impl std::fmt::Debug for VmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmConfig")
            .field("kind", &self.kind)
            .field("sign_key", &self.sign_key)
            .field("fuel", &self.fuel)
            .field("fast_path", &self.fast_path)
            .field("violation_budget", &self.violation_budget)
            .field("domain_fuel", &self.domain_fuel)
            .field("fault_hook", &self.fault_hook.is_some())
            .field("opt_level", &self.opt_level)
            .field("hot_profile", &self.hot_profile.is_some())
            .field("singleton_path", &self.singleton_path)
            .field("vcpus", &self.vcpus)
            .field("irq_affinity", &self.irq_affinity)
            .finish()
    }
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            kind: KernelKind::SvaSafe,
            sign_key: 0x57a,
            fuel: u64::MAX,
            fast_path: true,
            violation_budget: 3,
            domain_fuel: u64::MAX,
            fault_hook: None,
            opt_level: 0,
            hot_profile: None,
            singleton_path: true,
            vcpus: 1,
            irq_affinity: IrqAffinity::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection (DESIGN.md §4.3).
// ---------------------------------------------------------------------------

/// Observation point handed to a [`FaultHook`] on each user→kernel trap,
/// before the handler frame is built.
#[derive(Clone, Copy, Debug)]
pub struct TrapInfo<'a> {
    /// Ordinal of this trap since boot — the deterministic schedule key.
    pub trap_index: u64,
    /// Syscall number being dispatched.
    pub syscall: i64,
    /// Handler arguments as passed from user mode.
    pub args: &'a [u64],
}

/// What a [`FaultHook`] asks the machine to perturb at a trap boundary.
///
/// Every field defaults to "do nothing"; a hook returns a default action
/// to let the trap through untouched.
#[derive(Clone, Debug, Default)]
pub struct FaultAction {
    /// Overwrite handler argument `index` with `value` before the handler
    /// frame is built (wild kernel pointers, bad lengths).
    pub mutate_args: Vec<(usize, u64)>,
    /// Skew the result of the next `count` kernel-mode GEPs by `delta`
    /// bytes: `(count, delta)`.
    pub gep_skew: Option<(u32, i64)>,
    /// After handler entry, model a kernel dereference of the given
    /// address through the given pool's load/store check: `(pool, addr)`.
    /// A failing check takes the normal safety-violation path.
    pub probe_stale: Option<(u32, u64)>,
    /// Defer [`FaultAction::probe_stale`] by this many kernel-mode
    /// instructions instead of probing at handler entry, so the modelled
    /// dereference happens *inside* the handler body — after a nested
    /// kernel has pushed its per-syscall recovery domain. `0` keeps the
    /// probe at handler entry.
    pub probe_defer: u64,
    /// Corrupt the given pool's object metadata deterministically:
    /// `(pool, seed)`.
    pub corrupt_pool: Option<(u32, u64)>,
    /// Force the next `n` object registrations in the pool to fail as if
    /// allocation metadata ran out: `(pool, n)`.
    pub fail_allocs: Option<(u32, u32)>,
    /// Queue this many vector-0 interrupts (IRQ storm mid-syscall).
    pub raise_irqs: u32,
}

/// A deterministic fault-injection plan applied at VM boundaries.
///
/// Implementations must be pure functions of their construction seed and
/// the [`TrapInfo`] stream so campaigns replay bit-identically.
pub trait FaultHook: Send + Sync {
    /// Consulted on every user→kernel trap.
    fn on_trap(&self, info: &TrapInfo<'_>) -> FaultAction;
    /// Notified when an object is dropped from a pool, letting plans learn
    /// stale addresses for later use-after-free probes.
    fn on_pool_drop(&self, _pool: u32, _addr: u64) {}
}

// ---------------------------------------------------------------------------
// Flat ("translated native") code.
// ---------------------------------------------------------------------------

/// A pre-resolved operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Src {
    /// Register (SSA value slot).
    Reg(u32),
    /// Immediate (already encoded as u64 bits).
    Imm(u64),
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum FlatCallee {
    Direct(u32),
    External(u32),
    Indirect(Src),
    Intrinsic(Intrinsic),
}

#[derive(Clone, Debug)]
pub(crate) enum FlatOp {
    Bin {
        op: BinOp,
        w: u8,
        dst: u32,
        a: Src,
        b: Src,
    },
    ICmp {
        pred: IPred,
        w: u8,
        dst: u32,
        a: Src,
        b: Src,
    },
    Select {
        dst: u32,
        c: Src,
        a: Src,
        b: Src,
    },
    Cast {
        dst: u32,
        a: Src,
        op: CastOp,
        from_w: u8,
        to_w: u8,
    },
    Gep {
        dst: u32,
        base: Src,
        const_off: i64,
        dynamic: Vec<(Src, u64, u8)>,
    },
    Load {
        dst: u32,
        ptr: Src,
        w: u8,
    },
    Store {
        val: Src,
        ptr: Src,
        w: u8,
    },
    Alloca {
        dst: u32,
        elem: u64,
        count: Src,
        align: u64,
    },
    Call {
        dst: Option<u32>,
        callee: FlatCallee,
        args: Vec<Src>,
    },
    Phi {
        dst: u32,
        incomings: Vec<(u32, Src)>,
    },
    AtomicRmw {
        op: AtomicOp,
        dst: u32,
        ptr: Src,
        val: Src,
        w: u8,
    },
    CmpXchg {
        dst: u32,
        ptr: Src,
        expected: Src,
        new: Src,
        w: u8,
    },
    Fence,
    Br {
        pc: u32,
        from: u32,
    },
    CondBr {
        c: Src,
        tpc: u32,
        fpc: u32,
        from: u32,
    },
    Switch {
        v: Src,
        w: u8,
        dpc: u32,
        cases: Vec<(i64, u32)>,
        from: u32,
    },
    Ret {
        val: Option<Src>,
    },
    Unreachable,
    // ---- optimizing-tier ops (DESIGN.md §4.4) ----
    //
    // The fusion pass rewrites an adjacent pair in place: the first op of
    // the pair becomes the fused superinstruction and the second becomes
    // `Nop`, so every pc — block starts, branch targets — stays valid with
    // zero remapping. Fused handlers skip their own placeholder, so a
    // `Nop` is never dispatched on a legal path.
    /// Placeholder left where the second op of a fused pair used to be.
    Nop,
    /// Degenerate phi whose incomings all carry the same value.
    Mov {
        dst: u32,
        src: Src,
    },
    /// `gep` + `load` through the (otherwise dead) address register.
    FusedGepLoad {
        dst: u32,
        base: Src,
        const_off: i64,
        dynamic: Vec<(Src, u64, u8)>,
        w: u8,
    },
    /// `gep` + inserted pool check (`pchk.bounds` / `pchk.ls`) + `load`:
    /// the checked-kernel triple. The address register has exactly two
    /// reads — the check operand and the load pointer — both swallowed
    /// here, which is why the pairwise single-use rule alone could never
    /// fuse a checked GEP. The check runs unchanged against the
    /// skew-adjusted address (same cycle charge, same lookup and trace
    /// attribution, same failure path), then the load retires.
    FusedGepChkLoad {
        dst: u32,
        base: Src,
        const_off: i64,
        dynamic: Vec<(Src, u64, u8)>,
        w: u8,
        /// Metapool the swallowed check targets.
        mp: u32,
        /// `Some(src)` = `pchk.bounds(mp, src, addr)`; `None` =
        /// `pchk.ls(mp, addr)`.
        chk_src: Option<Src>,
    },
    /// `gep` + `store` through the (otherwise dead) address register.
    FusedGepStore {
        val: Src,
        base: Src,
        const_off: i64,
        dynamic: Vec<(Src, u64, u8)>,
        w: u8,
    },
    /// `icmp` + `condbr` on the (otherwise dead) flag register.
    FusedCmpBr {
        pred: IPred,
        w: u8,
        a: Src,
        b: Src,
        tpc: u32,
        fpc: u32,
        from: u32,
    },
    /// Two dependent `bin` ops; the intermediate register is dead.
    /// `t = a op1 b; dst = t op2 c` when `t_lhs`, else `dst = c op2 t`.
    FusedBin2 {
        op1: BinOp,
        w1: u8,
        a: Src,
        b: Src,
        op2: BinOp,
        w2: u8,
        c: Src,
        t_lhs: bool,
        dst: u32,
    },
}

impl FlatOp {
    /// Static opcode name for trace attribution. Intrinsic calls report
    /// the intrinsic name (`"pchk.bounds"`, `"sva.syscall"`, ...), which is
    /// where the interesting cycles live.
    fn opcode_name(&self) -> &'static str {
        match self {
            FlatOp::Bin { .. } => "bin",
            FlatOp::ICmp { .. } => "icmp",
            FlatOp::Select { .. } => "select",
            FlatOp::Cast { .. } => "cast",
            FlatOp::Gep { .. } => "gep",
            FlatOp::Load { .. } => "load",
            FlatOp::Store { .. } => "store",
            FlatOp::Alloca { .. } => "alloca",
            FlatOp::Call {
                callee: FlatCallee::Intrinsic(i),
                ..
            } => i.name(),
            FlatOp::Call { .. } => "call",
            FlatOp::Phi { .. } => "phi",
            FlatOp::AtomicRmw { .. } => "atomicrmw",
            FlatOp::CmpXchg { .. } => "cmpxchg",
            FlatOp::Fence => "fence",
            FlatOp::Br { .. } => "br",
            FlatOp::CondBr { .. } => "condbr",
            FlatOp::Switch { .. } => "switch",
            FlatOp::Ret { .. } => "ret",
            FlatOp::Unreachable => "unreachable",
            FlatOp::Nop => "nop",
            FlatOp::Mov { .. } => "mov",
            FlatOp::FusedGepLoad { .. } => "gep+load",
            FlatOp::FusedGepChkLoad { .. } => "gep+pchk+load",
            FlatOp::FusedGepStore { .. } => "gep+store",
            FlatOp::FusedCmpBr { .. } => "icmp+br",
            FlatOp::FusedBin2 { .. } => "bin+bin",
        }
    }
}

/// Tree-engine counterpart of [`FlatOp::opcode_name`].
fn inst_opcode_name(inst: &Inst) -> &'static str {
    match inst {
        Inst::Bin { .. } => "bin",
        Inst::ICmp { .. } => "icmp",
        Inst::Select { .. } => "select",
        Inst::Cast { .. } => "cast",
        Inst::Gep { .. } => "gep",
        Inst::Load { .. } => "load",
        Inst::Store { .. } => "store",
        Inst::Alloca { .. } => "alloca",
        Inst::Call {
            callee: Callee::Intrinsic(i),
            ..
        } => i.name(),
        Inst::Call { .. } => "call",
        Inst::Phi { .. } => "phi",
        Inst::AtomicRmw { .. } => "atomicrmw",
        Inst::CmpXchg { .. } => "cmpxchg",
        Inst::Fence => "fence",
        Inst::Br { .. } => "br",
        Inst::CondBr { .. } => "condbr",
        Inst::Switch { .. } => "switch",
        Inst::Ret { .. } => "ret",
        Inst::Unreachable => "unreachable",
    }
}

#[derive(Clone, Debug, Default)]
pub(crate) struct FlatFunc {
    pub ops: Vec<FlatOp>,
}

/// The loaded, immutable code image shared by the execution loop.
pub(crate) struct CodeImage {
    pub module: Module,
    pub flat: Vec<FlatFunc>,
    pub global_addr: Vec<u64>,
    /// Lazily computed code manifest (snapshot v4 / migration). Shared
    /// across forks through the `Arc`, so a machine family prints the
    /// module at most once no matter how many snapshots it takes.
    pub manifest: std::sync::OnceLock<crate::snapshot::CodeManifest>,
}

impl CodeImage {
    pub(crate) fn manifest(&self) -> &crate::snapshot::CodeManifest {
        self.manifest
            .get_or_init(|| crate::snapshot::compute_manifest(&self.module))
    }
}

// ---------------------------------------------------------------------------
// Execution state.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub func: u32,
    /// Flat pc (flat engine) or instruction cursor (tree engine:
    /// block/index packed by the engine).
    pub pc: u32,
    pub block: u32,
    pub idx: u32,
    pub prev_block: u32,
    pub regs: Vec<u64>,
    pub ret_dst: Option<u32>,
    pub mode: Mode,
    pub sp_saved: u64,
    /// Stack registrations to auto-drop on pop: `(metapool, addr)`.
    pub stack_regs: Vec<(u32, u64, u64)>,
}

/// Saved integer state (`llva.save.integer`, paper Table 1).
#[derive(Clone, Debug)]
pub(crate) struct SavedState {
    pub frames: Vec<Frame>,
    pub icid: Option<u32>,
    pub asid: u32,
    pub ksp: u64,
    pub kstack: Vec<u8>,
    pub save_dst: Option<u32>,
}

/// Recovery domain registered by `sva.recover.register` (setjmp-like;
/// DESIGN.md §4.3/§4.5). Domains form a stack: a kernel-mode safety
/// violation unwinds the thread to the *innermost* snapshot instead of
/// terminating the machine, and `sva.recover.release` (no arguments) pops
/// the innermost domain, ending the quarantine scope of every pool it
/// quarantined.
#[derive(Clone, Debug)]
pub(crate) struct RecoveryCtx {
    pub frames: Vec<Frame>,
    pub icid: Option<u32>,
    pub asid: u32,
    pub ksp: u64,
    pub usp: u64,
    pub kstack: Vec<u8>,
    /// Register that receives 0 at registration and the packed resume code
    /// on every unwind.
    pub dst: Option<u32>,
    /// Owning-subsystem id (`sva.recover.register` argument 0; purely
    /// attribution — surfaced in trace events and the blast-radius report).
    pub subsys: u64,
    /// Remaining watchdog fuel ([`VmConfig::domain_fuel`] at push). Ticks
    /// down once per kernel-mode instruction while this domain is
    /// innermost; at zero the VM force-unwinds the domain.
    pub fuel: u64,
    /// Metapools this domain quarantined (scoped containment): their
    /// scope ends — quarantine released, scoped budget reset — when the
    /// domain pops.
    pub quarantined_pools: Vec<u32>,
}

/// An interrupt context (paper §3.3): the interrupted control state handed
/// to the kernel on a trap.
#[derive(Clone, Debug)]
pub(crate) struct IContext {
    pub frames: Vec<Frame>,
    pub usp: u64,
    pub asid: u32,
    pub privileged: bool,
    pub result_dst: Option<u32>,
    /// Frame index (within `frames`) the syscall result belongs to; pushed
    /// signal handlers sit above it.
    pub result_frame: usize,
    pub live: bool,
    /// Tracing bookkeeping for syscall spans: `(syscall number, cycle
    /// counter at trap entry)`. Always `None` with tracing off.
    pub trace_sys: Option<(i64, u64)>,
}

#[derive(Clone, Debug)]
pub(crate) struct Thread {
    pub frames: Vec<Frame>,
    pub asid: u32,
    pub icid: Option<u32>,
    pub ksp: u64,
    pub usp: u64,
    pub fp_dirty: bool,
}

impl Thread {
    fn new() -> Self {
        Thread {
            frames: Vec::new(),
            asid: 0,
            icid: None,
            ksp: KSTACK_BASE,
            usp: USER_END - USTACK_SIZE,
            fp_dirty: false,
        }
    }
}

/// User stack size within each address space.
pub const USTACK_SIZE: u64 = 0x0001_0000; // 64 KiB

/// Execution statistics.
///
/// `PartialEq`/`Eq` exist so the tracer-equivalence tests can assert the
/// whole block byte-identical with tracing on and off.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct VmStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Virtual cycles (instructions plus SVA-OS ceremony costs).
    pub cycles: u64,
    /// Traps taken (syscalls from user mode).
    pub traps: u64,
    /// Known-bounds range checks executed (no splay lookup).
    pub range_checks: u64,
    /// Context switches (`llva.load.integer`).
    pub context_switches: u64,
    /// Hardware interrupts delivered.
    pub interrupts: u64,
    /// Metapool lookups answered by the MRU last-hit cache.
    pub cache_hits: u64,
    /// Metapool lookups resolved by the page-granular index.
    pub page_hits: u64,
    /// Metapool lookups that walked the splay tree.
    pub tree_walks: u64,
    /// Metapool lookups answered by the singleton-pool two-compare test.
    pub singleton_hits: u64,
    /// Kernel-mode safety violations absorbed by a recovery context.
    pub violations_recovered: u64,
    /// Metapools placed under quarantine after a violation.
    pub pools_quarantined: u64,
    /// Metapools permanently poisoned after exhausting their budget.
    pub pools_poisoned: u64,
    /// Recovery domains pushed (`sva.recover.register`).
    pub domains_pushed: u64,
    /// Recovery domains popped (no-argument `sva.recover.release` or a
    /// watchdog force-pop).
    pub domains_popped: u64,
    /// Wedged domains force-unwound by the fuel watchdog
    /// ([`VmConfig::domain_fuel`]).
    pub watchdog_unwinds: u64,
    /// Superinstructions dispatched by the optimizing tier. Each fused
    /// dispatch retires *two* instructions (so `instructions` is invariant
    /// under fusion) but charges one dispatch cycle instead of two.
    pub fused_execs: u64,
    /// `sva.recover.repair` invocations that repaired at least one pool.
    pub repairs: u64,
    /// Metapools unpoisoned and reinitialized across all repairs.
    pub pools_repaired: u64,
    /// Probation verdicts: subsystem passed probation (back to live).
    pub probation_passed: u64,
    /// Probation verdicts: subsystem re-poisoned during probation
    /// (re-degraded with doubled backoff).
    pub probation_failed: u64,
    /// Probation verdicts: strike budget exhausted, subsystem permanently
    /// retired.
    pub subsys_retired: u64,
}

impl VmStats {
    /// The fusion-invariant projection of the stats block: everything the
    /// optimizing tier is allowed to change — `cycles` (fusion saves one
    /// dispatch cycle per fused pair) and `fused_execs` itself — zeroed.
    /// The equivalence gates assert `opt0.equivalence_key() ==
    /// opt2.equivalence_key()` and separately that opt2 spent *fewer*
    /// cycles.
    pub fn equivalence_key(mut self) -> VmStats {
        self.cycles = 0;
        self.fused_execs = 0;
        self
    }

    /// Adds another stats block into this one (SMP per-vCPU merge). The
    /// exhaustive destructure makes adding a `VmStats` field without
    /// deciding its merge a compile error.
    pub fn fold(&mut self, o: &VmStats) {
        let VmStats {
            instructions,
            cycles,
            traps,
            range_checks,
            context_switches,
            interrupts,
            cache_hits,
            page_hits,
            tree_walks,
            singleton_hits,
            violations_recovered,
            pools_quarantined,
            pools_poisoned,
            domains_pushed,
            domains_popped,
            watchdog_unwinds,
            fused_execs,
            repairs,
            pools_repaired,
            probation_passed,
            probation_failed,
            subsys_retired,
        } = *o;
        self.instructions += instructions;
        self.cycles += cycles;
        self.traps += traps;
        self.range_checks += range_checks;
        self.context_switches += context_switches;
        self.interrupts += interrupts;
        self.cache_hits += cache_hits;
        self.page_hits += page_hits;
        self.tree_walks += tree_walks;
        self.singleton_hits += singleton_hits;
        self.violations_recovered += violations_recovered;
        self.pools_quarantined += pools_quarantined;
        self.pools_poisoned += pools_poisoned;
        self.domains_pushed += domains_pushed;
        self.domains_popped += domains_popped;
        self.watchdog_unwinds += watchdog_unwinds;
        self.fused_execs += fused_execs;
        self.repairs += repairs;
        self.pools_repaired += pools_repaired;
        self.probation_passed += probation_passed;
        self.probation_failed += probation_failed;
        self.subsys_retired += subsys_retired;
    }
}

/// The Secure Virtual Machine instance.
///
/// The `T: Tracer` parameter statically selects the instrumentation sink.
/// The default [`NullTracer`] has `Tracer::ENABLED = false`, so every
/// `if T::ENABLED { ... }` instrumentation block monomorphizes away and
/// the untraced VM is exactly the pre-tracing machine: same calibrated
/// cycle tables, same counters, no extra branches.
pub struct Vm<T: Tracer = NullTracer> {
    /// Simulated memory.
    pub mem: Memory,
    pub(crate) code: Arc<CodeImage>,
    pub(crate) cfg: VmConfig,
    pub(crate) thread: Thread,
    pub(crate) icontexts: Vec<IContext>,
    pub(crate) int_state: HashMap<u64, SavedState>,
    pub(crate) user_state: HashMap<u64, IContext>,
    pub(crate) syscalls: HashMap<i64, u32>,
    pub(crate) interrupts: HashMap<i64, u32>,
    /// Metapool run-time (live only under [`KernelKind::SvaSafe`]).
    pub pools: MetaPoolTable,
    /// Console output captured from `sva.print` / the console port.
    pub console: Vec<u8>,
    pub(crate) stats: VmStats,
    pub(crate) fuel: u64,
    pub(crate) halted: Option<u64>,
    pub(crate) pending_irq: std::collections::VecDeque<i64>,
    /// Stack of registered violation-recovery domains, innermost last.
    pub(crate) recovery: Vec<RecoveryCtx>,
    /// Armed GEP skew `(remaining count, delta)` from a fault action.
    pub(crate) gep_skew: Option<(u32, i64)>,
    /// Armed deferred stale probe `(countdown, pool, addr)` from a fault
    /// action; ticks per kernel-mode instruction and fires at zero.
    pub(crate) pending_probe: Option<(u64, u32, u64)>,
    /// Armed deferred GEP skew `(countdown, count, delta)`; ticks per
    /// kernel-mode instruction and arms `gep_skew` at zero.
    pub(crate) pending_skew: Option<(u64, u32, i64)>,
    /// Frame depth a host [`Vm::call`] started above: its run ends when
    /// the frame stack drops back to this floor (0 = no call active).
    pub(crate) call_floor: usize,
    /// User→kernel traps taken since boot (fault-plan schedule key).
    pub(crate) trap_count: u64,
    /// Reusable argument buffer for the hot `Call` path (avoids a fresh
    /// `Vec` allocation per call).
    pub(crate) argv_scratch: Vec<u64>,
    /// Fusion sites rewritten by the optimizing tier at load time.
    fused_sites: u32,
    /// This machine's virtual CPU id (`sva.cpu.id`). 0 on the classic
    /// single-threaded machine and on the boot vCPU; [`Vm::fork_for_cpu`]
    /// stamps the others.
    pub(crate) cpu_id: u32,
    /// Host-side crash-forensics capture state (opt-in, never part of a
    /// snapshot image).
    pub(crate) crash: crate::bundle::CrashCapture,
    /// Armed safe-point snapshot latch: `Some(n)` fires a mid-flight
    /// snapshot at the n-th next instruction boundary (DESIGN.md §4.10).
    /// Host-side intent, never serialized.
    pub(crate) snap_request: Option<u64>,
    /// The latched image, when no sink is attached.
    pub(crate) snap_pending: Option<Vec<u8>>,
    /// Where a fired latch delivers its image. The callback runs *inside*
    /// the interpreter loop at the safe point and may block — that is how
    /// `SmpMachine::quiesce` parks every vCPU at its boundary.
    pub(crate) snap_sink: Option<std::sync::Arc<dyn Fn(Vec<u8>) + Send + Sync>>,
    pub(crate) tracer: T,
}

impl Vm {
    /// Loads a module under the given configuration (untraced).
    ///
    /// Under [`KernelKind::SvaSafe`] the module must carry pool annotations
    /// (i.e. be the output of the verifier); other configurations accept
    /// plain modules.
    pub fn new(module: Module, cfg: VmConfig) -> Result<Vm, VmError> {
        Vm::with_tracer(module, cfg, NullTracer)
    }

    /// Loads a module with a hot-function profile driving the optimizing
    /// tier (untraced). Bumps `opt_level` to 2 when the configuration left
    /// it at the baseline 0, so passing a profile alone turns fusion on
    /// for exactly the profiled-hot functions.
    pub fn with_profile(
        module: Module,
        mut cfg: VmConfig,
        profile: HotProfile,
    ) -> Result<Vm, VmError> {
        if cfg.opt_level == 0 {
            cfg.opt_level = 2;
        }
        cfg.hot_profile = Some(Arc::new(profile));
        Vm::with_tracer(module, cfg, NullTracer)
    }
}

impl<T: Tracer> Vm<T> {
    /// Loads a module with an attached tracer. See [`Vm::new`] for the
    /// loading rules; the tracer additionally receives the module's
    /// function-name and metapool-name tables for exporters.
    pub fn with_tracer(module: Module, cfg: VmConfig, tracer: T) -> Result<Vm<T>, VmError> {
        if cfg.kind.checks() && module.pool_annotations.is_none() {
            return Err(VmError::NotVerified);
        }
        // Translation + authentication: encode, sign and verify the pair —
        // the offline-translation flow of §3.4.
        let sealed = SignedModule::seal(&module, cfg.sign_key);
        if sealed.open(cfg.sign_key).is_err() {
            return Err(VmError::BadSignature);
        }

        let mut mem = Memory::new();
        let mut global_addr = Vec::with_capacity(module.globals.len());
        let mut cursor = crate::mem::KERN_BASE + 0x1000;
        for g in &module.globals {
            let layout = module.types.layout(g.ty);
            cursor = round_up(cursor, layout.align.max(8));
            global_addr.push(cursor);
            cursor += layout.size;
        }
        // Initialize global contents.
        for (gi, g) in module.globals.iter().enumerate() {
            let addr = global_addr[gi];
            match &g.init {
                GlobalInit::Zero => {}
                GlobalInit::Bytes(b) => {
                    mem.write_bytes(addr, b, Mode::Kernel)?;
                }
                GlobalInit::Relocated { bytes, relocs } => {
                    mem.write_bytes(addr, bytes, Mode::Kernel)?;
                    for (off, t) in relocs {
                        let v = match t {
                            RelocTarget::Func(n) => {
                                func_addr(module.func_by_name(n).map(|f| f.0).ok_or_else(|| {
                                    VmError::Unsupported(format!("reloc to unknown @{n}"))
                                })?)
                            }
                            RelocTarget::Extern(n) => {
                                extern_addr(module.extern_by_name(n).map(|e| e.0).ok_or_else(
                                    || VmError::Unsupported(format!("reloc to unknown @{n}")),
                                )?)
                            }
                            RelocTarget::Global(n) => {
                                let g2 = module.global_by_name(n).ok_or_else(|| {
                                    VmError::Unsupported(format!("reloc to unknown @{n}"))
                                })?;
                                global_addr[g2.0 as usize]
                            }
                        };
                        mem.write_uint(addr + off, 8, v, Mode::Kernel)?;
                    }
                }
            }
        }

        // Metapool runtime from the annotations.
        let mut pools = MetaPoolTable::new();
        if cfg.kind.checks() {
            let pa = module
                .pool_annotations
                .as_ref()
                .ok_or(VmError::NotVerified)?;
            for d in &pa.metapools {
                // Function types are unsized; a pool whose element type is
                // a function (e.g. one inferred behind a fops table) gets
                // no element size and is treated as non-homogeneous.
                let elem_size = d.elem_type.and_then(|t| match module.types.get(t) {
                    sva_ir::Type::Func { .. } => None,
                    _ => Some(module.types.size_of(t)),
                });
                pools.add_pool(MetaPool::new(
                    &d.name,
                    d.type_homogeneous,
                    d.complete,
                    elem_size,
                ));
            }
            for set in &pa.func_sets {
                let addrs: Vec<u64> = set
                    .iter()
                    .filter_map(|n| module.func_by_name(n))
                    .map(|f| func_addr(f.0))
                    .collect();
                pools.add_func_set(addrs);
            }
            // Register every global eagerly (the compiler also emits
            // registrations in the kernel entry; eager registration keeps
            // direct `vm.call` entry points checkable too). Registration is
            // idempotent at the entry because reg rejects only *overlap*
            // with other objects, so pre-register and let the kernel-entry
            // registrations be skipped.
            // Instead: rely on the instrumented entry; here we only
            // register the userspace pseudo-object (paper §4.6).
            for (i, d) in pa.metapools.iter().enumerate() {
                if d.userspace {
                    let _ = pools
                        .pool_mut(sva_rt::MetaPoolId(i as u32))
                        .reg_obj(USER_BASE, USER_SIZE);
                }
            }
            // Modules without a designated kernel entry have no function
            // that runs the compiler-inserted global registrations; the SVM
            // registers their globals at load time instead.
            if module.entry.is_none() {
                for (gi, mp) in pa.global_pools.iter().enumerate() {
                    if let Some(mp) = mp {
                        let addr = global_addr[gi];
                        let size = module.types.size_of(module.globals[gi].ty);
                        pools
                            .pool_mut(sva_rt::MetaPoolId(*mp))
                            .reg_obj(addr, size)
                            .map_err(VmError::Safety)?;
                    }
                }
            }
        }
        if !cfg.fast_path {
            pools.set_fast_path(false);
        }
        if !cfg.singleton_path {
            pools.set_singleton_path(false);
        }

        // Translation to the flat "native" form.
        let mut flat = if cfg.kind.flat() {
            module
                .funcs
                .iter()
                .map(|f| translate(&module, f, &global_addr))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            Vec::new()
        };
        // Optimizing tier (DESIGN.md §4.4): superinstruction fusion over
        // the flat code, selected per function by the hot profile.
        let mut fused_sites = 0u32;
        if cfg.opt_level > 0 {
            for (f, ff) in module.funcs.iter().zip(flat.iter_mut()) {
                let fuse = match (&cfg.hot_profile, cfg.opt_level) {
                    (Some(p), _) => p.is_hot(&f.name),
                    (None, 1) => false,
                    (None, _) => true,
                };
                if fuse {
                    fused_sites += crate::opt::fuse_flat(ff);
                }
            }
        }

        let fuel = cfg.fuel;
        let mut vm = Vm {
            mem,
            code: Arc::new(CodeImage {
                module,
                flat,
                global_addr,
                manifest: std::sync::OnceLock::new(),
            }),
            cfg,
            thread: Thread::new(),
            icontexts: Vec::new(),
            int_state: HashMap::new(),
            user_state: HashMap::new(),
            syscalls: HashMap::new(),
            interrupts: HashMap::new(),
            pools,
            console: Vec::new(),
            stats: VmStats::default(),
            fuel,
            halted: None,
            pending_irq: std::collections::VecDeque::new(),
            recovery: Vec::new(),
            gep_skew: None,
            pending_probe: None,
            pending_skew: None,
            call_floor: 0,
            trap_count: 0,
            argv_scratch: Vec::new(),
            fused_sites,
            cpu_id: 0,
            crash: crate::bundle::CrashCapture::default(),
            snap_request: None,
            snap_pending: None,
            snap_sink: None,
            tracer,
        };
        if T::ENABLED {
            let fnames: Vec<String> = vm
                .code
                .module
                .funcs
                .iter()
                .map(|f| f.name.clone())
                .collect();
            vm.tracer.note_function_names(&fnames);
            let pnames: Vec<String> = (0..vm.pools.len())
                .map(|i| vm.pools.pool(sva_rt::MetaPoolId(i as u32)).name.clone())
                .collect();
            vm.tracer.note_pool_names(&pnames);
        }
        Ok(vm)
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Mutable access to the attached tracer (e.g. to fold final
    /// `CheckStats` into its metrics registry).
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Consumes the VM, returning the tracer (end-of-run export).
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// The loaded module.
    pub fn module(&self) -> &Module {
        &self.code.module
    }

    /// Execution statistics so far. The lookup-layer counters are pulled
    /// from the metapool runtime so callers see one coherent snapshot.
    pub fn stats(&self) -> VmStats {
        let mut s = self.stats;
        let pool_stats = self.pools.total_stats();
        s.cache_hits = pool_stats.cache_hits;
        s.page_hits = pool_stats.page_hits;
        s.tree_walks = pool_stats.tree_walks;
        s.singleton_hits = pool_stats.singleton_hits;
        s
    }

    /// Fusion sites the optimizing tier rewrote at load time (0 at
    /// `opt_level` 0).
    pub fn fused_sites(&self) -> u32 {
        self.fused_sites
    }

    /// How many of the installed fusion sites are gep+pchk+load triples
    /// (`FusedGepChkLoad`) — the checked-kernel-specific rewrite that
    /// swallows a metapool check between address formation and the load
    /// (DESIGN.md §4.4). Equivalence tests assert this is nonzero on the
    /// sva-safe kernel so the triple path cannot silently stop matching.
    pub fn fused_chk_sites(&self) -> u32 {
        self.code
            .flat
            .iter()
            .flat_map(|f| f.ops.iter())
            .filter(|op| matches!(op, FlatOp::FusedGepChkLoad { .. }))
            .count() as u32
    }

    /// This machine's virtual CPU id (what `sva.cpu.id` returns).
    pub fn cpu_id(&self) -> u32 {
        self.cpu_id
    }

    /// SMP bring-up (DESIGN.md §4.9): forks an independent vCPU machine
    /// from this booted machine's state. The code image is *shared*
    /// (`Arc` — translation and fusion happen once); everything mutable —
    /// memory, thread, interrupt contexts, recovery-domain stack, pool
    /// table with its private MRU/counters — is deep-cloned, so each vCPU
    /// steps without synchronizing. Shared metadata comes later:
    /// [`MetaPoolTable::bind_shared`] rebinds each fork's pools to the
    /// machine's plane. The fork starts with fresh stats/fuel/forensics
    /// and an untraced sink; per-vCPU counters are merged back at halt.
    ///
    /// Kernel stacks are per-CPU: the `KSTACK` window is carved into
    /// `cfg.vcpus` equal lanes and the fork's kernel stack pointer starts
    /// at the base of lane `cpu_id`. CPU 0's lane starts where the
    /// classic machine's stack does, so a 1-vCPU fork is byte-identical.
    pub fn fork_for_cpu(&self, cpu_id: u32) -> Vm {
        self.fork_for_cpu_traced(cpu_id, NullTracer)
    }

    /// Like [`Vm::fork_for_cpu`] with an attached per-vCPU tracer (e.g.
    /// a `RingTracer` whose ring is merged at halt with
    /// `EventRing::fold_into`).
    pub fn fork_for_cpu_traced<U: Tracer>(&self, cpu_id: u32, tracer: U) -> Vm<U> {
        let lanes = self.cfg.vcpus.max(1) as u64;
        let lane = (KSTACK_END - KSTACK_BASE) / lanes;
        let mut thread = self.thread.clone();
        thread.ksp += u64::from(cpu_id).min(lanes - 1) * lane;
        Vm {
            mem: self.mem.clone(),
            code: Arc::clone(&self.code),
            cfg: self.cfg.clone(),
            thread,
            icontexts: self.icontexts.clone(),
            int_state: self.int_state.clone(),
            user_state: self.user_state.clone(),
            syscalls: self.syscalls.clone(),
            interrupts: self.interrupts.clone(),
            pools: self.pools.clone(),
            console: Vec::new(),
            stats: VmStats::default(),
            fuel: self.cfg.fuel,
            halted: None,
            pending_irq: std::collections::VecDeque::new(),
            recovery: self.recovery.clone(),
            gep_skew: None,
            pending_probe: None,
            pending_skew: None,
            call_floor: 0,
            trap_count: 0,
            argv_scratch: Vec::new(),
            fused_sites: self.fused_sites,
            cpu_id,
            crash: crate::bundle::CrashCapture::default(),
            snap_request: None,
            snap_pending: None,
            snap_sink: None,
            tracer,
        }
    }

    /// Console output as a lossy string.
    pub fn console_string(&self) -> String {
        String::from_utf8_lossy(&self.console).into_owned()
    }

    /// Queues a hardware interrupt. It is delivered at the next
    /// instruction boundary while the machine runs in *user* mode (the
    /// mini-kernel is non-preemptible, like Linux 2.4): the user
    /// computation is captured in an interrupt context and the registered
    /// handler runs in kernel mode; returning resumes the context
    /// (paper §3.3).
    pub fn raise_interrupt(&mut self, vector: i64) {
        self.pending_irq.push_back(vector);
    }

    /// Function names of the current frame stack, innermost last
    /// (diagnostics for guest crashes).
    pub fn backtrace(&self) -> Vec<String> {
        self.thread
            .frames
            .iter()
            .map(|f| self.code.module.funcs[f.func as usize].name.clone())
            .collect()
    }

    /// Address of a function (for wiring globals / exec tables in tests).
    pub fn func_address(&self, name: &str) -> Option<u64> {
        self.code.module.func_by_name(name).map(|f| func_addr(f.0))
    }

    /// Address of a global.
    pub fn global_address(&self, name: &str) -> Option<u64> {
        self.code
            .module
            .global_by_name(name)
            .map(|g| self.code.global_addr[g.0 as usize])
    }

    /// Writes a u64 into a named global (boot parameters).
    pub fn write_global_u64(&mut self, name: &str, v: u64) -> Result<(), VmError> {
        let addr = self
            .global_address(name)
            .ok_or_else(|| VmError::Unsupported(format!("no global @{name}")))?;
        self.mem.write_uint(addr, 8, v, Mode::Kernel)
    }

    /// Reads a u64 from a named global.
    pub fn read_global_u64(&mut self, name: &str) -> Result<u64, VmError> {
        let addr = self
            .global_address(name)
            .ok_or_else(|| VmError::Unsupported(format!("no global @{name}")))?;
        self.mem.read_uint(addr, 8, Mode::Kernel)
    }

    /// Disarms any fault-injection state still pending (deferred probes,
    /// GEP skew) and detaches the fault hook. Campaigns call this between
    /// the injection run and post-fault serviceability probes so a
    /// leftover armed fault cannot fire during the probe phase.
    pub fn disarm_faults(&mut self) {
        self.pending_probe = None;
        self.pending_skew = None;
        self.gep_skew = None;
        self.cfg.fault_hook = None;
    }

    /// Attaches (or replaces) the fault hook. Snapshot-forked campaigns
    /// keep one translated machine per boot image and re-arm a fresh plan
    /// before each [`Vm::restore`]-and-run cycle; the hook is not part of
    /// the snapshot config fingerprint, so swapping it never invalidates
    /// an image.
    pub fn arm_faults(&mut self, hook: Arc<dyn FaultHook>) {
        self.cfg.fault_hook = Some(hook);
    }

    /// Calls a public function in kernel mode and runs to completion —
    /// of *that call*: the run stops when the pushed frame returns, so
    /// frames a halted boot left suspended underneath are not resumed.
    pub fn call(&mut self, name: &str, args: &[u64]) -> Result<VmExit, VmError> {
        let fid = self
            .code
            .module
            .func_by_name(name)
            .ok_or_else(|| VmError::Unsupported(format!("no function @{name}")))?;
        let frame = self.frame_for_call(fid.0, args, None, Mode::Kernel)?;
        let saved_floor = self.call_floor;
        self.call_floor = self.thread.frames.len();
        self.thread.frames.push(frame);
        let r = self.run();
        self.call_floor = saved_floor;
        r
    }

    /// Boots the module: runs its designated entry function.
    pub fn boot(&mut self) -> Result<VmExit, VmError> {
        let entry = self
            .code
            .module
            .entry
            .ok_or_else(|| VmError::Unsupported("module has no entry".into()))?;
        let name = self.code.module.func(entry).name.clone();
        self.call(&name, &[])
    }

    fn frame_for_call(
        &mut self,
        func: u32,
        args: &[u64],
        ret_dst: Option<u32>,
        mode: Mode,
    ) -> Result<Frame, VmError> {
        let code = self.code.clone();
        let f = &code.module.funcs[func as usize];
        let nvals = f.num_values().max(args.len());
        let mut regs = vec![0u64; nvals];
        for (i, a) in args.iter().enumerate() {
            if i < f.params.len() {
                if let Some(r) = regs.get_mut(f.params[i].0 as usize) {
                    *r = *a;
                }
            }
        }
        let sp_saved = match mode {
            Mode::Kernel => self.thread.ksp,
            Mode::User => self.thread.usp,
        };
        Ok(Frame {
            func,
            pc: 0,
            block: 0,
            idx: 0,
            prev_block: u32::MAX,
            regs,
            ret_dst,
            mode,
            sp_saved,
            stack_regs: Vec::new(),
        })
    }

    fn mode(&self) -> Mode {
        self.thread
            .frames
            .last()
            .map(|f| f.mode)
            .unwrap_or(Mode::Kernel)
    }

    fn alloca(&mut self, size: u64, align: u64) -> Result<u64, VmError> {
        let mode = self.mode();
        let align = align.max(8);
        match mode {
            Mode::Kernel => {
                let base = round_up(self.thread.ksp, align);
                if base + size > KSTACK_END {
                    return Err(VmError::StackOverflow);
                }
                self.thread.ksp = base + size;
                Ok(base)
            }
            Mode::User => {
                let base = round_up(self.thread.usp, align);
                if base + size > USER_END {
                    return Err(VmError::StackOverflow);
                }
                self.thread.usp = base + size;
                Ok(base)
            }
        }
    }

    // --- main loop -------------------------------------------------------

    /// Runs until the outermost frame returns, the machine halts, or an
    /// error (including safety violations) occurs.
    pub fn run(&mut self) -> Result<VmExit, VmError> {
        Ok(self
            .run_inner(false)?
            .expect("run_inner(false) never pauses"))
    }

    /// Boots the module like [`Vm::boot`] but pauses at the first
    /// *user-mode* instruction boundary — the post-boot point machine
    /// snapshots are taken at. Returns `Ok(None)` when paused; `Ok(Some)`
    /// if the boot ran to completion without ever entering user mode.
    ///
    /// The pause is a host-side check at the top of the interpreter loop,
    /// so it charges no guest instructions or cycles: a machine resumed
    /// from here with [`Vm::run`] is byte-identical (fuel, stats, traps)
    /// to one that booted straight through.
    pub fn boot_to_user(&mut self) -> Result<Option<VmExit>, VmError> {
        let entry = self
            .code
            .module
            .entry
            .ok_or_else(|| VmError::Unsupported("module has no entry".into()))?;
        let frame = self.frame_for_call(entry.0, &[], None, Mode::Kernel)?;
        let saved_floor = self.call_floor;
        self.call_floor = self.thread.frames.len();
        self.thread.frames.push(frame);
        let r = self.run_inner(true);
        self.call_floor = saved_floor;
        r
    }

    /// Runs at most `max` instruction-boundary iterations, returning
    /// `Ok(None)` if the budget ran out with the machine still live (state
    /// intact at the boundary — exactly what [`VmError::OutOfFuel`]
    /// guarantees). Implemented by temporarily narrowing the fuel tank, so
    /// the fuel value an interrupted machine carries equals the value an
    /// uninterrupted run would have at the same boundary — which is what
    /// lets snapshot tests cut a run at an arbitrary step and still compare
    /// byte-identical images.
    pub fn run_steps(&mut self, max: u64) -> Result<Option<VmExit>, VmError> {
        if max >= self.fuel {
            return self.run().map(Some);
        }
        let rest = self.fuel - max;
        self.fuel = max;
        match self.run() {
            Ok(exit) => {
                self.fuel += rest;
                Ok(Some(exit))
            }
            Err(VmError::OutOfFuel) => {
                self.fuel = rest;
                Ok(None)
            }
            Err(e) => {
                self.fuel += rest;
                Err(e)
            }
        }
    }

    /// Arms the safe-point snapshot latch: the machine takes a mid-flight
    /// snapshot ([`crate::snapshot::ORIGIN_MIDFLIGHT`]) at the *next*
    /// instruction boundary it reaches while running, without pausing.
    /// The image lands in the attached sink ([`Vm::set_snapshot_sink`])
    /// or, with none, in [`Vm::take_pending_snapshot`].
    pub fn request_snapshot(&mut self) {
        self.request_snapshot_at(0);
    }

    /// Like [`Vm::request_snapshot`], but fires after `boundary` further
    /// instruction boundaries — the image is byte-identical to pausing
    /// the same machine with [`Vm::run_steps`]`(boundary)` and calling
    /// [`Vm::snapshot_midflight`] there, because the latch is checked at
    /// the exact loop position the fuel tank is.
    pub fn request_snapshot_at(&mut self, boundary: u64) {
        self.snap_request = Some(boundary);
    }

    /// Attaches a delivery sink for latched snapshots. The callback runs
    /// inside the interpreter loop at the safe point and may block —
    /// `SmpMachine::quiesce` passes a barrier-waiting closure to park
    /// every vCPU at its boundary until the coordinated cut is complete.
    pub fn set_snapshot_sink(&mut self, sink: std::sync::Arc<dyn Fn(Vec<u8>) + Send + Sync>) {
        self.snap_sink = Some(sink);
    }

    /// Takes the image a fired latch stashed (sink-less delivery).
    pub fn take_pending_snapshot(&mut self) -> Option<Vec<u8>> {
        self.snap_pending.take()
    }

    /// Remaining instruction fuel.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Refills the instruction fuel tank (e.g. after restoring a snapshot
    /// that was taken under a smaller budget).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// The interpreter loop. With `pause_on_user` the loop returns
    /// `Ok(None)` at the first iteration that would execute a user-mode
    /// instruction, *before* charging fuel or stats for it.
    fn run_inner(&mut self, pause_on_user: bool) -> Result<Option<VmExit>, VmError> {
        let code = self.code.clone();
        loop {
            if let Some(c) = self.halted {
                // Capture *before* clearing `halted`: the bundle's
                // embedded snapshot then re-halts with the identical code
                // the moment a replay runs it.
                if c != 0 && self.crash.enabled {
                    self.capture_crash(
                        crate::bundle::CrashReason::Halt,
                        c,
                        format!("sva.abort({c})"),
                    );
                }
                self.halted = None;
                return Ok(Some(VmExit::Halted(c)));
            }
            if self.thread.frames.is_empty() {
                return Ok(Some(VmExit::Returned(0)));
            }
            if pause_on_user && self.mode() == Mode::User {
                return Ok(None);
            }
            // Safe-point snapshot latch (DESIGN.md §4.10). Checked at the
            // exact loop position the fuel tank is, so an image latched at
            // boundary k is byte-identical to `run_steps(k)` followed by
            // `snapshot_midflight()`. The capture charges no guest fuel,
            // cycles or stats: execution continues as if nothing happened.
            if let Some(n) = self.snap_request {
                if n == 0 {
                    self.snap_request = None;
                    let img = self.snapshot_with_origin(crate::snapshot::ORIGIN_MIDFLIGHT);
                    match &self.snap_sink {
                        Some(sink) => sink(img),
                        None => self.snap_pending = Some(img),
                    }
                } else {
                    self.snap_request = Some(n - 1);
                }
            }
            if self.fuel == 0 {
                // Only terminal under an armed fault hook: fuel running
                // out in a campaign is a wedged machine, fuel running out
                // in a `run_steps` slice is an ordinary pause.
                if self.crash.enabled && self.cfg.fault_hook.is_some() {
                    self.capture_crash(
                        crate::bundle::CrashReason::FuelExhausted,
                        0,
                        "instruction fuel exhausted under fault injection".to_string(),
                    );
                }
                return Err(VmError::OutOfFuel);
            }
            self.fuel -= 1;
            // Domain watchdog (DESIGN.md §4.5): kernel-mode execution
            // ticks the innermost recovery domain's fuel; at zero the
            // domain is wedged and force-unwound so recovery itself can
            // never hang the machine. With no domain registered (or the
            // default infinite `domain_fuel`) this never fires and charges
            // nothing.
            if !self.recovery.is_empty() && self.mode() == Mode::Kernel {
                if let Some(rc) = self.recovery.last_mut() {
                    if rc.fuel == 0 {
                        self.watchdog_unwind()?;
                        continue;
                    }
                    rc.fuel -= 1;
                }
            }
            // Deferred fault probe: counts down per kernel-mode
            // instruction and then models the stale dereference, taking
            // the same containment path as an in-step violation.
            if self.pending_probe.is_some() && self.mode() == Mode::Kernel {
                let (cnt, pool, addr) = self.pending_probe.unwrap();
                if cnt > 1 {
                    self.pending_probe = Some((cnt - 1, pool, addr));
                } else {
                    self.pending_probe = None;
                    self.stats.cycles += CHECK_CYCLES;
                    let r = self
                        .pools
                        .pool_get_mut(sva_rt::MetaPoolId(pool))
                        .map(|p| p.ls_check(addr))
                        .unwrap_or(Ok(()));
                    if let Err(e) = r {
                        if T::wants(EventClass::Violation) {
                            let ts = self.stats.cycles;
                            self.tracer.record(
                                ts,
                                TraceEvent::Violation {
                                    check: e.kind.to_string(),
                                    pool: e.pool.clone(),
                                    addr: e.addr,
                                    detail: e.detail.clone(),
                                },
                            );
                        }
                        if !self.recovery.is_empty() {
                            self.recover_from(&e)?;
                            continue;
                        }
                        if self.crash.enabled {
                            let d = format!(
                                "{} pool={} addr={:#x} {}",
                                e.kind, e.pool, e.addr, e.detail
                            );
                            self.capture_crash(crate::bundle::CrashReason::SafetyEscape, 0, d);
                        }
                        return Err(VmError::Safety(e));
                    }
                }
            }
            // Deferred GEP skew: arms the live skew after the countdown so
            // the skewed derivations happen inside the handler body.
            if self.pending_skew.is_some() && self.mode() == Mode::Kernel {
                let (cnt, count, delta) = self.pending_skew.unwrap();
                if cnt > 1 {
                    self.pending_skew = Some((cnt - 1, count, delta));
                } else {
                    self.pending_skew = None;
                    self.gep_skew = Some((count, delta));
                }
            }
            // Snapshot the cycle counter before this iteration charges
            // anything: the post-step delta is the cycles attributed to the
            // event recorded below, so summing event costs reproduces the
            // counter exactly (100% profile coverage by construction).
            // Needed by both the per-instruction and the IRQ-delivery
            // events, so it is read if either class is wanted.
            let iter_start = if T::wants(EventClass::Inst) || T::wants(EventClass::Irq) {
                self.stats.cycles
            } else {
                0
            };
            self.stats.instructions += 1;
            self.stats.cycles += 1;
            if !self.pending_irq.is_empty() && self.mode() == Mode::User {
                let vector = self.deliver_interrupt()?;
                if T::wants(EventClass::Irq) {
                    let ts = self.stats.cycles;
                    self.tracer.record(
                        ts,
                        TraceEvent::IrqDeliver {
                            vector,
                            cost: ts - iter_start,
                        },
                    );
                }
                continue;
            }
            let (func, opcode) = if T::wants(EventClass::Inst) {
                (
                    self.thread
                        .frames
                        .last()
                        .map(|f| f.func)
                        .unwrap_or(u32::MAX),
                    self.current_opcode(&code),
                )
            } else {
                (0, "")
            };
            let step = if self.cfg.kind.flat() {
                self.step_flat(&code)
            } else {
                self.step_tree(&code)
            };
            if T::wants(EventClass::Inst) {
                let ts = self.stats.cycles;
                self.tracer.record(
                    ts,
                    TraceEvent::Inst {
                        func,
                        opcode,
                        cost: ts - iter_start,
                    },
                );
            }
            if T::wants(EventClass::Violation) {
                if let Err(VmError::Safety(e)) = &step {
                    let ts = self.stats.cycles;
                    self.tracer.record(
                        ts,
                        TraceEvent::Violation {
                            check: e.kind.to_string(),
                            pool: e.pool.clone(),
                            addr: e.addr,
                            detail: e.detail.clone(),
                        },
                    );
                }
            }
            // Violation recovery (DESIGN.md §4.3/§4.5): a kernel-mode
            // safety violation with a registered recovery domain is
            // absorbed — the offending pool is quarantined within the
            // innermost domain's scope and the thread unwinds to that
            // domain's snapshot instead of the error escaping `run`. With
            // no domain registered this arm never fires and the machine is
            // exactly the pre-recovery machine.
            let step = match step {
                Err(VmError::Safety(e))
                    if !self.recovery.is_empty() && self.mode() == Mode::Kernel =>
                {
                    self.recover_from(&e)
                }
                Err(VmError::Safety(e)) => {
                    // A violation with nowhere to unwind to: the machine
                    // dies with `VmError::Safety`, so capture it first.
                    if self.crash.enabled {
                        let d =
                            format!("{} pool={} addr={:#x} {}", e.kind, e.pool, e.addr, e.detail);
                        self.capture_crash(crate::bundle::CrashReason::SafetyEscape, 0, d);
                    }
                    Err(VmError::Safety(e))
                }
                other => other,
            };
            match step? {
                StepOut::Continue => {}
                StepOut::Exit(e) => return Ok(Some(e)),
            }
        }
    }

    /// Absorbs a kernel-mode safety violation: attributes it to a metapool
    /// (quarantining it within the innermost domain's scope, and poisoning
    /// past the scoped budget), then unwinds the thread to the innermost
    /// registered recovery domain with a packed resume code describing
    /// what happened.
    fn recover_from(&mut self, e: &sva_rt::CheckError) -> Result<StepOut, VmError> {
        // Function sets ("funcset{N}") and the static range carry pool
        // names that are not metapools; those violations unwind without a
        // quarantine target.
        let pool_id = self.pools.find_by_name(&e.pool);
        let mut poisoned = false;
        if let Some(pid) = pool_id {
            let budget = self.cfg.violation_budget;
            // Attribute a budget-crossing poison to the innermost domain's
            // owning subsystem: `sva.recover.repair(subsys)` later selects
            // the pools to tear down by this mark (DESIGN.md §4.8).
            let subsys = self.recovery.last().map(|rc| rc.subsys).unwrap_or(0);
            let pool = self.pools.pool_mut(pid);
            let was_poisoned = pool.poisoned();
            let was_quarantined = pool.quarantined();
            poisoned = pool.note_violation(budget);
            if poisoned && subsys != 0 {
                pool.attribute_poison(subsys);
            }
            if !was_quarantined {
                self.stats.pools_quarantined += 1;
            }
            if poisoned && !was_poisoned {
                self.stats.pools_poisoned += 1;
            }
            // Scoped containment: the innermost domain owns this
            // quarantine and ends it when it pops.
            if let Some(rc) = self.recovery.last_mut() {
                if !rc.quarantined_pools.contains(&pid.0) {
                    rc.quarantined_pools.push(pid.0);
                }
            }
            if T::wants(EventClass::Recovery) {
                let violations = self.pools.pool(pid).violations();
                let ts = self.stats.cycles;
                self.tracer.record(
                    ts,
                    TraceEvent::PoolQuarantine {
                        pool: pid.0,
                        violations,
                        poisoned,
                    },
                );
            }
        }
        // The resume code captures the interrupted icontext *before* the
        // unwind resets `icid`, so the handler can still iret the faulting
        // user thread.
        let depth = self.recovery.len().saturating_sub(1);
        let code = ResumeCode {
            kind: check_kind_code(e.kind),
            poisoned,
            depth: depth as u32,
            pool: pool_id.map(|p| p.0),
            icid: self.thread.icid,
        }
        .encode();
        self.stats.violations_recovered += 1;
        self.unwind_to_recovery(code)?;
        if T::wants(EventClass::Recovery) {
            let ts = self.stats.cycles;
            let subsys = self.recovery.last().map(|rc| rc.subsys).unwrap_or(0);
            self.tracer.record(
                ts,
                TraceEvent::RecoverUnwind {
                    code,
                    pool: pool_id.map(|p| p.0).unwrap_or(u32::MAX),
                    poisoned,
                    depth: depth as u32,
                    subsys,
                },
            );
        }
        Ok(StepOut::Continue)
    }

    /// Pops the innermost recovery domain, ending the quarantine scope of
    /// every pool it quarantined: quarantines lift and scoped budgets
    /// reset (poisoned pools stay fenced off permanently).
    fn pop_domain(&mut self, forced: bool) -> Option<RecoveryCtx> {
        let rc = self.recovery.pop()?;
        self.stats.domains_popped += 1;
        for mp in &rc.quarantined_pools {
            if let Some(p) = self.pools.pool_get_mut(sva_rt::MetaPoolId(*mp)) {
                p.end_scope();
            }
        }
        if T::wants(EventClass::Recovery) {
            let ts = self.stats.cycles;
            self.tracer.record(
                ts,
                TraceEvent::DomainPop {
                    subsys: rc.subsys,
                    depth: self.recovery.len() as u32,
                    forced,
                },
            );
        }
        Some(rc)
    }

    /// Force-unwinds a wedged domain whose watchdog fuel ran out
    /// (DESIGN.md §4.5). A nested domain is popped — its quarantine scope
    /// ends and control lands at the next outer register point with a
    /// watchdog resume code (kind 7) — so a wedged syscall handler costs
    /// one syscall, not the machine. The outermost domain cannot be
    /// popped; it is refuelled and re-armed instead.
    fn watchdog_unwind(&mut self) -> Result<(), VmError> {
        // Capture at entry: the embedded snapshot still has the wedged
        // domain at fuel 0, so a replay re-runs this same force-unwind.
        if self.crash.enabled {
            self.capture_crash(
                crate::bundle::CrashReason::Watchdog,
                0,
                "domain watchdog force-unwind of a wedged recovery domain".to_string(),
            );
        }
        self.stats.watchdog_unwinds += 1;
        let icid = self.thread.icid;
        if self.recovery.len() > 1 {
            self.pop_domain(true);
        } else if let Some(rc) = self.recovery.last_mut() {
            rc.fuel = self.cfg.domain_fuel;
        }
        let depth = self.recovery.len().saturating_sub(1);
        let code = ResumeCode {
            kind: RESUME_KIND_WATCHDOG,
            poisoned: false,
            depth: depth as u32,
            pool: None,
            icid,
        }
        .encode();
        self.unwind_to_recovery(code)?;
        if T::wants(EventClass::Recovery) {
            let ts = self.stats.cycles;
            let subsys = self.recovery.last().map(|rc| rc.subsys).unwrap_or(0);
            self.tracer.record(
                ts,
                TraceEvent::RecoverUnwind {
                    code,
                    pool: u32::MAX,
                    poisoned: false,
                    depth: depth as u32,
                    subsys,
                },
            );
        }
        Ok(())
    }

    /// Restores the thread to the innermost registered recovery snapshot
    /// (the longjmp half of `sva.recover.register`), writing `code` into
    /// the snapshot's result register. Mirrors the `llva.load.integer`
    /// restore sequence: kernel stack bytes, address space, and the
    /// snapshot frames' stack registrations all come back. The domain
    /// stays registered (re-armed) — only `sva.recover.release` pops it.
    fn unwind_to_recovery(&mut self, code: u64) -> Result<(), VmError> {
        let rc = self
            .recovery
            .last()
            .cloned()
            .ok_or(VmError::NoRecoveryContext)?;
        self.stats.cycles += 32 + rc.frames.len() as u64 * 8;
        self.stats.context_switches += 1;
        self.mem
            .write_bytes(KSTACK_BASE, &rc.kstack, Mode::Kernel)?;
        self.mem.load_space(rc.asid)?;
        self.sweep_stack_regs();
        for fr in &rc.frames {
            for (mp, addr, len) in &fr.stack_regs {
                let _ = self
                    .pools
                    .pool_mut(sva_rt::MetaPoolId(*mp))
                    .reg_obj(*addr, *len);
            }
        }
        self.thread.frames = rc.frames;
        self.thread.icid = rc.icid;
        self.thread.asid = rc.asid;
        self.thread.ksp = rc.ksp;
        self.thread.usp = rc.usp;
        if let Some(d) = rc.dst {
            let fr = self
                .thread
                .frames
                .last_mut()
                .ok_or(VmError::Internal("recovery snapshot has no frames"))?;
            fr.regs[d as usize] = code;
        }
        Ok(())
    }

    /// Static name of the instruction the current frame is about to
    /// execute (tracing only; called before the step advances the pc).
    fn current_opcode(&self, code: &CodeImage) -> &'static str {
        let Some(fr) = self.thread.frames.last() else {
            return "?";
        };
        if self.cfg.kind.flat() {
            code.flat[fr.func as usize]
                .ops
                .get(fr.pc as usize)
                .map(FlatOp::opcode_name)
                .unwrap_or("?")
        } else {
            let f = &code.module.funcs[fr.func as usize];
            f.blocks
                .get(fr.block as usize)
                .and_then(|b| b.insts.get(fr.idx as usize))
                .map(|iid| inst_opcode_name(f.inst(*iid)))
                .unwrap_or("?")
        }
    }

    fn step_flat(&mut self, code: &CodeImage) -> Result<StepOut, VmError> {
        let fr = self
            .thread
            .frames
            .last_mut()
            .ok_or(VmError::Internal("step with empty frame stack"))?;
        let func = fr.func as usize;
        let pc = fr.pc as usize;
        let op = &code.flat[func].ops[pc];
        fr.pc += 1;
        // Resolve sources against the current frame.
        macro_rules! src {
            ($s:expr) => {
                match $s {
                    Src::Reg(r) => fr.regs[*r as usize],
                    Src::Imm(v) => *v,
                }
            };
        }
        match op {
            FlatOp::Bin { op, w, dst, a, b } => {
                let (a, b) = (src!(a), src!(b));
                let r = eval_bin(*op, *w, a, b)?;
                fr.regs[*dst as usize] = r;
            }
            FlatOp::ICmp { pred, w, dst, a, b } => {
                let (a, b) = (src!(a), src!(b));
                fr.regs[*dst as usize] = eval_icmp(*pred, *w, a, b) as u64;
            }
            FlatOp::Select { dst, c, a, b } => {
                let v = if src!(c) & 1 == 1 { src!(a) } else { src!(b) };
                fr.regs[*dst as usize] = v;
            }
            FlatOp::Cast {
                dst,
                a,
                op,
                from_w,
                to_w,
            } => {
                fr.regs[*dst as usize] = eval_cast(*op, *from_w, *to_w, src!(a));
            }
            FlatOp::Gep {
                dst,
                base,
                const_off,
                dynamic,
            } => {
                let mut addr = src!(base) as i64 + const_off;
                for (s, scale, w) in dynamic {
                    let idx = sext_w(src!(s), *w);
                    addr += idx.wrapping_mul(*scale as i64);
                }
                if self.gep_skew.is_some() && fr.mode == Mode::Kernel {
                    if let Some((n, delta)) = self.gep_skew {
                        addr = addr.wrapping_add(delta);
                        self.gep_skew = if n > 1 { Some((n - 1, delta)) } else { None };
                    }
                }
                fr.regs[*dst as usize] = addr as u64;
            }
            FlatOp::Load { dst, ptr, w } => {
                let addr = src!(ptr);
                let mode = fr.mode;
                let v = self.mem.read_uint(addr, *w as u64, mode)?;
                let fr = self
                    .thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("load with no frame"))?;
                fr.regs[*dst as usize] = v;
            }
            FlatOp::Store { val, ptr, w } => {
                let (v, addr) = (src!(val), src!(ptr));
                let mode = fr.mode;
                self.mem.write_uint(addr, *w as u64, v, mode)?;
            }
            FlatOp::Alloca {
                dst,
                elem,
                count,
                align,
            } => {
                let n = src!(count);
                let dst = *dst;
                let (elem, align) = (*elem, *align);
                let addr = self.alloca(elem * n, align)?;
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("alloca with no frame"))?
                    .regs[dst as usize] = addr;
            }
            FlatOp::Call { dst, callee, args } => {
                let dst = *dst;
                let callee = *callee;
                // Hot path: arguments go through a scratch buffer owned by
                // the machine instead of a fresh `Vec` per call.
                let mut argv = std::mem::take(&mut self.argv_scratch);
                argv.clear();
                let fr = self
                    .thread
                    .frames
                    .last()
                    .ok_or(VmError::Internal("call with no frame"))?;
                argv.extend(args.iter().map(|a| match a {
                    Src::Reg(r) => fr.regs[*r as usize],
                    Src::Imm(v) => *v,
                }));
                let out = self.do_call(callee, &argv, dst);
                self.argv_scratch = argv;
                return out;
            }
            FlatOp::Phi { dst, incomings } => {
                let pb = fr.prev_block;
                let mut chosen = None;
                for (b, s) in incomings {
                    if *b == pb {
                        chosen = Some(src!(s));
                        break;
                    }
                }
                fr.regs[*dst as usize] =
                    chosen.ok_or(VmError::Unsupported("phi without matching pred".into()))?;
            }
            FlatOp::AtomicRmw {
                op,
                dst,
                ptr,
                val,
                w,
            } => {
                let (addr, v) = (src!(ptr), src!(val));
                let (op, dst, w) = (*op, *dst, *w);
                let mode = fr.mode;
                let old = self.mem.read_uint(addr, w as u64, mode)?;
                let newv = match op {
                    AtomicOp::Add => old.wrapping_add(v),
                    AtomicOp::Sub => old.wrapping_sub(v),
                    AtomicOp::Xchg => v,
                };
                self.mem.write_uint(addr, w as u64, newv, mode)?;
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("atomic with no frame"))?
                    .regs[dst as usize] = old;
            }
            FlatOp::CmpXchg {
                dst,
                ptr,
                expected,
                new,
                w,
            } => {
                let (addr, e, n) = (src!(ptr), src!(expected), src!(new));
                let (dst, w) = (*dst, *w);
                let mode = fr.mode;
                let old = self.mem.read_uint(addr, w as u64, mode)?;
                if old == e {
                    self.mem.write_uint(addr, w as u64, n, mode)?;
                }
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("cmpxchg with no frame"))?
                    .regs[dst as usize] = old;
            }
            FlatOp::Fence => {}
            FlatOp::Br { pc, from } => {
                fr.prev_block = *from;
                fr.pc = *pc;
            }
            FlatOp::CondBr { c, tpc, fpc, from } => {
                fr.prev_block = *from;
                fr.pc = if src!(c) & 1 == 1 { *tpc } else { *fpc };
            }
            FlatOp::Switch {
                v,
                w,
                dpc,
                cases,
                from,
            } => {
                let x = sext_w(src!(v), *w);
                fr.prev_block = *from;
                fr.pc = cases
                    .iter()
                    .find(|(c, _)| *c == x)
                    .map(|(_, p)| *p)
                    .unwrap_or(*dpc);
            }
            FlatOp::Ret { val } => {
                let v = val.as_ref().map(|s| src!(s)).unwrap_or(0);
                return self.do_ret(v);
            }
            FlatOp::Unreachable => return Err(VmError::Unreachable),
            // ---- optimizing-tier ops (DESIGN.md §4.4) ----
            //
            // Each fused handler retires the pair's second instruction in
            // the same dispatch: `stats.instructions` gets the +1 the
            // skipped loop iteration would have charged (so instruction
            // counts are invariant under fusion) while `stats.cycles` does
            // not — that missing dispatch cycle is the optimization. The
            // extra instruction is charged at the same point the unfused
            // sequence would have charged it: after the first op's work
            // succeeds, before the second's can fail.
            FlatOp::Nop => {
                // Unreachable on legal paths: fused handlers skip their own
                // placeholder and no branch targets one (the fusion pass
                // never rewrites across a block boundary). Dispatching one
                // anyway is a harmless no-op.
            }
            FlatOp::Mov { dst, src } => {
                fr.regs[*dst as usize] = src!(src);
            }
            FlatOp::FusedGepLoad {
                dst,
                base,
                const_off,
                dynamic,
                w,
            } => {
                let mut addr = src!(base) as i64 + const_off;
                for (s, scale, iw) in dynamic {
                    let idx = sext_w(src!(s), *iw);
                    addr += idx.wrapping_mul(*scale as i64);
                }
                if self.gep_skew.is_some() && fr.mode == Mode::Kernel {
                    if let Some((n, delta)) = self.gep_skew {
                        addr = addr.wrapping_add(delta);
                        self.gep_skew = if n > 1 { Some((n - 1, delta)) } else { None };
                    }
                }
                fr.pc += 1; // skip the placeholder in the load's old slot
                let mode = fr.mode;
                let (dst, w) = (*dst, *w);
                self.stats.instructions += 1;
                self.stats.fused_execs += 1;
                let v = self.mem.read_uint(addr as u64, w as u64, mode)?;
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("load with no frame"))?
                    .regs[dst as usize] = v;
            }
            FlatOp::FusedGepChkLoad {
                dst,
                base,
                const_off,
                dynamic,
                w,
                mp,
                chk_src,
            } => {
                let mut addr = src!(base) as i64 + const_off;
                for (s, scale, iw) in dynamic {
                    let idx = sext_w(src!(s), *iw);
                    addr += idx.wrapping_mul(*scale as i64);
                }
                if self.gep_skew.is_some() && fr.mode == Mode::Kernel {
                    if let Some((n, delta)) = self.gep_skew {
                        addr = addr.wrapping_add(delta);
                        self.gep_skew = if n > 1 { Some((n - 1, delta)) } else { None };
                    }
                }
                let chk_src = chk_src.as_ref().map(|s| src!(s));
                fr.pc += 2; // skip the placeholders in the check's and load's old slots
                let mode = fr.mode;
                let (dst, w, mp) = (*dst, *w, *mp);
                // Each swallowed op is charged exactly where the unfused
                // machine would have dispatched it, so instruction counts
                // (and the cycles-saved == fused_execs invariant) agree
                // with opt 0 on *every* path — including a check failure,
                // where the unfused load was never reached.
                self.stats.instructions += 1;
                self.stats.fused_execs += 1;
                // The swallowed check, verbatim from `intrinsic_inner`:
                // same cycle charge, same lookup, same trace attribution,
                // same failure path — against the skew-adjusted address.
                self.stats.cycles += CHECK_CYCLES;
                let before = self.lookups_of(mp);
                let pool = self.pools.pool_mut(sva_rt::MetaPoolId(mp));
                let (name, r) = match chk_src {
                    Some(src) => (
                        Intrinsic::BoundsCheck.name(),
                        pool.bounds_check(src, addr as u64),
                    ),
                    None => (Intrinsic::LsCheck.name(), pool.ls_check(addr as u64)),
                };
                if T::wants(EventClass::Check) {
                    self.trace_check(name, mp, before, r.is_ok(), CHECK_CYCLES);
                }
                r.map_err(VmError::Safety)?;
                self.stats.instructions += 1;
                self.stats.fused_execs += 1;
                let v = self.mem.read_uint(addr as u64, w as u64, mode)?;
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("load with no frame"))?
                    .regs[dst as usize] = v;
            }
            FlatOp::FusedGepStore {
                val,
                base,
                const_off,
                dynamic,
                w,
            } => {
                let mut addr = src!(base) as i64 + const_off;
                for (s, scale, iw) in dynamic {
                    let idx = sext_w(src!(s), *iw);
                    addr += idx.wrapping_mul(*scale as i64);
                }
                if self.gep_skew.is_some() && fr.mode == Mode::Kernel {
                    if let Some((n, delta)) = self.gep_skew {
                        addr = addr.wrapping_add(delta);
                        self.gep_skew = if n > 1 { Some((n - 1, delta)) } else { None };
                    }
                }
                let v = src!(val);
                fr.pc += 1; // skip the placeholder in the store's old slot
                let mode = fr.mode;
                let w = *w;
                self.stats.instructions += 1;
                self.stats.fused_execs += 1;
                self.mem.write_uint(addr as u64, w as u64, v, mode)?;
            }
            FlatOp::FusedCmpBr {
                pred,
                w,
                a,
                b,
                tpc,
                fpc,
                from,
            } => {
                let (a, b) = (src!(a), src!(b));
                let t = eval_icmp(*pred, *w, a, b);
                fr.prev_block = *from;
                fr.pc = if t { *tpc } else { *fpc };
                self.stats.instructions += 1;
                self.stats.fused_execs += 1;
            }
            FlatOp::FusedBin2 {
                op1,
                w1,
                a,
                b,
                op2,
                w2,
                c,
                t_lhs,
                dst,
            } => {
                let (av, bv, cv) = (src!(a), src!(b), src!(c));
                fr.pc += 1; // skip the placeholder in the second bin's slot
                let t = eval_bin(*op1, *w1, av, bv)?;
                self.stats.instructions += 1;
                self.stats.fused_execs += 1;
                let r = if *t_lhs {
                    eval_bin(*op2, *w2, t, cv)?
                } else {
                    eval_bin(*op2, *w2, cv, t)?
                };
                let fr = self
                    .thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("bin with no frame"))?;
                fr.regs[*dst as usize] = r;
            }
        }
        Ok(StepOut::Continue)
    }

    fn step_tree(&mut self, code: &CodeImage) -> Result<StepOut, VmError> {
        let fr = self
            .thread
            .frames
            .last_mut()
            .ok_or(VmError::Internal("step with empty frame stack"))?;
        let func = code
            .module
            .funcs
            .get(fr.func as usize)
            .ok_or(VmError::Internal("frame references bad function"))?;
        let block = func
            .blocks
            .get(fr.block as usize)
            .ok_or(VmError::Internal("frame references bad block"))?;
        let iid = *block
            .insts
            .get(fr.idx as usize)
            .ok_or(VmError::Internal("frame pc past end of block"))?;
        let inst = func
            .insts
            .get(iid.0 as usize)
            .ok_or(VmError::Internal("block references bad instruction"))?;
        let result = func
            .inst_results
            .get(iid.0 as usize)
            .copied()
            .flatten()
            .map(|v| v.0);
        fr.idx += 1;
        // Resolve an operand against the current frame/module.
        let m = &code.module;
        macro_rules! opd {
            ($o:expr) => {
                resolve_operand(m, &code.global_addr, fr, $o)
            };
        }
        match inst {
            Inst::Bin { op, lhs, rhs } => {
                let w = width_of(m, func, lhs);
                let (a, b) = (opd!(lhs), opd!(rhs));
                fr.regs[result.unwrap() as usize] = eval_bin(*op, w, a, b)?;
            }
            Inst::ICmp { pred, lhs, rhs } => {
                let w = width_of(m, func, lhs);
                let (a, b) = (opd!(lhs), opd!(rhs));
                fr.regs[result.unwrap() as usize] = eval_icmp(*pred, w, a, b) as u64;
            }
            Inst::Select { cond, tval, fval } => {
                let v = if opd!(cond) & 1 == 1 {
                    opd!(tval)
                } else {
                    opd!(fval)
                };
                fr.regs[result.unwrap() as usize] = v;
            }
            Inst::Cast { op, val, to } => {
                let from_w = width_of(m, func, val);
                let to_w = bit_width(m, *to);
                let v = opd!(val);
                fr.regs[result.unwrap() as usize] = eval_cast(*op, from_w, to_w, v);
            }
            Inst::Gep { base, indices } => {
                let bty = func.operand_type(base, m);
                let mut addr = opd!(base) as i64;
                let mut cur = m.types.pointee(bty);
                for (n, idx) in indices.iter().enumerate() {
                    let w = width_of(m, func, idx);
                    let iv = sext_w(opd!(idx), w);
                    if n == 0 {
                        addr += iv.wrapping_mul(m.types.size_of(cur) as i64);
                        continue;
                    }
                    match m.types.get(cur).clone() {
                        Type::Array(e, _) => {
                            addr += iv.wrapping_mul(m.types.size_of(e) as i64);
                            cur = e;
                        }
                        Type::Struct(_) => {
                            let off = m.types.field_offset(cur, iv as usize);
                            addr += off as i64;
                            cur = m.types.struct_fields(cur)[iv as usize];
                        }
                        _ => return Err(VmError::Unsupported("bad gep".into())),
                    }
                }
                if self.gep_skew.is_some() && fr.mode == Mode::Kernel {
                    if let Some((n, delta)) = self.gep_skew {
                        addr = addr.wrapping_add(delta);
                        self.gep_skew = if n > 1 { Some((n - 1, delta)) } else { None };
                    }
                }
                fr.regs[result.unwrap() as usize] = addr as u64;
            }
            Inst::Load { ptr } => {
                let pty = func.operand_type(ptr, m);
                let w = byte_width(m, m.types.pointee(pty));
                let addr = opd!(ptr);
                let mode = fr.mode;
                let v = self.mem.read_uint(addr, w as u64, mode)?;
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("load with no frame"))?
                    .regs[result.unwrap() as usize] = v;
            }
            Inst::Store { val, ptr } => {
                let vty = func.operand_type(val, m);
                let w = byte_width(m, vty);
                let (v, addr) = (opd!(val), opd!(ptr));
                let mode = fr.mode;
                self.mem.write_uint(addr, w as u64, v, mode)?;
            }
            Inst::Alloca { ty, count } => {
                let layout = m.types.layout(*ty);
                let n = opd!(count);
                let addr = self.alloca(layout.size * n, layout.align)?;
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("alloca with no frame"))?
                    .regs[result.unwrap() as usize] = addr;
            }
            Inst::Call { callee, args } => {
                let argv: Vec<u64> = args.iter().map(|a| opd!(a)).collect();
                let fc = match callee {
                    Callee::Direct(f) => FlatCallee::Direct(f.0),
                    Callee::External(e) => FlatCallee::External(e.0),
                    Callee::Indirect(o) => {
                        let v = opd!(o);
                        FlatCallee::Indirect(Src::Imm(v))
                    }
                    Callee::Intrinsic(i) => FlatCallee::Intrinsic(*i),
                };
                return self.do_call(fc, &argv, result);
            }
            Inst::Phi { incomings, .. } => {
                let pb = fr.prev_block;
                let mut chosen = None;
                for (b, v) in incomings {
                    if b.0 == pb {
                        chosen = Some(opd!(v));
                        break;
                    }
                }
                fr.regs[result.unwrap() as usize] =
                    chosen.ok_or(VmError::Unsupported("phi without matching pred".into()))?;
            }
            Inst::AtomicRmw { op, ptr, val } => {
                let pty = func.operand_type(ptr, m);
                let w = byte_width(m, m.types.pointee(pty));
                let (addr, v) = (opd!(ptr), opd!(val));
                let mode = fr.mode;
                let old = self.mem.read_uint(addr, w as u64, mode)?;
                let newv = match op {
                    AtomicOp::Add => old.wrapping_add(v),
                    AtomicOp::Sub => old.wrapping_sub(v),
                    AtomicOp::Xchg => v,
                };
                self.mem.write_uint(addr, w as u64, newv, mode)?;
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("atomic with no frame"))?
                    .regs[result.unwrap() as usize] = old;
            }
            Inst::CmpXchg { ptr, expected, new } => {
                let pty = func.operand_type(ptr, m);
                let w = byte_width(m, m.types.pointee(pty));
                let (addr, e, n) = (opd!(ptr), opd!(expected), opd!(new));
                let mode = fr.mode;
                let old = self.mem.read_uint(addr, w as u64, mode)?;
                if old == e {
                    self.mem.write_uint(addr, w as u64, n, mode)?;
                }
                self.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("cmpxchg with no frame"))?
                    .regs[result.unwrap() as usize] = old;
            }
            Inst::Fence => {}
            Inst::Br { target } => {
                fr.prev_block = fr.block;
                fr.block = target.0;
                fr.idx = 0;
            }
            Inst::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let t = opd!(cond) & 1 == 1;
                fr.prev_block = fr.block;
                fr.block = if t { then_bb.0 } else { else_bb.0 };
                fr.idx = 0;
            }
            Inst::Switch {
                val,
                default,
                cases,
            } => {
                let w = width_of(m, func, val);
                let x = sext_w(opd!(val), w);
                let target = cases
                    .iter()
                    .find(|(c, _)| *c == x)
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                fr.prev_block = fr.block;
                fr.block = target.0;
                fr.idx = 0;
            }
            Inst::Ret { val } => {
                let v = val.as_ref().map(|o| opd!(o)).unwrap_or(0);
                return self.do_ret(v);
            }
            Inst::Unreachable => return Err(VmError::Unreachable),
        }
        Ok(StepOut::Continue)
    }

    fn do_call(
        &mut self,
        callee: FlatCallee,
        args: &[u64],
        dst: Option<u32>,
    ) -> Result<StepOut, VmError> {
        match callee {
            FlatCallee::Direct(f) => {
                let mode = self.mode();
                let frame = self.frame_for_call(f, args, dst, mode)?;
                self.thread.frames.push(frame);
                Ok(StepOut::Continue)
            }
            FlatCallee::External(e) => {
                let name = self.code.module.externs[e as usize].name.clone();
                Err(VmError::CallToExternal(name))
            }
            FlatCallee::Indirect(s) => {
                let addr = match s {
                    Src::Reg(r) => {
                        self.thread
                            .frames
                            .last()
                            .ok_or(VmError::Internal("indirect call with no frame"))?
                            .regs[r as usize]
                    }
                    Src::Imm(v) => v,
                };
                let f = addr_func(addr).ok_or(VmError::BadIndirect(addr))?;
                if f as usize >= self.code.module.funcs.len() {
                    return Err(VmError::BadIndirect(addr));
                }
                let mode = self.mode();
                let frame = self.frame_for_call(f, args, dst, mode)?;
                self.thread.frames.push(frame);
                Ok(StepOut::Continue)
            }
            FlatCallee::Intrinsic(i) => self.intrinsic(i, args, dst),
        }
    }

    fn do_ret(&mut self, v: u64) -> Result<StepOut, VmError> {
        let fr = self
            .thread
            .frames
            .pop()
            .ok_or(VmError::Internal("return with empty frame stack"))?;
        // Auto-drop stack registrations (frame-pop sweep).
        for (mp, addr, _len) in &fr.stack_regs {
            let _ = self.pools.pool_mut(sva_rt::MetaPoolId(*mp)).drop_obj(*addr);
        }
        match fr.mode {
            Mode::Kernel => self.thread.ksp = fr.sp_saved,
            Mode::User => self.thread.usp = fr.sp_saved,
        }
        // A host `call` ends when its own frame returns; anything still
        // below it (frames a halted boot left suspended) stays suspended.
        if self.call_floor > 0 && self.thread.frames.len() <= self.call_floor {
            return Ok(StepOut::Exit(VmExit::Returned(v)));
        }
        if let Some(parent) = self.thread.frames.last_mut() {
            if let Some(d) = fr.ret_dst {
                parent.regs[d as usize] = v;
            }
            return Ok(StepOut::Continue);
        }
        // Outermost frame returned.
        if let Some(icid) = self.thread.icid {
            // A trap handler finished: resume the interrupted context with
            // the handler's return value as the syscall result.
            self.iret(icid as u64, v)?;
            return Ok(StepOut::Continue);
        }
        Ok(StepOut::Exit(VmExit::Returned(v)))
    }

    // --- SVA-OS + safety intrinsics ---------------------------------------

    fn intrinsic(
        &mut self,
        i: Intrinsic,
        args: &[u64],
        dst: Option<u32>,
    ) -> Result<StepOut, VmError> {
        if !T::wants(EventClass::Os) {
            return self.intrinsic_inner(i, args, dst);
        }
        // SVA-OS span: enter/exit events bracket the operation; the exit
        // carries the cycles the operation added beyond the base charge.
        let enter = self.stats.cycles;
        self.tracer
            .record(enter, TraceEvent::OsEnter { op: i.name() });
        let result = self.intrinsic_inner(i, args, dst);
        let ts = self.stats.cycles;
        self.tracer.record(
            ts,
            TraceEvent::OsExit {
                op: i.name(),
                cost: ts - enter,
            },
        );
        result
    }

    fn intrinsic_inner(
        &mut self,
        i: Intrinsic,
        args: &[u64],
        dst: Option<u32>,
    ) -> Result<StepOut, VmError> {
        use Intrinsic::*;
        if i.privileged() && self.mode() == Mode::User {
            return Err(VmError::Privilege { addr: 0 });
        }
        let set = |vm: &mut Vm<T>, v: u64| -> Result<(), VmError> {
            if let Some(d) = dst {
                vm.thread
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("intrinsic result with no frame"))?
                    .regs[d as usize] = v;
            }
            Ok(())
        };
        let arg = |n: usize| args.get(n).copied().unwrap_or(0);
        match i {
            // ---- Table 1: processor state ----
            SaveInteger => {
                let buf = arg(0);
                let kstack = self.mem.read_bytes(
                    KSTACK_BASE,
                    self.thread.ksp - KSTACK_BASE,
                    Mode::Kernel,
                )?;
                let st = SavedState {
                    frames: self.thread.frames.clone(),
                    icid: self.thread.icid,
                    asid: self.thread.asid,
                    ksp: self.thread.ksp,
                    kstack,
                    save_dst: dst,
                };
                self.stats.cycles += 32 + st.frames.len() as u64 * 8;
                self.int_state.insert(buf, st);
                set(self, 1)?;
            }
            LoadInteger => {
                let buf = arg(0);
                let st = self
                    .int_state
                    .get(&buf)
                    .cloned()
                    .ok_or(VmError::BadStateBuffer(buf))?;
                self.stats.cycles += 32 + st.frames.len() as u64 * 8;
                self.stats.context_switches += 1;
                self.mem
                    .write_bytes(KSTACK_BASE, &st.kstack, Mode::Kernel)?;
                self.mem.load_space(st.asid)?;
                self.sweep_stack_regs();
                // The restored continuation's stack objects were dropped
                // when its frames were discarded at context-switch time;
                // bring them back so checks against them pass again.
                for fr in &st.frames {
                    for (mp, addr, len) in &fr.stack_regs {
                        let _ = self
                            .pools
                            .pool_mut(sva_rt::MetaPoolId(*mp))
                            .reg_obj(*addr, *len);
                    }
                }
                self.thread.frames = st.frames;
                self.thread.icid = st.icid;
                self.thread.asid = st.asid;
                self.thread.ksp = st.ksp;
                if let Some(d) = st.save_dst {
                    self.thread
                        .frames
                        .last_mut()
                        .ok_or(VmError::Internal("restored state has no frames"))?
                        .regs[d as usize] = 0;
                }
            }
            SaveFp => {
                let always = arg(1) != 0;
                if always || self.thread.fp_dirty {
                    self.stats.cycles += 64;
                    self.thread.fp_dirty = false;
                }
            }
            LoadFp => {
                self.stats.cycles += 64;
                self.thread.fp_dirty = true;
            }
            // ---- Table 2: interrupt contexts ----
            IcontextGet => {
                let icid = self.thread.icid.map(|i| i as u64).unwrap_or(u64::MAX);
                set(self, icid)?;
            }
            IcontextSave => {
                let (icp, isp) = (arg(0), arg(1));
                let ic = self.icontext(icp)?.clone();
                self.stats.cycles += 16 + ic.frames.len() as u64 * 4;
                self.user_state.insert(isp, ic);
            }
            IcontextLoad => {
                let (icp, isp) = (arg(0), arg(1));
                let st = self
                    .user_state
                    .get(&isp)
                    .cloned()
                    .ok_or(VmError::BadStateBuffer(isp))?;
                let ic = self.icontext_mut(icp)?;
                let live = ic.live;
                *ic = st;
                ic.live = live;
            }
            IcontextCommit => {
                // Commit the full context to memory: modelled as the copy
                // cost of the register file.
                let icp = arg(0);
                let n = self.icontext(icp)?.frames.len() as u64;
                self.stats.cycles += 16 + n * 4;
            }
            IpushFunction => {
                let (icp, faddr, a0) = (arg(0), arg(1), arg(2));
                let f = addr_func(faddr).ok_or(VmError::BadIndirect(faddr))?;
                // Build the synthetic frame against the *context's* user
                // stack, then push onto its frame stack.
                let frame = {
                    let code = self.code.clone();
                    let fdef = &code.module.funcs[f as usize];
                    let mut regs = vec![0u64; fdef.num_values()];
                    if !fdef.params.is_empty() {
                        regs[fdef.params[0].0 as usize] = a0;
                    }
                    let ic = self.icontext(icp)?;
                    Frame {
                        func: f,
                        pc: 0,
                        block: 0,
                        idx: 0,
                        prev_block: u32::MAX,
                        regs,
                        ret_dst: None,
                        mode: Mode::User,
                        sp_saved: ic.usp,
                        stack_regs: Vec::new(),
                    }
                };
                self.icontext_mut(icp)?.frames.push(frame);
            }
            WasPrivileged => {
                let icp = arg(0);
                let p = self.icontext(icp)?.privileged;
                set(self, p as u64)?;
            }
            IcontextNew => {
                let (isp, asid) = (arg(0), arg(1) as u32);
                let mut ic = if isp == 0 {
                    IContext {
                        frames: Vec::new(),
                        usp: USER_END - USTACK_SIZE,
                        asid,
                        privileged: false,
                        result_dst: None,
                        result_frame: 0,
                        live: true,
                        trace_sys: None,
                    }
                } else {
                    self.user_state
                        .get(&isp)
                        .cloned()
                        .ok_or(VmError::BadStateBuffer(isp))?
                };
                ic.asid = asid;
                ic.live = true;
                let icid = self.push_icontext(ic);
                set(self, icid as u64)?;
            }
            IcontextSetEntry => {
                let (icp, faddr, a0) = (arg(0), arg(1), arg(2));
                let f = addr_func(faddr).ok_or(VmError::BadIndirect(faddr))?;
                let frame = {
                    let code = self.code.clone();
                    let fdef = &code.module.funcs[f as usize];
                    let mut regs = vec![0u64; fdef.num_values()];
                    if !fdef.params.is_empty() {
                        regs[fdef.params[0].0 as usize] = a0;
                    }
                    Frame {
                        func: f,
                        pc: 0,
                        block: 0,
                        idx: 0,
                        prev_block: u32::MAX,
                        regs,
                        ret_dst: None,
                        mode: Mode::User,
                        sp_saved: USER_END - USTACK_SIZE,
                        stack_regs: Vec::new(),
                    }
                };
                let ic = self.icontext_mut(icp)?;
                ic.frames = vec![frame];
                ic.usp = USER_END - USTACK_SIZE;
                ic.result_dst = None;
                ic.privileged = false;
            }
            // ---- OS support ----
            RegisterSyscall => {
                let num = arg(0) as i64;
                let f = addr_func(arg(1)).ok_or(VmError::BadIndirect(arg(1)))?;
                self.syscalls.insert(num, f);
            }
            RegisterInterrupt => {
                let num = arg(0) as i64;
                let f = addr_func(arg(1)).ok_or(VmError::BadIndirect(arg(1)))?;
                self.interrupts.insert(num, f);
            }
            IoRead => {
                let v = self.io_read(arg(0));
                set(self, v)?;
            }
            IoWrite => {
                self.io_write(arg(0), arg(1));
            }
            MmuMap | MmuUnmap | MmuProtect => {
                // Mapping requests are mediated: the SVM validates that the
                // kernel never maps SVM-reserved frames (paper §3.4). Our
                // reserved range is the function-address window.
                let v = arg(1);
                if (crate::mem::FUNC_BASE..crate::mem::EXTERN_BASE).contains(&v) {
                    return Err(VmError::Privilege { addr: v });
                }
                self.stats.cycles += 8;
            }
            MmuNewSpace => {
                let asid = self.mem.new_space();
                self.stats.cycles += PAGE_SIZE / 64;
                set(self, asid as u64)?;
            }
            MmuLoadSpace => {
                let asid = arg(0) as u32;
                self.mem.load_space(asid)?;
                self.thread.asid = asid;
                self.stats.cycles += 16;
            }
            MmuCopyPage => {
                let (dst, va) = (arg(0) as u32, arg(1));
                self.mem.copy_page(dst, va)?;
                self.stats.cycles += PAGE_SIZE / 16;
            }
            MmuFreeSpace => {
                self.mem.free_space(arg(0) as u32)?;
            }
            Syscall => {
                return self.do_syscall(args, dst);
            }
            Iret => {
                self.iret(arg(0), arg(1))?;
            }
            CpuId => {
                let id = self.cpu_id as u64;
                set(self, id)?;
            }
            GetTimer => {
                let c = self.stats.cycles;
                set(self, c)?;
            }
            // ---- safety runtime ----
            PchkRegObj => {
                self.stats.cycles += REG_CYCLES;
                let (mp, addr, len) = (arg(0) as u32, arg(1), arg(2));
                if addr == 0 {
                    // Failed allocation: nothing to register.
                    return Ok(StepOut::Continue);
                }
                let stack = arg(3) != 0;
                self.pools
                    .pool_mut(sva_rt::MetaPoolId(mp))
                    .reg_obj(addr, len)
                    .map_err(VmError::Safety)?;
                if T::wants(EventClass::Pool) {
                    self.tracer.record(
                        self.stats.cycles,
                        TraceEvent::PoolReg {
                            pool: mp,
                            addr,
                            len,
                        },
                    );
                }
                if stack {
                    self.thread
                        .frames
                        .last_mut()
                        .ok_or(VmError::Internal("stack registration with no frame"))?
                        .stack_regs
                        .push((mp, addr, len));
                }
            }
            PchkDropObj => {
                self.stats.cycles += REG_CYCLES;
                let (mp, addr) = (arg(0) as u32, arg(1));
                if addr == 0 {
                    return Ok(StepOut::Continue);
                }
                self.pools
                    .pool_mut(sva_rt::MetaPoolId(mp))
                    .drop_obj(addr)
                    .map_err(VmError::Safety)?;
                if T::wants(EventClass::Pool) {
                    self.tracer
                        .record(self.stats.cycles, TraceEvent::PoolDrop { pool: mp, addr });
                }
                // Remove from the frame sweep if it was a stack object.
                if let Some(fr) = self.thread.frames.last_mut() {
                    fr.stack_regs.retain(|(m, a, _)| !(*m == mp && *a == addr));
                }
                // Fault plans learn freed addresses here for later
                // use-after-free probes.
                if let Some(hook) = &self.cfg.fault_hook {
                    hook.on_pool_drop(mp, addr);
                }
            }
            BoundsCheck => {
                self.stats.cycles += CHECK_CYCLES;
                let (mp, src, derived) = (arg(0) as u32, arg(1), arg(2));
                let before = self.lookups_of(mp);
                let r = self
                    .pools
                    .pool_mut(sva_rt::MetaPoolId(mp))
                    .bounds_check(src, derived);
                if T::wants(EventClass::Check) {
                    self.trace_check(i.name(), mp, before, r.is_ok(), CHECK_CYCLES);
                }
                r.map_err(VmError::Safety)?;
            }
            BoundsCheckRange => {
                self.stats.cycles += 2;
                self.stats.range_checks += 1;
                let (start, derived, end) = (arg(0), arg(1), arg(2));
                let ok = derived >= start && derived <= end;
                if T::wants(EventClass::Check) {
                    self.tracer.record(
                        self.stats.cycles,
                        TraceEvent::Check {
                            check: i.name(),
                            pool: u32::MAX,
                            layer: LookupLayer::None,
                            passed: ok,
                            cost: 2,
                        },
                    );
                }
                if !ok {
                    return Err(VmError::Safety(CheckError {
                        kind: sva_rt::CheckKind::Bounds,
                        pool: "static".into(),
                        addr: derived,
                        detail: format!("static object [{start:#x}, {end:#x})"),
                    }));
                }
            }
            LsCheck => {
                self.stats.cycles += CHECK_CYCLES;
                let (mp, addr) = (arg(0) as u32, arg(1));
                let before = self.lookups_of(mp);
                let r = self.pools.pool_mut(sva_rt::MetaPoolId(mp)).ls_check(addr);
                if T::wants(EventClass::Check) {
                    self.trace_check(i.name(), mp, before, r.is_ok(), CHECK_CYCLES);
                }
                r.map_err(VmError::Safety)?;
            }
            GetBounds => {
                self.stats.cycles += CHECK_CYCLES;
                let (mp, p, sout, eout) = (arg(0) as u32, arg(1), arg(2), arg(3));
                let before = self.lookups_of(mp);
                let b = self.pools.pool_mut(sva_rt::MetaPoolId(mp)).get_bounds(p);
                if T::wants(EventClass::Check) {
                    self.trace_check(i.name(), mp, before, b.is_some(), CHECK_CYCLES);
                }
                let (s, e) = b.unwrap_or((0, 0));
                let mode = self.mode();
                self.mem.write_uint(sout, 8, s, mode)?;
                self.mem.write_uint(eout, 8, e, mode)?;
            }
            FuncCheck => {
                self.stats.cycles += CHECK_CYCLES / 2;
                let (setid, target) = (arg(0) as u32, arg(1));
                let r = self.pools.func_check(setid, target);
                if T::wants(EventClass::Check) {
                    self.tracer.record(
                        self.stats.cycles,
                        TraceEvent::Check {
                            check: i.name(),
                            pool: u32::MAX,
                            layer: LookupLayer::None,
                            passed: r.is_ok(),
                            cost: CHECK_CYCLES / 2,
                        },
                    );
                }
                r.map_err(VmError::Safety)?;
            }
            PseudoAlloc => {
                // Returns a pointer to the manufactured range; registration
                // is a separate pchk.reg.obj inserted by the compiler.
                set(self, arg(0))?;
            }
            // ---- memory intrinsics ----
            MemCpy | MemMove => {
                let (d, s, n) = (arg(0), arg(1), arg(2));
                let mode = self.mode();
                self.mem.copy_bytes(d, s, n, mode)?;
                self.stats.cycles += n / 8;
            }
            MemSet => {
                let (d, b, n) = (arg(0), arg(1), arg(2));
                let mode = self.mode();
                self.mem.set_bytes(d, b as u8, n, mode)?;
                self.stats.cycles += n / 8;
            }
            // ---- violation recovery (DESIGN.md §4.3/§4.5) ----
            RecoverRegister => {
                // Pushes a nested recovery domain owned by subsystem
                // `arg(0)` (0 = unattributed, e.g. the boot domain).
                let kstack = self.mem.read_bytes(
                    KSTACK_BASE,
                    self.thread.ksp - KSTACK_BASE,
                    Mode::Kernel,
                )?;
                let subsys = arg(0);
                let rc = RecoveryCtx {
                    frames: self.thread.frames.clone(),
                    icid: self.thread.icid,
                    asid: self.thread.asid,
                    ksp: self.thread.ksp,
                    usp: self.thread.usp,
                    kstack,
                    dst,
                    subsys,
                    fuel: self.cfg.domain_fuel,
                    quarantined_pools: Vec::new(),
                };
                self.stats.cycles += 32 + rc.frames.len() as u64 * 8;
                self.stats.domains_pushed += 1;
                self.recovery.push(rc);
                if T::wants(EventClass::Recovery) {
                    let ts = self.stats.cycles;
                    self.tracer.record(
                        ts,
                        TraceEvent::DomainPush {
                            subsys,
                            depth: self.recovery.len() as u32 - 1,
                        },
                    );
                }
                set(self, 0)?;
            }
            RecoverUnwind => {
                // User-mode callers never reach this arm: the privilege
                // gate at the top of `intrinsic_inner` fires *before* any
                // context lookup, so an unprivileged unwind is a
                // `Privilege` error, not `NoRecoveryContext`.
                if self.recovery.is_empty() {
                    return Err(VmError::NoRecoveryContext);
                }
                // Resume codes are nonzero by construction so the handler
                // can distinguish unwind from registration.
                let code = arg(0).max(1);
                self.unwind_to_recovery(code)?;
                if T::wants(EventClass::Recovery) {
                    let ts = self.stats.cycles;
                    let depth = self.recovery.len() as u32 - 1;
                    let subsys = self.recovery.last().map(|rc| rc.subsys).unwrap_or(0);
                    self.tracer.record(
                        ts,
                        TraceEvent::RecoverUnwind {
                            code,
                            pool: u32::MAX,
                            poisoned: false,
                            depth,
                            subsys,
                        },
                    );
                }
            }
            RecoverRelease => {
                if args.is_empty() {
                    // Pop form (DESIGN.md §4.5): pop the innermost domain;
                    // every pool it quarantined ends its scope.
                    self.stats.cycles += 8;
                    let ok = self.pop_domain(false).is_some();
                    set(self, ok as u64)?;
                } else {
                    // Pool form (legacy, DESIGN.md §4.3): lift the
                    // quarantine on pool `arg(0)`; the domain stays.
                    let ok = self
                        .pools
                        .pool_get_mut(sva_rt::MetaPoolId(arg(0) as u32))
                        .map(|p| p.release_quarantine())
                        .unwrap_or(false);
                    set(self, ok as u64)?;
                }
            }
            RecoverRepair => {
                // Tear down and reinitialize every pool whose poison was
                // attributed to subsystem `arg(0)` (DESIGN.md §4.8). The
                // kernel's repair manager calls this when a degraded
                // subsystem's backoff delay expires; the returned count
                // tells it whether any pool actually needed the teardown.
                self.stats.cycles += 16;
                let subsys = arg(0);
                let repaired = self.pools.repair_poisoned_by(subsys);
                if !repaired.is_empty() {
                    self.stats.repairs += 1;
                    self.stats.pools_repaired += repaired.len() as u64;
                }
                if T::wants(EventClass::Repair) {
                    let ts = self.stats.cycles;
                    self.tracer.record(
                        ts,
                        TraceEvent::Repair {
                            subsys,
                            pools: repaired.len() as u32,
                        },
                    );
                }
                set(self, repaired.len() as u64)?;
            }
            RecoverProbation => {
                // Probation bookkeeping (DESIGN.md §4.8): the kernel's
                // health machine reports its transition so VM stats and
                // the flight recorder see the same timeline the guest
                // does. Verdict 0 = probation passed (live again), 1 =
                // re-poisoned during probation (re-degraded, backoff
                // doubled), 2 = strike budget exhausted (retired).
                let subsys = arg(0);
                let verdict = arg(1);
                match verdict {
                    0 => self.stats.probation_passed += 1,
                    1 => self.stats.probation_failed += 1,
                    _ => self.stats.subsys_retired += 1,
                }
                if T::wants(EventClass::Repair) {
                    let ts = self.stats.cycles;
                    self.tracer
                        .record(ts, TraceEvent::Probation { subsys, verdict });
                }
                set(self, 0)?;
            }
            // ---- diagnostics ----
            Print => {
                let v = arg(0);
                if args.len() >= 2 {
                    // (ptr, len) string form.
                    let mode = self.mode();
                    let bytes = self.mem.read_bytes(v, arg(1), mode)?;
                    self.console.extend_from_slice(&bytes);
                } else {
                    self.console.extend_from_slice(format!("{v}\n").as_bytes());
                }
            }
            Abort => {
                self.halted = Some(arg(0));
            }
        }
        Ok(StepOut::Continue)
    }

    /// Lookup count of pool `mp` (0 when tracing is off — the value is
    /// only used to detect whether a check performed an object lookup).
    fn lookups_of(&self, mp: u32) -> u64 {
        if T::wants(EventClass::Check) {
            self.pools.pool(sva_rt::MetaPoolId(mp)).stats().lookups()
        } else {
            0
        }
    }

    /// Records a `Check` event for a pool-backed check, attributing it to
    /// the lookup layer that answered — or [`LookupLayer::None`] when the
    /// check decided without an object lookup (reduced checks).
    fn trace_check(
        &mut self,
        check: &'static str,
        mp: u32,
        lookups_before: u64,
        passed: bool,
        cost: u64,
    ) {
        let pool = self.pools.pool(sva_rt::MetaPoolId(mp));
        let layer = if pool.stats().lookups() > lookups_before {
            pool.last_lookup_layer()
        } else {
            LookupLayer::None
        };
        self.tracer.record(
            self.stats.cycles,
            TraceEvent::Check {
                check,
                pool: mp,
                layer,
                passed,
                cost,
            },
        );
    }

    fn push_icontext(&mut self, ic: IContext) -> u32 {
        // Reuse dead slots.
        for (i, slot) in self.icontexts.iter_mut().enumerate() {
            if !slot.live {
                *slot = ic;
                return i as u32;
            }
        }
        self.icontexts.push(ic);
        (self.icontexts.len() - 1) as u32
    }

    fn icontext(&self, icp: u64) -> Result<&IContext, VmError> {
        self.icontexts
            .get(icp as usize)
            .filter(|c| c.live)
            .ok_or(VmError::BadIContext(icp))
    }

    fn icontext_mut(&mut self, icp: u64) -> Result<&mut IContext, VmError> {
        self.icontexts
            .get_mut(icp as usize)
            .filter(|c| c.live)
            .ok_or(VmError::BadIContext(icp))
    }

    /// Delivers the front pending interrupt: trap ceremony, then the
    /// registered handler with the vector as its argument. Returns the
    /// popped vector (for trace attribution, even when masked).
    fn deliver_interrupt(&mut self) -> Result<i64, VmError> {
        let Some(vec) = self.pending_irq.pop_front() else {
            return Ok(-1);
        };
        let Some(&handler) = self.interrupts.get(&vec) else {
            // Unhandled vectors are dropped (masked), like a PIC with no
            // registered line.
            return Ok(vec);
        };
        self.stats.interrupts += 1;
        let fast = self.cfg.kind.fast_os();
        self.stats.cycles += if fast { 24 } else { 40 };
        let frames = std::mem::take(&mut self.thread.frames);
        let result_frame = frames.len().saturating_sub(1);
        let ic = IContext {
            frames,
            usp: self.thread.usp,
            asid: self.thread.asid,
            privileged: false,
            result_dst: None,
            result_frame,
            live: true,
            trace_sys: None,
        };
        let icid = self.push_icontext(ic);
        self.thread.icid = Some(icid);
        self.thread.ksp = KSTACK_BASE;
        let frame = self.frame_for_call(handler, &[vec as u64], None, Mode::Kernel)?;
        self.thread.frames.push(frame);
        Ok(vec)
    }

    fn do_syscall(&mut self, args: &[u64], dst: Option<u32>) -> Result<StepOut, VmError> {
        let num = args.first().copied().unwrap_or(0) as i64;
        let handler = *self
            .syscalls
            .get(&num)
            .ok_or(VmError::UnknownSyscall(num))?;
        let hargs = &args[1..];
        match self.mode() {
            Mode::Kernel => {
                // Internal system call: analyzed as a direct call (§4.8);
                // executed as one too — no privilege transition needed.
                self.stats.cycles += 8;
                let frame = self.frame_for_call(handler, hargs, dst, Mode::Kernel)?;
                self.thread.frames.push(frame);
            }
            Mode::User => {
                self.stats.traps += 1;
                // Fault injection observes every user→kernel trap; the
                // returned action perturbs the machine around handler entry.
                let action = if let Some(hook) = self.cfg.fault_hook.clone() {
                    let info = TrapInfo {
                        trap_index: self.trap_count,
                        syscall: num,
                        args: hargs,
                    };
                    Some(hook.on_trap(&info))
                } else {
                    None
                };
                self.trap_count += 1;
                let mut mutated;
                let hargs = match &action {
                    Some(a) if !a.mutate_args.is_empty() => {
                        mutated = hargs.to_vec();
                        for (idx, v) in &a.mutate_args {
                            if let Some(slot) = mutated.get_mut(*idx) {
                                *slot = *v;
                            }
                        }
                        &mutated[..]
                    }
                    _ => hargs,
                };
                // Trap: move the user computation into an interrupt context
                // and start the kernel handler.
                // The SVA-OS entry path saves a *subset* of control state
                // (paper §3.3); the full interface costs a little more than
                // the hand-written native path.
                let fast = self.cfg.kind.fast_os();
                self.stats.cycles += if fast { 24 } else { 40 };
                let trace_sys = if T::wants(EventClass::Syscall) {
                    let ts = self.stats.cycles;
                    self.tracer.record(ts, TraceEvent::SyscallEnter { num });
                    Some((num, ts))
                } else {
                    None
                };
                let frames = std::mem::take(&mut self.thread.frames);
                let result_frame = frames.len().saturating_sub(1);
                let ic = IContext {
                    frames,
                    usp: self.thread.usp,
                    asid: self.thread.asid,
                    privileged: false,
                    result_dst: dst,
                    result_frame,
                    live: true,
                    trace_sys,
                };
                let icid = self.push_icontext(ic);
                self.thread.icid = Some(icid);
                self.thread.ksp = KSTACK_BASE;
                let frame = self.frame_for_call(handler, hargs, None, Mode::Kernel)?;
                self.thread.frames.push(frame);
                // Now in kernel mode: apply the rest of the action. A
                // failing stale probe takes the normal safety-violation
                // path out of this step.
                if let Some(a) = action {
                    self.apply_fault_action(a)?;
                }
            }
        }
        Ok(StepOut::Continue)
    }

    /// Applies a [`FaultAction`] after handler entry (kernel mode).
    fn apply_fault_action(&mut self, a: FaultAction) -> Result<(), VmError> {
        if let Some((count, delta)) = a.gep_skew {
            if count > 0 {
                if a.probe_defer > 0 {
                    // Deferred form: arm the skew `probe_defer` kernel-mode
                    // instructions into the handler body (see the run
                    // loop), inside any recovery domain the handler pushes.
                    self.pending_skew = Some((a.probe_defer, count, delta));
                } else {
                    self.gep_skew = Some((count, delta));
                }
            }
        }
        if let Some((pool, seed)) = a.corrupt_pool {
            if let Some(p) = self.pools.pool_get_mut(sva_rt::MetaPoolId(pool)) {
                p.inject_corrupt_metadata(seed);
            }
        }
        if let Some((pool, n)) = a.fail_allocs {
            if let Some(p) = self.pools.pool_get_mut(sva_rt::MetaPoolId(pool)) {
                p.inject_reg_failures(n);
            }
        }
        for _ in 0..a.raise_irqs {
            self.pending_irq.push_back(0);
        }
        if let Some((pool, addr)) = a.probe_stale {
            if a.probe_defer > 0 {
                // Deferred form: the dereference is modelled `probe_defer`
                // kernel-mode instructions into the handler body (see the
                // run loop), inside any recovery domain the handler pushes.
                self.pending_probe = Some((a.probe_defer, pool, addr));
            } else {
                // Model a kernel dereference of a stale/wild pointer through
                // the load/store check the verifier would have inserted.
                self.stats.cycles += CHECK_CYCLES;
                if let Some(p) = self.pools.pool_get_mut(sva_rt::MetaPoolId(pool)) {
                    p.ls_check(addr).map_err(VmError::Safety)?;
                }
            }
        }
        Ok(())
    }

    /// Drops the metapool registrations of every stack object owned by the
    /// current frame stack. Called when frames are *discarded* rather than
    /// popped (iret, load.integer): without this, the next kernel entry
    /// re-allocates the same kernel-stack addresses and trips the
    /// overlapping-registration check.
    fn sweep_stack_regs(&mut self) {
        for fr in &self.thread.frames {
            for (mp, addr, _len) in &fr.stack_regs {
                let _ = self.pools.pool_mut(sva_rt::MetaPoolId(*mp)).drop_obj(*addr);
            }
        }
    }

    fn iret(&mut self, icp: u64, retval: u64) -> Result<(), VmError> {
        let fast = self.cfg.kind.fast_os();
        self.stats.cycles += if fast { 16 } else { 24 };
        // Deferred faults model a dereference *inside the handler that
        // trapped*; a handler that returns before the countdown expires
        // wastes the injection slot rather than leaking it into the next
        // handler's prologue (outside its recovery domain).
        self.pending_probe = None;
        self.pending_skew = None;
        let ic = self.icontext_mut(icp)?;
        ic.live = false;
        let mut frames = std::mem::take(&mut ic.frames);
        let usp = ic.usp;
        let asid = ic.asid;
        let result_dst = ic.result_dst;
        let result_frame = ic.result_frame;
        let trace_sys = ic.trace_sys.take();
        if let Some(d) = result_dst {
            if let Some(fr) = frames.get_mut(result_frame) {
                fr.regs[d as usize] = retval;
            }
        }
        self.mem.load_space(asid)?;
        self.sweep_stack_regs();
        self.thread.frames = frames;
        self.thread.usp = usp;
        self.thread.asid = asid;
        self.thread.icid = None;
        self.thread.ksp = KSTACK_BASE;
        if T::wants(EventClass::Syscall) {
            if let Some((num, enter)) = trace_sys {
                let ts = self.stats.cycles;
                self.tracer.record(
                    ts,
                    TraceEvent::SyscallExit {
                        num,
                        cost: ts - enter,
                    },
                );
            }
        }
        Ok(())
    }

    // --- devices -----------------------------------------------------------

    fn io_read(&mut self, port: u64) -> u64 {
        match port {
            PORT_TIMER => self.stats.cycles,
            _ => 0,
        }
    }

    fn io_write(&mut self, port: u64, v: u64) {
        if port == PORT_CONSOLE {
            self.console.push(v as u8);
        }
    }
}

/// Virtual-cycle charge of one metapool check (a hot splay lookup on the
/// paper's hardware; calibrates the cycle model against Table 7/8 shapes).
pub const CHECK_CYCLES: u64 = 16;
/// Virtual-cycle charge of an object registration/drop (splay insert or
/// delete).
pub const REG_CYCLES: u64 = 24;

/// Console output port.
pub const PORT_CONSOLE: u64 = 0x3f8;
/// Virtual timer port (returns cycles).
pub const PORT_TIMER: u64 = 0x40;

enum StepOut {
    Continue,
    Exit(VmExit),
}

// ---------------------------------------------------------------------------
// Shared evaluation helpers.
// ---------------------------------------------------------------------------

fn mask_w(v: u64, w: u8) -> u64 {
    match w {
        64 => v,
        0 => 0,
        w => v & ((1u64 << w) - 1),
    }
}

fn sext_w(v: u64, w: u8) -> i64 {
    match w {
        64 => v as i64,
        0 => 0,
        w => {
            let shift = 64 - w as u32;
            ((v << shift) as i64) >> shift
        }
    }
}

fn eval_bin(op: BinOp, w: u8, a: u64, b: u64) -> Result<u64, VmError> {
    if op.is_float() {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            _ => unreachable!(),
        };
        return Ok(r.to_bits());
    }
    let (ua, ub) = (mask_w(a, w), mask_w(b, w));
    let (sa, sb) = (sext_w(a, w), sext_w(b, w));
    let r = match op {
        BinOp::Add => ua.wrapping_add(ub),
        BinOp::Sub => ua.wrapping_sub(ub),
        BinOp::Mul => ua.wrapping_mul(ub),
        BinOp::UDiv => {
            if ub == 0 {
                return Err(VmError::DivZero);
            }
            ua / ub
        }
        BinOp::SDiv => {
            if sb == 0 {
                return Err(VmError::DivZero);
            }
            sa.wrapping_div(sb) as u64
        }
        BinOp::URem => {
            if ub == 0 {
                return Err(VmError::DivZero);
            }
            ua % ub
        }
        BinOp::SRem => {
            if sb == 0 {
                return Err(VmError::DivZero);
            }
            sa.wrapping_rem(sb) as u64
        }
        BinOp::And => ua & ub,
        BinOp::Or => ua | ub,
        BinOp::Xor => ua ^ ub,
        BinOp::Shl => ua.wrapping_shl(ub as u32 % w.max(1) as u32),
        BinOp::LShr => ua.wrapping_shr(ub as u32 % w.max(1) as u32),
        BinOp::AShr => (sa >> (ub as u32 % w.max(1) as u32)) as u64,
        _ => unreachable!(),
    };
    Ok(mask_w(r, w))
}

fn eval_icmp(pred: IPred, w: u8, a: u64, b: u64) -> bool {
    let (ua, ub) = (mask_w(a, w), mask_w(b, w));
    let (sa, sb) = (sext_w(a, w), sext_w(b, w));
    match pred {
        IPred::Eq => ua == ub,
        IPred::Ne => ua != ub,
        IPred::ULt => ua < ub,
        IPred::ULe => ua <= ub,
        IPred::UGt => ua > ub,
        IPred::UGe => ua >= ub,
        IPred::SLt => sa < sb,
        IPred::SLe => sa <= sb,
        IPred::SGt => sa > sb,
        IPred::SGe => sa >= sb,
    }
}

fn eval_cast(op: CastOp, from_w: u8, to_w: u8, v: u64) -> u64 {
    match op {
        CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr => v,
        CastOp::Trunc => mask_w(v, to_w),
        CastOp::ZExt => mask_w(v, from_w),
        CastOp::SExt => mask_w(sext_w(v, from_w) as u64, to_w),
        CastOp::SiToFp => (sext_w(v, from_w) as f64).to_bits(),
        CastOp::FpToSi => mask_w(f64::from_bits(v) as i64 as u64, to_w),
    }
}

/// Bit width of a type for arithmetic (pointers and `f64` behave as 64).
fn bit_width(m: &Module, t: TypeId) -> u8 {
    match m.types.get(t) {
        Type::Int(w) => *w,
        _ => 64,
    }
}

/// Byte width of a type for memory accesses (`i1` occupies one byte).
fn byte_width(m: &Module, t: TypeId) -> u8 {
    match m.types.get(t) {
        Type::Int(1) | Type::Int(8) => 1,
        Type::Int(16) => 2,
        Type::Int(32) => 4,
        _ => 8,
    }
}

/// Arithmetic width of an operand.
fn width_of(m: &Module, f: &sva_ir::Function, op: &Operand) -> u8 {
    let t = f.operand_type(op, m);
    match m.types.get(t) {
        Type::Int(w) => *w,
        _ => 64,
    }
}

fn resolve_operand(m: &Module, global_addr: &[u64], fr: &Frame, op: &Operand) -> u64 {
    let _ = m;
    match op {
        // Out-of-range ids read as 0 (a guaranteed-unmapped address), so a
        // corrupt module faults deterministically instead of crashing the
        // host. The verifier rejects such modules up front.
        Operand::Value(v) => fr.regs.get(v.0 as usize).copied().unwrap_or(0),
        Operand::ConstInt(v, _) => *v as u64,
        Operand::ConstF64(bits) => *bits,
        Operand::Null(_) => 0,
        Operand::Global(g) => global_addr.get(g.0 as usize).copied().unwrap_or(0),
        Operand::Func(f) => func_addr(f.0),
        Operand::Extern(e) => extern_addr(e.0),
        Operand::Undef(_) => 0,
    }
}

fn round_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

// ---------------------------------------------------------------------------
// Translation (bytecode → flat "native" code).
// ---------------------------------------------------------------------------

fn translate(m: &Module, f: &sva_ir::Function, global_addr: &[u64]) -> Result<FlatFunc, VmError> {
    let mut ops: Vec<FlatOp> = Vec::with_capacity(f.insts.len());
    // First pass: compute the pc of each block.
    let mut block_pc = Vec::with_capacity(f.blocks.len());
    {
        let mut pc = 0u32;
        for b in &f.blocks {
            block_pc.push(pc);
            pc += b.insts.len() as u32;
        }
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        for &iid in &b.insts {
            let inst = f
                .insts
                .get(iid.0 as usize)
                .ok_or(VmError::Internal("block references bad instruction"))?;
            let dst = f
                .inst_results
                .get(iid.0 as usize)
                .copied()
                .flatten()
                .map(|v| v.0);
            let op = translate_inst(m, f, inst, dst, bi as u32, &block_pc, global_addr)?;
            ops.push(op);
        }
    }
    Ok(FlatFunc { ops })
}

fn t_src(m: &Module, g: &[u64], op: &Operand) -> Src {
    let _ = m;
    match op {
        Operand::Value(v) => Src::Reg(v.0),
        Operand::ConstInt(v, _) => Src::Imm(*v as u64),
        Operand::ConstF64(bits) => Src::Imm(*bits),
        Operand::Null(_) => Src::Imm(0),
        Operand::Global(gid) => Src::Imm(g.get(gid.0 as usize).copied().unwrap_or(0)),
        Operand::Func(fid) => Src::Imm(func_addr(fid.0)),
        Operand::Extern(e) => Src::Imm(extern_addr(e.0)),
        Operand::Undef(_) => Src::Imm(0),
    }
}

fn translate_inst(
    m: &Module,
    f: &sva_ir::Function,
    inst: &Inst,
    dst: Option<u32>,
    from_block: u32,
    block_pc: &[u32],
    global_addr: &[u64],
) -> Result<FlatOp, VmError> {
    let s = |op: &Operand| t_src(m, global_addr, op);
    let ww = |op: &Operand| width_of(m, f, op);
    Ok(match inst {
        Inst::Bin { op, lhs, rhs } => FlatOp::Bin {
            op: *op,
            w: ww(lhs),
            dst: dst.unwrap(),
            a: s(lhs),
            b: s(rhs),
        },
        Inst::ICmp { pred, lhs, rhs } => FlatOp::ICmp {
            pred: *pred,
            w: ww(lhs),
            dst: dst.unwrap(),
            a: s(lhs),
            b: s(rhs),
        },
        Inst::Select { cond, tval, fval } => FlatOp::Select {
            dst: dst.unwrap(),
            c: s(cond),
            a: s(tval),
            b: s(fval),
        },
        Inst::Cast { op, val, to } => FlatOp::Cast {
            dst: dst.unwrap(),
            a: s(val),
            op: *op,
            from_w: ww(val),
            to_w: bit_width(m, *to),
        },
        Inst::Gep { base, indices } => {
            let bty = f.operand_type(base, m);
            let mut cur = m.types.pointee(bty);
            let mut const_off: i64 = 0;
            let mut dynamic = Vec::new();
            for (n, idx) in indices.iter().enumerate() {
                if n == 0 {
                    let scale = m.types.size_of(cur);
                    match idx {
                        Operand::ConstInt(c, _) => const_off += c * scale as i64,
                        _ => dynamic.push((s(idx), scale, ww(idx))),
                    }
                    continue;
                }
                match m.types.get(cur).clone() {
                    Type::Array(e, _) => {
                        let scale = m.types.size_of(e);
                        match idx {
                            Operand::ConstInt(c, _) => const_off += c * scale as i64,
                            _ => dynamic.push((s(idx), scale, ww(idx))),
                        }
                        cur = e;
                    }
                    Type::Struct(_) => {
                        let c = match idx {
                            Operand::ConstInt(c, _) => *c as usize,
                            _ => return Err(VmError::Unsupported("dyn struct index".into())),
                        };
                        const_off += m.types.field_offset(cur, c) as i64;
                        cur = m.types.struct_fields(cur)[c];
                    }
                    _ => return Err(VmError::Unsupported("bad gep".into())),
                }
            }
            FlatOp::Gep {
                dst: dst.unwrap(),
                base: s(base),
                const_off,
                dynamic,
            }
        }
        Inst::Load { ptr } => {
            let pty = f.operand_type(ptr, m);
            FlatOp::Load {
                dst: dst.unwrap(),
                ptr: s(ptr),
                w: byte_width(m, m.types.pointee(pty)),
            }
        }
        Inst::Store { val, ptr } => {
            let vty = f.operand_type(val, m);
            FlatOp::Store {
                val: s(val),
                ptr: s(ptr),
                w: byte_width(m, vty),
            }
        }
        Inst::Alloca { ty, count } => {
            let layout = m.types.layout(*ty);
            FlatOp::Alloca {
                dst: dst.unwrap(),
                elem: layout.size,
                count: s(count),
                align: layout.align,
            }
        }
        Inst::Call { callee, args } => {
            let fc = match callee {
                Callee::Direct(fid) => FlatCallee::Direct(fid.0),
                Callee::External(e) => FlatCallee::External(e.0),
                Callee::Indirect(o) => FlatCallee::Indirect(s(o)),
                Callee::Intrinsic(i) => FlatCallee::Intrinsic(*i),
            };
            FlatOp::Call {
                dst,
                callee: fc,
                args: args.iter().map(&s).collect(),
            }
        }
        Inst::Phi { incomings, .. } => FlatOp::Phi {
            dst: dst.unwrap(),
            incomings: incomings.iter().map(|(b, v)| (b.0, s(v))).collect(),
        },
        Inst::AtomicRmw { op, ptr, val } => {
            let pty = f.operand_type(ptr, m);
            FlatOp::AtomicRmw {
                op: *op,
                dst: dst.unwrap(),
                ptr: s(ptr),
                val: s(val),
                w: byte_width(m, m.types.pointee(pty)),
            }
        }
        Inst::CmpXchg { ptr, expected, new } => {
            let pty = f.operand_type(ptr, m);
            FlatOp::CmpXchg {
                dst: dst.unwrap(),
                ptr: s(ptr),
                expected: s(expected),
                new: s(new),
                w: byte_width(m, m.types.pointee(pty)),
            }
        }
        Inst::Fence => FlatOp::Fence,
        Inst::Br { target } => FlatOp::Br {
            pc: block_pc[target.0 as usize],
            from: from_block,
        },
        Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        } => FlatOp::CondBr {
            c: s(cond),
            tpc: block_pc[then_bb.0 as usize],
            fpc: block_pc[else_bb.0 as usize],
            from: from_block,
        },
        Inst::Switch {
            val,
            default,
            cases,
        } => FlatOp::Switch {
            v: s(val),
            w: ww(val),
            dpc: block_pc[default.0 as usize],
            cases: cases
                .iter()
                .map(|(c, b)| (*c, block_pc[b.0 as usize]))
                .collect(),
            from: from_block,
        },
        Inst::Ret { val } => FlatOp::Ret {
            val: val.as_ref().map(s),
        },
        Inst::Unreachable => FlatOp::Unreachable,
    })
}
