//! Machine snapshot / checkpoint-restore (DESIGN.md §4.6).
//!
//! Because the whole commodity-OS state is mediated by the virtual
//! architecture (paper §3), the *entire* machine — physical memory,
//! register frames, metapool registries, interrupt contexts, the
//! recovery-domain stack — is an ordinary serializable object. This
//! module turns a live [`Vm`] into a versioned, checksummed binary image
//! and restores it bit-exactly, so that `snapshot → restore → run` is
//! indistinguishable from an uninterrupted `run` on
//! [`VmStats::equivalence_key`] (and in fact on the full stats block,
//! console bytes and exit).
//!
//! ## Image layout
//!
//! ```text
//! header (40 bytes):
//!   magic       4  b"SVA1"
//!   version     4  u32 LE, SNAPSHOT_VERSION
//!   config_fp   8  FNV-1a over the fingerprint block
//!   code_id     8  FNV-1a over the sealed module bytes
//!   payload_len 8  u64 LE
//!   checksum    8  FNV-1a over the payload
//! payload:
//!   fingerprint block  (one u64 per config field, see below)
//!   memory, thread, icontexts, saved states, dispatch tables,
//!   metapool images, console, stats, fuel/halt/irq/recovery/fault state,
//!   capture origin (checkpoint vs mid-flight), code manifest
//! ```
//!
//! ## Serialized vs rebuilt
//!
//! Everything observable is serialized. Three things are deliberately
//! *rebuilt* on restore instead:
//!
//! * the translated-function cache — deterministic from the module and
//!   config, which the header's `code_id`/`config_fp` pin;
//! * the metapool splay trees and page indexes — rebuilt from the sorted
//!   live-range lists ([`sva_rt::PoolImage`]); tree shape and bucket
//!   order are observationally irrelevant because ranges are disjoint
//!   (the round-trip gates in `tests/snapshot.rs` prove it);
//! * the fault hook — a host-side `Arc<dyn FaultHook>` that cannot be
//!   serialized; the image carries its schedule cursor (`trap_count`),
//!   so reattaching an identical plan resumes the identical schedule.
//!
//! ## Version policy
//!
//! Any change to the payload layout bumps [`SNAPSHOT_VERSION`]; restore
//! hard-rejects other versions ([`SnapshotError::BadVersion`]) rather
//! than guessing. Images are likewise rejected when the restoring
//! machine's config fingerprint or code identity differs — a snapshot is
//! a *state* capture, not a code capture.

use std::collections::HashMap;

use sva_ir::bytecode::SignedModule;
use sva_rt::{CheckStats, PoolImage};
use sva_trace::Tracer;

use crate::mem::{Mode, UserSpace, PAGE_SIZE};
use crate::vm::{
    Frame, IContext, KernelKind, RecoveryCtx, SavedState, Thread, Vm, VmConfig, VmStats,
};

/// Image magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SVA1";
/// Current image format version. Bump on any payload-layout change.
/// v3: `vcpus` joined the config fingerprint and the payload gained the
/// machine's vCPU identity (`cpu_id`) — an image taken on vCPU 2 of a
/// 4-CPU machine restores as vCPU 2 (DESIGN.md §4.9).
/// v4: the payload gained a capture-origin byte (checkpoint vs
/// mid-flight safe point) and a code manifest — the module's surface
/// fingerprint plus per-function body hashes — so [`crate::migrate`]
/// can judge whether a *rebuilt* kernel may adopt the image
/// (DESIGN.md §4.10). Older versions are upcast by `migrate`, never
/// guessed at by [`Vm::restore`].
pub const SNAPSHOT_VERSION: u32 = 4;
/// Capture origin: a deliberate checkpoint ([`Vm::snapshot`]), e.g. at
/// the boot pause point.
pub const ORIGIN_CHECKPOINT: u8 = 0;
/// Capture origin: a latched safe-point capture taken at an instruction
/// boundary while the machine was running ([`Vm::request_snapshot`],
/// [`Vm::snapshot_midflight`], `SmpMachine::quiesce`).
pub const ORIGIN_MIDFLIGHT: u8 = 1;
/// Header size in bytes.
pub(crate) const HEADER_LEN: usize = 40;

/// Why an image could not be restored. Restore never partially applies:
/// on any error the machine is untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The image ends before the advertised content.
    Truncated {
        /// Bytes the parser needed.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The first four bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic([u8; 4]),
    /// The image was written by a different format version.
    BadVersion {
        /// Version in the image header.
        found: u32,
        /// Version this build restores.
        expected: u32,
    },
    /// One configuration field differs between the image and the machine.
    ConfigMismatch {
        /// Which fingerprint field mismatched.
        field: &'static str,
        /// The image's value (widened to u64).
        image: u64,
        /// The restoring machine's value.
        machine: u64,
    },
    /// The image was taken from a machine running different code.
    CodeMismatch {
        /// Code identity in the image header.
        image: u64,
        /// The restoring machine's code identity.
        machine: u64,
    },
    /// The payload checksum does not match (bit rot / tampering).
    Corrupt {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The payload parsed but described an impossible machine.
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { need, have } => {
                write!(f, "truncated image: need {need} bytes, have {have}")
            }
            SnapshotError::BadMagic(m) => write!(f, "bad magic {m:02x?} (not an SVA image)"),
            SnapshotError::BadVersion { found, expected } => {
                write!(
                    f,
                    "image format version {found}, this build restores {expected}"
                )
            }
            SnapshotError::ConfigMismatch {
                field,
                image,
                machine,
            } => write!(
                f,
                "config mismatch on {field}: image {image:#x}, machine {machine:#x}"
            ),
            SnapshotError::CodeMismatch { image, machine } => write!(
                f,
                "code identity mismatch: image {image:#x}, machine {machine:#x}"
            ),
            SnapshotError::Corrupt { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            SnapshotError::Malformed(s) => write!(f, "malformed image: {s}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit (the repo's standing content-hash; no dependencies).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn kind_code(k: KernelKind) -> u64 {
    match k {
        KernelKind::Native => 0,
        KernelKind::SvaGcc => 1,
        KernelKind::SvaLlvm => 2,
        KernelKind::SvaSafe => 3,
    }
}

/// The config fields a snapshot is only valid under, each widened to u64.
/// Order is part of the format.
pub(crate) const FP_FIELDS: [&str; 10] = [
    "kind",
    "sign_key",
    "opt_level",
    "fast_path",
    "singleton_path",
    "violation_budget",
    "domain_fuel",
    "fused_sites",
    "hot_profile",
    "vcpus",
];

pub(crate) fn fingerprint_words(cfg: &VmConfig, fused_sites: u32) -> [u64; FP_FIELDS.len()] {
    let profile_hash = cfg
        .hot_profile
        .as_ref()
        .map(|p| fnv64(p.to_text().as_bytes()))
        .unwrap_or(0);
    [
        kind_code(cfg.kind),
        cfg.sign_key,
        cfg.opt_level as u64,
        cfg.fast_path as u64,
        cfg.singleton_path as u64,
        cfg.violation_budget as u64,
        cfg.domain_fuel,
        fused_sites as u64,
        profile_hash,
        cfg.vcpus.max(1) as u64,
    ]
}

// ---------------------------------------------------------------------------
// Little-endian writer / reader.
// ---------------------------------------------------------------------------

#[derive(Default)]
pub(crate) struct W {
    pub(crate) buf: Vec<u8>,
}

impl W {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
    pub(crate) fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u32(x);
            }
            None => self.bool(false),
        }
    }
    /// Zero-dominated byte region as a page-granular nonzero-page list.
    /// The kernel region is 32 MiB and mostly zeros; post-boot images
    /// shrink ~50× under this encoding.
    pub(crate) fn sparse(&mut self, data: &[u8]) {
        self.u64(data.len() as u64);
        let page = PAGE_SIZE as usize;
        let nonzero: Vec<usize> = data
            .chunks(page)
            .enumerate()
            .filter(|(_, c)| !all_zero(c))
            .map(|(i, _)| i)
            .collect();
        self.u64(nonzero.len() as u64);
        for i in nonzero {
            self.u64(i as u64);
            let start = i * page;
            let end = (start + page).min(data.len());
            self.buf.extend_from_slice(&data[start..end]);
        }
    }
}

/// Word-at-a-time zero test: the sparse codec scans the full 32 MiB
/// kernel region on every snapshot *and* every restore, and a byte-wise
/// loop there costs more than the fork it enables saves.
fn all_zero(bytes: &[u8]) -> bool {
    let mut words = bytes.chunks_exact(8);
    if words.any(|c| u64::from_ne_bytes(c.try_into().unwrap()) != 0) {
        return false;
    }
    words.remainder().iter().all(|&b| b == 0)
}

pub(crate) struct R<'a> {
    b: &'a [u8],
    pub(crate) pos: usize,
}

pub(crate) type RResult<T> = Result<T, SnapshotError>;

impl<'a> R<'a> {
    pub(crate) fn new(b: &'a [u8]) -> Self {
        R { b, pos: 0 }
    }
    pub(crate) fn take(&mut self, n: usize) -> RResult<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return Err(SnapshotError::Truncated {
                need: self.pos + n,
                have: self.b.len(),
            });
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> RResult<u8> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn bool(&mut self) -> RResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapshotError::Malformed(format!("bad bool byte {v}"))),
        }
    }
    pub(crate) fn u32(&mut self) -> RResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> RResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn i64(&mut self) -> RResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn len(&mut self, what: &str) -> RResult<usize> {
        let n = self.u64()?;
        // Guard against absurd counts before any allocation: every
        // element encodes to at least one byte, so a count can never
        // exceed the remaining payload.
        let remaining = (self.b.len() - self.pos) as u64;
        if n > remaining {
            return Err(SnapshotError::Malformed(format!(
                "{what} count {n} exceeds {remaining} remaining bytes"
            )));
        }
        Ok(n as usize)
    }
    pub(crate) fn bytes(&mut self) -> RResult<Vec<u8>> {
        let n = self.len("byte section")?;
        Ok(self.take(n)?.to_vec())
    }
    pub(crate) fn str(&mut self) -> RResult<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| SnapshotError::Malformed("non-UTF-8 string".into()))
    }
    pub(crate) fn opt_u32(&mut self) -> RResult<Option<u32>> {
        Ok(if self.bool()? {
            Some(self.u32()?)
        } else {
            None
        })
    }
    pub(crate) fn sparse(&mut self) -> RResult<SparseRegion<'a>> {
        // The decoded region may legitimately exceed the (compressed)
        // payload size, so `len`'s remaining-bytes guard does not apply;
        // cap it at well above the largest real region (32 MiB kernel).
        const MAX_REGION: u64 = 1 << 28;
        let total = self.u64()?;
        if total > MAX_REGION {
            return Err(SnapshotError::Malformed(format!(
                "sparse region of {total} bytes"
            )));
        }
        let total = total as usize;
        let page = PAGE_SIZE as usize;
        let npages = self.u64()?;
        if npages as usize > total / page + 1 {
            return Err(SnapshotError::Malformed(format!(
                "{npages} sparse pages in a {total}-byte region"
            )));
        }
        let mut pages = Vec::with_capacity(npages as usize);
        for _ in 0..npages {
            let i = self.u64()? as usize;
            let start = i.checked_mul(page).filter(|&s| s < total).ok_or_else(|| {
                SnapshotError::Malformed(format!("sparse page {i} outside region"))
            })?;
            let end = (start + page).min(total);
            pages.push((start, self.take(end - start)?));
        }
        Ok(SparseRegion { total, pages })
    }
}

/// A decoded sparse region: nonzero pages borrowed straight from the
/// image. Restore never materializes the big (32 MiB, zero-dominated)
/// kernel region as a dense temporary — snapshot-forked campaigns
/// restore hundreds of times per run, and a dense copy per fork would
/// cost more than the re-boot the fork replaces.
pub(crate) struct SparseRegion<'a> {
    total: usize,
    /// `(byte offset, page bytes)`, offsets validated `< total`.
    pages: Vec<(usize, &'a [u8])>,
}

impl SparseRegion<'_> {
    /// Decodes into a fresh zero-filled buffer. `vec![0; n]` is a calloc:
    /// the buffer stays zero-page-backed until written, so this touches
    /// only the image's nonzero pages no matter how large the region is.
    fn materialize(&self) -> Vec<u8> {
        let mut data = vec![0u8; self.total];
        for &(start, bytes) in &self.pages {
            data[start..start + bytes.len()].copy_from_slice(bytes);
        }
        data
    }
}

// ---------------------------------------------------------------------------
// Section codecs.
// ---------------------------------------------------------------------------

fn mode_code(m: Mode) -> u8 {
    match m {
        Mode::Kernel => 0,
        Mode::User => 1,
    }
}

fn mode_from(c: u8) -> RResult<Mode> {
    match c {
        0 => Ok(Mode::Kernel),
        1 => Ok(Mode::User),
        v => Err(SnapshotError::Malformed(format!("bad mode byte {v}"))),
    }
}

pub(crate) fn write_frame(w: &mut W, fr: &Frame) {
    w.u32(fr.func);
    w.u32(fr.pc);
    w.u32(fr.block);
    w.u32(fr.idx);
    w.u32(fr.prev_block);
    w.u64(fr.regs.len() as u64);
    for &r in &fr.regs {
        w.u64(r);
    }
    w.opt_u32(fr.ret_dst);
    w.u8(mode_code(fr.mode));
    w.u64(fr.sp_saved);
    w.u64(fr.stack_regs.len() as u64);
    for &(mp, addr, len) in &fr.stack_regs {
        w.u32(mp);
        w.u64(addr);
        w.u64(len);
    }
}

pub(crate) fn read_frame(r: &mut R<'_>) -> RResult<Frame> {
    let func = r.u32()?;
    let pc = r.u32()?;
    let block = r.u32()?;
    let idx = r.u32()?;
    let prev_block = r.u32()?;
    let nregs = r.len("frame regs")?;
    let mut regs = Vec::with_capacity(nregs);
    for _ in 0..nregs {
        regs.push(r.u64()?);
    }
    let ret_dst = r.opt_u32()?;
    let mode = mode_from(r.u8()?)?;
    let sp_saved = r.u64()?;
    let nstack = r.len("stack regs")?;
    let mut stack_regs = Vec::with_capacity(nstack);
    for _ in 0..nstack {
        stack_regs.push((r.u32()?, r.u64()?, r.u64()?));
    }
    Ok(Frame {
        func,
        pc,
        block,
        idx,
        prev_block,
        regs,
        ret_dst,
        mode,
        sp_saved,
        stack_regs,
    })
}

pub(crate) fn write_frames(w: &mut W, frames: &[Frame]) {
    w.u64(frames.len() as u64);
    for fr in frames {
        write_frame(w, fr);
    }
}

pub(crate) fn read_frames(r: &mut R<'_>) -> RResult<Vec<Frame>> {
    let n = r.len("frame stack")?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(read_frame(r)?);
    }
    Ok(v)
}

pub(crate) fn write_icontext(w: &mut W, ic: &IContext) {
    write_frames(w, &ic.frames);
    w.u64(ic.usp);
    w.u32(ic.asid);
    w.bool(ic.privileged);
    w.opt_u32(ic.result_dst);
    w.u64(ic.result_frame as u64);
    w.bool(ic.live);
    match ic.trace_sys {
        Some((nr, at)) => {
            w.bool(true);
            w.i64(nr);
            w.u64(at);
        }
        None => w.bool(false),
    }
}

pub(crate) fn read_icontext(r: &mut R<'_>) -> RResult<IContext> {
    Ok(IContext {
        frames: read_frames(r)?,
        usp: r.u64()?,
        asid: r.u32()?,
        privileged: r.bool()?,
        result_dst: r.opt_u32()?,
        result_frame: r.u64()? as usize,
        live: r.bool()?,
        trace_sys: if r.bool()? {
            Some((r.i64()?, r.u64()?))
        } else {
            None
        },
    })
}

pub(crate) fn write_saved_state(w: &mut W, s: &SavedState) {
    write_frames(w, &s.frames);
    w.opt_u32(s.icid);
    w.u32(s.asid);
    w.u64(s.ksp);
    w.bytes(&s.kstack);
    w.opt_u32(s.save_dst);
}

pub(crate) fn read_saved_state(r: &mut R<'_>) -> RResult<SavedState> {
    Ok(SavedState {
        frames: read_frames(r)?,
        icid: r.opt_u32()?,
        asid: r.u32()?,
        ksp: r.u64()?,
        kstack: r.bytes()?,
        save_dst: r.opt_u32()?,
    })
}

pub(crate) fn write_recovery(w: &mut W, rc: &RecoveryCtx) {
    write_frames(w, &rc.frames);
    w.opt_u32(rc.icid);
    w.u32(rc.asid);
    w.u64(rc.ksp);
    w.u64(rc.usp);
    w.bytes(&rc.kstack);
    w.opt_u32(rc.dst);
    w.u64(rc.subsys);
    w.u64(rc.fuel);
    w.u64(rc.quarantined_pools.len() as u64);
    for &p in &rc.quarantined_pools {
        w.u32(p);
    }
}

pub(crate) fn read_recovery(r: &mut R<'_>) -> RResult<RecoveryCtx> {
    let frames = read_frames(r)?;
    let icid = r.opt_u32()?;
    let asid = r.u32()?;
    let ksp = r.u64()?;
    let usp = r.u64()?;
    let kstack = r.bytes()?;
    let dst = r.opt_u32()?;
    let subsys = r.u64()?;
    let fuel = r.u64()?;
    let n = r.len("quarantined pools")?;
    let mut quarantined_pools = Vec::with_capacity(n);
    for _ in 0..n {
        quarantined_pools.push(r.u32()?);
    }
    Ok(RecoveryCtx {
        frames,
        icid,
        asid,
        ksp,
        usp,
        kstack,
        dst,
        subsys,
        fuel,
        quarantined_pools,
    })
}

pub(crate) fn write_pool_image(w: &mut W, img: &PoolImage) {
    w.str(&img.name);
    w.u64(img.ranges.len() as u64);
    for &(s, e) in &img.ranges {
        w.u64(s);
        w.u64(e);
    }
    for &word in &img.stats {
        w.u64(word);
    }
    w.bool(img.fast_path);
    w.bool(img.singleton_path);
    for slot in img.mru {
        match slot {
            Some((s, e)) => {
                w.bool(true);
                w.u64(s);
                w.u64(e);
            }
            None => w.bool(false),
        }
    }
    w.u32(img.quiet_lookups);
    w.u8(img.last_layer);
    w.bool(img.quarantined);
    w.bool(img.poisoned);
    w.u32(img.violations);
    w.u32(img.scope_violations);
    w.u32(img.forced_reg_failures);
    w.u64(img.poisoned_by);
    w.u32(img.repairs);
}

pub(crate) fn read_pool_image(r: &mut R<'_>) -> RResult<PoolImage> {
    let name = r.str()?;
    let n = r.len("pool ranges")?;
    let mut ranges = Vec::with_capacity(n);
    for _ in 0..n {
        ranges.push((r.u64()?, r.u64()?));
    }
    let mut stats = [0u64; CheckStats::WORDS];
    for word in &mut stats {
        *word = r.u64()?;
    }
    let fast_path = r.bool()?;
    let singleton_path = r.bool()?;
    let mut mru = [None; 2];
    for slot in &mut mru {
        if r.bool()? {
            *slot = Some((r.u64()?, r.u64()?));
        }
    }
    Ok(PoolImage {
        name,
        ranges,
        stats,
        fast_path,
        singleton_path,
        mru,
        quiet_lookups: r.u32()?,
        last_layer: r.u8()?,
        quarantined: r.bool()?,
        poisoned: r.bool()?,
        violations: r.u32()?,
        scope_violations: r.u32()?,
        forced_reg_failures: r.u32()?,
        poisoned_by: r.u64()?,
        repairs: r.u32()?,
    })
}

pub(crate) fn stats_words(s: &VmStats) -> [u64; 22] {
    [
        s.instructions,
        s.cycles,
        s.traps,
        s.range_checks,
        s.context_switches,
        s.interrupts,
        s.cache_hits,
        s.page_hits,
        s.tree_walks,
        s.singleton_hits,
        s.violations_recovered,
        s.pools_quarantined,
        s.pools_poisoned,
        s.domains_pushed,
        s.domains_popped,
        s.watchdog_unwinds,
        s.fused_execs,
        s.repairs,
        s.pools_repaired,
        s.probation_passed,
        s.probation_failed,
        s.subsys_retired,
    ]
}

pub(crate) fn stats_from_words(w: [u64; 22]) -> VmStats {
    VmStats {
        instructions: w[0],
        cycles: w[1],
        traps: w[2],
        range_checks: w[3],
        context_switches: w[4],
        interrupts: w[5],
        cache_hits: w[6],
        page_hits: w[7],
        tree_walks: w[8],
        singleton_hits: w[9],
        violations_recovered: w[10],
        pools_quarantined: w[11],
        pools_poisoned: w[12],
        domains_pushed: w[13],
        domains_popped: w[14],
        watchdog_unwinds: w[15],
        fused_execs: w[16],
        repairs: w[17],
        pools_repaired: w[18],
        probation_passed: w[19],
        probation_failed: w[20],
        subsys_retired: w[21],
    }
}

// ---------------------------------------------------------------------------
// Code manifest (v4).
// ---------------------------------------------------------------------------

/// One function's identity in a [`CodeManifest`]: its name, a signature
/// fingerprint (linkage + full function type) and a hash of its printed
/// body. Order in the manifest is module order, which is also dispatch /
/// frame-index order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct ManifestFunc {
    pub name: String,
    pub sig_fp: u64,
    pub body_hash: u64,
}

/// The code identity a v4 image carries alongside the opaque `code_id`
/// hash: enough structure for [`crate::migrate`] to decide whether a
/// *different* build may adopt the image (same surface ⇒ same function
/// indices, global addresses and dispatch-table meanings) and which
/// function bodies changed (a function with a live frame must be
/// byte-compatible; a cold one may differ — that is the live-patch case).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub(crate) struct CodeManifest {
    /// FNV over `globals_fp` + each function's `(name, sig_fp)`.
    pub surface_fp: u64,
    /// FNV over the printed module header (structs, globals, externs,
    /// allocators, entry) — everything memory layout is derived from.
    pub globals_fp: u64,
    /// Per function, in module order.
    pub funcs: Vec<ManifestFunc>,
}

/// Computes the manifest for a module. Deterministic: built on the IR
/// printer, whose output is a pure function of the module.
pub(crate) fn compute_manifest(m: &sva_ir::Module) -> CodeManifest {
    let globals_fp = fnv64(sva_ir::print::print_module_header(m).as_bytes());
    let funcs: Vec<ManifestFunc> = m
        .funcs
        .iter()
        .map(|f| {
            let linkage = match f.linkage {
                sva_ir::Linkage::Public => "public",
                sva_ir::Linkage::Internal => "internal",
            };
            let sig = format!("{} {}", linkage, m.types.display(f.ty));
            ManifestFunc {
                name: f.name.clone(),
                sig_fp: fnv64(sig.as_bytes()),
                body_hash: fnv64(sva_ir::print::print_function_text(m, f).as_bytes()),
            }
        })
        .collect();
    CodeManifest {
        surface_fp: surface_fp_of(globals_fp, &funcs),
        globals_fp,
        funcs,
    }
}

/// The surface fingerprint over a header hash and a function list —
/// shared by [`compute_manifest`] and the migration prefix check.
pub(crate) fn surface_fp_of(globals_fp: u64, funcs: &[ManifestFunc]) -> u64 {
    let mut bytes = globals_fp.to_le_bytes().to_vec();
    for f in funcs {
        bytes.extend_from_slice(f.name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&f.sig_fp.to_le_bytes());
    }
    fnv64(&bytes)
}

pub(crate) fn write_manifest(w: &mut W, m: &CodeManifest) {
    w.u64(m.surface_fp);
    w.u64(m.globals_fp);
    w.u64(m.funcs.len() as u64);
    for f in &m.funcs {
        w.str(&f.name);
        w.u64(f.sig_fp);
        w.u64(f.body_hash);
    }
}

pub(crate) fn read_manifest(r: &mut R<'_>) -> RResult<CodeManifest> {
    let surface_fp = r.u64()?;
    let globals_fp = r.u64()?;
    let n = r.len("manifest functions")?;
    let mut funcs = Vec::with_capacity(n);
    for _ in 0..n {
        funcs.push(ManifestFunc {
            name: r.str()?,
            sig_fp: r.u64()?,
            body_hash: r.u64()?,
        });
    }
    Ok(CodeManifest {
        surface_fp,
        globals_fp,
        funcs,
    })
}

pub(crate) fn read_origin(r: &mut R<'_>) -> RResult<u8> {
    match r.u8()? {
        o @ (ORIGIN_CHECKPOINT | ORIGIN_MIDFLIGHT) => Ok(o),
        v => Err(SnapshotError::Malformed(format!("bad origin byte {v}"))),
    }
}

/// Everything a payload decodes to, parsed in full before any of it is
/// committed to the machine (restore is atomic: error ⇒ untouched).
/// Memory regions stay borrowed from the image until commit.
struct Parsed<'a> {
    kernel: SparseRegion<'a>,
    spaces: Vec<(bool, SparseRegion<'a>)>,
    current_asid: u32,
    thread: Thread,
    icontexts: Vec<IContext>,
    int_state: HashMap<u64, SavedState>,
    user_state: HashMap<u64, IContext>,
    syscalls: HashMap<i64, u32>,
    interrupts: HashMap<i64, u32>,
    pool_images: Vec<PoolImage>,
    func_stats: [u64; CheckStats::WORDS],
    console: Vec<u8>,
    stats: VmStats,
    fuel: u64,
    halted: Option<u64>,
    pending_irq: Vec<i64>,
    recovery: Vec<RecoveryCtx>,
    gep_skew: Option<(u32, i64)>,
    pending_probe: Option<(u64, u32, u64)>,
    pending_skew: Option<(u64, u32, i64)>,
    call_floor: usize,
    trap_count: u64,
    cpu_id: u32,
}

impl<T: Tracer> Vm<T> {
    /// FNV identity of the machine's code: the sealed (signed) module
    /// bytes, exactly what the translation cache is a pure function of.
    pub(crate) fn code_identity(&self) -> u64 {
        fnv64(&SignedModule::seal(&self.code.module, self.cfg.sign_key).bytecode)
    }

    /// Serializes the complete machine state into a versioned,
    /// checksummed binary image. See the module docs for the layout and
    /// the serialized-vs-rebuilt split. The attached fault hook (if any)
    /// is *not* captured — only its schedule cursor is; reattach an
    /// identical plan after [`Vm::restore`] to resume the schedule.
    pub fn snapshot(&self) -> Vec<u8> {
        self.snapshot_with_origin(ORIGIN_CHECKPOINT)
    }

    /// [`Vm::snapshot`] tagged [`ORIGIN_MIDFLIGHT`]: the image a latched
    /// safe-point capture produces. Taking one by hand at a chosen
    /// instruction boundary (e.g. after [`Vm::run_steps`]) yields bytes
    /// identical to arming [`Vm::request_snapshot_at`] with the same
    /// boundary — the byte-identity gates in `tests/smp.rs` rely on it.
    pub fn snapshot_midflight(&self) -> Vec<u8> {
        self.snapshot_with_origin(ORIGIN_MIDFLIGHT)
    }

    pub(crate) fn snapshot_with_origin(&self, origin: u8) -> Vec<u8> {
        let mut w = W::default();
        // Fingerprint block: one word per config field so restore can
        // name the exact mismatching field.
        for word in fingerprint_words(&self.cfg, self.fused_sites()) {
            w.u64(word);
        }
        // Memory.
        w.sparse(self.mem.kernel_bytes());
        let spaces = self.mem.all_spaces();
        w.u64(spaces.len() as u64);
        for s in spaces {
            w.bool(s.live);
            w.sparse(&s.data);
        }
        w.u32(self.mem.current_asid);
        // Thread.
        write_frames(&mut w, &self.thread.frames);
        w.u32(self.thread.asid);
        w.opt_u32(self.thread.icid);
        w.u64(self.thread.ksp);
        w.u64(self.thread.usp);
        w.bool(self.thread.fp_dirty);
        // Interrupt contexts.
        w.u64(self.icontexts.len() as u64);
        for ic in &self.icontexts {
            write_icontext(&mut w, ic);
        }
        // Saved processor state, sorted for a canonical image.
        let mut keys: Vec<u64> = self.int_state.keys().copied().collect();
        keys.sort_unstable();
        w.u64(keys.len() as u64);
        for k in keys {
            w.u64(k);
            write_saved_state(&mut w, &self.int_state[&k]);
        }
        let mut keys: Vec<u64> = self.user_state.keys().copied().collect();
        keys.sort_unstable();
        w.u64(keys.len() as u64);
        for k in keys {
            w.u64(k);
            write_icontext(&mut w, &self.user_state[&k]);
        }
        // Dispatch tables.
        let mut keys: Vec<i64> = self.syscalls.keys().copied().collect();
        keys.sort_unstable();
        w.u64(keys.len() as u64);
        for k in keys {
            w.i64(k);
            w.u32(self.syscalls[&k]);
        }
        let mut keys: Vec<i64> = self.interrupts.keys().copied().collect();
        keys.sort_unstable();
        w.u64(keys.len() as u64);
        for k in keys {
            w.i64(k);
            w.u32(self.interrupts[&k]);
        }
        // Metapools.
        let (pool_images, func_stats) = self.pools.export_images();
        w.u64(pool_images.len() as u64);
        for img in &pool_images {
            write_pool_image(&mut w, img);
        }
        for word in func_stats {
            w.u64(word);
        }
        // Console and counters.
        w.bytes(&self.console);
        for word in stats_words(&self.stats) {
            w.u64(word);
        }
        // Run-control and fault-injection state.
        w.u64(self.fuel);
        match self.halted {
            Some(c) => {
                w.bool(true);
                w.u64(c);
            }
            None => w.bool(false),
        }
        w.u64(self.pending_irq.len() as u64);
        for &v in &self.pending_irq {
            w.i64(v);
        }
        w.u64(self.recovery.len() as u64);
        for rc in &self.recovery {
            write_recovery(&mut w, rc);
        }
        match self.gep_skew {
            Some((count, delta)) => {
                w.bool(true);
                w.u32(count);
                w.i64(delta);
            }
            None => w.bool(false),
        }
        match self.pending_probe {
            Some((cnt, pool, addr)) => {
                w.bool(true);
                w.u64(cnt);
                w.u32(pool);
                w.u64(addr);
            }
            None => w.bool(false),
        }
        match self.pending_skew {
            Some((cnt, count, delta)) => {
                w.bool(true);
                w.u64(cnt);
                w.u32(count);
                w.i64(delta);
            }
            None => w.bool(false),
        }
        w.u64(self.call_floor as u64);
        w.u64(self.trap_count);
        w.u32(self.cpu_id);
        // v4: capture origin and the code manifest. Neither is machine
        // *state* — restore ignores them — but migration reads both:
        // the manifest to judge cross-build compatibility, the origin so
        // tooling can tell a boot-pause checkpoint from a mid-flight cut.
        w.u8(origin);
        write_manifest(&mut w, self.code.manifest());

        let payload = w.buf;
        let mut image = Vec::with_capacity(HEADER_LEN + payload.len());
        image.extend_from_slice(&SNAPSHOT_MAGIC);
        image.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        let fp = fnv64(
            &fingerprint_words(&self.cfg, self.fused_sites())
                .iter()
                .flat_map(|w| w.to_le_bytes())
                .collect::<Vec<u8>>(),
        );
        image.extend_from_slice(&fp.to_le_bytes());
        image.extend_from_slice(&self.code_identity().to_le_bytes());
        image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        image.extend_from_slice(&fnv64(&payload).to_le_bytes());
        image.extend_from_slice(&payload);
        image
    }

    /// Replaces this machine's state with the image's. The machine must
    /// have been constructed from the same module under the same
    /// configuration (header `code_id`/`config_fp`; mismatches are
    /// rejected field-by-field with [`SnapshotError::ConfigMismatch`]).
    /// On any error the machine is untouched — the payload is parsed in
    /// full before the first field is committed.
    pub fn restore(&mut self, image: &[u8]) -> Result<(), SnapshotError> {
        if image.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                need: HEADER_LEN,
                have: image.len(),
            });
        }
        let magic: [u8; 4] = image[0..4].try_into().unwrap();
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(image[4..8].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let code_id = u64::from_le_bytes(image[16..24].try_into().unwrap());
        let payload_len = u64::from_le_bytes(image[24..32].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(image[32..40].try_into().unwrap());
        if image.len() < HEADER_LEN + payload_len {
            return Err(SnapshotError::Truncated {
                need: HEADER_LEN + payload_len,
                have: image.len(),
            });
        }
        let payload = &image[HEADER_LEN..HEADER_LEN + payload_len];
        let computed = fnv64(payload);
        if computed != checksum {
            return Err(SnapshotError::Corrupt {
                stored: checksum,
                computed,
            });
        }
        let mut r = R::new(payload);
        // Fingerprint block first: field-level mismatch beats the opaque
        // header-hash comparison in every error message.
        let machine_fp = fingerprint_words(&self.cfg, self.fused_sites());
        for (i, field) in FP_FIELDS.iter().enumerate() {
            let image_word = r.u64()?;
            if image_word != machine_fp[i] {
                return Err(SnapshotError::ConfigMismatch {
                    field,
                    image: image_word,
                    machine: machine_fp[i],
                });
            }
        }
        let machine_code = self.code_identity();
        if code_id != machine_code {
            return Err(SnapshotError::CodeMismatch {
                image: code_id,
                machine: machine_code,
            });
        }
        let parsed = Self::parse_payload(&mut r)?;
        if r.pos != payload.len() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing payload bytes",
                payload.len() - r.pos
            )));
        }
        self.commit(parsed)
    }

    fn parse_payload<'a>(r: &mut R<'a>) -> Result<Parsed<'a>, SnapshotError> {
        let kernel = r.sparse()?;
        let nspaces = r.len("address spaces")?;
        let mut spaces = Vec::with_capacity(nspaces);
        for _ in 0..nspaces {
            let live = r.bool()?;
            let data = r.sparse()?;
            spaces.push((live, data));
        }
        let current_asid = r.u32()?;
        let thread = Thread {
            frames: read_frames(r)?,
            asid: r.u32()?,
            icid: r.opt_u32()?,
            ksp: r.u64()?,
            usp: r.u64()?,
            fp_dirty: r.bool()?,
        };
        let nic = r.len("interrupt contexts")?;
        let mut icontexts = Vec::with_capacity(nic);
        for _ in 0..nic {
            icontexts.push(read_icontext(r)?);
        }
        let n = r.len("saved integer states")?;
        let mut int_state = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.u64()?;
            int_state.insert(k, read_saved_state(r)?);
        }
        let n = r.len("saved user states")?;
        let mut user_state = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.u64()?;
            user_state.insert(k, read_icontext(r)?);
        }
        let n = r.len("syscall table")?;
        let mut syscalls = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.i64()?;
            syscalls.insert(k, r.u32()?);
        }
        let n = r.len("interrupt table")?;
        let mut interrupts = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.i64()?;
            interrupts.insert(k, r.u32()?);
        }
        let n = r.len("pool images")?;
        let mut pool_images = Vec::with_capacity(n);
        for _ in 0..n {
            pool_images.push(read_pool_image(r)?);
        }
        let mut func_stats = [0u64; CheckStats::WORDS];
        for word in &mut func_stats {
            *word = r.u64()?;
        }
        let console = r.bytes()?;
        let mut words = [0u64; 22];
        for word in &mut words {
            *word = r.u64()?;
        }
        let stats = stats_from_words(words);
        let fuel = r.u64()?;
        let halted = if r.bool()? { Some(r.u64()?) } else { None };
        let n = r.len("pending irqs")?;
        let mut pending_irq = Vec::with_capacity(n);
        for _ in 0..n {
            pending_irq.push(r.i64()?);
        }
        let n = r.len("recovery stack")?;
        let mut recovery = Vec::with_capacity(n);
        for _ in 0..n {
            recovery.push(read_recovery(r)?);
        }
        let gep_skew = if r.bool()? {
            Some((r.u32()?, r.i64()?))
        } else {
            None
        };
        let pending_probe = if r.bool()? {
            Some((r.u64()?, r.u32()?, r.u64()?))
        } else {
            None
        };
        let pending_skew = if r.bool()? {
            Some((r.u64()?, r.u32()?, r.i64()?))
        } else {
            None
        };
        let call_floor = r.u64()? as usize;
        let trap_count = r.u64()?;
        let cpu_id = r.u32()?;
        // Origin and manifest are advisory (see `snapshot_with_origin`);
        // decode them for structural validity, then drop them.
        let _origin = read_origin(r)?;
        let _manifest = read_manifest(r)?;
        Ok(Parsed {
            kernel,
            spaces,
            current_asid,
            thread,
            icontexts,
            int_state,
            user_state,
            syscalls,
            interrupts,
            pool_images,
            func_stats,
            console,
            stats,
            fuel,
            halted,
            pending_irq,
            recovery,
            gep_skew,
            pending_probe,
            pending_skew,
            call_floor,
            trap_count,
            cpu_id,
        })
    }

    fn commit(&mut self, p: Parsed<'_>) -> Result<(), SnapshotError> {
        if p.kernel.total != self.mem.kernel_bytes().len() {
            return Err(SnapshotError::Malformed(format!(
                "kernel region is {} bytes, image has {}",
                self.mem.kernel_bytes().len(),
                p.kernel.total
            )));
        }
        if p.spaces.is_empty() || p.current_asid as usize >= p.spaces.len() {
            return Err(SnapshotError::Malformed(format!(
                "current asid {} with {} spaces",
                p.current_asid,
                p.spaces.len()
            )));
        }
        // Metapool restore validates range lists and pool names; it runs
        // before any other field is committed so a malformed pool section
        // still leaves the machine consistent... except the pools it
        // already rebuilt. Validate dry-run first on a clone instead.
        let mut pools = self.pools.clone();
        pools
            .restore_images(&p.pool_images, p.func_stats)
            .map_err(SnapshotError::Malformed)?;
        self.pools = pools;
        self.mem.set_kernel(p.kernel.materialize());
        self.mem.set_spaces(
            p.spaces
                .into_iter()
                .map(|(live, data)| UserSpace {
                    data: data.materialize(),
                    live,
                })
                .collect(),
        );
        self.mem.current_asid = p.current_asid;
        self.thread = p.thread;
        self.icontexts = p.icontexts;
        self.int_state = p.int_state;
        self.user_state = p.user_state;
        self.syscalls = p.syscalls;
        self.interrupts = p.interrupts;
        self.console = p.console;
        self.stats = p.stats;
        self.fuel = p.fuel;
        self.halted = p.halted;
        self.pending_irq = p.pending_irq.into_iter().collect();
        self.recovery = p.recovery;
        self.gep_skew = p.gep_skew;
        self.pending_probe = p.pending_probe;
        self.pending_skew = p.pending_skew;
        self.call_floor = p.call_floor;
        self.trap_count = p.trap_count;
        self.cpu_id = p.cpu_id;
        self.argv_scratch.clear();
        if T::ENABLED {
            let cycles = self.stats.cycles;
            self.tracer.on_restore(cycles);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{VmError, VmExit};
    use sva_ir::parse::parse_module;

    const PROG: &str = r#"
module "m"
func public @work(%n: i64) : i64 {
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, body: %i2]
  %acc:i64 = phi i64 [entry: %n, body: %acc2]
  %done:i1 = icmp uge %i, 40:i64
  condbr %done, out, body
body:
  %acc2:i64 = add %acc, 3:i64
  %i2:i64 = add %i, 1:i64
  br loop
out:
  ret %acc
}
"#;

    fn cfg() -> VmConfig {
        VmConfig {
            kind: KernelKind::SvaLlvm,
            ..Default::default()
        }
    }

    fn mk(c: VmConfig) -> Vm {
        Vm::new(parse_module(PROG).unwrap(), c).unwrap()
    }

    #[test]
    fn round_trip_mid_call_finishes_identically() {
        // Uninterrupted run.
        let mut base = mk(cfg());
        let exit = base.call("work", &[7]).unwrap();
        let base_stats = base.stats();

        // The same call interrupted mid-flight by a narrow fuel tank,
        // snapshotted at the boundary, restored into a *fresh* machine,
        // refuelled and run to completion.
        let mut vm = mk(VmConfig { fuel: 25, ..cfg() });
        assert!(matches!(vm.call("work", &[7]), Err(VmError::OutOfFuel)));
        let img = vm.snapshot();
        let mut fresh = mk(VmConfig { fuel: 25, ..cfg() });
        fresh.restore(&img).unwrap();
        assert_eq!(fresh.fuel(), 0);
        fresh.set_fuel(u64::MAX);
        let r = fresh.run().unwrap();
        assert_eq!(r, exit);
        assert_eq!(fresh.stats(), base_stats);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = mk(cfg()).snapshot();
        let b = mk(cfg()).snapshot();
        assert_eq!(a, b);
    }

    #[test]
    fn header_rejections() {
        let img = mk(cfg()).snapshot();

        let mut fresh = mk(cfg());
        // Bad magic.
        let mut bad = img.clone();
        bad[0] ^= 0x40;
        assert!(matches!(
            fresh.restore(&bad),
            Err(SnapshotError::BadMagic(_))
        ));
        // Future version.
        let mut bad = img.clone();
        bad[4] = bad[4].wrapping_add(1);
        assert!(matches!(
            fresh.restore(&bad),
            Err(SnapshotError::BadVersion { .. })
        ));
        // Flipped payload bit.
        let mut bad = img.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            fresh.restore(&bad),
            Err(SnapshotError::Corrupt { .. })
        ));
        // Truncated body.
        assert!(matches!(
            fresh.restore(&img[..img.len() - 9]),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            fresh.restore(&img[..16]),
            Err(SnapshotError::Truncated { .. })
        ));
        // The machine still runs after every rejected restore.
        assert_eq!(fresh.call("work", &[0]).unwrap(), VmExit::Returned(120));
    }

    #[test]
    fn config_mismatch_names_the_field() {
        let img = mk(cfg()).snapshot();
        let mut other = mk(VmConfig {
            violation_budget: 7,
            ..cfg()
        });
        match other.restore(&img) {
            Err(SnapshotError::ConfigMismatch { field, .. }) => {
                assert_eq!(field, "violation_budget")
            }
            r => panic!("expected ConfigMismatch, got {r:?}"),
        }
        let mut other = mk(VmConfig {
            opt_level: 2,
            ..cfg()
        });
        assert!(matches!(
            other.restore(&img),
            Err(SnapshotError::ConfigMismatch {
                field: "opt_level",
                ..
            })
        ));
    }

    #[test]
    fn code_mismatch_rejected() {
        let img = mk(cfg()).snapshot();
        let other_src = PROG.replace("add %acc, 3:i64", "add %acc, 4:i64");
        let mut other = Vm::new(parse_module(&other_src).unwrap(), cfg()).unwrap();
        assert!(matches!(
            other.restore(&img),
            Err(SnapshotError::CodeMismatch { .. })
        ));
    }
}
