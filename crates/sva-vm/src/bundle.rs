//! Crash-forensics bundles (DESIGN.md §4.7).
//!
//! When a machine dies — `sva.abort` halt, a safety violation escaping
//! every recovery domain, a watchdog force-unwind, or fuel exhaustion
//! under fault injection — the VM can capture everything an operator
//! needs for a postmortem into one versioned artifact:
//!
//! * the full PR 6 snapshot image (restore it to reproduce the death),
//! * the flight-recorder tail (the black-box event timeline),
//! * a metapool dump, the degraded-syscall health table, and the
//!   recovery-domain stack,
//! * the decoded resume code and the console transcript.
//!
//! Capture is **opt-in host-side state** ([`Vm::enable_crash_capture`]):
//! it is never serialized into snapshots, defaults to off, and therefore
//! changes nothing for machines that do not ask for it.
//!
//! ## Bundle layout
//!
//! ```text
//! header (24 bytes):
//!   magic       4  b"SVAB"
//!   version     4  u32 LE, BUNDLE_VERSION
//!   payload_len 8  u64 LE
//!   checksum    8  FNV-1a over the payload
//! payload:
//!   reason, halt code, raw resume code, detail string,
//!   config fingerprint words, code identity, stats block, console,
//!   domain dumps, pool summaries, health table, flight tail (JSONL),
//!   snapshot image bytes
//! ```
//!
//! Parsing is fail-closed in the snapshot.rs tradition: truncation, bad
//! magic, a version from the future, checksum mismatch and malformed
//! payloads are distinct [`BundleError`]s, and a bundle that does not
//! parse *in full* yields nothing.

use std::path::{Path, PathBuf};

use sva_rt::PoolSummary;
use sva_trace::{TimedEvent, Tracer};

use crate::mem::Mode;
use crate::resume::ResumeCode;
use crate::snapshot::{fingerprint_words, fnv64, SnapshotError, FP_FIELDS, R, W};
use crate::vm::{KernelKind, Vm, VmConfig, VmStats};

/// Bundle magic.
pub const BUNDLE_MAGIC: [u8; 4] = *b"SVAB";
/// Current bundle format version. Bump on any payload-layout change.
/// v3: records the faulting vCPU id and carries the widened (10-word,
/// `vcpus`-bearing) config fingerprint of snapshot v3.
pub const BUNDLE_VERSION: u32 = 3;
/// Header size in bytes.
const HEADER_LEN: usize = 24;

/// What killed (or nearly killed) the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashReason {
    /// `sva.abort(code)` with a nonzero code (41 = poisoned unwind
    /// abort, 42 = recovery handler with nothing to resume, or any guest
    /// panic code).
    Halt,
    /// A safety violation escaped every recovery domain and aborted the
    /// run with `VmError::Safety`.
    SafetyEscape,
    /// The domain watchdog force-unwound a wedged recovery domain.
    Watchdog,
    /// Instruction fuel ran out under an armed fault-injection hook (a
    /// wedged machine in a campaign).
    FuelExhausted,
}

impl CrashReason {
    /// Stable one-byte wire code.
    pub fn to_code(self) -> u8 {
        match self {
            CrashReason::Halt => 1,
            CrashReason::SafetyEscape => 2,
            CrashReason::Watchdog => 3,
            CrashReason::FuelExhausted => 4,
        }
    }

    /// Parses [`CrashReason::to_code`] output.
    pub fn from_code(c: u8) -> Option<CrashReason> {
        Some(match c {
            1 => CrashReason::Halt,
            2 => CrashReason::SafetyEscape,
            3 => CrashReason::Watchdog,
            4 => CrashReason::FuelExhausted,
            _ => return None,
        })
    }

    /// Stable short name (bundle filenames, reports).
    pub fn name(self) -> &'static str {
        match self {
            CrashReason::Halt => "halt",
            CrashReason::SafetyEscape => "escape",
            CrashReason::Watchdog => "watchdog",
            CrashReason::FuelExhausted => "fuel",
        }
    }
}

impl std::fmt::Display for CrashReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a bundle could not be loaded. Mirrors the snapshot rejection
/// taxonomy; parsing never partially applies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BundleError {
    /// The bundle ends before the advertised content.
    Truncated {
        /// Bytes the parser needed.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The first four bytes are not [`BUNDLE_MAGIC`].
    BadMagic([u8; 4]),
    /// The bundle was written by a different format version.
    BadVersion {
        /// Version in the bundle header.
        found: u32,
        /// Version this build loads.
        expected: u32,
    },
    /// The payload checksum does not match (bit rot / tampering).
    Corrupt {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The payload parsed but described an impossible bundle.
    Malformed(String),
    /// The embedded snapshot was rejected during replay.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Truncated { need, have } => {
                write!(f, "truncated bundle: need {need} bytes, have {have}")
            }
            BundleError::BadMagic(m) => write!(f, "bad magic {m:02x?} (not an SVA crash bundle)"),
            BundleError::BadVersion { found, expected } => {
                write!(
                    f,
                    "bundle format version {found}, this build loads {expected}"
                )
            }
            BundleError::Corrupt { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            BundleError::Malformed(s) => write!(f, "malformed bundle: {s}"),
            BundleError::Snapshot(e) => write!(f, "embedded snapshot: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<SnapshotError> for BundleError {
    fn from(e: SnapshotError) -> BundleError {
        BundleError::Snapshot(e)
    }
}

/// Maps a reader error hit while parsing *bundle* payload bytes (the
/// reader speaks `SnapshotError`) onto the bundle taxonomy.
fn perr(e: SnapshotError) -> BundleError {
    match e {
        SnapshotError::Truncated { need, have } => BundleError::Truncated { need, have },
        other => BundleError::Malformed(other.to_string()),
    }
}

/// One recovery domain at capture time, innermost last in
/// [`CrashBundle::domains`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainDump {
    /// Owning-subsystem id.
    pub subsys: u64,
    /// Watchdog fuel remaining.
    pub fuel: u64,
    /// Pools quarantined within this domain's scope.
    pub quarantined_pools: Vec<u32>,
}

/// One crash, fully described. See the module docs for the layout.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashBundle {
    /// What killed the machine.
    pub reason: CrashReason,
    /// The halt code ([`CrashReason::Halt`] only; 0 otherwise).
    pub halt_code: u64,
    /// Raw `recov_last_code` guest global at capture (0 when the kernel
    /// has no such global or no unwind ever wrote it). Decode with
    /// [`CrashBundle::resume_code`].
    pub resume_code_raw: u64,
    /// Human-readable capture context (the abort expression, the escaped
    /// check's provenance, ...).
    pub detail: String,
    /// Which vCPU was executing when the machine died (0 on classic
    /// single-CPU machines; the forked vCPU's id under [`crate::SmpMachine`]).
    pub cpu: u32,
    /// The machine's config fingerprint words (same order as the
    /// snapshot format), from which [`CrashBundle::vm_config`] rebuilds
    /// a replay config.
    pub config_words: [u64; FP_FIELDS.len()],
    /// FNV identity of the sealed module the machine was running.
    pub code_id: u64,
    /// Execution statistics at capture.
    pub stats: VmStats,
    /// Console bytes at capture.
    pub console: Vec<u8>,
    /// The recovery-domain stack, innermost last.
    pub domains: Vec<DomainDump>,
    /// Per-metapool forensic summaries.
    pub pools: Vec<PoolSummary>,
    /// Nonzero `subsys_health` entries as `(subsystem index, packed
    /// health word)` — the 3-state health machine of nested-recovery
    /// kernels (DESIGN.md §4.8: state, strikes, probation credits,
    /// backoff delay, due tick).
    pub health: Vec<(u64, u64)>,
    /// The flight-recorder tail (black-box timeline), oldest first.
    pub flight: Vec<TimedEvent>,
    /// The full machine snapshot at capture ([`Vm::restore`] it to
    /// reproduce the death).
    pub snapshot: Vec<u8>,
}

impl CrashBundle {
    /// The decoded resume code, if an unwind ever wrote one.
    pub fn resume_code(&self) -> Option<ResumeCode> {
        ResumeCode::decode(self.resume_code_raw)
    }

    /// Rebuilds the [`VmConfig`] the captured machine ran under, for
    /// replay. Fuel is left unlimited (the bundle's snapshot carries the
    /// machine's remaining fuel) and no fault hook is attached — replay
    /// reproduces the death from the captured state, not the campaign.
    pub fn vm_config(&self) -> Result<VmConfig, BundleError> {
        let w = &self.config_words;
        let kind = match w[0] {
            0 => KernelKind::Native,
            1 => KernelKind::SvaGcc,
            2 => KernelKind::SvaLlvm,
            3 => KernelKind::SvaSafe,
            v => return Err(BundleError::Malformed(format!("bad kernel kind {v}"))),
        };
        if w[8] != 0 {
            return Err(BundleError::Malformed(
                "bundle was captured under a hot profile; replay cannot reconstruct it".into(),
            ));
        }
        Ok(VmConfig {
            kind,
            sign_key: w[1],
            opt_level: w[2] as u8,
            fast_path: w[3] != 0,
            singleton_path: w[4] != 0,
            violation_budget: w[5] as u32,
            domain_fuel: w[6],
            vcpus: (w[9] as u32).max(1),
            ..VmConfig::default()
        })
    }

    /// Serializes the bundle (header + checksummed payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = W::default();
        w.u8(self.reason.to_code());
        w.u64(self.halt_code);
        w.u64(self.resume_code_raw);
        w.str(&self.detail);
        w.u32(self.cpu);
        for word in self.config_words {
            w.u64(word);
        }
        w.u64(self.code_id);
        for word in crate::snapshot::stats_words(&self.stats) {
            w.u64(word);
        }
        w.bytes(&self.console);
        w.u64(self.domains.len() as u64);
        for d in &self.domains {
            w.u64(d.subsys);
            w.u64(d.fuel);
            w.u64(d.quarantined_pools.len() as u64);
            for &p in &d.quarantined_pools {
                w.u32(p);
            }
        }
        w.u64(self.pools.len() as u64);
        for p in &self.pools {
            w.u32(p.id);
            w.str(&p.name);
            w.bool(p.complete);
            w.u64(p.live_objects);
            w.u64(p.checks);
            w.u32(p.violations);
            w.bool(p.quarantined);
            w.bool(p.poisoned);
            w.u32(p.repairs);
        }
        w.u64(self.health.len() as u64);
        for &(i, v) in &self.health {
            w.u64(i);
            w.u64(v);
        }
        let jsonl = self
            .flight
            .iter()
            .map(|e| e.to_json())
            .collect::<Vec<_>>()
            .join("\n");
        w.bytes(jsonl.as_bytes());
        w.bytes(&self.snapshot);

        let payload = w.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&BUNDLE_MAGIC);
        out.extend_from_slice(&BUNDLE_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a serialized bundle, fail-closed: any truncation,
    /// checksum mismatch or malformed section rejects the whole bundle.
    pub fn from_bytes(bytes: &[u8]) -> Result<CrashBundle, BundleError> {
        if bytes.len() < HEADER_LEN {
            return Err(BundleError::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
        if magic != BUNDLE_MAGIC {
            return Err(BundleError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != BUNDLE_VERSION {
            return Err(BundleError::BadVersion {
                found: version,
                expected: BUNDLE_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if bytes.len() < HEADER_LEN + payload_len {
            return Err(BundleError::Truncated {
                need: HEADER_LEN + payload_len,
                have: bytes.len(),
            });
        }
        if bytes.len() > HEADER_LEN + payload_len {
            return Err(BundleError::Malformed(format!(
                "{} trailing bytes after the payload",
                bytes.len() - HEADER_LEN - payload_len
            )));
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
        let computed = fnv64(payload);
        if computed != checksum {
            return Err(BundleError::Corrupt {
                stored: checksum,
                computed,
            });
        }
        let mut r = R::new(payload);
        let reason_code = r.u8().map_err(perr)?;
        let reason = CrashReason::from_code(reason_code)
            .ok_or_else(|| BundleError::Malformed(format!("bad reason byte {reason_code}")))?;
        let halt_code = r.u64().map_err(perr)?;
        let resume_code_raw = r.u64().map_err(perr)?;
        let detail = r.str().map_err(perr)?;
        let cpu = r.u32().map_err(perr)?;
        let mut config_words = [0u64; FP_FIELDS.len()];
        for w in &mut config_words {
            *w = r.u64().map_err(perr)?;
        }
        let code_id = r.u64().map_err(perr)?;
        let mut stat_words = [0u64; 22];
        for w in &mut stat_words {
            *w = r.u64().map_err(perr)?;
        }
        let stats = crate::snapshot::stats_from_words(stat_words);
        let console = r.bytes().map_err(perr)?;
        let ndomains = r.len("domains").map_err(perr)?;
        let mut domains = Vec::with_capacity(ndomains);
        for _ in 0..ndomains {
            let subsys = r.u64().map_err(perr)?;
            let fuel = r.u64().map_err(perr)?;
            let npools = r.len("domain quarantined pools").map_err(perr)?;
            let mut quarantined_pools = Vec::with_capacity(npools);
            for _ in 0..npools {
                quarantined_pools.push(r.u32().map_err(perr)?);
            }
            domains.push(DomainDump {
                subsys,
                fuel,
                quarantined_pools,
            });
        }
        let npools = r.len("pool summaries").map_err(perr)?;
        let mut pools = Vec::with_capacity(npools);
        for _ in 0..npools {
            pools.push(PoolSummary {
                id: r.u32().map_err(perr)?,
                name: r.str().map_err(perr)?,
                complete: r.bool().map_err(perr)?,
                live_objects: r.u64().map_err(perr)?,
                checks: r.u64().map_err(perr)?,
                violations: r.u32().map_err(perr)?,
                quarantined: r.bool().map_err(perr)?,
                poisoned: r.bool().map_err(perr)?,
                repairs: r.u32().map_err(perr)?,
            });
        }
        let nhealth = r.len("health entries").map_err(perr)?;
        let mut health = Vec::with_capacity(nhealth);
        for _ in 0..nhealth {
            health.push((r.u64().map_err(perr)?, r.u64().map_err(perr)?));
        }
        let jsonl = r.bytes().map_err(perr)?;
        let jsonl = String::from_utf8(jsonl)
            .map_err(|_| BundleError::Malformed("non-UTF-8 flight tail".into()))?;
        let mut flight = Vec::new();
        for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
            flight.push(TimedEvent::from_json(line).ok_or_else(|| {
                BundleError::Malformed(format!("unparseable flight event: {line}"))
            })?);
        }
        let snapshot = r.bytes().map_err(perr)?;
        if r.pos != payload.len() {
            return Err(BundleError::Malformed(format!(
                "{} trailing payload bytes",
                payload.len() - r.pos
            )));
        }
        Ok(CrashBundle {
            reason,
            halt_code,
            resume_code_raw,
            detail,
            cpu,
            config_words,
            code_id,
            stats,
            console,
            domains,
            pools,
            health,
            flight,
            snapshot,
        })
    }
}

/// Host-side crash-capture state on a [`Vm`]. Never serialized into
/// snapshots (a restored machine keeps *its own* capture settings), off
/// by default, so machines that never opt in are untouched.
#[derive(Default)]
pub(crate) struct CrashCapture {
    pub(crate) enabled: bool,
    pub(crate) dir: Option<PathBuf>,
    pub(crate) tag: String,
    pub(crate) last_bundle: Option<CrashBundle>,
    pub(crate) last_path: Option<PathBuf>,
}

impl<T: Tracer> Vm<T> {
    /// Turns on crash capture: any terminal event (nonzero halt, safety
    /// escape, watchdog force-unwind, fuel exhaustion under an armed
    /// fault hook) snapshots the machine into a [`CrashBundle`]. With
    /// `dir` set the bundle is also written to
    /// `dir/{tag}-{reason}.bundle`; the latest capture is always
    /// available via [`Vm::last_crash_bundle`].
    pub fn enable_crash_capture(&mut self, dir: Option<&Path>, tag: &str) {
        self.crash.enabled = true;
        self.crash.dir = dir.map(Path::to_path_buf);
        self.crash.tag = tag.to_string();
    }

    /// Turns crash capture off (campaigns disable it around probe phases
    /// so a dying probe cannot overwrite the real death's bundle).
    pub fn disable_crash_capture(&mut self) {
        self.crash.enabled = false;
    }

    /// The most recent crash bundle captured by this machine.
    pub fn last_crash_bundle(&self) -> Option<&CrashBundle> {
        self.crash.last_bundle.as_ref()
    }

    /// Where the most recent bundle was written (capture dir set and the
    /// write succeeded).
    pub fn last_crash_path(&self) -> Option<&Path> {
        self.crash.last_path.as_deref()
    }

    /// Takes ownership of the most recent crash bundle.
    pub fn take_crash_bundle(&mut self) -> Option<CrashBundle> {
        self.crash.last_bundle.take()
    }

    /// Captures the machine into a bundle now. Called by the interpreter
    /// at terminal events; public so harnesses can force a capture (e.g.
    /// a golden bundle for CI).
    pub fn capture_crash(&mut self, reason: CrashReason, halt_code: u64, detail: String) {
        if !self.crash.enabled {
            return;
        }
        let snapshot = self.snapshot();
        let resume_code_raw = self.read_global_u64("recov_last_code").unwrap_or(0);
        let mut health = Vec::new();
        if let Some(gid) = self.code.module.global_by_name("subsys_health") {
            let idx = gid.0 as usize;
            let base = self.code.global_addr[idx];
            let size = self
                .code
                .module
                .types
                .size_of(self.code.module.globals[idx].ty);
            for i in 0..size / 8 {
                let word = self
                    .mem
                    .read_uint(base + i * 8, 8, Mode::Kernel)
                    .unwrap_or(0);
                if word != 0 {
                    health.push((i, word));
                }
            }
        }
        let bundle = CrashBundle {
            reason,
            halt_code,
            resume_code_raw,
            detail,
            cpu: self.cpu_id,
            config_words: fingerprint_words(&self.cfg, self.fused_sites()),
            code_id: self.code_identity(),
            stats: self.stats(),
            console: self.console.clone(),
            domains: self
                .recovery
                .iter()
                .map(|rc| DomainDump {
                    subsys: rc.subsys,
                    fuel: rc.fuel,
                    quarantined_pools: rc.quarantined_pools.clone(),
                })
                .collect(),
            pools: self.pools.summaries(),
            health,
            flight: self.tracer.recent_events(),
            snapshot,
        };
        self.crash.last_path = None;
        if let Some(dir) = self.crash.dir.clone() {
            let tag = if self.crash.tag.is_empty() {
                "crash"
            } else {
                &self.crash.tag
            };
            let path = dir.join(format!("{tag}-{}.bundle", reason.name()));
            let _ = std::fs::create_dir_all(&dir);
            if std::fs::write(&path, bundle.to_bytes()).is_ok() {
                self.crash.last_path = Some(path);
            }
        }
        self.crash.last_bundle = Some(bundle);
    }
}
