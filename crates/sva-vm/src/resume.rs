//! The bit-packed resume code handed to recovery continuations, as a
//! first-class type.
//!
//! An unwind writes one `u64` into the recovery continuation's
//! destination register (DESIGN.md §4.3/§4.5). Layout, LSB first:
//!
//! * bits 0..8 — kind (1 = bounds, 2 = load/store, 3 = indirect call,
//!   4 = illegal free, 5 = bad registration, 6 = quarantined,
//!   7 = watchdog force-unwind)
//! * bit 8 — the pool crossed its violation budget and is now poisoned
//! * bits 9..16 — containment depth + 1: stack index of the domain the
//!   thread unwound to (0 = outermost), so a blast-radius report can tell
//!   a syscall-level catch from an escape to the boot domain
//! * bits 16..40 — metapool id + 1 (0 = no pool attributed)
//! * bits 40..64 — interrupted icontext id + 1 (0 = none)
//!
//! The kind field is always nonzero, so a resume code can never be
//! mistaken for the 0 returned at registration — which is also what makes
//! [`ResumeCode::decode`] total over "is this a resume code at all".

use std::fmt;

/// Resume-code kind for a watchdog force-unwind (a wedged domain ran out
/// of [`crate::VmConfig::domain_fuel`]); the check kinds occupy 1..=6.
pub const RESUME_KIND_WATCHDOG: u64 = 7;

/// Numeric resume-code kind of a safety-check violation.
pub fn check_kind_code(kind: sva_rt::CheckKind) -> u64 {
    match kind {
        sva_rt::CheckKind::Bounds => 1,
        sva_rt::CheckKind::LoadStore => 2,
        sva_rt::CheckKind::IndirectCall => 3,
        sva_rt::CheckKind::IllegalFree => 4,
        sva_rt::CheckKind::BadRegistration => 5,
        sva_rt::CheckKind::Quarantined => 6,
    }
}

/// A decoded resume code. Construct with the field initializer syntax and
/// [`ResumeCode::encode`], or parse a packed word with
/// [`ResumeCode::decode`]; the two round-trip exactly for every value the
/// VM can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeCode {
    /// Violation kind, 1..=7 (see module docs). Never 0.
    pub kind: u64,
    /// Whether the attributed pool is now permanently poisoned.
    pub poisoned: bool,
    /// Stack depth of the domain the thread unwound to (0 = outermost).
    pub depth: u32,
    /// Metapool id the violation was attributed to.
    pub pool: Option<u32>,
    /// Interrupted icontext id, if the unwind crossed one.
    pub icid: Option<u32>,
}

impl ResumeCode {
    /// Packs the fields into the wire word.
    pub fn encode(&self) -> u64 {
        let mut code = self.kind & 0xff;
        if self.poisoned {
            code |= 1 << 8;
        }
        code |= ((self.depth as u64 + 1) & 0x7f) << 9;
        code |= (self.pool.map(|p| p as u64 + 1).unwrap_or(0) & 0xff_ffff) << 16;
        code |= (self.icid.map(|i| i as u64 + 1).unwrap_or(0) & 0xff_ffff) << 40;
        code
    }

    /// Unpacks a wire word. Returns `None` for `code & 0xff == 0` — the 0
    /// a continuation sees at registration, or a depth-field-only word
    /// that never came from an unwind.
    pub fn decode(code: u64) -> Option<ResumeCode> {
        let kind = code & 0xff;
        if kind == 0 {
            return None;
        }
        let depth_plus_1 = (code >> 9) & 0x7f;
        let pool_plus_1 = (code >> 16) & 0xff_ffff;
        let icid_plus_1 = (code >> 40) & 0xff_ffff;
        Some(ResumeCode {
            kind,
            poisoned: code & (1 << 8) != 0,
            // depth is stored +1; a raw word with the field at 0 decodes
            // as depth 0 rather than underflowing.
            depth: depth_plus_1.saturating_sub(1) as u32,
            pool: (pool_plus_1 != 0).then(|| (pool_plus_1 - 1) as u32),
            icid: (icid_plus_1 != 0).then(|| (icid_plus_1 - 1) as u32),
        })
    }

    /// Whether this unwind was the fuel watchdog force-popping a wedged
    /// domain rather than a safety check firing.
    pub fn is_watchdog(&self) -> bool {
        self.kind == RESUME_KIND_WATCHDOG
    }

    /// Stable human name of the kind field.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            1 => "bounds",
            2 => "load/store",
            3 => "indirect-call",
            4 => "illegal-free",
            5 => "bad-registration",
            6 => "quarantined",
            RESUME_KIND_WATCHDOG => "watchdog",
            _ => "unknown",
        }
    }
}

impl fmt::Display for ResumeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind_name())?;
        if self.poisoned {
            write!(f, " [poisoned]")?;
        }
        write!(f, " depth={}", self.depth)?;
        match self.pool {
            Some(p) => write!(f, " pool={p}")?,
            None => write!(f, " pool=-")?,
        }
        match self.icid {
            Some(i) => write!(f, " icid={i}")?,
            None => write!(f, " icid=-")?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_field_combination() {
        for kind in 1..=7u64 {
            for poisoned in [false, true] {
                for depth in [0u32, 1, 5, 63] {
                    for pool in [None, Some(0u32), Some(7), Some(0xff_fffe)] {
                        for icid in [None, Some(0u32), Some(3)] {
                            let rc = ResumeCode {
                                kind,
                                poisoned,
                                depth,
                                pool,
                                icid,
                            };
                            let back = ResumeCode::decode(rc.encode())
                                .unwrap_or_else(|| panic!("undecodable: {rc:?}"));
                            assert_eq!(back, rc);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_and_kindless_words_are_not_resume_codes() {
        assert_eq!(ResumeCode::decode(0), None);
        // Depth/pool bits set but kind 0: registration return, not unwind.
        assert_eq!(ResumeCode::decode(1 << 9), None);
        assert_eq!(ResumeCode::decode(5 << 16), None);
    }

    #[test]
    fn known_wire_words_decode_as_documented() {
        // kind=6 (quarantined), poisoned, depth 1, pool 4, icid none:
        // 6 | 0x100 | (2<<9) | (5<<16).
        let code = 6 | 0x100 | (2 << 9) | (5 << 16);
        let rc = ResumeCode::decode(code).unwrap();
        assert_eq!(rc.kind, 6);
        assert!(rc.poisoned);
        assert_eq!(rc.depth, 1);
        assert_eq!(rc.pool, Some(4));
        assert_eq!(rc.icid, None);
        assert_eq!(rc.kind_name(), "quarantined");
        assert!(!rc.is_watchdog());
        assert_eq!(rc.encode(), code);

        let wd = ResumeCode {
            kind: RESUME_KIND_WATCHDOG,
            poisoned: false,
            depth: 0,
            pool: None,
            icid: Some(2),
        };
        let back = ResumeCode::decode(wd.encode()).unwrap();
        assert!(back.is_watchdog());
        assert_eq!(back.kind_name(), "watchdog");
    }

    #[test]
    fn display_is_stable_and_readable() {
        let rc = ResumeCode {
            kind: 2,
            poisoned: true,
            depth: 3,
            pool: Some(9),
            icid: None,
        };
        assert_eq!(
            rc.to_string(),
            "load/store [poisoned] depth=3 pool=9 icid=-"
        );
    }

    #[test]
    fn check_kinds_are_dense_and_nonzero() {
        use sva_rt::CheckKind::*;
        let codes: Vec<u64> = [
            Bounds,
            LoadStore,
            IndirectCall,
            IllegalFree,
            BadRegistration,
            Quarantined,
        ]
        .into_iter()
        .map(check_kind_code)
        .collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6]);
        const { assert!(RESUME_KIND_WATCHDOG > 6) };
    }
}
