//! # The optimizing translation tier (DESIGN.md §4.4)
//!
//! The baseline translator (`vm::translate`) emits exactly one flat op
//! per bytecode instruction. This module adds a second, optional tier: a
//! peephole **fusion pass** over the flat code that rewrites adjacent
//! dependent pairs into superinstructions, plus the [`HotProfile`] that
//! selects which functions get it.
//!
//! ## Why fusion is safe here
//!
//! A fused pair is rewritten *in place*: the first op of the pair becomes
//! the superinstruction and the second becomes [`FlatOp::Nop`]. Op counts
//! and therefore every flat pc — block starts, pre-resolved branch
//! targets, frame pcs captured in interrupt contexts — stay valid with
//! zero remapping. Legality of a pair requires:
//!
//! 1. **Same block.** The second op must not be a block start (every
//!    block start immediately follows a terminator in the flat layout, so
//!    no branch can target the swallowed slot and the placeholder is
//!    unreachable).
//! 2. **Dead intermediate.** The register the first op defines is read
//!    exactly once in the whole function — by the second op. SSA slot
//!    assignment makes defs unique, so a whole-function use count of one
//!    proves nothing else (later block, phi, call argument) observes the
//!    intermediate value, and the fused handler may skip writing it.
//!
//! Fused handlers charge `VmStats::instructions` for the swallowed op but
//! not the dispatch cycle — instruction counts are invariant under fusion
//! while cycle counts drop; `VmStats::equivalence_key` masks exactly that
//! difference for the equivalence gates.
//!
//! Phi-to-mov rewriting rides along: a phi whose incomings all carry the
//! same value loads it unconditionally. (On a verified module every
//! executed phi has a matching predecessor, so dropping the
//! missing-predecessor error path is behavior-preserving.)

use std::collections::{HashMap, HashSet};

use sva_ir::Intrinsic;

use crate::vm::{FlatCallee, FlatFunc, FlatOp, Src};

/// The set of functions the optimizing tier should fuse, exported from a
/// profiled run (`svaprof --profile-out`) and consumed by
/// `VmConfig::hot_profile` / `Vm::with_profile`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HotProfile {
    hot: HashSet<String>,
}

/// Header line of the on-disk profile format.
pub const PROFILE_HEADER: &str = "# sva-hot-profile v1";

impl HotProfile {
    /// An empty profile (nothing hot).
    pub fn new() -> HotProfile {
        HotProfile::default()
    }

    /// Marks a function hot.
    pub fn insert(&mut self, name: &str) {
        self.hot.insert(name.to_owned());
    }

    /// Whether `name` is profiled hot.
    pub fn is_hot(&self, name: &str) -> bool {
        self.hot.contains(name)
    }

    /// Number of hot functions.
    pub fn len(&self) -> usize {
        self.hot.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }

    /// Builds a profile from a `(function name, attributed cycles)`
    /// ranking, keeping the top `keep_fraction` (0..=1) of functions by
    /// cycles — at least one when the ranking is non-empty.
    pub fn from_cycle_ranking(ranked: &[(String, u64)], keep_fraction: f64) -> HotProfile {
        let mut sorted: Vec<&(String, u64)> = ranked.iter().collect();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let frac = keep_fraction.clamp(0.0, 1.0);
        let mut keep = (sorted.len() as f64 * frac).ceil() as usize;
        if !sorted.is_empty() {
            keep = keep.clamp(1, sorted.len());
        }
        let mut p = HotProfile::new();
        for (name, _) in sorted.into_iter().take(keep) {
            p.insert(name);
        }
        p
    }

    /// Serializes to the versioned text format: a header line followed by
    /// one function name per line, sorted for stable diffs.
    pub fn to_text(&self) -> String {
        let mut names: Vec<&str> = self.hot.iter().map(String::as_str).collect();
        names.sort_unstable();
        let mut out = String::from(PROFILE_HEADER);
        out.push('\n');
        for n in names {
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// Parses the text format written by [`HotProfile::to_text`]. Blank
    /// lines and `#` comments after the header are ignored.
    pub fn parse(text: &str) -> Result<HotProfile, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        match lines.next() {
            Some(h) if h.starts_with(PROFILE_HEADER) => {}
            other => {
                return Err(format!(
                    "bad profile header: expected {PROFILE_HEADER:?}, got {other:?}"
                ))
            }
        }
        let mut p = HotProfile::new();
        for l in lines {
            if l.starts_with('#') {
                continue;
            }
            p.insert(l);
        }
        Ok(p)
    }
}

/// Whether `op` ends a basic block in the flat layout.
fn is_terminator(op: &FlatOp) -> bool {
    matches!(
        op,
        FlatOp::Br { .. }
            | FlatOp::CondBr { .. }
            | FlatOp::Switch { .. }
            | FlatOp::Ret { .. }
            | FlatOp::Unreachable
            | FlatOp::FusedCmpBr { .. }
    )
}

/// Whole-function count of register *reads* (every `Src::Reg` operand).
fn count_reg_uses(ops: &[FlatOp]) -> HashMap<u32, u32> {
    let mut uses: HashMap<u32, u32> = HashMap::new();
    let mut add = |s: &Src| {
        if let Src::Reg(r) = s {
            *uses.entry(*r).or_insert(0) += 1;
        }
    };
    for op in ops {
        match op {
            FlatOp::Bin { a, b, .. } | FlatOp::ICmp { a, b, .. } => {
                add(a);
                add(b);
            }
            FlatOp::Select { c, a, b, .. } => {
                add(c);
                add(a);
                add(b);
            }
            FlatOp::Cast { a, .. } => add(a),
            FlatOp::Gep { base, dynamic, .. } => {
                add(base);
                for (s, _, _) in dynamic {
                    add(s);
                }
            }
            FlatOp::Load { ptr, .. } => add(ptr),
            FlatOp::Store { val, ptr, .. } => {
                add(val);
                add(ptr);
            }
            FlatOp::Alloca { count, .. } => add(count),
            FlatOp::Call { callee, args, .. } => {
                if let crate::vm::FlatCallee::Indirect(s) = callee {
                    add(s);
                }
                for a in args {
                    add(a);
                }
            }
            FlatOp::Phi { incomings, .. } => {
                for (_, s) in incomings {
                    add(s);
                }
            }
            FlatOp::AtomicRmw { ptr, val, .. } => {
                add(ptr);
                add(val);
            }
            FlatOp::CmpXchg {
                ptr, expected, new, ..
            } => {
                add(ptr);
                add(expected);
                add(new);
            }
            FlatOp::CondBr { c, .. } => add(c),
            FlatOp::Switch { v, .. } => add(v),
            FlatOp::Ret { val } => {
                if let Some(s) = val {
                    add(s);
                }
            }
            FlatOp::Mov { src, .. } => add(src),
            FlatOp::FusedGepLoad { base, dynamic, .. } => {
                add(base);
                for (s, _, _) in dynamic {
                    add(s);
                }
            }
            FlatOp::FusedGepChkLoad {
                base,
                dynamic,
                chk_src,
                ..
            } => {
                add(base);
                for (s, _, _) in dynamic {
                    add(s);
                }
                if let Some(s) = chk_src {
                    add(s);
                }
            }
            FlatOp::FusedGepStore {
                val, base, dynamic, ..
            } => {
                add(val);
                add(base);
                for (s, _, _) in dynamic {
                    add(s);
                }
            }
            FlatOp::FusedCmpBr { a, b, .. } => {
                add(a);
                add(b);
            }
            FlatOp::FusedBin2 { a, b, c, .. } => {
                add(a);
                add(b);
                add(c);
            }
            FlatOp::Fence | FlatOp::Br { .. } | FlatOp::Unreachable | FlatOp::Nop => {}
        }
    }
    uses
}

/// Runs the fusion pass over one function's flat code in place. Returns
/// the number of sites rewritten (fused pairs plus phi-to-mov rewrites).
pub(crate) fn fuse_flat(ff: &mut FlatFunc) -> u32 {
    let n = ff.ops.len();
    let mut fused = 0u32;

    // Phi → mov: all incomings carry the same value.
    for op in ff.ops.iter_mut() {
        if let FlatOp::Phi { dst, incomings } = op {
            if let Some((_, first)) = incomings.first() {
                let first = *first;
                if incomings.iter().all(|(_, s)| *s == first) {
                    *op = FlatOp::Mov {
                        dst: *dst,
                        src: first,
                    };
                    fused += 1;
                }
            }
        }
    }

    if n < 2 {
        return fused;
    }

    // Block starts: pc 0 and every op following a terminator (flat layout
    // is blocks laid out back to back, each ending in a terminator).
    let mut block_start = vec![false; n];
    block_start[0] = true;
    for (p, b) in block_start.iter_mut().enumerate().skip(1) {
        *b = is_terminator(&ff.ops[p - 1]);
    }

    let uses = count_reg_uses(&ff.ops);
    let single = |r: u32| uses.get(&r).copied().unwrap_or(0) == 1;

    let mut p = 0;
    while p + 1 < n {
        if block_start[p + 1] {
            p += 1;
            continue;
        }
        // Triple: gep + inserted pool check + load (checked kernels).
        // The address register has exactly *two* reads — the check
        // operand and the load pointer — so the pairwise single-use rule
        // stops at the check call; swallowing all three ops at once is
        // what makes the fused-GEP win reach sva-safe.
        if p + 2 < n && !block_start[p + 2] {
            let triple = match (&ff.ops[p], &ff.ops[p + 1], &ff.ops[p + 2]) {
                (
                    FlatOp::Gep {
                        dst,
                        base,
                        const_off,
                        dynamic,
                    },
                    FlatOp::Call {
                        dst: None,
                        callee: FlatCallee::Intrinsic(intr),
                        args,
                    },
                    FlatOp::Load {
                        dst: ld,
                        ptr: Src::Reg(lp),
                        w,
                    },
                ) if *lp == *dst && uses.get(dst).copied().unwrap_or(0) == 2 => {
                    let chk = match (intr, args.as_slice()) {
                        (Intrinsic::LsCheck, [Src::Imm(mp), Src::Reg(a)]) if *a == *dst => {
                            Some((*mp as u32, None))
                        }
                        (Intrinsic::BoundsCheck, [Src::Imm(mp), src, Src::Reg(a)])
                            if *a == *dst =>
                        {
                            Some((*mp as u32, Some(*src)))
                        }
                        _ => None,
                    };
                    chk.map(|(mp, chk_src)| FlatOp::FusedGepChkLoad {
                        dst: *ld,
                        base: *base,
                        const_off: *const_off,
                        dynamic: dynamic.clone(),
                        w: *w,
                        mp,
                        chk_src,
                    })
                }
                _ => None,
            };
            if let Some(r) = triple {
                ff.ops[p] = r;
                ff.ops[p + 1] = FlatOp::Nop;
                ff.ops[p + 2] = FlatOp::Nop;
                fused += 1;
                p += 3;
                continue;
            }
        }
        let replacement = match (&ff.ops[p], &ff.ops[p + 1]) {
            (
                FlatOp::Gep {
                    dst,
                    base,
                    const_off,
                    dynamic,
                },
                FlatOp::Load {
                    dst: ld,
                    ptr: Src::Reg(r),
                    w,
                },
            ) if *r == *dst && single(*dst) => Some(FlatOp::FusedGepLoad {
                dst: *ld,
                base: *base,
                const_off: *const_off,
                dynamic: dynamic.clone(),
                w: *w,
            }),
            (
                FlatOp::Gep {
                    dst,
                    base,
                    const_off,
                    dynamic,
                },
                FlatOp::Store {
                    val,
                    ptr: Src::Reg(r),
                    w,
                },
            ) if *r == *dst && single(*dst) => Some(FlatOp::FusedGepStore {
                val: *val,
                base: *base,
                const_off: *const_off,
                dynamic: dynamic.clone(),
                w: *w,
            }),
            (
                FlatOp::ICmp { pred, w, dst, a, b },
                FlatOp::CondBr {
                    c: Src::Reg(r),
                    tpc,
                    fpc,
                    from,
                },
            ) if *r == *dst && single(*dst) => Some(FlatOp::FusedCmpBr {
                pred: *pred,
                w: *w,
                a: *a,
                b: *b,
                tpc: *tpc,
                fpc: *fpc,
                from: *from,
            }),
            (
                FlatOp::Bin {
                    op: op1,
                    w: w1,
                    dst: t,
                    a,
                    b,
                },
                FlatOp::Bin {
                    op: op2,
                    w: w2,
                    dst,
                    a: a2,
                    b: b2,
                },
            ) if single(*t) && (*a2 == Src::Reg(*t) || *b2 == Src::Reg(*t)) => {
                let t_lhs = *a2 == Src::Reg(*t);
                let c = if t_lhs { *b2 } else { *a2 };
                Some(FlatOp::FusedBin2 {
                    op1: *op1,
                    w1: *w1,
                    a: *a,
                    b: *b,
                    op2: *op2,
                    w2: *w2,
                    c,
                    t_lhs,
                    dst: *dst,
                })
            }
            _ => None,
        };
        match replacement {
            Some(r) => {
                ff.ops[p] = r;
                ff.ops[p + 1] = FlatOp::Nop;
                fused += 1;
                p += 2;
            }
            None => p += 1,
        }
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_text_round_trips() {
        let mut p = HotProfile::new();
        p.insert("sys_write");
        p.insert("memcpy_user");
        let text = p.to_text();
        assert!(text.starts_with(PROFILE_HEADER));
        let q = HotProfile::parse(&text).unwrap();
        assert_eq!(p, q);
        assert!(q.is_hot("sys_write"));
        assert!(!q.is_hot("cold_fn"));
    }

    #[test]
    fn profile_rejects_bad_header() {
        assert!(HotProfile::parse("sys_write\n").is_err());
        assert!(HotProfile::parse("").is_err());
    }

    #[test]
    fn cycle_ranking_keeps_top_fraction_but_at_least_one() {
        let ranked = vec![
            ("hot".to_owned(), 1000),
            ("warm".to_owned(), 100),
            ("cold".to_owned(), 1),
        ];
        let p = HotProfile::from_cycle_ranking(&ranked, 0.34);
        assert!(p.is_hot("hot"));
        assert!(!p.is_hot("cold"));
        let one = HotProfile::from_cycle_ranking(&ranked, 0.0);
        assert_eq!(one.len(), 1);
        assert!(one.is_hot("hot"));
        assert!(HotProfile::from_cycle_ranking(&[], 1.0).is_empty());
    }

    #[test]
    fn fusion_respects_block_boundaries_and_use_counts() {
        use sva_ir::IPred;
        // Block 0: icmp (pc 0) + condbr (pc 1) — fusible.
        // Block 1 (pc 2): icmp whose flag is ALSO returned — not fusible.
        // Block 2 (pc 4): ret.
        let ops = vec![
            FlatOp::ICmp {
                pred: IPred::Eq,
                w: 64,
                dst: 0,
                a: Src::Imm(1),
                b: Src::Imm(1),
            },
            FlatOp::CondBr {
                c: Src::Reg(0),
                tpc: 2,
                fpc: 4,
                from: 0,
            },
            FlatOp::ICmp {
                pred: IPred::Ne,
                w: 64,
                dst: 1,
                a: Src::Imm(0),
                b: Src::Imm(1),
            },
            FlatOp::CondBr {
                c: Src::Reg(1),
                tpc: 4,
                fpc: 4,
                from: 1,
            },
            FlatOp::Ret {
                val: Some(Src::Reg(1)),
            },
        ];
        let mut ff = FlatFunc { ops };
        let fused = fuse_flat(&mut ff);
        assert_eq!(fused, 1);
        assert!(matches!(ff.ops[0], FlatOp::FusedCmpBr { .. }));
        assert!(matches!(ff.ops[1], FlatOp::Nop));
        // Second icmp's flag has two uses — left alone.
        assert!(matches!(ff.ops[2], FlatOp::ICmp { .. }));
        assert!(matches!(ff.ops[3], FlatOp::CondBr { .. }));
    }

    #[test]
    fn fusion_never_crosses_a_block_start() {
        use sva_ir::BinOp;
        // bin (terminated block would be illegal IR; model a branch in
        // between): bin at pc 0 ends... here: bin, br, bin — the second
        // bin starts a block, so no Bin2 forms across the br; and the
        // (bin, br) pair matches no pattern.
        let ops = vec![
            FlatOp::Bin {
                op: BinOp::Add,
                w: 64,
                dst: 0,
                a: Src::Imm(1),
                b: Src::Imm(2),
            },
            FlatOp::Br { pc: 2, from: 0 },
            FlatOp::Bin {
                op: BinOp::Add,
                w: 64,
                dst: 1,
                a: Src::Reg(0),
                b: Src::Imm(3),
            },
            FlatOp::Ret {
                val: Some(Src::Reg(1)),
            },
        ];
        let mut ff = FlatFunc { ops };
        assert_eq!(fuse_flat(&mut ff), 0);
    }

    #[test]
    fn dependent_bin_pair_fuses_with_operand_side_tracked() {
        use sva_ir::BinOp;
        // t = 6 * 7; dst = 100 - t  (t on the rhs of the second op).
        let ops = vec![
            FlatOp::Bin {
                op: BinOp::Mul,
                w: 64,
                dst: 0,
                a: Src::Imm(6),
                b: Src::Imm(7),
            },
            FlatOp::Bin {
                op: BinOp::Sub,
                w: 64,
                dst: 1,
                a: Src::Imm(100),
                b: Src::Reg(0),
            },
            FlatOp::Ret {
                val: Some(Src::Reg(1)),
            },
        ];
        let mut ff = FlatFunc { ops };
        assert_eq!(fuse_flat(&mut ff), 1);
        match &ff.ops[0] {
            FlatOp::FusedBin2 { t_lhs, c, .. } => {
                assert!(!*t_lhs);
                assert_eq!(*c, Src::Imm(100));
            }
            other => panic!("expected FusedBin2, got {other:?}"),
        }
    }

    #[test]
    fn checked_gep_load_triple_fuses() {
        // gep t; pchk.ls(mp, t); load t — the address register has two
        // reads (check + load), both swallowed by the triple.
        let ops = vec![
            FlatOp::Gep {
                dst: 0,
                base: Src::Imm(0x1000),
                const_off: 8,
                dynamic: vec![],
            },
            FlatOp::Call {
                dst: None,
                callee: FlatCallee::Intrinsic(Intrinsic::LsCheck),
                args: vec![Src::Imm(3), Src::Reg(0)],
            },
            FlatOp::Load {
                dst: 1,
                ptr: Src::Reg(0),
                w: 8,
            },
            FlatOp::Ret {
                val: Some(Src::Reg(1)),
            },
        ];
        let mut ff = FlatFunc { ops };
        assert_eq!(fuse_flat(&mut ff), 1);
        match &ff.ops[0] {
            FlatOp::FusedGepChkLoad {
                dst, mp, chk_src, ..
            } => {
                assert_eq!(*dst, 1);
                assert_eq!(*mp, 3);
                assert!(chk_src.is_none());
            }
            other => panic!("expected FusedGepChkLoad, got {other:?}"),
        }
        assert!(matches!(ff.ops[1], FlatOp::Nop));
        assert!(matches!(ff.ops[2], FlatOp::Nop));
    }

    #[test]
    fn checked_gep_load_triple_fuses_bounds_variant() {
        // gep t = base+off; pchk.bounds(mp, base, t); load t.
        let ops = vec![
            FlatOp::Gep {
                dst: 1,
                base: Src::Reg(0),
                const_off: 16,
                dynamic: vec![],
            },
            FlatOp::Call {
                dst: None,
                callee: FlatCallee::Intrinsic(Intrinsic::BoundsCheck),
                args: vec![Src::Imm(2), Src::Reg(0), Src::Reg(1)],
            },
            FlatOp::Load {
                dst: 2,
                ptr: Src::Reg(1),
                w: 8,
            },
            FlatOp::Ret {
                val: Some(Src::Reg(2)),
            },
        ];
        let mut ff = FlatFunc { ops };
        assert_eq!(fuse_flat(&mut ff), 1);
        match &ff.ops[0] {
            FlatOp::FusedGepChkLoad { mp, chk_src, .. } => {
                assert_eq!(*mp, 2);
                assert_eq!(*chk_src, Some(Src::Reg(0)));
            }
            other => panic!("expected FusedGepChkLoad, got {other:?}"),
        }
    }

    #[test]
    fn checked_gep_load_triple_respects_extra_uses() {
        // The address register is ALSO returned — three uses, no fusion
        // (the intermediate is observable).
        let ops = vec![
            FlatOp::Gep {
                dst: 0,
                base: Src::Imm(0x1000),
                const_off: 0,
                dynamic: vec![],
            },
            FlatOp::Call {
                dst: None,
                callee: FlatCallee::Intrinsic(Intrinsic::LsCheck),
                args: vec![Src::Imm(0), Src::Reg(0)],
            },
            FlatOp::Load {
                dst: 1,
                ptr: Src::Reg(0),
                w: 8,
            },
            FlatOp::Ret {
                val: Some(Src::Reg(0)),
            },
        ];
        let mut ff = FlatFunc { ops };
        assert_eq!(fuse_flat(&mut ff), 0);
        assert!(matches!(ff.ops[0], FlatOp::Gep { .. }));
    }

    #[test]
    fn constant_phi_becomes_mov() {
        let ops = vec![
            FlatOp::Phi {
                dst: 0,
                incomings: vec![(0, Src::Imm(7)), (1, Src::Imm(7))],
            },
            FlatOp::Phi {
                dst: 1,
                incomings: vec![(0, Src::Imm(7)), (1, Src::Imm(8))],
            },
            FlatOp::Ret {
                val: Some(Src::Reg(0)),
            },
        ];
        let mut ff = FlatFunc { ops };
        assert_eq!(fuse_flat(&mut ff), 1);
        assert!(matches!(
            ff.ops[0],
            FlatOp::Mov {
                dst: 0,
                src: Src::Imm(7)
            }
        ));
        assert!(matches!(ff.ops[1], FlatOp::Phi { .. }));
    }
}
