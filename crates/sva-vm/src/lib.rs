//! # The Secure Virtual Machine (SVM)
//!
//! Executes SVA bytecode (paper §3.4): verification, translation to a
//! signed "native" code cache, and the SVA-OS operations — interrupt
//! contexts, processor-state save/restore, MMU mediation, I/O ports and
//! system-call dispatch. Under [`KernelKind::SvaSafe`] the run-time
//! metapool checks from `sva-rt` are live and any violation stops the
//! machine with [`VmError::Safety`] instead of letting the guest kernel
//! corrupt memory — or, when the kernel has registered a recovery
//! context with `sva.recover.register`, unwinds to it with the offending
//! metapool quarantined (DESIGN.md §4.3). A [`FaultHook`] on
//! [`VmConfig`] lets deterministic fault-injection campaigns perturb the
//! machine at trap boundaries.

pub mod bundle;
pub mod mem;
pub mod migrate;
pub mod opt;
pub mod resume;
pub mod smp;
pub mod snapshot;
pub mod vm;

pub use bundle::{BundleError, CrashBundle, CrashReason, BUNDLE_MAGIC, BUNDLE_VERSION};
pub use mem::{
    func_addr, Memory, Mode, FUNC_BASE, KERN_BASE, KERN_END, KHEAP_BASE, KHEAP_END, KSTACK_BASE,
    KSTACK_END, PAGE_SIZE, USER_BASE, USER_END, USER_SIZE,
};
pub use migrate::{
    migrate, migrate_bundle, plan, reencode_at, MigrateError, MigrationPlan, MigrationReport,
    Upcaster, OLDEST_SUPPORTED, UPCASTERS,
};
pub use opt::HotProfile;
pub use resume::{check_kind_code, ResumeCode, RESUME_KIND_WATCHDOG};
pub use smp::{
    decode_quiesce, encode_quiesce, CpuReport, JobResult, QuiesceOutcome, SmpJob, SmpMachine,
    SmpReport, QUIESCE_MAGIC, QUIESCE_VERSION,
};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use sva_trace::{FlightConfig, FlightRecorder, NullTracer, RingTracer, Tracer};
pub use vm::{
    FaultAction, FaultHook, IrqAffinity, KernelKind, TrapInfo, Vm, VmConfig, VmError, VmExit,
    VmStats, CHECK_CYCLES, PORT_CONSOLE, PORT_TIMER, REG_CYCLES, USTACK_SIZE,
};

#[cfg(test)]
mod tests;
