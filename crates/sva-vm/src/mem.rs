//! The SVM's simulated physical/virtual memory.
//!
//! Layout (one virtual machine):
//!
//! ```text
//! 0x0000_0000 .. 0x0001_0000   null + guard pages (never mapped)
//! 0x0001_0000 .. 0x0005_0000   userspace (per address space, 256 KiB)
//! 0x1000_0000 .. 0x1200_0000   kernel memory (globals, kernel stack, heap)
//! 0x8000_0000 .. …             function "addresses" (16 bytes apart)
//! 0x9000_0000 .. …             external function addresses (trap on call)
//! ```
//!
//! Userspace is instantiated per *address space* (asid); the kernel switches
//! spaces with `sva.mmu.load.space` (the CR3 write of a ported kernel) and
//! copies pages with `sva.mmu.copy.page` (fork). The SVM mediates all of
//! this (paper §3.4): the kernel never touches page tables directly.

use crate::VmError;

/// Base of the user region within every address space.
pub const USER_BASE: u64 = 0x0001_0000;
/// Size of each user address space.
pub const USER_SIZE: u64 = 0x0004_0000; // 256 KiB
/// End (exclusive) of the user region.
pub const USER_END: u64 = USER_BASE + USER_SIZE;
/// Base of kernel memory.
pub const KERN_BASE: u64 = 0x1000_0000;
/// Size of kernel memory.
pub const KERN_SIZE: u64 = 0x0200_0000; // 32 MiB
/// End (exclusive) of kernel memory.
pub const KERN_END: u64 = KERN_BASE + KERN_SIZE;
/// Base of the fixed kernel stack area (inside kernel memory).
pub const KSTACK_BASE: u64 = KERN_BASE + 0x0010_0000;
/// Size of the kernel stack.
pub const KSTACK_SIZE: u64 = 0x0002_0000; // 128 KiB
/// End of the kernel stack area.
pub const KSTACK_END: u64 = KSTACK_BASE + KSTACK_SIZE;
/// Base of the kernel heap (managed by the guest kernel's allocators).
pub const KHEAP_BASE: u64 = KERN_BASE + 0x0020_0000;
/// End of the kernel heap.
pub const KHEAP_END: u64 = KERN_END;
/// Virtual page size.
pub const PAGE_SIZE: u64 = 4096;
/// Base of function addresses.
pub const FUNC_BASE: u64 = 0x8000_0000;
/// Stride between function addresses.
pub const FUNC_STRIDE: u64 = 16;
/// Base of external-function addresses.
pub const EXTERN_BASE: u64 = 0x9000_0000;

/// Address of a defined function.
pub fn func_addr(fid: u32) -> u64 {
    FUNC_BASE + fid as u64 * FUNC_STRIDE
}

/// Function id behind an address, if it is a function address.
pub fn addr_func(addr: u64) -> Option<u32> {
    if (FUNC_BASE..EXTERN_BASE).contains(&addr) && (addr - FUNC_BASE).is_multiple_of(FUNC_STRIDE) {
        Some(((addr - FUNC_BASE) / FUNC_STRIDE) as u32)
    } else {
        None
    }
}

/// Address of an external function.
pub fn extern_addr(eid: u32) -> u64 {
    EXTERN_BASE + eid as u64 * FUNC_STRIDE
}

/// One user address space.
#[derive(Clone, Debug)]
pub struct UserSpace {
    /// Backing bytes for `[USER_BASE, USER_END)`.
    pub data: Vec<u8>,
    /// Live flag (freed spaces are kept as tombstones).
    pub live: bool,
}

/// Execution privilege.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Kernel (privileged) mode.
    Kernel,
    /// User mode.
    User,
}

/// The simulated memory: kernel region plus per-asid user spaces.
#[derive(Clone, Debug)]
pub struct Memory {
    kernel: Vec<u8>,
    spaces: Vec<UserSpace>,
    /// Currently loaded address space.
    pub current_asid: u32,
}

impl Memory {
    /// Creates memory with one initial address space (asid 0).
    pub fn new() -> Self {
        Memory {
            kernel: vec![0; KERN_SIZE as usize],
            spaces: vec![UserSpace {
                data: vec![0; USER_SIZE as usize],
                live: true,
            }],
            current_asid: 0,
        }
    }

    /// Creates a new user address space, returning its asid.
    pub fn new_space(&mut self) -> u32 {
        let id = self.spaces.len() as u32;
        self.spaces.push(UserSpace {
            data: vec![0; USER_SIZE as usize],
            live: true,
        });
        id
    }

    /// Switches the current address space.
    pub fn load_space(&mut self, asid: u32) -> Result<(), VmError> {
        match self.spaces.get(asid as usize) {
            Some(s) if s.live => {
                self.current_asid = asid;
                Ok(())
            }
            _ => Err(VmError::BadAsid(asid)),
        }
    }

    /// Frees an address space (exit). The current space cannot be freed.
    pub fn free_space(&mut self, asid: u32) -> Result<(), VmError> {
        if asid == self.current_asid {
            return Err(VmError::BadAsid(asid));
        }
        match self.spaces.get_mut(asid as usize) {
            Some(s) if s.live => {
                s.live = false;
                s.data = Vec::new();
                Ok(())
            }
            _ => Err(VmError::BadAsid(asid)),
        }
    }

    /// Copies one page of the *current* space into `dst_asid` (fork).
    pub fn copy_page(&mut self, dst_asid: u32, vaddr: u64) -> Result<(), VmError> {
        if !(USER_BASE..USER_END).contains(&vaddr) {
            return Err(VmError::Fault {
                addr: vaddr,
                len: PAGE_SIZE,
            });
        }
        let page_off = ((vaddr - USER_BASE) / PAGE_SIZE * PAGE_SIZE) as usize;
        if dst_asid as usize >= self.spaces.len()
            || !self.spaces[dst_asid as usize].live
            || dst_asid == self.current_asid
        {
            return Err(VmError::BadAsid(dst_asid));
        }
        let cur = self.current_asid as usize;
        let (a, b) = if cur < dst_asid as usize {
            let (lo, hi) = self.spaces.split_at_mut(dst_asid as usize);
            (&lo[cur], &mut hi[0])
        } else {
            let (lo, hi) = self.spaces.split_at_mut(cur);
            (&hi[0], &mut lo[dst_asid as usize])
        };
        b.data[page_off..page_off + PAGE_SIZE as usize]
            .copy_from_slice(&a.data[page_off..page_off + PAGE_SIZE as usize]);
        Ok(())
    }

    /// Number of live address spaces.
    pub fn live_spaces(&self) -> usize {
        self.spaces.iter().filter(|s| s.live).count()
    }

    /// Raw kernel-region bytes (machine snapshots).
    pub(crate) fn kernel_bytes(&self) -> &[u8] {
        &self.kernel
    }

    /// Replaces the kernel region wholesale (snapshot restore). Swapping
    /// in a freshly calloc-ed buffer is much cheaper than zeroing the old
    /// one in place: the 32 MiB region is zero-page-backed until touched,
    /// so a restore costs only the image's nonzero pages.
    pub(crate) fn set_kernel(&mut self, kernel: Vec<u8>) {
        debug_assert_eq!(kernel.len(), self.kernel.len());
        self.kernel = kernel;
    }

    /// All address spaces including tombstones (machine snapshots).
    pub(crate) fn all_spaces(&self) -> &[UserSpace] {
        &self.spaces
    }

    /// Replaces the address-space table wholesale (snapshot restore).
    pub(crate) fn set_spaces(&mut self, spaces: Vec<UserSpace>) {
        self.spaces = spaces;
    }

    fn slice(&self, addr: u64, len: u64, mode: Mode) -> Result<&[u8], VmError> {
        if len == 0 {
            return Ok(&[]);
        }
        if addr >= USER_BASE && addr + len <= USER_END {
            let s = &self.spaces[self.current_asid as usize];
            let off = (addr - USER_BASE) as usize;
            return Ok(&s.data[off..off + len as usize]);
        }
        if addr >= KERN_BASE && addr + len <= KERN_END {
            if mode == Mode::User {
                return Err(VmError::Privilege { addr });
            }
            let off = (addr - KERN_BASE) as usize;
            return Ok(&self.kernel[off..off + len as usize]);
        }
        Err(VmError::Fault { addr, len })
    }

    fn slice_mut(&mut self, addr: u64, len: u64, mode: Mode) -> Result<&mut [u8], VmError> {
        if len == 0 {
            return Ok(&mut []);
        }
        if addr >= USER_BASE && addr + len <= USER_END {
            let s = &mut self.spaces[self.current_asid as usize];
            let off = (addr - USER_BASE) as usize;
            return Ok(&mut s.data[off..off + len as usize]);
        }
        if addr >= KERN_BASE && addr + len <= KERN_END {
            if mode == Mode::User {
                return Err(VmError::Privilege { addr });
            }
            let off = (addr - KERN_BASE) as usize;
            return Ok(&mut self.kernel[off..off + len as usize]);
        }
        Err(VmError::Fault { addr, len })
    }

    /// Reads an unsigned little-endian integer of `width` bytes.
    pub fn read_uint(&self, addr: u64, width: u64, mode: Mode) -> Result<u64, VmError> {
        let s = self.slice(addr, width, mode)?;
        let mut b = [0u8; 8];
        b[..width as usize].copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Writes the low `width` bytes of `v`, little-endian.
    pub fn write_uint(&mut self, addr: u64, width: u64, v: u64, mode: Mode) -> Result<(), VmError> {
        let s = self.slice_mut(addr, width, mode)?;
        s.copy_from_slice(&v.to_le_bytes()[..width as usize]);
        Ok(())
    }

    /// Reads `len` bytes.
    pub fn read_bytes(&self, addr: u64, len: u64, mode: Mode) -> Result<Vec<u8>, VmError> {
        Ok(self.slice(addr, len, mode)?.to_vec())
    }

    /// Writes a byte slice.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8], mode: Mode) -> Result<(), VmError> {
        let s = self.slice_mut(addr, data.len() as u64, mode)?;
        s.copy_from_slice(data);
        Ok(())
    }

    /// `memset`.
    pub fn set_bytes(&mut self, addr: u64, byte: u8, len: u64, mode: Mode) -> Result<(), VmError> {
        let s = self.slice_mut(addr, len, mode)?;
        s.fill(byte);
        Ok(())
    }

    /// `memcpy`/`memmove` (overlap-safe; may cross the user/kernel boundary
    /// in kernel mode, which is how `copy_{to,from}_user` bottom out).
    pub fn copy_bytes(&mut self, dst: u64, src: u64, len: u64, mode: Mode) -> Result<(), VmError> {
        if len == 0 {
            return Ok(());
        }
        let data = self.slice(src, len, mode)?.to_vec();
        let d = self.slice_mut(dst, len, mode)?;
        d.copy_from_slice(&data);
        Ok(())
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_rw_round_trip() {
        let mut m = Memory::new();
        m.write_uint(KERN_BASE + 0x100, 8, 0xdead_beef_cafe_f00d, Mode::Kernel)
            .unwrap();
        assert_eq!(
            m.read_uint(KERN_BASE + 0x100, 8, Mode::Kernel).unwrap(),
            0xdead_beef_cafe_f00d
        );
        // Narrow widths.
        m.write_uint(KERN_BASE + 0x200, 2, 0xABCD, Mode::Kernel)
            .unwrap();
        assert_eq!(
            m.read_uint(KERN_BASE + 0x200, 2, Mode::Kernel).unwrap(),
            0xABCD
        );
        assert_eq!(
            m.read_uint(KERN_BASE + 0x200, 1, Mode::Kernel).unwrap(),
            0xCD
        );
    }

    #[test]
    fn user_mode_cannot_touch_kernel() {
        let mut m = Memory::new();
        let err = m.read_uint(KERN_BASE, 8, Mode::User).unwrap_err();
        assert!(matches!(err, VmError::Privilege { .. }));
        let err = m.write_uint(KERN_BASE, 8, 1, Mode::User).unwrap_err();
        assert!(matches!(err, VmError::Privilege { .. }));
    }

    #[test]
    fn null_and_wild_addresses_fault() {
        let m = Memory::new();
        assert!(matches!(
            m.read_uint(0, 8, Mode::Kernel),
            Err(VmError::Fault { .. })
        ));
        assert!(matches!(
            m.read_uint(0x8, 8, Mode::Kernel),
            Err(VmError::Fault { .. })
        ));
        assert!(matches!(
            m.read_uint(KERN_END, 8, Mode::Kernel),
            Err(VmError::Fault { .. })
        ));
        // Straddling the user/guard boundary faults.
        assert!(matches!(
            m.read_uint(USER_END - 4, 8, Mode::Kernel),
            Err(VmError::Fault { .. })
        ));
    }

    #[test]
    fn spaces_are_isolated() {
        let mut m = Memory::new();
        m.write_uint(USER_BASE, 8, 111, Mode::User).unwrap();
        let a1 = m.new_space();
        m.load_space(a1).unwrap();
        assert_eq!(m.read_uint(USER_BASE, 8, Mode::User).unwrap(), 0);
        m.write_uint(USER_BASE, 8, 222, Mode::User).unwrap();
        m.load_space(0).unwrap();
        assert_eq!(m.read_uint(USER_BASE, 8, Mode::User).unwrap(), 111);
    }

    #[test]
    fn copy_page_clones_fork_style() {
        let mut m = Memory::new();
        m.write_uint(USER_BASE + 8, 8, 777, Mode::User).unwrap();
        let child = m.new_space();
        m.copy_page(child, USER_BASE).unwrap();
        m.load_space(child).unwrap();
        assert_eq!(m.read_uint(USER_BASE + 8, 8, Mode::User).unwrap(), 777);
        // Copy-on-write is not modelled: writes in the child stay local.
        m.write_uint(USER_BASE + 8, 8, 888, Mode::User).unwrap();
        m.load_space(0).unwrap();
        assert_eq!(m.read_uint(USER_BASE + 8, 8, Mode::User).unwrap(), 777);
    }

    #[test]
    fn free_space_rules() {
        let mut m = Memory::new();
        let a1 = m.new_space();
        assert!(m.free_space(m.current_asid).is_err());
        m.free_space(a1).unwrap();
        assert!(m.load_space(a1).is_err());
        assert_eq!(m.live_spaces(), 1);
    }

    #[test]
    fn func_addr_round_trip() {
        assert_eq!(addr_func(func_addr(0)), Some(0));
        assert_eq!(addr_func(func_addr(42)), Some(42));
        assert_eq!(addr_func(func_addr(42) + 1), None);
        assert_eq!(addr_func(0x1234), None);
        assert_eq!(addr_func(extern_addr(0)), None);
    }

    #[test]
    fn cross_space_copy_kernel_mode() {
        let mut m = Memory::new();
        // Kernel copies user → kernel (copy_from_user bottom half).
        m.write_bytes(USER_BASE, b"hello", Mode::User).unwrap();
        m.copy_bytes(KERN_BASE + 0x1000, USER_BASE, 5, Mode::Kernel)
            .unwrap();
        assert_eq!(
            m.read_bytes(KERN_BASE + 0x1000, 5, Mode::Kernel).unwrap(),
            b"hello"
        );
    }

    #[test]
    fn copy_page_rejects_bad_targets() {
        let mut m = Memory::new();
        // Unknown destination space.
        assert!(m.copy_page(99, USER_BASE).is_err());
        // Page outside the user range.
        let child = m.new_space();
        assert!(m.copy_page(child, KERN_BASE).is_err());
    }

    #[test]
    fn set_bytes_fills_and_respects_bounds() {
        let mut m = Memory::new();
        m.set_bytes(USER_BASE + 16, 0xAA, 8, Mode::User).unwrap();
        assert_eq!(
            m.read_bytes(USER_BASE + 16, 8, Mode::User).unwrap(),
            vec![0xAA; 8]
        );
        // A fill that runs off the end of user space must fault, not wrap.
        assert!(m.set_bytes(USER_END - 4, 0xAA, 8, Mode::User).is_err());
    }

    #[test]
    fn zero_length_operations_are_noops() {
        let mut m = Memory::new();
        assert_eq!(m.read_bytes(USER_BASE, 0, Mode::User).unwrap(), vec![]);
        m.write_bytes(USER_BASE, &[], Mode::User).unwrap();
        m.copy_bytes(USER_BASE, USER_BASE + 64, 0, Mode::User)
            .unwrap();
        m.set_bytes(USER_BASE, 0, 0, Mode::User).unwrap();
    }

    #[test]
    fn overlapping_copy_is_memmove_like() {
        let mut m = Memory::new();
        m.write_bytes(USER_BASE, b"abcdef", Mode::User).unwrap();
        // Overlapping forward copy: [0..4) -> [2..6).
        m.copy_bytes(USER_BASE + 2, USER_BASE, 4, Mode::User)
            .unwrap();
        assert_eq!(
            m.read_bytes(USER_BASE, 6, Mode::User).unwrap(),
            b"ababcd",
            "overlapping copies must behave like memmove"
        );
    }

    #[test]
    fn fresh_spaces_come_up_zeroed() {
        let mut m = Memory::new();
        let a1 = m.new_space();
        m.load_space(a1).unwrap();
        m.write_uint(USER_BASE, 8, 42, Mode::User).unwrap();
        m.load_space(0).unwrap();
        m.free_space(a1).unwrap();
        // A new space must come up zeroed even if an id is reused.
        let a2 = m.new_space();
        m.load_space(a2).unwrap();
        assert_eq!(m.read_uint(USER_BASE, 8, Mode::User).unwrap(), 0);
    }
}
