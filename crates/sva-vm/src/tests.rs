//! End-to-end tests of the SVM: both engines, SVA-OS operations, traps,
//! context switching and the safety-check integration.

use sva_analysis::AnalysisConfig;
use sva_core::compile::{compile, CompileOptions};
use sva_core::verifier::verify_and_insert_checks;
use sva_ir::parse::parse_module;
use sva_ir::Module;

use crate::mem::Mode;
use crate::vm::{KernelKind, Vm, VmConfig, VmError, VmExit};

fn vm_for(src: &str, kind: KernelKind) -> Vm {
    let m = parse_module(src).expect("parse");
    let errs = sva_ir::verify::verify_module(&m);
    assert!(errs.is_empty(), "{errs:?}");
    Vm::new(
        m,
        VmConfig {
            kind,
            ..Default::default()
        },
    )
    .expect("load")
}

fn run_all_kinds(src: &str, func: &str, args: &[u64], expect: u64) {
    for kind in [KernelKind::Native, KernelKind::SvaGcc, KernelKind::SvaLlvm] {
        let mut vm = vm_for(src, kind);
        let r = vm
            .call(func, args)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(r, VmExit::Returned(expect), "{kind:?}");
    }
}

#[test]
fn arithmetic_and_branches() {
    let src = r#"
module "m"
func public @collatz_len(%n0: i64) : i64 {
entry:
  br loop
loop:
  %n:i64 = phi i64 [entry: %n0, odd: %n3, even: %half]
  %len:i64 = phi i64 [entry: 0:i64, odd: %len2, even: %len3]
  %is1:i1 = icmp eq %n, 1:i64
  condbr %is1, out, step
step:
  %bit:i64 = and %n, 1:i64
  %isodd:i1 = icmp eq %bit, 1:i64
  condbr %isodd, odd, even
odd:
  %t:i64 = mul %n, 3:i64
  %n3:i64 = add %t, 1:i64
  %len2:i64 = add %len, 1:i64
  br loop
even:
  %half:i64 = udiv %n, 2:i64
  %len3:i64 = add %len, 1:i64
  br loop
out:
  ret %len
}
"#;
    // collatz(6): 6 3 10 5 16 8 4 2 1 -> 8 steps
    run_all_kinds(src, "collatz_len", &[6], 8);
}

#[test]
fn width_semantics_i8_overflow() {
    let src = r#"
module "m"
func public @wrap(%x: i64) : i64 {
entry:
  %b:i8 = cast trunc %x to i8
  %c:i8 = add %b, 1:i8
  %w:i64 = cast zext %c to i64
  ret %w
}
"#;
    run_all_kinds(src, "wrap", &[255], 0);
    run_all_kinds(src, "wrap", &[130], 131);
}

#[test]
fn signed_ops_and_sext() {
    let src = r#"
module "m"
func public @sdiv_test(%a: i64, %b: i64) : i64 {
entry:
  %q:i64 = sdiv %a, %b
  ret %q
}
func public @sext8(%x: i64) : i64 {
entry:
  %b:i8 = cast trunc %x to i8
  %w:i64 = cast sext %b to i64
  ret %w
}
"#;
    run_all_kinds(src, "sdiv_test", &[(-7i64) as u64, 2], (-3i64) as u64);
    // 0xFF as i8 = -1 sign-extended.
    run_all_kinds(src, "sext8", &[0xFF], u64::MAX);
}

#[test]
fn memory_and_structs() {
    let src = r#"
module "m"
struct %pair = { i64, i32 }
func public @swapadd() : i64 {
entry:
  %p:%pair* = alloca %pair, 1:i32
  %a:i64* = gep %p [0:i32, 0:i32]
  %b:i32* = gep %p [0:i32, 1:i32]
  store 40:i64, %a
  store 2:i32, %b
  %x:i64 = load %a
  %y:i32 = load %b
  %y64:i64 = cast zext %y to i64
  %r:i64 = add %x, %y64
  ret %r
}
"#;
    run_all_kinds(src, "swapadd", &[], 42);
}

#[test]
fn globals_and_function_pointers() {
    let src = r#"
module "m"
global @counter : i64 = zero
func internal @inc(%by: i64) : i64 {
entry:
  %old:i64 = load @counter
  %new:i64 = add %old, %by
  store %new, @counter
  ret %new
}
func public @twice(%by: i64) : i64 {
entry:
  %a:i64 = call @inc(%by)
  %b:i64 = call @inc(%by)
  ret %b
}
"#;
    run_all_kinds(src, "twice", &[5], 10);
}

#[test]
fn indirect_call_through_table() {
    let src = r#"
module "m"
func internal @double(%x: i64) : i64 {
entry:
  %r:i64 = mul %x, 2:i64
  ret %r
}
func internal @square(%x: i64) : i64 {
entry:
  %r:i64 = mul %x, %x
  ret %r
}
global @ops : [2 x ((i64) -> i64)*] = bytes x00000000000000000000000000000000 relocs [0: @double, 8: @square]
func public @apply(%which: i64, %x: i64) : i64 {
entry:
  %slot:((i64) -> i64)** = gep @ops [0:i32, %which]
  %fp:((i64) -> i64)* = load %slot
  %r:i64 = callind %fp(%x)
  ret %r
}
"#;
    run_all_kinds(src, "apply", &[0, 21], 42);
    run_all_kinds(src, "apply", &[1, 6], 36);
}

#[test]
fn memory_faults_detected() {
    let src = r#"
module "m"
func public @wild() : i64 {
entry:
  %p:i64* = cast inttoptr 64:i64 to i64*
  %v:i64 = load %p
  ret %v
}
"#;
    let mut vm = vm_for(src, KernelKind::Native);
    let err = vm.call("wild", &[]).unwrap_err();
    assert!(matches!(err, VmError::Fault { .. }), "{err}");
}

#[test]
fn div_by_zero_trap() {
    let src = r#"
module "m"
func public @crash(%a: i64, %b: i64) : i64 {
entry:
  %q:i64 = udiv %a, %b
  ret %q
}
"#;
    let mut vm = vm_for(src, KernelKind::SvaLlvm);
    let err = vm.call("crash", &[1, 0]).unwrap_err();
    assert!(matches!(err, VmError::DivZero));
}

#[test]
fn console_print() {
    let src = r#"
module "m"
func public @hello() : void {
entry:
  call $sva.print(104:i64)
  ret
}
"#;
    let mut vm = vm_for(src, KernelKind::Native);
    vm.call("hello", &[]).unwrap();
    assert_eq!(vm.console_string(), "104\n");
}

#[test]
fn abort_halts() {
    let src = r#"
module "m"
func public @die() : void {
entry:
  call $sva.abort(7:i64)
  ret
}
"#;
    let mut vm = vm_for(src, KernelKind::Native);
    assert_eq!(vm.call("die", &[]).unwrap(), VmExit::Halted(7));
}

#[test]
fn fuel_limit_stops_runaway() {
    let src = r#"
module "m"
func public @spin() : void {
entry:
  br entry
}
"#;
    let m = parse_module(src).unwrap();
    let mut vm = Vm::new(
        m,
        VmConfig {
            kind: KernelKind::Native,
            sign_key: 1,
            fuel: 10_000,
            ..Default::default()
        },
    )
    .unwrap();
    let err = vm.call("spin", &[]).unwrap_err();
    assert!(matches!(err, VmError::OutOfFuel));
}

/// Kernel + user program with syscall dispatch, fork-style context and
/// scheduling via save/load integer state.
const OS_SRC: &str = r#"
module "os"
global @ctx_a : [64 x i64] = zero
global @ctx_b : [64 x i64] = zero
global @log : [16 x i64] = zero
global @logn : i64 = zero

func internal @push_log(%v: i64) : void {
entry:
  %n:i64 = load @logn
  %slot:i64* = gep @log [0:i32, %n]
  store %v, %slot
  %n1:i64 = add %n, 1:i64
  store %n1, @logn
  ret
}

func internal @sys_answer(%x: i64) : i64 {
entry:
  call @push_log(%x)
  %r:i64 = add %x, 2:i64
  ret %r
}

func internal @user_main(%arg: i64) : i64 {
entry:
  %a:i64 = call $sva.syscall(40:i64, %arg) : i64
  %b:i64 = call $sva.syscall(40:i64, %a) : i64
  call $sva.abort(%b)
  ret %b
}

func public @start_kernel() : i64 {
entry:
  call $sva.register.syscall(40:i64, @user_main_reg)
  ret 0:i64
}

func internal @user_main_reg(%x: i64) : i64 {
entry:
  ret %x
}
"#;

#[test]
fn syscall_trap_and_return() {
    // Build a little OS: register handler, start a user process, check the
    // syscall round trip and that the kernel saw the argument.
    let src = r#"
module "os"
global @seen : i64 = zero

func internal @sys_answer(%x: i64) : i64 {
entry:
  store %x, @seen
  %r:i64 = add %x, 2:i64
  ret %r
}

func internal @user_main(%arg: i64) : i64 {
entry:
  %a:i64 = call $sva.syscall(40:i64, %arg) : i64
  call $sva.abort(%a)
  ret 0:i64
}

func public @start_kernel() : i64 {
entry:
  call $sva.register.syscall(40:i64, @sys_answer)
  %ic:i64 = call $sva.icontext.new(0:i64, 0:i64) : i64
  call $sva.icontext.setentry(%ic, @user_main, 7:i64)
  call $sva.iret(%ic, 0:i64)
  ret 0:i64
}
"#;
    for kind in [KernelKind::Native, KernelKind::SvaGcc, KernelKind::SvaLlvm] {
        let mut vm = vm_for(src, kind);
        let exit = vm.call("start_kernel", &[]).unwrap();
        assert_eq!(exit, VmExit::Halted(9), "{kind:?}");
        let seen = vm.read_global_u64("seen").unwrap();
        assert_eq!(seen, 7);
        assert!(vm.stats().traps >= 1);
    }
    let _ = OS_SRC;
}

#[test]
fn user_mode_cannot_use_privileged_ops() {
    let src = r#"
module "os"
func internal @evil_user(%arg: i64) : i64 {
entry:
  call $sva.register.syscall(1:i64, @evil_user)
  ret 0:i64
}
func public @start_kernel() : i64 {
entry:
  %ic:i64 = call $sva.icontext.new(0:i64, 0:i64) : i64
  call $sva.icontext.setentry(%ic, @evil_user, 0:i64)
  call $sva.iret(%ic, 0:i64)
  ret 0:i64
}
"#;
    let mut vm = vm_for(src, KernelKind::SvaLlvm);
    let err = vm.call("start_kernel", &[]).unwrap_err();
    assert!(matches!(err, VmError::Privilege { .. }), "{err}");
}

#[test]
fn user_mode_cannot_touch_kernel_memory() {
    let src = r#"
module "os"
global @secret : i64 = zero
func internal @snoop(%arg: i64) : i64 {
entry:
  %v:i64 = load @secret
  call $sva.abort(%v)
  ret 0:i64
}
func public @start_kernel() : i64 {
entry:
  store 42:i64, @secret
  %ic:i64 = call $sva.icontext.new(0:i64, 0:i64) : i64
  call $sva.icontext.setentry(%ic, @snoop, 0:i64)
  call $sva.iret(%ic, 0:i64)
  ret 0:i64
}
"#;
    let mut vm = vm_for(src, KernelKind::SvaLlvm);
    let err = vm.call("start_kernel", &[]).unwrap_err();
    assert!(matches!(err, VmError::Privilege { .. }), "{err}");
}

#[test]
fn context_switch_via_integer_state() {
    // Two kernel coroutines ping-pong via save/load integer state.
    let src = r#"
module "os"
global @bufA : [8 x i64] = zero
global @bufB : [8 x i64] = zero
global @trace : i64 = zero

func internal @note(%d: i64) : void {
entry:
  %t:i64 = load @trace
  %t10:i64 = mul %t, 10:i64
  %t2:i64 = add %t10, %d
  store %t2, @trace
  ret
}

func internal @coro_b(%x: i64) : void {
entry:
  call @note(2:i64)
  ; switch back to A
  %s:i32 = call $llva.save.integer(@bufB) : i32
  %is_orig:i1 = icmp eq %s, 1:i32
  condbr %is_orig, back, resumed
back:
  call $llva.load.integer(@bufA)
  unreachable
resumed:
  call @note(4:i64)
  ret
}

func public @start_kernel() : i64 {
entry:
  call @note(1:i64)
  %s:i32 = call $llva.save.integer(@bufA) : i32
  %first:i1 = icmp eq %s, 1:i32
  condbr %first, go_b, resumed
go_b:
  call @coro_b(0:i64)
  ; coro_b switched back to us -> resumed label
  br done_b
resumed:
  call @note(3:i64)
  ; resume B so it can finish
  %s2:i32 = call $llva.save.integer(@bufA) : i32
  %f2:i1 = icmp eq %s2, 1:i32
  condbr %f2, go_b2, done
go_b2:
  call $llva.load.integer(@bufB)
  unreachable
done_b:
  br done
done:
  %t:i64 = load @trace
  ret %t
}
"#;
    let mut vm = vm_for(src, KernelKind::SvaLlvm);
    let exit = vm.call("start_kernel", &[]).unwrap();
    // Order: note(1), note(2) in B, switch to A -> note(3), resume B ->
    // note(4), B returns into... B was called from go_b in A's ORIGINAL
    // context; when B finishes it returns to A's frame at the call site and
    // proceeds to done_b -> done. trace = (((1*10+2)*10+3)*10)+4 = 1234.
    assert_eq!(exit, VmExit::Returned(1234));
    assert!(vm.stats().context_switches >= 2);
}

#[test]
fn safe_config_requires_verified_module() {
    let src = r#"
module "m"
func public @f() : i64 {
entry:
  ret 1:i64
}
"#;
    let m = parse_module(src).unwrap();
    let err = match Vm::new(
        m,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("expected NotVerified"),
    };
    assert!(matches!(err, VmError::NotVerified));
}

/// Builds a safety-compiled & verified module from kernel-style source.
fn safe_module(src: &str) -> Module {
    let m = parse_module(src).unwrap();
    let compiled = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
    verify_and_insert_checks(compiled.module)
        .expect("verifies")
        .module
}

const SAFE_KERNEL: &str = r#"
module "k"
declare @unused : (i8*) -> void

func public @kmalloc(%sz: i64) : i8* {
entry:
  %cur:i64 = load @brk
  %new:i64 = add %cur, %sz
  store %new, @brk
  %p:i8* = cast inttoptr %cur to i8*
  ret %p
}
func public @kfree(%p: i8*) : void {
entry:
  ret
}
global @brk : i64 = bytes x0000201000000000
allocator ordinary "kmalloc" alloc=@kmalloc dealloc=@kfree size=arg0

func public @overflow(%idx: i64) : i64 {
entry:
  %buf:i8* = call @kmalloc(64:i64)
  %slot:i8* = gep %buf [%idx]
  store 65:i8, %slot
  %v:i8 = load %slot
  %r:i64 = cast zext %v to i64
  ret %r
}
"#;

#[test]
fn safe_kernel_in_bounds_access_passes() {
    let m = safe_module(SAFE_KERNEL);
    let mut vm = Vm::new(
        m,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    let r = vm.call("overflow", &[10]).unwrap();
    assert_eq!(r, VmExit::Returned(65));
    let stats = vm.pools.total_stats();
    assert!(
        stats.bounds_checks + vm.stats().range_checks >= 1,
        "{stats:?} {:?}",
        vm.stats()
    );
    assert!(stats.registrations >= 1);
}

#[test]
fn safe_kernel_lookup_breakdown_and_ablation_agree() {
    // With the fast path on, the repeated checks of `overflow` are served
    // by the cache layers; with it off the same run is all tree walks.
    // Outcome, cycle count and check volume must be identical either way.
    // The singleton elision is disabled on both sides: it would answer
    // ahead of every layer under test (it has its own ablation tests).
    let run = |fast_path: bool| {
        let m = safe_module(SAFE_KERNEL);
        let mut vm = Vm::new(
            m,
            VmConfig {
                kind: KernelKind::SvaSafe,
                fast_path,
                singleton_path: false,
                ..Default::default()
            },
        )
        .unwrap();
        let r = vm.call("overflow", &[10]).unwrap();
        (r, vm.stats(), vm.pools.total_stats())
    };
    let (r_fast, s_fast, p_fast) = run(true);
    let (r_base, s_base, p_base) = run(false);
    assert_eq!(r_fast, r_base);
    assert_eq!(s_fast.cycles, s_base.cycles, "fast path altered cycle cost");
    assert_eq!(p_fast.total_checks(), p_base.total_checks());
    // The baseline run never touches the cache layers.
    assert_eq!(s_base.cache_hits + s_base.page_hits, 0);
    assert_eq!(s_base.tree_walks, p_base.lookups());
    // Both runs account for every lookup, whatever layer answered it.
    assert_eq!(
        s_fast.cache_hits + s_fast.page_hits + s_fast.tree_walks,
        p_fast.lookups()
    );
}

#[test]
fn safe_kernel_catches_buffer_overflow() {
    let m = safe_module(SAFE_KERNEL);
    let mut vm = Vm::new(
        m,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    let err = vm.call("overflow", &[100]).unwrap_err();
    match err {
        VmError::Safety(e) => assert_eq!(e.kind, sva_rt::CheckKind::Bounds),
        other => panic!("expected safety violation, got {other}"),
    }
}

#[test]
fn unsafe_kernels_miss_the_overflow() {
    // The same overflow on the three check-free configurations silently
    // corrupts memory (the exploit succeeds) — the paper's baseline.
    let src = SAFE_KERNEL;
    for kind in [KernelKind::Native, KernelKind::SvaGcc, KernelKind::SvaLlvm] {
        let mut vm = vm_for(src, kind);
        let r = vm.call("overflow", &[100]).unwrap();
        assert_eq!(r, VmExit::Returned(65), "{kind:?} overflow went through");
    }
}

#[test]
fn native_cache_is_signed() {
    // Signing happens inside Vm::new; this exercises the failure path via
    // a direct tamper on SignedModule (unit-level check lives in sva-ir).
    let m = parse_module(
        r#"
module "m"
func public @f() : i64 {
entry:
  ret 3:i64
}
"#,
    )
    .unwrap();
    let sealed = sva_ir::bytecode::SignedModule::seal(&m, 5);
    let mut bad = sealed.clone();
    bad.bytecode[8] ^= 0xff;
    assert!(bad.open(5).is_err());
    let good = sealed.open(5).unwrap();
    let mut vm = Vm::new(
        good,
        VmConfig {
            kind: KernelKind::Native,
            sign_key: 5,
            fuel: u64::MAX,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(vm.call("f", &[]).unwrap(), VmExit::Returned(3));
}

#[test]
fn memcpy_intrinsic_kernel_user() {
    let src = r#"
module "m"
global @kbuf : [8 x i8] = bytes x4142434445464748
func public @to_user(%dst: i64) : i64 {
entry:
  %d:i8* = cast inttoptr %dst to i8*
  %s:i8* = gep @kbuf [0:i32, 0:i32]
  call $sva.memcpy(%d, %s, 8:i64)
  %v:i8 = load %d
  %r:i64 = cast zext %v to i64
  ret %r
}
"#;
    let mut vm = vm_for(src, KernelKind::Native);
    let r = vm.call("to_user", &[crate::mem::USER_BASE]).unwrap();
    assert_eq!(r, VmExit::Returned(0x41));
    assert_eq!(
        vm.mem
            .read_bytes(crate::mem::USER_BASE, 8, Mode::User)
            .unwrap(),
        b"ABCDEFGH"
    );
}

#[test]
fn stats_track_instructions() {
    let src = r#"
module "m"
func public @f() : i64 {
entry:
  %a:i64 = add 1:i64, 2:i64
  %b:i64 = add %a, 3:i64
  ret %b
}
"#;
    let mut vm = vm_for(src, KernelKind::Native);
    vm.call("f", &[]).unwrap();
    assert_eq!(vm.stats().instructions, 3);
}

#[test]
fn ipush_function_runs_before_resume() {
    // A pushed function (signal dispatch) runs first when the context is
    // resumed, then the original computation continues.
    let src = r#"
module "os"
global @order : i64 = zero

func internal @note(%d: i64) : void {
entry:
  %t:i64 = load @order
  %t10:i64 = mul %t, 10:i64
  %t2:i64 = add %t10, %d
  store %t2, @order
  ret
}

func internal @sys_note(%x: i64) : i64 {
entry:
  call @note(%x)
  ret 0:i64
}

func internal @handler(%sig: i64) : i64 {
entry:
  ; runs in USER mode: record via a syscall
  %r:i64 = call $sva.syscall(9:i64, 2:i64) : i64
  ret 0:i64
}

func internal @user_main(%arg: i64) : i64 {
entry:
  %a:i64 = call $sva.syscall(10:i64, 0:i64) : i64
  ; after this trap returns (with the handler pushed), record 3
  %b:i64 = call $sva.syscall(9:i64, 3:i64) : i64
  %t:i64 = call $sva.syscall(11:i64, 0:i64) : i64
  call $sva.abort(%t)
  ret 0:i64
}

func internal @sys_push(%x: i64) : i64 {
entry:
  call @note(1:i64)
  %icp:i64 = call $sva.icontext.get() : i64
  call $llva.ipush.function(%icp, @handler, 7:i64)
  ret 0:i64
}

func internal @sys_get(%x: i64) : i64 {
entry:
  %t:i64 = load @order
  ret %t
}

func public @start_kernel() : i64 {
entry:
  call $sva.register.syscall(9:i64, @sys_note)
  call $sva.register.syscall(10:i64, @sys_push)
  call $sva.register.syscall(11:i64, @sys_get)
  %ic:i64 = call $sva.icontext.new(0:i64, 0:i64) : i64
  call $sva.icontext.setentry(%ic, @user_main, 0:i64)
  call $sva.iret(%ic, 0:i64)
  ret 0:i64
}
"#;
    let mut vm = vm_for(src, KernelKind::SvaLlvm);
    let exit = vm.call("start_kernel", &[]).unwrap();
    // Order: sys_push notes 1; handler runs on return -> notes 2; user
    // continues -> notes 3. order = 123.
    assert_eq!(exit, VmExit::Halted(123));
}

#[test]
fn icontext_save_new_clones_fork_style() {
    // llva.icontext.save captures the trapping context as integer state;
    // sva.icontext.new builds a second context from it in a fresh address
    // space — the fork mechanism. Both "processes" then resume from the
    // same point with different syscall results.
    let src = r#"
module "os"
global @buf : [64 x i64] = zero
global @sum : i64 = zero

func internal @sys_fork2(%x: i64) : i64 {
entry:
  %icp:i64 = call $sva.icontext.get() : i64
  %key:i64 = cast ptrtoint @buf to i64
  call $llva.icontext.save(%icp, %key)
  %asid:i64 = call $sva.mmu.new.space() : i64
  %cicp:i64 = call $sva.icontext.new(%key, %asid) : i64
  ; stash the child context handle for the scheduler syscall
  %slot:i64* = gep @buf [0:i32, 63:i32]
  store %cicp, %slot
  ret 1:i64
}

func internal @sys_accum(%v: i64) : i64 {
entry:
  %s:i64 = load @sum
  %s2:i64 = add %s, %v
  store %s2, @sum
  ret 0:i64
}

func internal @sys_runchild(%x: i64) : i64 {
entry:
  %slot:i64* = gep @buf [0:i32, 63:i32]
  %cicp:i64 = load %slot
  call $sva.iret(%cicp, 0:i64)
  unreachable
}

func internal @sys_done(%x: i64) : i64 {
entry:
  %s:i64 = load @sum
  ret %s
}

func internal @user_main(%arg: i64) : i64 {
entry:
  %pid:i64 = call $sva.syscall(20:i64, 0:i64) : i64
  ; both sides add 100 + pid: parent 101, child 100
  %v:i64 = add %pid, 100:i64
  call $sva.syscall(21:i64, %v) : i64
  %isparent:i1 = icmp eq %pid, 1:i64
  condbr %isparent, parent, child
parent:
  ; switch to the child so it also runs
  call $sva.syscall(22:i64, 0:i64) : i64
  ret 0:i64
child:
  %s:i64 = call $sva.syscall(23:i64, 0:i64) : i64
  call $sva.abort(%s)
  ret 0:i64
}

func public @start_kernel() : i64 {
entry:
  call $sva.register.syscall(20:i64, @sys_fork2)
  call $sva.register.syscall(21:i64, @sys_accum)
  call $sva.register.syscall(22:i64, @sys_runchild)
  call $sva.register.syscall(23:i64, @sys_done)
  %ic:i64 = call $sva.icontext.new(0:i64, 0:i64) : i64
  call $sva.icontext.setentry(%ic, @user_main, 0:i64)
  call $sva.iret(%ic, 0:i64)
  ret 0:i64
}
"#;
    let mut vm = vm_for(src, KernelKind::SvaLlvm);
    let exit = vm.call("start_kernel", &[]).unwrap();
    // parent adds 101, child (fork returns 0) adds 100 → 201.
    assert_eq!(exit, VmExit::Halted(201));
    assert!(vm.mem.live_spaces() >= 2, "fork created an address space");
}

#[test]
fn was_privileged_reports_mode() {
    let src = r#"
module "os"
func internal @sys_check(%x: i64) : i64 {
entry:
  %icp:i64 = call $sva.icontext.get() : i64
  %p:i32 = call $llva.was.privileged(%icp) : i32
  %r:i64 = cast zext %p to i64
  ret %r
}
func internal @user_main(%arg: i64) : i64 {
entry:
  %p:i64 = call $sva.syscall(30:i64, 0:i64) : i64
  call $sva.abort(%p)
  ret 0:i64
}
func public @start_kernel() : i64 {
entry:
  call $sva.register.syscall(30:i64, @sys_check)
  %ic:i64 = call $sva.icontext.new(0:i64, 0:i64) : i64
  call $sva.icontext.setentry(%ic, @user_main, 0:i64)
  call $sva.iret(%ic, 0:i64)
  ret 0:i64
}
"#;
    let mut vm = vm_for(src, KernelKind::SvaGcc);
    // Trapped from user mode: not privileged.
    assert_eq!(vm.call("start_kernel", &[]).unwrap(), VmExit::Halted(0));
}

#[test]
fn save_fp_is_lazy() {
    let src = r#"
module "m"
func public @f() : i64 {
entry:
  call $llva.save.fp(4096:i64, 0:i64)
  %t0:i64 = call $sva.get.timer() : i64
  call $llva.load.fp(4096:i64)
  call $llva.save.fp(4096:i64, 0:i64)
  %t1:i64 = call $sva.get.timer() : i64
  %d:i64 = sub %t1, %t0
  ret %d
}
"#;
    let mut vm = vm_for(src, KernelKind::Native);
    // The second save (after a load marked the FP state dirty) must cost
    // cycles; the delta includes it.
    match vm.call("f", &[]).unwrap() {
        VmExit::Returned(d) => assert!(d >= 64, "lazy FP save not charged: {d}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn mmu_rejects_mapping_reserved_frames() {
    // §3.4: the SVM mediates MMU configuration; mapping the SVM-reserved
    // (function-address) window is refused.
    let src = r#"
module "m"
func public @evil() : void {
entry:
  call $sva.mmu.map(16:i64, 2147483648:i64, 7:i64)
  ret
}
"#;
    let mut vm = vm_for(src, KernelKind::Native);
    let err = vm.call("evil", &[]).unwrap_err();
    assert!(matches!(err, VmError::Privilege { .. }), "{err}");
}

#[test]
fn hardware_interrupts_delivered_through_icontext() {
    // A registered interrupt handler runs when the VM raises the vector
    // mid-user-computation; the interrupted context resumes afterwards and
    // the computation's result is unaffected.
    let src = r#"
module "os"
global @ticks : i64 = zero

func internal @timer_irq(%vec: i64) : i64 {
entry:
  %t:i64 = load @ticks
  %t1:i64 = add %t, 1:i64
  store %t1, @ticks
  ret 0:i64
}

func internal @sys_ticks(%x: i64) : i64 {
entry:
  %t:i64 = load @ticks
  ret %t
}

func internal @user_main(%arg: i64) : i64 {
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, loop: %i1]
  %acc:i64 = phi i64 [entry: 0:i64, loop: %acc1]
  %acc1:i64 = add %acc, %i
  %i1:i64 = add %i, 1:i64
  %done:i1 = icmp uge %i1, 1000:i64
  condbr %done, out, loop
out:
  %t:i64 = call $sva.syscall(50:i64, 0:i64) : i64
  %t100:i64 = mul %t, 100000:i64
  %r:i64 = add %t100, %acc1
  call $sva.abort(%r)
  ret 0:i64
}

func public @start_kernel() : i64 {
entry:
  call $sva.register.interrupt(0:i64, @timer_irq)
  call $sva.register.syscall(50:i64, @sys_ticks)
  %ic:i64 = call $sva.icontext.new(0:i64, 0:i64) : i64
  call $sva.icontext.setentry(%ic, @user_main, 0:i64)
  call $sva.iret(%ic, 0:i64)
  ret 0:i64
}
"#;
    let mut vm = vm_for(src, KernelKind::SvaLlvm);
    for _ in 0..3 {
        vm.raise_interrupt(0);
    }
    // Also raise a vector nobody registered: it must be dropped silently.
    vm.raise_interrupt(9);
    let exit = vm.call("start_kernel", &[]).unwrap();
    // sum 0..999 = 499500; 3 ticks → 3*100000 + 499500.
    assert_eq!(exit, VmExit::Halted(3 * 100_000 + 499_500));
    assert_eq!(vm.stats().interrupts, 3);
}

// ---------------------------------------------------------------------------
// Optimizing tier (DESIGN.md §4.4): fusion + singleton elision.
// ---------------------------------------------------------------------------

const SAFE_LOOP_KERNEL: &str = r#"
module "k"
func public @kmalloc(%sz: i64) : i8* {
entry:
  %cur:i64 = load @brk
  %new:i64 = add %cur, %sz
  store %new, @brk
  %p:i8* = cast inttoptr %cur to i8*
  ret %p
}
func public @kfree(%p: i8*) : void {
entry:
  ret
}
global @brk : i64 = bytes x0000201000000000
allocator ordinary "kmalloc" alloc=@kmalloc dealloc=@kfree size=arg0

func public @fill(%n: i64) : i64 {
entry:
  %buf:i8* = call @kmalloc(64:i64)
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, loop: %i1]
  %slot:i8* = gep %buf [%i]
  store 65:i8, %slot
  %i1:i64 = add %i, 1:i64
  %done:i1 = icmp uge %i1, %n
  condbr %done, out, loop
out:
  %last:i8* = gep %buf [7:i64]
  %v:i8 = load %last
  %r:i64 = cast zext %v to i64
  ret %r
}
"#;

#[test]
fn opt_tier_fuses_and_preserves_behavior() {
    // In a checked kernel most gep results feed the inserted pchk calls
    // (multi-use, so gep pairs stay unfused); the loop's icmp+condbr pair
    // is still fusible. At opt_level 2 the run must produce the same
    // result, check volume and (cycle-masked) stats — with sites actually
    // fused and cycles strictly reduced.
    let run = |opt_level: u8| {
        let m = safe_module(SAFE_LOOP_KERNEL);
        let mut vm = Vm::new(
            m,
            VmConfig {
                kind: KernelKind::SvaSafe,
                opt_level,
                ..Default::default()
            },
        )
        .unwrap();
        let r = vm.call("fill", &[32]).unwrap();
        (r, vm.stats(), vm.pools.total_stats(), vm.fused_sites())
    };
    let (r0, s0, p0, f0) = run(0);
    let (r2, s2, p2, f2) = run(2);
    assert_eq!(f0, 0, "baseline tier must not fuse");
    assert!(f2 > 0, "optimizing tier fused nothing");
    assert_eq!(r0, r2);
    assert_eq!(s0.equivalence_key(), s2.equivalence_key());
    assert_eq!(p0.total_checks(), p2.total_checks());
    assert!(s2.fused_execs > 0, "no fused dispatches executed");
    assert!(
        s2.cycles < s0.cycles,
        "fusion saved no cycles: {} vs {}",
        s2.cycles,
        s0.cycles
    );
    // Exactly one dispatch cycle saved per fused dispatch.
    assert_eq!(s0.cycles - s2.cycles, s2.fused_execs);
}

#[test]
fn opt_tier_applies_to_all_kernel_kinds_that_run_flat() {
    for kind in [KernelKind::Native, KernelKind::SvaLlvm] {
        let base = vm_for(COLLATZ, kind);
        let m = parse_module(COLLATZ).unwrap();
        let mut opt = Vm::new(
            m,
            VmConfig {
                kind,
                opt_level: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut base = base;
        let r0 = base.call("collatz_len", &[27]).unwrap();
        let r2 = opt.call("collatz_len", &[27]).unwrap();
        assert_eq!(r0, r2, "{kind:?}");
        assert!(opt.fused_sites() > 0, "{kind:?}");
        assert_eq!(
            base.stats().equivalence_key(),
            opt.stats().equivalence_key(),
            "{kind:?}"
        );
        assert!(opt.stats().cycles < base.stats().cycles, "{kind:?}");
    }
}

const COLLATZ: &str = r#"
module "m"
func public @collatz_len(%n0: i64) : i64 {
entry:
  br loop
loop:
  %n:i64 = phi i64 [entry: %n0, odd: %n3, even: %half]
  %len:i64 = phi i64 [entry: 0:i64, odd: %len2, even: %len3]
  %is1:i1 = icmp eq %n, 1:i64
  condbr %is1, out, step
step:
  %bit:i64 = and %n, 1:i64
  %isodd:i1 = icmp eq %bit, 1:i64
  condbr %isodd, odd, even
odd:
  %t:i64 = mul %n, 3:i64
  %n3:i64 = add %t, 1:i64
  %len2:i64 = add %len, 1:i64
  br loop
even:
  %half:i64 = udiv %n, 2:i64
  %len3:i64 = add %len, 1:i64
  br loop
out:
  ret %len
}
"#;

#[test]
fn profile_gates_fusion_to_hot_functions() {
    use crate::opt::HotProfile;
    // opt_level 1 without a profile: nothing fuses. With a profile naming
    // the function: it fuses. With a profile naming something else: not.
    let mk = |opt_level: u8, profile: Option<HotProfile>| {
        let m = parse_module(COLLATZ).unwrap();
        let cfg = VmConfig {
            kind: KernelKind::SvaLlvm,
            opt_level,
            hot_profile: profile.map(std::sync::Arc::new),
            ..Default::default()
        };
        Vm::new(m, cfg).unwrap()
    };
    assert_eq!(mk(1, None).fused_sites(), 0);
    let mut hot = HotProfile::new();
    hot.insert("collatz_len");
    assert!(mk(1, Some(hot.clone())).fused_sites() > 0);
    let mut cold = HotProfile::new();
    cold.insert("some_other_fn");
    assert_eq!(mk(2, Some(cold)).fused_sites(), 0);
    // with_profile bumps opt_level 0 → 2.
    let m = parse_module(COLLATZ).unwrap();
    let vm = Vm::with_profile(
        m,
        VmConfig {
            kind: KernelKind::SvaLlvm,
            ..Default::default()
        },
        hot,
    )
    .unwrap();
    assert!(vm.fused_sites() > 0);
}

#[test]
fn singleton_elision_preserves_safe_kernel_behavior() {
    // Same workload with the singleton path on and off: identical
    // everything (the elision answers the same lookups, just cheaper in
    // host work — the virtual cycle model charges checks identically).
    let run = |singleton_path: bool| {
        let m = safe_module(SAFE_KERNEL);
        let mut vm = Vm::new(
            m,
            VmConfig {
                kind: KernelKind::SvaSafe,
                singleton_path,
                ..Default::default()
            },
        )
        .unwrap();
        let r = vm.call("overflow", &[10]).unwrap();
        (r, vm.stats(), vm.pools.total_stats())
    };
    let (r_on, s_on, p_on) = run(true);
    let (r_off, s_off, p_off) = run(false);
    assert_eq!(r_on, r_off);
    assert_eq!(s_on.cycles, s_off.cycles);
    assert_eq!(p_on.total_checks(), p_off.total_checks());
    assert_eq!(p_on.lookups(), p_off.lookups());
    // The elided run attributes lookups to the singleton layer; the other
    // run never does.
    assert_eq!(s_off.singleton_hits, 0);
    assert_eq!(
        s_on.singleton_hits + s_on.cache_hits + s_on.page_hits + s_on.tree_walks,
        p_on.lookups()
    );
}
