//! Multi-vCPU SMP machine (DESIGN.md §4.9).
//!
//! [`SmpMachine`] runs `VmConfig::vcpus` virtual CPUs, one host thread
//! each. The state split:
//!
//! * **Shared, read-only**: the translated code image (`Arc<CodeImage>`,
//!   translation and superinstruction fusion happen once).
//! * **Shared, epoch-published**: metapool object metadata lives in one
//!   [`SharedMetaPlane`]. Each vCPU owns a contiguous slot range inside
//!   the plane (its kernel instance's object namespace), but every vCPU
//!   reads through the same snapshot/epoch machinery: any registration
//!   or drop publishes a new epoch, which invalidates every vCPU's
//!   epoch-tagged MRU lines at the cost of a single `Acquire` load on
//!   their next lookup — cross-CPU invalidation with zero traffic.
//! * **Private**: memory image, thread state, recovery-domain stack,
//!   per-vCPU MRU/singleton caches, `CheckStats`, `VmStats`, console and
//!   trace sinks. [`Vm::fork_for_cpu`] deep-clones these, and the
//!   kernel-stack window is carved into per-CPU lanes.
//!
//! Work arrives as [`SmpJob`]s on per-vCPU run queues. An idle vCPU
//! first drains its own queue, then *steals* from its neighbours
//! (`cpu+1, cpu+2, …` round-robin, stealing from the cold end), and
//! finally parks on a condvar until the fleet drains. IRQs queued
//! before a run are routed by [`IrqAffinity`]: round-robin fan-out
//! (`Spread`), a fixed vCPU (`Pin`), or every vCPU (`Broadcast`).
//!
//! At halt the per-vCPU reports are merged **deterministically in
//! cpu-id order** and job results are returned in submission order.
//! With `vcpus == 1` no plane is created and no thread is spawned: the
//! single fork takes exactly the classic machine's code path, so its
//! `VmStats::equivalence_key` is byte-identical to the pre-SMP machine.
//!
//! Throughput is reported in *virtual time*: the machine-level elapsed
//! time of a run is the maximum virtual cycle count over vCPUs (they
//! run concurrently), while syscalls served is the sum — so
//! `syscalls_per_mcycle` scales with vCPU count as long as the shared
//! plane does not serialize the check path. Wall-clock time is recorded
//! too, but on a single-core host it measures host scheduling, not the
//! machine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sva_rt::{CheckStats, SharedMetaPlane};

use crate::vm::{IrqAffinity, Vm, VmError, VmExit, VmStats};

/// A per-job setup hook (see [`SmpJob::setup`]).
pub type JobSetup = Arc<dyn Fn(&mut Vm) + Send + Sync>;

/// One unit of work: a set of `u64` globals written into a fresh vCPU
/// fork, which is then booted. The kernel harness convention is two
/// globals, `boot_user_prog` / `boot_user_arg` (see
/// [`SmpJob::boot_user`]).
#[derive(Clone, Default)]
pub struct SmpJob {
    /// Label carried through to the [`JobResult`] (e.g. the program name).
    pub label: String,
    /// Globals written before boot, in order.
    pub globals: Vec<(String, u64)>,
    /// Per-job setup run on the fresh fork after its plane slot range is
    /// bound but before the globals are written — fault-injection
    /// campaigns arm a per-job plan and enable crash capture here.
    pub setup: Option<JobSetup>,
}

impl std::fmt::Debug for SmpJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmpJob")
            .field("label", &self.label)
            .field("globals", &self.globals)
            .field("setup", &self.setup.is_some())
            .finish()
    }
}

impl SmpJob {
    /// A job following the kernel harness boot protocol: boot with
    /// `prog_addr` as the init user program and `arg` as its argument.
    /// Resolve `prog_addr` with [`Vm::func_address`] on the template.
    pub fn boot_user(label: impl Into<String>, prog_addr: u64, arg: u64) -> SmpJob {
        SmpJob {
            label: label.into(),
            globals: vec![
                ("boot_user_prog".to_string(), prog_addr),
                ("boot_user_arg".to_string(), arg),
            ],
            setup: None,
        }
    }

    /// Attaches a per-job setup hook (see the `setup` field).
    pub fn with_setup(mut self, setup: impl Fn(&mut Vm) + Send + Sync + 'static) -> SmpJob {
        self.setup = Some(Arc::new(setup));
        self
    }
}

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// The job's label.
    pub label: String,
    /// The vCPU that executed it (varies run-to-run under stealing).
    pub cpu: u32,
    /// How the boot ended.
    pub exit: Result<VmExit, VmError>,
    /// The executing fork's stats.
    pub stats: VmStats,
    /// The executing fork's cumulative check counters.
    pub checks: CheckStats,
    /// Console bytes the job produced.
    pub console: Vec<u8>,
}

/// Per-vCPU aggregate, merged at halt.
#[derive(Clone, Debug, Default)]
pub struct CpuReport {
    /// The vCPU id.
    pub cpu: u32,
    /// Jobs this vCPU executed.
    pub jobs: u32,
    /// Jobs claimed from another vCPU's queue.
    pub steals: u64,
    /// Times this vCPU parked with the fleet still draining.
    pub parks: u64,
    /// IRQ vectors routed to this vCPU's jobs.
    pub irqs_routed: u64,
    /// Summed [`VmStats`] over this vCPU's jobs.
    pub stats: VmStats,
    /// Summed check counters over this vCPU's jobs.
    pub checks: CheckStats,
}

/// The merged outcome of one [`SmpMachine::run`].
#[derive(Clone, Debug)]
pub struct SmpReport {
    /// vCPU count the run used.
    pub vcpus: u32,
    /// Per-vCPU reports, cpu-id order.
    pub cpus: Vec<CpuReport>,
    /// Per-job results, submission order.
    pub jobs: Vec<JobResult>,
    /// All vCPU stats folded in cpu-id order.
    pub merged: VmStats,
    /// Total syscalls served (`merged.traps`).
    pub total_syscalls: u64,
    /// Virtual elapsed time of the run: max cycles over vCPUs.
    pub max_cpu_cycles: u64,
    /// Host wall-clock time of the run (scheduling noise included).
    pub wall: Duration,
    /// Plane epoch after the run (0 with no plane).
    pub final_epoch: u64,
    /// Superseded plane snapshots still pinned at halt (deferred
    /// reclamation backlog; 0 once every vCPU quiesced).
    pub retired_snapshots: usize,
}

impl SmpReport {
    /// Deterministic throughput: syscalls per million virtual cycles of
    /// machine-level elapsed time.
    pub fn syscalls_per_mcycle(&self) -> f64 {
        if self.max_cpu_cycles == 0 {
            return 0.0;
        }
        self.total_syscalls as f64 / (self.max_cpu_cycles as f64 / 1e6)
    }

    /// Every job that did not exit cleanly with code 0.
    pub fn failures(&self) -> Vec<&JobResult> {
        self.jobs
            .iter()
            .filter(|j| !matches!(j.exit, Ok(VmExit::Halted(0) | VmExit::Returned(0))))
            .collect()
    }
}

/// Shared run-loop state; lives on the stack of [`SmpMachine::run`].
struct RunState {
    jobs: Vec<SmpJob>,
    /// Per-vCPU run queues of indices into `jobs`.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Jobs enqueued but not yet claimed by any vCPU.
    unclaimed: AtomicUsize,
    /// Jobs fully executed.
    finished: AtomicUsize,
    total: usize,
    /// Set when `finished == total`; parked vCPUs wait on it.
    done: Mutex<bool>,
    cv: Condvar,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned queue mutex means a sibling vCPU panicked; the queue
    // itself (a deque of indices) is always coherent — recover it.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The multi-vCPU machine. See the module docs for the state split.
pub struct SmpMachine {
    /// The pristine machine forks are cut from. Never run.
    template: Vm,
    vcpus: u32,
    affinity: IrqAffinity,
    /// The shared metadata plane (`None` when `vcpus == 1`).
    plane: Option<Arc<SharedMetaPlane>>,
    /// Plane slot-range base per vCPU (`cpu * pools_per_cpu`).
    slot_base: Vec<u32>,
    /// Per-pool live ranges of the pristine template — what each slot
    /// range is reset to before a job boots.
    baseline: Vec<Vec<(u64, u64)>>,
    /// Round-robin cursor for `IrqAffinity::Spread`.
    irq_next: u32,
    /// Vectors queued per vCPU, delivered to its next job.
    irq_pending: Vec<VecDeque<i64>>,
}

impl SmpMachine {
    /// Builds the machine around a pristine (never-run) template VM.
    /// `cfg.vcpus` and `cfg.irq_affinity` on the template's config choose
    /// the geometry. At `vcpus >= 2` the template's pool table is
    /// published into a fresh shared plane once per vCPU; at `vcpus == 1`
    /// no plane exists and jobs take the classic single-machine path.
    pub fn new(template: Vm) -> SmpMachine {
        let vcpus = template.cfg.vcpus.max(1);
        let affinity = template.cfg.irq_affinity;
        let baseline = template.pools.live_ranges_by_pool();
        let (plane, slot_base) = if vcpus >= 2 {
            let plane = Arc::new(SharedMetaPlane::new());
            let bases = (0..vcpus)
                .map(|_| template.pools.publish_to_plane(&plane))
                .collect();
            (Some(plane), bases)
        } else {
            (None, vec![0])
        };
        SmpMachine {
            template,
            vcpus,
            affinity,
            plane,
            slot_base,
            baseline,
            irq_next: 0,
            irq_pending: (0..vcpus).map(|_| VecDeque::new()).collect(),
        }
    }

    /// vCPU count.
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// The shared metadata plane (`None` at `vcpus == 1`).
    pub fn plane(&self) -> Option<&Arc<SharedMetaPlane>> {
        self.plane.as_ref()
    }

    /// The pristine template machine.
    pub fn template(&self) -> &Vm {
        &self.template
    }

    /// Queues an IRQ vector, routed by the configured [`IrqAffinity`]:
    /// `Spread` round-robins across vCPUs, `Pin(c)` targets vCPU `c`
    /// (clamped), `Broadcast` queues on every vCPU. Pending vectors are
    /// delivered to the next job the target vCPU runs.
    pub fn queue_irq(&mut self, vector: i64) {
        let n = self.vcpus as usize;
        match self.affinity {
            IrqAffinity::Broadcast => {
                for q in &mut self.irq_pending {
                    q.push_back(vector);
                }
            }
            IrqAffinity::Pin(c) => self.irq_pending[(c as usize).min(n - 1)].push_back(vector),
            IrqAffinity::Spread => {
                let c = self.irq_next as usize % n;
                self.irq_next = self.irq_next.wrapping_add(1);
                self.irq_pending[c].push_back(vector);
            }
        }
    }

    /// Runs a batch of jobs to completion across all vCPUs and merges
    /// the result deterministically (cpu-id order for stats, submission
    /// order for job results).
    pub fn run(&mut self, jobs: Vec<SmpJob>) -> SmpReport {
        let n = self.vcpus as usize;
        let total = jobs.len();
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..total {
            relock(&queues[i % n]).push_back(i);
        }
        let state = RunState {
            jobs,
            queues,
            unclaimed: AtomicUsize::new(total),
            finished: AtomicUsize::new(0),
            total,
            done: Mutex::new(total == 0),
            cv: Condvar::new(),
        };
        let mut irq_plans = std::mem::replace(
            &mut self.irq_pending,
            (0..n).map(|_| VecDeque::new()).collect(),
        );
        let this: &SmpMachine = self;
        let start = Instant::now();
        let per_cpu: Vec<(CpuReport, Vec<JobResult>)> = if n == 1 {
            // Single vCPU: no threads, no plane — the classic machine.
            vec![this.vcpu_loop(0, &state, irq_plans.pop().unwrap_or_default())]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = irq_plans
                    .drain(..)
                    .enumerate()
                    .map(|(cpu, irqs)| {
                        let state = &state;
                        s.spawn(move || this.vcpu_loop(cpu as u32, state, irqs))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("vCPU thread panicked"))
                    .collect()
            })
        };
        let wall = start.elapsed();
        let mut cpus = Vec::with_capacity(n);
        let mut job_results = Vec::with_capacity(total);
        for (rep, mut rs) in per_cpu {
            cpus.push(rep);
            job_results.append(&mut rs);
        }
        cpus.sort_by_key(|c| c.cpu);
        job_results.sort_by_key(|r| r.job);
        let mut merged = VmStats::default();
        for c in &cpus {
            merged.fold(&c.stats);
        }
        let max_cpu_cycles = cpus.iter().map(|c| c.stats.cycles).max().unwrap_or(0);
        let (final_epoch, retired_snapshots) = match &self.plane {
            Some(p) => (p.epoch(), p.retired_live()),
            None => (0, 0),
        };
        SmpReport {
            vcpus: self.vcpus,
            cpus,
            total_syscalls: merged.traps,
            merged,
            jobs: job_results,
            max_cpu_cycles,
            wall,
            final_epoch,
            retired_snapshots,
        }
    }

    /// One vCPU's scheduler loop: own queue, then steal, then park.
    fn vcpu_loop(
        &self,
        cpu: u32,
        state: &RunState,
        mut irqs: VecDeque<i64>,
    ) -> (CpuReport, Vec<JobResult>) {
        let n = self.vcpus as usize;
        let mut rep = CpuReport {
            cpu,
            ..CpuReport::default()
        };
        let mut results = Vec::new();
        loop {
            let mut claimed = {
                let mut q = relock(&state.queues[cpu as usize]);
                let j = q.pop_front();
                if j.is_some() {
                    state.unclaimed.fetch_sub(1, Ordering::AcqRel);
                }
                j
            };
            if claimed.is_none() {
                for k in 1..n {
                    let mut q = relock(&state.queues[(cpu as usize + k) % n]);
                    // Steal from the cold end: the owner keeps locality
                    // on its front.
                    if let Some(j) = q.pop_back() {
                        state.unclaimed.fetch_sub(1, Ordering::AcqRel);
                        rep.steals += 1;
                        claimed = Some(j);
                        break;
                    }
                }
            }
            let Some(ji) = claimed else {
                if state.unclaimed.load(Ordering::Acquire) == 0 {
                    // Nothing left to claim, ever: park until the last
                    // in-flight job unparks the fleet, then retire.
                    let mut done = state.done.lock().unwrap_or_else(|e| e.into_inner());
                    if !*done {
                        rep.parks += 1;
                        while !*done {
                            done = state.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                    break;
                }
                // A sibling is mid-claim; its decrement lands shortly.
                std::thread::yield_now();
                continue;
            };
            let vectors: Vec<i64> = irqs.drain(..).collect();
            rep.irqs_routed += vectors.len() as u64;
            let r = self.run_job(cpu, ji, &state.jobs[ji], &vectors);
            rep.jobs += 1;
            rep.stats.fold(&r.stats);
            rep.checks.merge(&r.checks);
            results.push(r);
            if state.finished.fetch_add(1, Ordering::AcqRel) + 1 == state.total {
                *state.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
                state.cv.notify_all();
            }
        }
        (rep, results)
    }

    /// Executes one job on `cpu`: fork the template, reset and bind the
    /// vCPU's plane slot range, write the job's globals, queue its IRQ
    /// vectors, boot.
    fn run_job(&self, cpu: u32, ji: usize, job: &SmpJob, irqs: &[i64]) -> JobResult {
        let mut vm = self.template.fork_for_cpu(cpu);
        if let Some(plane) = &self.plane {
            let base = self.slot_base[cpu as usize];
            for (i, ranges) in self.baseline.iter().enumerate() {
                let slot = base + i as u32;
                plane.clear_pool(slot);
                plane
                    .adopt(slot, ranges)
                    .expect("baseline ranges are disjoint");
            }
            vm.pools.bind_shared_at(plane, base);
        }
        if let Some(setup) = &job.setup {
            setup(&mut vm);
        }
        let mut global_err = None;
        for (name, v) in &job.globals {
            if let Err(e) = vm.write_global_u64(name, *v) {
                global_err = Some(e);
                break;
            }
        }
        for &v in irqs {
            vm.raise_interrupt(v);
        }
        let exit = match global_err {
            Some(e) => Err(e),
            None => vm.boot(),
        };
        JobResult {
            job: ji,
            label: job.label.clone(),
            cpu,
            exit,
            stats: vm.stats(),
            checks: vm.pools.total_stats(),
            console: std::mem::take(&mut vm.console),
        }
    }
}

// The worker threads borrow the machine and the run state across the
// scope; this pins down that every piece of the template VM is
// thread-shareable.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<SmpMachine>();
    assert_sync::<RunState>();
};
