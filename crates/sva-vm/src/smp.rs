//! Multi-vCPU SMP machine (DESIGN.md §4.9).
//!
//! [`SmpMachine`] runs `VmConfig::vcpus` virtual CPUs, one host thread
//! each. The state split:
//!
//! * **Shared, read-only**: the translated code image (`Arc<CodeImage>`,
//!   translation and superinstruction fusion happen once).
//! * **Shared, epoch-published**: metapool object metadata lives in one
//!   [`SharedMetaPlane`]. Each vCPU owns a contiguous slot range inside
//!   the plane (its kernel instance's object namespace), but every vCPU
//!   reads through the same snapshot/epoch machinery: any registration
//!   or drop publishes a new epoch, which invalidates every vCPU's
//!   epoch-tagged MRU lines at the cost of a single `Acquire` load on
//!   their next lookup — cross-CPU invalidation with zero traffic.
//! * **Private**: memory image, thread state, recovery-domain stack,
//!   per-vCPU MRU/singleton caches, `CheckStats`, `VmStats`, console and
//!   trace sinks. [`Vm::fork_for_cpu`] deep-clones these, and the
//!   kernel-stack window is carved into per-CPU lanes.
//!
//! Work arrives as [`SmpJob`]s on per-vCPU run queues. An idle vCPU
//! first drains its own queue, then *steals* from its neighbours
//! (`cpu+1, cpu+2, …` round-robin, stealing from the cold end), and
//! finally parks on a condvar until the fleet drains. IRQs queued
//! before a run are routed by [`IrqAffinity`]: round-robin fan-out
//! (`Spread`), a fixed vCPU (`Pin`), or every vCPU (`Broadcast`).
//!
//! At halt the per-vCPU reports are merged **deterministically in
//! cpu-id order** and job results are returned in submission order.
//! With `vcpus == 1` no plane is created and no thread is spawned: the
//! single fork takes exactly the classic machine's code path, so its
//! `VmStats::equivalence_key` is byte-identical to the pre-SMP machine.
//!
//! Throughput is reported in *virtual time*: the machine-level elapsed
//! time of a run is the maximum virtual cycle count over vCPUs (they
//! run concurrently), while syscalls served is the sum — so
//! `syscalls_per_mcycle` scales with vCPU count as long as the shared
//! plane does not serialize the check path. Wall-clock time is recorded
//! too, but on a single-core host it measures host scheduling, not the
//! machine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sva_rt::{CheckStats, SharedMetaPlane};

use crate::migrate::MigrateError;
use crate::snapshot::{fnv64, SnapshotError};
use crate::vm::{IrqAffinity, Vm, VmError, VmExit, VmStats};

/// A per-job setup hook (see [`SmpJob::setup`]).
pub type JobSetup = Arc<dyn Fn(&mut Vm) + Send + Sync>;

/// One unit of work: a set of `u64` globals written into a fresh vCPU
/// fork, which is then booted. The kernel harness convention is two
/// globals, `boot_user_prog` / `boot_user_arg` (see
/// [`SmpJob::boot_user`]).
#[derive(Clone, Default)]
pub struct SmpJob {
    /// Label carried through to the [`JobResult`] (e.g. the program name).
    pub label: String,
    /// Globals written before boot, in order.
    pub globals: Vec<(String, u64)>,
    /// Per-job setup run on the fresh fork after its plane slot range is
    /// bound but before the globals are written — fault-injection
    /// campaigns arm a per-job plan and enable crash capture here.
    pub setup: Option<JobSetup>,
}

impl std::fmt::Debug for SmpJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmpJob")
            .field("label", &self.label)
            .field("globals", &self.globals)
            .field("setup", &self.setup.is_some())
            .finish()
    }
}

impl SmpJob {
    /// A job following the kernel harness boot protocol: boot with
    /// `prog_addr` as the init user program and `arg` as its argument.
    /// Resolve `prog_addr` with [`Vm::func_address`] on the template.
    pub fn boot_user(label: impl Into<String>, prog_addr: u64, arg: u64) -> SmpJob {
        SmpJob {
            label: label.into(),
            globals: vec![
                ("boot_user_prog".to_string(), prog_addr),
                ("boot_user_arg".to_string(), arg),
            ],
            setup: None,
        }
    }

    /// Attaches a per-job setup hook (see the `setup` field).
    pub fn with_setup(mut self, setup: impl Fn(&mut Vm) + Send + Sync + 'static) -> SmpJob {
        self.setup = Some(Arc::new(setup));
        self
    }
}

/// Outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// The job's label.
    pub label: String,
    /// The vCPU that executed it (varies run-to-run under stealing).
    pub cpu: u32,
    /// How the boot ended.
    pub exit: Result<VmExit, VmError>,
    /// The executing fork's stats.
    pub stats: VmStats,
    /// The executing fork's cumulative check counters.
    pub checks: CheckStats,
    /// Console bytes the job produced.
    pub console: Vec<u8>,
}

/// Per-vCPU aggregate, merged at halt.
#[derive(Clone, Debug, Default)]
pub struct CpuReport {
    /// The vCPU id.
    pub cpu: u32,
    /// Jobs this vCPU executed.
    pub jobs: u32,
    /// Jobs claimed from another vCPU's queue.
    pub steals: u64,
    /// Times this vCPU parked with the fleet still draining.
    pub parks: u64,
    /// IRQ vectors routed to this vCPU's jobs.
    pub irqs_routed: u64,
    /// Summed [`VmStats`] over this vCPU's jobs.
    pub stats: VmStats,
    /// Summed check counters over this vCPU's jobs.
    pub checks: CheckStats,
}

/// The merged outcome of one [`SmpMachine::run`].
#[derive(Clone, Debug)]
pub struct SmpReport {
    /// vCPU count the run used.
    pub vcpus: u32,
    /// Per-vCPU reports, cpu-id order.
    pub cpus: Vec<CpuReport>,
    /// Per-job results, submission order.
    pub jobs: Vec<JobResult>,
    /// All vCPU stats folded in cpu-id order.
    pub merged: VmStats,
    /// Total syscalls served (`merged.traps`).
    pub total_syscalls: u64,
    /// Virtual elapsed time of the run: max cycles over vCPUs.
    pub max_cpu_cycles: u64,
    /// Host wall-clock time of the run (scheduling noise included).
    pub wall: Duration,
    /// Plane epoch after the run (0 with no plane).
    pub final_epoch: u64,
    /// Superseded plane snapshots still pinned at halt (deferred
    /// reclamation backlog; 0 once every vCPU quiesced).
    pub retired_snapshots: usize,
}

impl SmpReport {
    /// Deterministic throughput: syscalls per million virtual cycles of
    /// machine-level elapsed time.
    pub fn syscalls_per_mcycle(&self) -> f64 {
        if self.max_cpu_cycles == 0 {
            return 0.0;
        }
        self.total_syscalls as f64 / (self.max_cpu_cycles as f64 / 1e6)
    }

    /// Every job that did not exit cleanly with code 0.
    pub fn failures(&self) -> Vec<&JobResult> {
        self.jobs
            .iter()
            .filter(|j| !matches!(j.exit, Ok(VmExit::Halted(0) | VmExit::Returned(0))))
            .collect()
    }
}

/// Shared run-loop state; lives on the stack of [`SmpMachine::run`].
struct RunState {
    jobs: Vec<SmpJob>,
    /// Per-vCPU run queues of indices into `jobs`.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Jobs enqueued but not yet claimed by any vCPU.
    unclaimed: AtomicUsize,
    /// Jobs fully executed.
    finished: AtomicUsize,
    total: usize,
    /// Set when `finished == total`; parked vCPUs wait on it.
    done: Mutex<bool>,
    cv: Condvar,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned queue mutex means a sibling vCPU panicked; the queue
    // itself (a deque of indices) is always coherent — recover it.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The multi-vCPU machine. See the module docs for the state split.
pub struct SmpMachine {
    /// The pristine machine forks are cut from. Never run.
    template: Vm,
    vcpus: u32,
    affinity: IrqAffinity,
    /// The shared metadata plane (`None` when `vcpus == 1`).
    plane: Option<Arc<SharedMetaPlane>>,
    /// Plane slot-range base per vCPU (`cpu * pools_per_cpu`).
    slot_base: Vec<u32>,
    /// Per-pool live ranges of the pristine template — what each slot
    /// range is reset to before a job boots.
    baseline: Vec<Vec<(u64, u64)>>,
    /// Round-robin cursor for `IrqAffinity::Spread`.
    irq_next: u32,
    /// Vectors queued per vCPU, delivered to its next job.
    irq_pending: Vec<VecDeque<i64>>,
}

impl SmpMachine {
    /// Builds the machine around a pristine (never-run) template VM.
    /// `cfg.vcpus` and `cfg.irq_affinity` on the template's config choose
    /// the geometry. At `vcpus >= 2` the template's pool table is
    /// published into a fresh shared plane once per vCPU; at `vcpus == 1`
    /// no plane exists and jobs take the classic single-machine path.
    pub fn new(template: Vm) -> SmpMachine {
        let vcpus = template.cfg.vcpus.max(1);
        let affinity = template.cfg.irq_affinity;
        let baseline = template.pools.live_ranges_by_pool();
        let (plane, slot_base) = if vcpus >= 2 {
            let plane = Arc::new(SharedMetaPlane::new());
            let bases = (0..vcpus)
                .map(|_| template.pools.publish_to_plane(&plane))
                .collect();
            (Some(plane), bases)
        } else {
            (None, vec![0])
        };
        SmpMachine {
            template,
            vcpus,
            affinity,
            plane,
            slot_base,
            baseline,
            irq_next: 0,
            irq_pending: (0..vcpus).map(|_| VecDeque::new()).collect(),
        }
    }

    /// vCPU count.
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// The shared metadata plane (`None` at `vcpus == 1`).
    pub fn plane(&self) -> Option<&Arc<SharedMetaPlane>> {
        self.plane.as_ref()
    }

    /// The pristine template machine.
    pub fn template(&self) -> &Vm {
        &self.template
    }

    /// Queues an IRQ vector, routed by the configured [`IrqAffinity`]:
    /// `Spread` round-robins across vCPUs, `Pin(c)` targets vCPU `c`
    /// (clamped), `Broadcast` queues on every vCPU. Pending vectors are
    /// delivered to the next job the target vCPU runs.
    pub fn queue_irq(&mut self, vector: i64) {
        let n = self.vcpus as usize;
        match self.affinity {
            IrqAffinity::Broadcast => {
                for q in &mut self.irq_pending {
                    q.push_back(vector);
                }
            }
            IrqAffinity::Pin(c) => self.irq_pending[(c as usize).min(n - 1)].push_back(vector),
            IrqAffinity::Spread => {
                let c = self.irq_next as usize % n;
                self.irq_next = self.irq_next.wrapping_add(1);
                self.irq_pending[c].push_back(vector);
            }
        }
    }

    /// Runs a batch of jobs to completion across all vCPUs and merges
    /// the result deterministically (cpu-id order for stats, submission
    /// order for job results).
    pub fn run(&mut self, jobs: Vec<SmpJob>) -> SmpReport {
        let n = self.vcpus as usize;
        let total = jobs.len();
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..total {
            relock(&queues[i % n]).push_back(i);
        }
        let state = RunState {
            jobs,
            queues,
            unclaimed: AtomicUsize::new(total),
            finished: AtomicUsize::new(0),
            total,
            done: Mutex::new(total == 0),
            cv: Condvar::new(),
        };
        let mut irq_plans = std::mem::replace(
            &mut self.irq_pending,
            (0..n).map(|_| VecDeque::new()).collect(),
        );
        let this: &SmpMachine = self;
        let start = Instant::now();
        let per_cpu: Vec<(CpuReport, Vec<JobResult>)> = if n == 1 {
            // Single vCPU: no threads, no plane — the classic machine.
            vec![this.vcpu_loop(0, &state, irq_plans.pop().unwrap_or_default())]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = irq_plans
                    .drain(..)
                    .enumerate()
                    .map(|(cpu, irqs)| {
                        let state = &state;
                        s.spawn(move || this.vcpu_loop(cpu as u32, state, irqs))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("vCPU thread panicked"))
                    .collect()
            })
        };
        let wall = start.elapsed();
        let mut cpus = Vec::with_capacity(n);
        let mut job_results = Vec::with_capacity(total);
        for (rep, mut rs) in per_cpu {
            cpus.push(rep);
            job_results.append(&mut rs);
        }
        cpus.sort_by_key(|c| c.cpu);
        job_results.sort_by_key(|r| r.job);
        let mut merged = VmStats::default();
        for c in &cpus {
            merged.fold(&c.stats);
        }
        let max_cpu_cycles = cpus.iter().map(|c| c.stats.cycles).max().unwrap_or(0);
        let (final_epoch, retired_snapshots) = match &self.plane {
            Some(p) => (p.epoch(), p.retired_live()),
            None => (0, 0),
        };
        SmpReport {
            vcpus: self.vcpus,
            cpus,
            total_syscalls: merged.traps,
            merged,
            jobs: job_results,
            max_cpu_cycles,
            wall,
            final_epoch,
            retired_snapshots,
        }
    }

    /// One vCPU's scheduler loop: own queue, then steal, then park.
    fn vcpu_loop(
        &self,
        cpu: u32,
        state: &RunState,
        mut irqs: VecDeque<i64>,
    ) -> (CpuReport, Vec<JobResult>) {
        let n = self.vcpus as usize;
        let mut rep = CpuReport {
            cpu,
            ..CpuReport::default()
        };
        let mut results = Vec::new();
        loop {
            let mut claimed = {
                let mut q = relock(&state.queues[cpu as usize]);
                let j = q.pop_front();
                if j.is_some() {
                    state.unclaimed.fetch_sub(1, Ordering::AcqRel);
                }
                j
            };
            if claimed.is_none() {
                for k in 1..n {
                    let mut q = relock(&state.queues[(cpu as usize + k) % n]);
                    // Steal from the cold end: the owner keeps locality
                    // on its front.
                    if let Some(j) = q.pop_back() {
                        state.unclaimed.fetch_sub(1, Ordering::AcqRel);
                        rep.steals += 1;
                        claimed = Some(j);
                        break;
                    }
                }
            }
            let Some(ji) = claimed else {
                if state.unclaimed.load(Ordering::Acquire) == 0 {
                    // Nothing left to claim, ever: park until the last
                    // in-flight job unparks the fleet, then retire.
                    let mut done = state.done.lock().unwrap_or_else(|e| e.into_inner());
                    if !*done {
                        rep.parks += 1;
                        while !*done {
                            done = state.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                    break;
                }
                // A sibling is mid-claim; its decrement lands shortly.
                std::thread::yield_now();
                continue;
            };
            let vectors: Vec<i64> = irqs.drain(..).collect();
            rep.irqs_routed += vectors.len() as u64;
            let r = self.run_job(cpu, ji, &state.jobs[ji], &vectors);
            rep.jobs += 1;
            rep.stats.fold(&r.stats);
            rep.checks.merge(&r.checks);
            results.push(r);
            if state.finished.fetch_add(1, Ordering::AcqRel) + 1 == state.total {
                *state.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
                state.cv.notify_all();
            }
        }
        (rep, results)
    }

    /// Forks the template for `cpu`, resets and binds the vCPU's plane
    /// slot range, runs the job's setup hook, writes its globals and
    /// queues its IRQ vectors — everything up to (but excluding) boot.
    fn prepare_fork(&self, cpu: u32, job: &SmpJob, irqs: &[i64]) -> (Vm, Option<VmError>) {
        let mut vm = self.template.fork_for_cpu(cpu);
        if let Some(plane) = &self.plane {
            let base = self.slot_base[cpu as usize];
            for (i, ranges) in self.baseline.iter().enumerate() {
                let slot = base + i as u32;
                plane.clear_pool(slot);
                plane
                    .adopt(slot, ranges)
                    .expect("baseline ranges are disjoint");
            }
            vm.pools.bind_shared_at(plane, base);
        }
        if let Some(setup) = &job.setup {
            setup(&mut vm);
        }
        let mut global_err = None;
        for (name, v) in &job.globals {
            if let Err(e) = vm.write_global_u64(name, *v) {
                global_err = Some(e);
                break;
            }
        }
        for &v in irqs {
            vm.raise_interrupt(v);
        }
        (vm, global_err)
    }

    /// Executes one job on `cpu`: fork the template, reset and bind the
    /// vCPU's plane slot range, write the job's globals, queue its IRQ
    /// vectors, boot.
    fn run_job(&self, cpu: u32, ji: usize, job: &SmpJob, irqs: &[i64]) -> JobResult {
        let (mut vm, global_err) = self.prepare_fork(cpu, job, irqs);
        let exit = match global_err {
            Some(e) => Err(e),
            None => vm.boot(),
        };
        JobResult {
            job: ji,
            label: job.label.clone(),
            cpu,
            exit,
            stats: vm.stats(),
            checks: vm.pools.total_stats(),
            console: std::mem::take(&mut vm.console),
        }
    }

    /// Runs one **pinned** job per vCPU (`jobs[i]` on vCPU `i`, no
    /// stealing) and parks every vCPU at its next safe point after
    /// `boundary` instruction boundaries, capturing a coordinated
    /// multi-vCPU image (DESIGN.md §4.10).
    ///
    /// Each vCPU arms its fork's snapshot latch with a sink that blocks
    /// on a fleet-wide barrier: when the latch fires at the safe point
    /// the vCPU records its member image and *parks inside the
    /// instruction loop* until every sibling has reached its own safe
    /// point — the set of member images is therefore a consistent cut
    /// (no member has executed past its capture point while another's
    /// image was still forming). A job that reaches terminal state
    /// before its boundary contributes its terminal state as the member
    /// image and parks at the barrier from the outside. After the
    /// barrier releases, every vCPU runs its job on to terminal state,
    /// so the returned [`SmpReport`] is a complete run — the quiesce is
    /// a pause, not a stop.
    ///
    /// At `vcpus == 1` the single member takes exactly the classic
    /// machine's `request_snapshot_at` path, so the member image is
    /// byte-identical to a solo mid-flight snapshot at the same
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if `jobs.len() != vcpus` — quiesce is a whole-machine
    /// protocol; every vCPU must participate.
    pub fn quiesce(&mut self, jobs: Vec<SmpJob>, boundary: u64) -> QuiesceOutcome {
        let n = self.vcpus as usize;
        assert_eq!(
            jobs.len(),
            n,
            "quiesce needs exactly one pinned job per vCPU"
        );
        let mut irq_plans = std::mem::replace(
            &mut self.irq_pending,
            (0..n).map(|_| VecDeque::new()).collect(),
        );
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let slots: Vec<Arc<Mutex<Option<Vec<u8>>>>> =
            (0..n).map(|_| Arc::new(Mutex::new(None))).collect();
        let arrivals: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
        let this: &SmpMachine = self;
        let start = Instant::now();
        let per_cpu: Vec<(CpuReport, Vec<JobResult>)> = if n == 1 {
            let r = this.quiesce_job(
                0,
                &jobs[0],
                &irq_plans
                    .pop()
                    .unwrap_or_default()
                    .drain(..)
                    .collect::<Vec<_>>(),
                boundary,
                &barrier,
                &slots[0],
                &arrivals,
            );
            vec![(cpu_report_of(&r), vec![r])]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = irq_plans
                    .drain(..)
                    .enumerate()
                    .map(|(cpu, irqs)| {
                        let (barrier, slot, arrivals, jobs) =
                            (&barrier, &slots[cpu], &arrivals, &jobs);
                        s.spawn(move || {
                            let vectors: Vec<i64> = irqs.into_iter().collect();
                            let r = this.quiesce_job(
                                cpu as u32, &jobs[cpu], &vectors, boundary, barrier, slot, arrivals,
                            );
                            (cpu_report_of(&r), vec![r])
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("vCPU thread panicked"))
                    .collect()
            })
        };
        let wall = start.elapsed();
        let members: Vec<Vec<u8>> = slots
            .iter()
            .map(|s| {
                relock(s)
                    .take()
                    .expect("every vCPU filled its member slot before the barrier")
            })
            .collect();
        let park_spread = {
            let a = relock(&arrivals);
            match (a.iter().min(), a.iter().max()) {
                (Some(&first), Some(&last)) => last.duration_since(first),
                _ => Duration::ZERO,
            }
        };
        QuiesceOutcome {
            image: encode_quiesce(&members),
            report: self.merge_report(per_cpu, wall),
            park_spread,
        }
    }

    /// One vCPU's half of the quiesce protocol; see [`Self::quiesce`].
    #[allow(clippy::too_many_arguments)]
    fn quiesce_job(
        &self,
        cpu: u32,
        job: &SmpJob,
        irqs: &[i64],
        boundary: u64,
        barrier: &Arc<std::sync::Barrier>,
        slot: &Arc<Mutex<Option<Vec<u8>>>>,
        arrivals: &Arc<Mutex<Vec<Instant>>>,
    ) -> JobResult {
        let (mut vm, global_err) = self.prepare_fork(cpu, job, irqs);
        vm.request_snapshot_at(boundary);
        let sink = {
            let (barrier, slot, arrivals) =
                (Arc::clone(barrier), Arc::clone(slot), Arc::clone(arrivals));
            move |img: Vec<u8>| {
                relock(&arrivals).push(Instant::now());
                *relock(&slot) = Some(img);
                barrier.wait();
            }
        };
        vm.set_snapshot_sink(Arc::new(sink));
        let exit = match global_err {
            Some(e) => Err(e),
            None => vm.boot(),
        };
        if relock(slot).is_none() {
            // Terminal before the boundary: this vCPU's contribution to
            // the cut is its terminal state; park from the outside so
            // the siblings' barrier still fills.
            relock(arrivals).push(Instant::now());
            *relock(slot) = Some(vm.snapshot_midflight());
            barrier.wait();
        }
        JobResult {
            job: cpu as usize,
            label: job.label.clone(),
            cpu,
            exit,
            stats: vm.stats(),
            checks: vm.pools.total_stats(),
            console: std::mem::take(&mut vm.console),
        }
    }

    /// Restores a coordinated image captured by [`Self::quiesce`] and
    /// runs every member on to terminal state, in cpu-id order. Member
    /// images go through the migration path ([`Vm::restore_migrated`]),
    /// so a coordinated image survives format-version bumps and
    /// compatible rebuilds like any other snapshot. The machine's vCPU
    /// count must match the image's.
    pub fn resume_quiesced(&mut self, image: &[u8]) -> Result<SmpReport, MigrateError> {
        let members = decode_quiesce(image)?;
        if members.len() != self.vcpus as usize {
            return Err(MigrateError::Image(SnapshotError::Malformed(format!(
                "coordinated image has {} members, machine has {} vCPUs",
                members.len(),
                self.vcpus
            ))));
        }
        let start = Instant::now();
        let mut per_cpu = Vec::with_capacity(members.len());
        for (cpu, member) in members.iter().enumerate() {
            let mut vm = self.template.fork_for_cpu(cpu as u32);
            // Restore into the unbound fork first (pool images repopulate
            // the private registries), then publish the *restored* ranges
            // into this vCPU's plane slots and bind — the same bring-up
            // order `MetaPoolTable::publish_to_plane` + `bind_shared_at`
            // use at machine construction.
            vm.restore_migrated(member)?;
            if let Some(plane) = &self.plane {
                let base = self.slot_base[cpu];
                for (i, ranges) in vm.pools.live_ranges_by_pool().iter().enumerate() {
                    let slot = base + i as u32;
                    plane.clear_pool(slot);
                    plane.adopt(slot, ranges).map_err(|e| {
                        MigrateError::Image(SnapshotError::Malformed(format!(
                            "member {cpu} pool ranges rejected by the plane: {}",
                            e.detail
                        )))
                    })?;
                }
                vm.pools.bind_shared_at(plane, base);
            }
            let exit = vm.run();
            let r = JobResult {
                job: cpu,
                label: format!("resume:cpu{cpu}"),
                cpu: cpu as u32,
                exit,
                stats: vm.stats(),
                checks: vm.pools.total_stats(),
                console: std::mem::take(&mut vm.console),
            };
            per_cpu.push((cpu_report_of(&r), vec![r]));
        }
        let wall = start.elapsed();
        Ok(self.merge_report(per_cpu, wall))
    }

    /// Deterministic merge shared by [`Self::run`], [`Self::quiesce`]
    /// and [`Self::resume_quiesced`]: cpu-id order for stats, submission
    /// order for job results.
    fn merge_report(&self, per_cpu: Vec<(CpuReport, Vec<JobResult>)>, wall: Duration) -> SmpReport {
        let mut cpus = Vec::with_capacity(per_cpu.len());
        let mut job_results = Vec::new();
        for (rep, mut rs) in per_cpu {
            cpus.push(rep);
            job_results.append(&mut rs);
        }
        cpus.sort_by_key(|c| c.cpu);
        job_results.sort_by_key(|r| r.job);
        let mut merged = VmStats::default();
        for c in &cpus {
            merged.fold(&c.stats);
        }
        let max_cpu_cycles = cpus.iter().map(|c| c.stats.cycles).max().unwrap_or(0);
        let (final_epoch, retired_snapshots) = match &self.plane {
            Some(p) => (p.epoch(), p.retired_live()),
            None => (0, 0),
        };
        SmpReport {
            vcpus: self.vcpus,
            cpus,
            total_syscalls: merged.traps,
            merged,
            jobs: job_results,
            max_cpu_cycles,
            wall,
            final_epoch,
            retired_snapshots,
        }
    }
}

fn cpu_report_of(r: &JobResult) -> CpuReport {
    let mut rep = CpuReport {
        cpu: r.cpu,
        jobs: 1,
        ..CpuReport::default()
    };
    rep.stats.fold(&r.stats);
    rep.checks.merge(&r.checks);
    rep
}

// ---------------------------------------------------------------------------
// The coordinated-image container (`SVAQ`).
// ---------------------------------------------------------------------------

/// Magic of a coordinated multi-vCPU image: one `SVA1` member snapshot
/// per vCPU, captured at a consistent cut by [`SmpMachine::quiesce`].
pub const QUIESCE_MAGIC: [u8; 4] = *b"SVAQ";
/// Container format version. Member snapshots carry their own
/// [`crate::snapshot::SNAPSHOT_VERSION`] and migrate independently, so
/// this only versions the container framing.
pub const QUIESCE_VERSION: u32 = 1;

const QUIESCE_HEADER: usize = 28;

/// What [`SmpMachine::quiesce`] produced.
pub struct QuiesceOutcome {
    /// The coordinated `SVAQ` image (feed to
    /// [`SmpMachine::resume_quiesced`]).
    pub image: Vec<u8>,
    /// The full run's merged report — jobs continued to terminal state
    /// after the cut.
    pub report: SmpReport,
    /// Quiesce latency: time between the first vCPU parking at its safe
    /// point and the last (how long the earliest member held still).
    pub park_spread: Duration,
}

/// Frames member snapshots into an `SVAQ` container:
/// `magic | version u32 | members u32 | payload_len u64 | checksum u64`
/// then per member `len u64 | bytes`.
pub fn encode_quiesce(members: &[Vec<u8>]) -> Vec<u8> {
    let mut payload = Vec::new();
    for m in members {
        payload.extend_from_slice(&(m.len() as u64).to_le_bytes());
        payload.extend_from_slice(m);
    }
    let mut out = Vec::with_capacity(QUIESCE_HEADER + payload.len());
    out.extend_from_slice(&QUIESCE_MAGIC);
    out.extend_from_slice(&QUIESCE_VERSION.to_le_bytes());
    out.extend_from_slice(&(members.len() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Splits an `SVAQ` container back into its member snapshots,
/// fail-closed (magic, version, member count, length, checksum).
pub fn decode_quiesce(bytes: &[u8]) -> Result<Vec<Vec<u8>>, SnapshotError> {
    if bytes.len() < QUIESCE_HEADER {
        return Err(SnapshotError::Truncated {
            need: QUIESCE_HEADER,
            have: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if magic != QUIESCE_MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != QUIESCE_VERSION {
        return Err(SnapshotError::BadVersion {
            found: version,
            expected: QUIESCE_VERSION,
        });
    }
    let nmembers = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    if bytes.len() < QUIESCE_HEADER + payload_len {
        return Err(SnapshotError::Truncated {
            need: QUIESCE_HEADER + payload_len,
            have: bytes.len(),
        });
    }
    let payload = &bytes[QUIESCE_HEADER..QUIESCE_HEADER + payload_len];
    let computed = fnv64(payload);
    if computed != checksum {
        return Err(SnapshotError::Corrupt {
            stored: checksum,
            computed,
        });
    }
    let mut members = Vec::with_capacity(nmembers.min(64));
    let mut pos = 0usize;
    for i in 0..nmembers {
        if payload.len() - pos < 8 {
            return Err(SnapshotError::Malformed(format!(
                "member {i} length truncated"
            )));
        }
        let len = u64::from_le_bytes(payload[pos..pos + 8].try_into().unwrap()) as usize;
        pos += 8;
        if payload.len() - pos < len {
            return Err(SnapshotError::Malformed(format!(
                "member {i} body truncated ({len} bytes declared, {} left)",
                payload.len() - pos
            )));
        }
        members.push(payload[pos..pos + len].to_vec());
        pos += len;
    }
    if pos != payload.len() {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing container bytes",
            payload.len() - pos
        )));
    }
    Ok(members)
}

// The worker threads borrow the machine and the run state across the
// scope; this pins down that every piece of the template VM is
// thread-shareable.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<SmpMachine>();
    assert_sync::<RunState>();
};
