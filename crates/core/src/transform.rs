//! Analysis-precision transforms (paper §4.8).
//!
//! *Function cloning*: different objects passed through the same parameter
//! from different call sites are merged by a unification analysis; cloning
//! the callee per call site eliminates that merging. Heuristics keep code
//! growth small (the paper reports < 10% bytecode growth).
//!
//! *Devirtualization*: at call sites carrying the programmer's signature
//! assertion, a small target set can be expanded into an explicit compare
//! chain of direct calls — improving precision, safety and check speed.

use std::collections::HashMap;

use sva_analysis::analyze::AnalysisResult;
use sva_analysis::AnalysisConfig;
use sva_ir::{BlockId, Callee, FuncId, IPred, Inst, InstId, Linkage, Module, Operand};

/// Maximum body size (instructions) of a cloning candidate.
const CLONE_MAX_BODY: usize = 40;
/// Maximum number of call sites of a cloning candidate.
const CLONE_MAX_SITES: usize = 3;
/// Maximum indirect-call target set size for devirtualization.
const DEVIRT_MAX_TARGETS: usize = 4;

/// Clones small, internal, multiply-called functions with pointer
/// parameters so each call site gets its own copy. Returns the number of
/// clones created.
pub fn clone_functions(m: &mut Module, cfg: &AnalysisConfig) -> u32 {
    // Collect call sites per callee and address-taken functions.
    let mut sites: HashMap<FuncId, Vec<(FuncId, InstId)>> = HashMap::new();
    let mut address_taken: Vec<bool> = vec![false; m.funcs.len()];
    for (fi, f) in m.funcs.iter().enumerate() {
        for (_, iid) in f.inst_order() {
            let inst = f.inst(iid);
            if let Inst::Call {
                callee: Callee::Direct(t),
                ..
            } = inst
            {
                sites.entry(*t).or_default().push((FuncId(fi as u32), iid));
            }
            inst.for_each_operand(|op| {
                if let Operand::Func(t) = op {
                    address_taken[t.0 as usize] = true;
                }
            });
        }
        for g in &m.globals {
            if let sva_ir::GlobalInit::Relocated { relocs, .. } = &g.init {
                for (_, t) in relocs {
                    if let sva_ir::RelocTarget::Func(name) = t {
                        if let Some(fid) = m.func_by_name(name) {
                            address_taken[fid.0 as usize] = true;
                        }
                    }
                }
            }
        }
    }

    let allocator_fns: Vec<String> = m
        .allocators
        .iter()
        .flat_map(|a| {
            [
                Some(a.alloc_fn.clone()),
                a.dealloc_fn.clone(),
                a.size_fn.clone(),
            ]
            .into_iter()
            .flatten()
        })
        .collect();

    let candidates: Vec<FuncId> = (0..m.funcs.len() as u32)
        .map(FuncId)
        .filter(|&fid| {
            let f = m.func(fid);
            let nsites = sites.get(&fid).map(|s| s.len()).unwrap_or(0);
            matches!(f.linkage, Linkage::Internal)
                && !address_taken[fid.0 as usize]
                && !allocator_fns.contains(&f.name)
                && !cfg.is_excluded(&f.name)
                && f.insts.len() <= CLONE_MAX_BODY
                && (2..=CLONE_MAX_SITES).contains(&nsites)
                && f.params.iter().any(|&p| m.types.is_ptr(f.value_type(p)))
        })
        .collect();

    let mut clones = 0;
    for fid in candidates {
        let fsites = sites.get(&fid).cloned().unwrap_or_default();
        // Keep the original for the first site; clone for the rest.
        for (n, (caller, iid)) in fsites.into_iter().enumerate().skip(1) {
            let base_name = m.func(fid).name.clone();
            let clone_name = format!("{base_name}.clone{n}");
            if m.func_by_name(&clone_name).is_some() {
                continue;
            }
            let mut cloned = m.func(fid).clone();
            cloned.name = clone_name.clone();
            let new_id = m.push_decoded_function(cloned);
            // Retarget this call site.
            if let Inst::Call { callee, .. } = &mut m.func_mut(caller).insts[iid.0 as usize] {
                *callee = Callee::Direct(new_id);
            }
            clones += 1;
        }
    }
    clones
}

/// Devirtualizes signature-asserted indirect calls with small, complete
/// target sets into compare chains of direct calls. Returns the number of
/// sites rewritten.
pub fn devirtualize(m: &mut Module, analysis: &AnalysisResult) -> u32 {
    let mut rewritten = 0;
    let mut work: Vec<(FuncId, InstId, Vec<FuncId>)> = Vec::new();
    for ((fid, iid), info) in &analysis.callsites {
        if !info.sig_asserted
            || info.may_call_unknown
            || info.targets.is_empty()
            || info.targets.len() > DEVIRT_MAX_TARGETS
        {
            continue;
        }
        if matches!(
            m.func(*fid).inst(*iid),
            Inst::Call {
                callee: Callee::Indirect(_),
                ..
            }
        ) {
            work.push((*fid, *iid, info.targets.clone()));
        }
    }
    // Deterministic order.
    work.sort_by_key(|(f, i, _)| (f.0, i.0));
    for (fid, iid, targets) in work {
        if devirtualize_site(m, fid, iid, &targets) {
            rewritten += 1;
        }
    }
    rewritten
}

fn devirtualize_site(m: &mut Module, fid: FuncId, iid: InstId, targets: &[FuncId]) -> bool {
    let (fp, args) = match m.func(fid).inst(iid) {
        Inst::Call {
            callee: Callee::Indirect(fp),
            args,
        } => (*fp, args.clone()),
        _ => return false,
    };
    // Locate the call within its block.
    let mut loc = None;
    for (bi, b) in m.func(fid).blocks.iter().enumerate() {
        if let Some(pos) = b.insts.iter().position(|&i| i == iid) {
            loc = Some((BlockId(bi as u32), pos));
            break;
        }
    }
    let Some((bid, pos)) = loc else { return false };
    let has_result = m.func(fid).result_of(iid).is_some();
    let result_ty = m
        .func(fid)
        .result_of(iid)
        .map(|v| m.func(fid).value_type(v));
    let i1 = m.types.i1();

    let f = m.func_mut(fid);
    let old_block = std::mem::take(&mut f.blocks[bid.0 as usize].insts);
    let (pre, rest) = old_block.split_at(pos);
    let post: Vec<InstId> = rest[1..].to_vec();
    f.blocks[bid.0 as usize].insts = pre.to_vec();

    // New blocks: compare chain + arms + merge. The first compare lives in
    // the original block; cmp_blocks[j-1] holds the compare for target j;
    // the last target needs no compare (the set is exhaustive for a
    // complete, signature-asserted site), so k-2 extra blocks suffice.
    let k = targets.len();
    let mut cmp_blocks = Vec::new();
    for j in 0..k.saturating_sub(2) {
        cmp_blocks.push(f.add_block(&format!("devirt{}.cmp{}", iid.0, j + 1)));
    }
    let mut arm_blocks = Vec::new();
    for j in 0..k {
        arm_blocks.push(f.add_block(&format!("devirt{}.arm{}", iid.0, j)));
    }
    let merge = f.add_block(&format!("devirt{}.merge", iid.0));

    // Emit compare chain. Compare block for target j (j in 0..k-1):
    //   c = icmp eq fp, @target_j ; condbr c, arm_j, next
    // where next is the next compare block or, for the last compare, the
    // final arm (target k-1 needs no compare: sets are exhaustive for
    // complete, signature-asserted sites).
    let emit_cmp = |f: &mut sva_ir::Function, into: BlockId, j: usize| {
        let next: BlockId = if j < k - 2 {
            cmp_blocks[j] // compare block for target j+1
        } else {
            arm_blocks[k - 1]
        };
        let (cid, cv) = f.add_inst_detached(
            Inst::ICmp {
                pred: IPred::Eq,
                lhs: fp,
                rhs: Operand::Func(targets[j]),
            },
            Some(i1),
        );
        let (bid2, _) = f.add_inst_detached(
            Inst::CondBr {
                cond: Operand::Value(cv.unwrap()),
                then_bb: arm_blocks[j],
                else_bb: next,
            },
            None,
        );
        f.blocks[into.0 as usize].insts.push(cid);
        f.blocks[into.0 as usize].insts.push(bid2);
    };

    if k == 1 {
        // Unconditional direct call.
        let (br, _) = f.add_inst_detached(
            Inst::Br {
                target: arm_blocks[0],
            },
            None,
        );
        f.blocks[bid.0 as usize].insts.push(br);
    } else {
        emit_cmp(f, bid, 0);
        for j in 1..k - 1 {
            emit_cmp(f, cmp_blocks[j - 1], j);
        }
    }

    // Arms: direct call + br merge.
    let mut arm_results = Vec::new();
    for (j, t) in targets.iter().enumerate() {
        let (call, res) = f.add_inst_detached(
            Inst::Call {
                callee: Callee::Direct(*t),
                args: args.clone(),
            },
            result_ty,
        );
        let (br, _) = f.add_inst_detached(Inst::Br { target: merge }, None);
        f.blocks[arm_blocks[j].0 as usize].insts.push(call);
        f.blocks[arm_blocks[j].0 as usize].insts.push(br);
        arm_results.push(res);
    }

    // Merge block: the original call instruction is repurposed as the
    // φ-node merging arm results (keeping its result ValueId for users);
    // void calls need no φ.
    if has_result {
        let ty = result_ty.unwrap();
        f.insts[iid.0 as usize] = Inst::Phi {
            incomings: arm_blocks
                .iter()
                .zip(arm_results.iter())
                .map(|(b, r)| (*b, Operand::Value(r.unwrap())))
                .collect(),
            ty,
        };
        f.blocks[merge.0 as usize].insts.push(iid);
    } else {
        // Drop the original instruction; it is no longer in any block.
    }
    f.blocks[merge.0 as usize].insts.extend(post);

    // The original block's terminator moved into `merge`: fix φ-nodes in
    // its successors that named `bid` as predecessor.
    let succs: Vec<BlockId> = f.blocks[merge.0 as usize]
        .insts
        .last()
        .map(|&last| f.inst(last).successors())
        .unwrap_or_default();
    for s in succs {
        let insts = f.blocks[s.0 as usize].insts.clone();
        for i in insts {
            if let Inst::Phi { incomings, .. } = &mut f.insts[i.0 as usize] {
                for (pb, _) in incomings.iter_mut() {
                    if *pb == bid {
                        *pb = merge;
                    }
                }
            }
        }
    }
    true
}

/// Reports the §4.8 target-set reduction: for each signature-asserted
/// indirect call site, `(before, after)` target counts.
pub fn sig_assertion_reduction(analysis: &AnalysisResult) -> Vec<(usize, usize)> {
    analysis
        .callsites
        .values()
        .filter(|i| i.sig_asserted)
        .map(|i| (i.targets_before_filter, i.targets.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_analysis::analyze;
    use sva_ir::build::FunctionBuilder;
    use sva_ir::verify::verify_module;
    use sva_ir::GlobalInit;

    fn mk_handlers(m: &mut Module) -> (FuncId, FuncId) {
        let i64t = m.types.i64();
        let hty = m.types.func(i64t, vec![i64t], false);
        let h1 = m.add_function("h1", hty, Linkage::Internal);
        let h2 = m.add_function("h2", hty, Linkage::Internal);
        for (h, k) in [(h1, 1i64), (h2, 2)] {
            let mut b = FunctionBuilder::new(m, h);
            let x = b.param(0);
            let c = b.c64(k);
            let r = b.add(x, c);
            b.ret(Some(r));
        }
        (h1, h2)
    }

    #[test]
    fn cloning_splits_call_sites() {
        let mut m = Module::new("t");
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let void = m.types.void();
        let callee_ty = m.types.func(void, vec![p64], false);
        let callee = m.add_function("helper", callee_ty, Linkage::Internal);
        let main_ty = m.types.func(void, vec![p64, p64], false);
        let main = m.add_function("main2", main_ty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, callee);
            let p = b.param(0);
            let one = b.c64(1);
            b.store(one, p);
            b.ret(None);
        }
        {
            let mut b = FunctionBuilder::new(&mut m, main);
            let (x, y) = (b.param(0), b.param(1));
            b.call(callee, vec![x]);
            b.call(callee, vec![y]);
            b.ret(None);
        }
        let cfg = AnalysisConfig::kernel();
        let n = clone_functions(&mut m, &cfg);
        assert_eq!(n, 1);
        assert!(m.func_by_name("helper.clone1").is_some());
        assert!(verify_module(&m).is_empty());
        // With cloning, the two params are no longer merged.
        let r = analyze(&m, &cfg);
        let f = m.func(main);
        let n0 = r.value_node(main, f.params[0]).unwrap();
        let n1 = r.value_node(main, f.params[1]).unwrap();
        assert_ne!(n0, n1, "cloning keeps call-site objects separate");
    }

    #[test]
    fn cloning_skips_address_taken() {
        let mut m = Module::new("t");
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let void = m.types.void();
        let callee_ty = m.types.func(void, vec![p64], false);
        let callee = m.add_function("helper", callee_ty, Linkage::Internal);
        let cp = m.types.ptr(callee_ty);
        m.add_global(
            "fnp",
            cp,
            GlobalInit::Relocated {
                bytes: vec![0; 8],
                relocs: vec![(0, sva_ir::RelocTarget::Func("helper".into()))],
            },
            false,
        );
        let main_ty = m.types.func(void, vec![p64, p64], false);
        let main = m.add_function("main2", main_ty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, callee);
            b.ret(None);
        }
        {
            let mut b = FunctionBuilder::new(&mut m, main);
            let (x, y) = (b.param(0), b.param(1));
            b.call(callee, vec![x]);
            b.call(callee, vec![y]);
            b.ret(None);
        }
        assert_eq!(clone_functions(&mut m, &AnalysisConfig::kernel()), 0);
    }

    #[test]
    fn devirtualization_rewrites_asserted_site() {
        let mut m = Module::new("t");
        let (h1, h2) = mk_handlers(&mut m);
        let i64t = m.types.i64();
        let hty = m.func(h1).ty;
        let hp = m.types.ptr(hty);
        let dty = m.types.func(i64t, vec![hp, i64t], false);
        let d = m.add_function("dispatch", dty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, d);
            let fp = b.param(0);
            let x = b.param(1);
            let r = b.call_indirect(fp, vec![x]).unwrap();
            b.assert_call_signature();
            b.ret(Some(r));
        }
        // Make both handlers reachable through the pointer: a caller that
        // passes both.
        let void = m.types.void();
        let cty = m.types.func(void, vec![], false);
        let c = m.add_function("caller", cty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, c);
            let five = b.c64(5);
            b.call(d, vec![Operand::Func(h1), five]);
            let six = b.c64(6);
            b.call(d, vec![Operand::Func(h2), six]);
            b.ret(None);
        }
        let cfg = AnalysisConfig::kernel();
        let analysis = analyze(&m, &cfg);
        let n = devirtualize(&mut m, &analysis);
        assert_eq!(n, 1);
        let errs = verify_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
        // The dispatch function now contains direct calls to both handlers
        // and no indirect call.
        let f = m.func(d);
        let mut direct = 0;
        let mut indirect = 0;
        for (_, iid) in f.inst_order() {
            match f.inst(iid) {
                Inst::Call {
                    callee: Callee::Direct(_),
                    ..
                } => direct += 1,
                Inst::Call {
                    callee: Callee::Indirect(_),
                    ..
                } => indirect += 1,
                _ => {}
            }
        }
        assert_eq!(direct, 2);
        assert_eq!(indirect, 0);
    }

    #[test]
    fn sig_reduction_reports_counts() {
        let mut m = Module::new("t");
        let (h1, _h2) = mk_handlers(&mut m);
        let i64t = m.types.i64();
        let hty = m.func(h1).ty;
        let hp = m.types.ptr(hty);
        let dty = m.types.func(i64t, vec![hp, i64t], false);
        let d = m.add_function("dispatch", dty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, d);
            let fp = b.param(0);
            let x = b.param(1);
            let r = b.call_indirect(fp, vec![x]).unwrap();
            b.assert_call_signature();
            b.ret(Some(r));
        }
        let analysis = analyze(&m, &AnalysisConfig::kernel());
        let red = sig_assertion_reduction(&analysis);
        assert_eq!(red.len(), 1);
    }

    /// Builds the two-call-site module of `cloning_splits_call_sites`, with
    /// a configurable helper name.
    fn two_site_module(helper_name: &str) -> (Module, FuncId) {
        let mut m = Module::new("t");
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let void = m.types.void();
        let callee_ty = m.types.func(void, vec![p64], false);
        let callee = m.add_function(helper_name, callee_ty, Linkage::Internal);
        let main_ty = m.types.func(void, vec![p64, p64], false);
        let main = m.add_function("main2", main_ty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, callee);
            let p = b.param(0);
            let one = b.c64(1);
            b.store(one, p);
            b.ret(None);
        }
        {
            let mut b = FunctionBuilder::new(&mut m, main);
            let (x, y) = (b.param(0), b.param(1));
            b.call(callee, vec![x]);
            b.call(callee, vec![y]);
            b.ret(None);
        }
        (m, callee)
    }

    #[test]
    fn cloning_skips_excluded_functions() {
        // An excluded helper is unanalyzed code: cloning it would not make
        // any partition more precise, so the transform must leave it alone.
        let (mut m, _) = two_site_module("lib_helper");
        let cfg = AnalysisConfig::kernel_excluding(&["lib_"]);
        assert_eq!(clone_functions(&mut m, &cfg), 0);
        assert!(m.func_by_name("lib_helper.clone1").is_none());
    }

    #[test]
    fn cloning_skips_single_call_site() {
        let mut m = Module::new("t");
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let void = m.types.void();
        let callee_ty = m.types.func(void, vec![p64], false);
        let callee = m.add_function("helper", callee_ty, Linkage::Internal);
        let main_ty = m.types.func(void, vec![p64], false);
        let main = m.add_function("main1", main_ty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, callee);
            let p = b.param(0);
            let one = b.c64(1);
            b.store(one, p);
            b.ret(None);
        }
        {
            let mut b = FunctionBuilder::new(&mut m, main);
            let x = b.param(0);
            b.call(callee, vec![x]);
            b.ret(None);
        }
        assert_eq!(clone_functions(&mut m, &AnalysisConfig::kernel()), 0);
    }

    #[test]
    fn cloning_is_idempotent() {
        let (mut m, _) = two_site_module("helper");
        let cfg = AnalysisConfig::kernel();
        assert_eq!(clone_functions(&mut m, &cfg), 1);
        // Re-running finds each callee with one site only — nothing to do.
        assert_eq!(clone_functions(&mut m, &cfg), 0);
        assert!(verify_module(&m).is_empty());
    }

    #[test]
    fn devirtualization_skips_unasserted_sites() {
        // Without `!sigassert` the verifier cannot trust the target set, so
        // the transform must not rewrite the call.
        let mut m = Module::new("t");
        let (h1, h2) = mk_handlers(&mut m);
        let i64t = m.types.i64();
        let hty = m.func(h1).ty;
        let hp = m.types.ptr(hty);
        let dty = m.types.func(i64t, vec![hp, i64t], false);
        let d = m.add_function("dispatch", dty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, d);
            let fp = b.param(0);
            let x = b.param(1);
            let r = b.call_indirect(fp, vec![x]).unwrap();
            b.ret(Some(r));
        }
        let void = m.types.void();
        let cty = m.types.func(void, vec![], false);
        let c = m.add_function("caller", cty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, c);
            let five = b.c64(5);
            b.call(d, vec![Operand::Func(h1), five]);
            let six = b.c64(6);
            b.call(d, vec![Operand::Func(h2), six]);
            b.ret(None);
        }
        let cfg = AnalysisConfig::kernel();
        let analysis = analyze(&m, &cfg);
        assert_eq!(devirtualize(&mut m, &analysis), 0);
    }
}
