//! The safety-checking compiler (paper §4.3).
//!
//! Pipeline:
//!
//! 1. (optional) §4.8 precision transforms — function cloning;
//! 2. pointer analysis (`sva-analysis`);
//! 3. metapool assignment: one metapool per points-to partition, merged by
//!    kernel-pool constraints (the analysis already anchors kernel pools);
//! 4. instrumentation: `pchk.reg.obj` after every allocation (heap, stack,
//!    global, manufactured), `pchk.drop.obj` before every deallocation and
//!    at stack-frame exits, stack-to-heap promotion for escaping allocas;
//! 5. annotation encoding: metapool descriptors, per-value pool
//!    assignments, indirect-call target sets — the "proof" the bytecode
//!    verifier checks (paper §5).

use std::collections::HashMap;

use sva_analysis::analyze::{AnalysisResult, SMALL_INT_PTR};
use sva_analysis::{analyze, AnalysisConfig, NodeId};
use sva_ir::{
    AllocKind, BlockId, Callee, CastOp, FuncId, Inst, InstId, Intrinsic, MetaPoolDesc, Module,
    Operand, PoolAnnotations, SizeSpec, Type, ValueId,
};

/// Options of a compiler run.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Promote escaping stack objects to the heap (paper §4.3). Requires an
    /// ordinary allocator in the module; otherwise escaping allocas are
    /// registered in place.
    pub promote_stack: bool,
    /// Apply function cloning before analysis (paper §4.8).
    pub clone_functions: bool,
    /// Devirtualize signature-asserted indirect calls with small target
    /// sets (paper §4.8).
    pub devirtualize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            promote_stack: true,
            clone_functions: false,
            devirtualize: false,
        }
    }
}

/// Statistics of a compiler run.
#[derive(Clone, Copy, Default, Debug)]
pub struct CompileReport {
    /// Metapools created.
    pub metapools: u32,
    /// Type-homogeneous metapools.
    pub th_metapools: u32,
    /// Complete metapools.
    pub complete_metapools: u32,
    /// Heap registrations inserted.
    pub heap_regs: u32,
    /// Stack registrations inserted.
    pub stack_regs: u32,
    /// Global registrations inserted.
    pub global_regs: u32,
    /// `pchk.drop.obj` operations inserted.
    pub drops: u32,
    /// Stack objects promoted to the heap.
    pub promotions: u32,
    /// Functions cloned by the §4.8 pass.
    pub clones: u32,
    /// Indirect call sites devirtualized.
    pub devirtualized: u32,
}

/// Result of the safety-checking compiler: the instrumented, annotated
/// module plus the analysis it was derived from.
#[derive(Debug)]
pub struct Compiled {
    /// The instrumented module carrying [`PoolAnnotations`].
    pub module: Module,
    /// The pointer-analysis result (kept for metrics and diagnostics).
    pub analysis: AnalysisResult,
    /// Run statistics.
    pub report: CompileReport,
    /// Metapool id of each representative node.
    pub node_pools: HashMap<NodeId, u32>,
}

/// Runs the safety-checking compiler over `module`.
pub fn compile(mut module: Module, cfg: &AnalysisConfig, opts: &CompileOptions) -> Compiled {
    let mut report = CompileReport::default();
    if opts.clone_functions {
        report.clones = crate::transform::clone_functions(&mut module, cfg);
    }
    let mut analysis = analyze(&module, cfg);
    if opts.devirtualize {
        report.devirtualized = crate::transform::devirtualize(&mut module, &analysis);
        // Devirtualization rewrites call sites; re-analyze for a consistent
        // value-node map.
        analysis = analyze(&module, cfg);
    }

    // --- metapool assignment -------------------------------------------
    let reps = analysis.graph.reps();
    let mut node_pools: HashMap<NodeId, u32> = HashMap::new();
    let mut descs: Vec<MetaPoolDesc> = Vec::new();
    for rep in &reps {
        let id = descs.len() as u32;
        node_pools.insert(*rep, id);
        descs.push(MetaPoolDesc {
            name: format!("MP{id}"),
            type_homogeneous: analysis.graph.is_th(*rep),
            complete: analysis.graph.is_complete(*rep),
            elem_type: analysis.graph.elem_type(*rep),
            points_to: Vec::new(), // filled below once ids exist
            fields_collapsed: analysis.graph.fields_collapsed(*rep),
            userspace: analysis.graph.flags(*rep).userspace,
        });
    }
    for rep in &reps {
        let edges: Vec<(u32, u32)> = analysis
            .graph
            .cells(*rep)
            .into_iter()
            .map(|(c, p)| (c, node_pools[&analysis.graph.find_ro(p)]))
            .collect();
        descs[node_pools[rep] as usize].points_to = edges;
    }
    report.metapools = descs.len() as u32;
    report.th_metapools = descs.iter().filter(|d| d.type_homogeneous).count() as u32;
    report.complete_metapools = descs.iter().filter(|d| d.complete).count() as u32;

    // --- annotations -----------------------------------------------------
    let mut pa = PoolAnnotations {
        metapools: descs,
        value_pools: Vec::with_capacity(module.funcs.len()),
        value_cells: Vec::with_capacity(module.funcs.len()),
        global_pools: Vec::with_capacity(module.globals.len()),
        func_sets: Vec::new(),
        call_sets: Vec::new(),
    };
    for (fi, f) in module.funcs.iter().enumerate() {
        let mut row = vec![None; f.num_values()];
        let mut cells = vec![0u32; f.num_values()];
        for v in 0..f.num_values() as u32 {
            let fid = FuncId(fi as u32);
            if let Some(n) = analysis.value_node(fid, ValueId(v)) {
                row[v as usize] = node_pools.get(&n).copied();
                cells[v as usize] = analysis.value_cell(fid, ValueId(v));
            }
        }
        pa.value_pools.push(row);
        pa.value_cells.push(cells);
    }
    for gi in 0..module.globals.len() {
        let n = analysis.global_node(sva_ir::GlobalId(gi as u32));
        pa.global_pools.push(node_pools.get(&n).copied());
    }
    // Indirect-call target sets.
    for ((fid, iid), info) in &analysis.callsites {
        let is_indirect = matches!(
            module.func(*fid).inst(*iid),
            Inst::Call {
                callee: Callee::Indirect(_),
                ..
            }
        );
        if !is_indirect || info.targets.is_empty() {
            continue;
        }
        let names: Vec<String> = info
            .targets
            .iter()
            .map(|t| module.func(*t).name.clone())
            .collect();
        let set = pa.func_sets.len() as u32;
        pa.func_sets.push(names);
        pa.call_sets.push((fid.0, iid.0, set));
    }

    // --- instrumentation --------------------------------------------------
    let mut instr = Instrumenter {
        analysis: &analysis,
        node_pools: &node_pools,
        report: &mut report,
        annotations: &mut pa,
    };
    instr.run(&mut module, opts);

    module.pool_annotations = Some(pa);
    Compiled {
        module,
        analysis,
        report,
        node_pools,
    }
}

/// Where to splice a new instruction relative to an anchor.
enum Place {
    Before,
    After,
}

struct Instrumenter<'a> {
    analysis: &'a AnalysisResult,
    node_pools: &'a HashMap<NodeId, u32>,
    report: &'a mut CompileReport,
    annotations: &'a mut PoolAnnotations,
}

impl Instrumenter<'_> {
    fn run(&mut self, module: &mut Module, opts: &CompileOptions) {
        // Pick the promotion allocator: the designated ordinary interface
        // (paper §4.4 requires one to exist for stack-to-heap promotion).
        let promote = module
            .allocators
            .iter()
            .find(|a| matches!(a.kind, AllocKind::Ordinary))
            .map(|a| (a.alloc_fn.clone(), a.dealloc_fn.clone()));

        let nfuncs = module.funcs.len();
        for fi in 0..nfuncs {
            let fid = FuncId(fi as u32);
            if !self.analysis.analyzed[fi] {
                continue;
            }
            self.instrument_function(module, fid, opts, &promote);
        }
        self.register_globals(module);
    }

    fn pool_of_node(&self, n: NodeId) -> Option<u32> {
        self.node_pools.get(&n).copied()
    }

    fn pool_of_value(&self, f: FuncId, v: ValueId) -> Option<u32> {
        self.analysis
            .value_node(f, v)
            .and_then(|n| self.pool_of_node(n))
    }

    /// `pchk.reg.obj(mp, ptr, len[, stack])` as a detached instruction.
    fn mk_reg(
        &self,
        module: &mut Module,
        f: FuncId,
        mp: u32,
        ptr: Operand,
        len: Operand,
        stack: bool,
    ) -> InstId {
        let i64t = module.types.i64();
        let mut args = vec![Operand::ConstInt(mp as i64, i64t), ptr, len];
        if stack {
            args.push(Operand::ConstInt(1, i64t));
        }
        let func = module.func_mut(f);
        func.add_inst_detached(
            Inst::Call {
                callee: Callee::Intrinsic(Intrinsic::PchkRegObj),
                args,
            },
            None,
        )
        .0
    }

    fn mk_drop(&self, module: &mut Module, f: FuncId, mp: u32, ptr: Operand) -> InstId {
        let i64t = module.types.i64();
        let args = vec![Operand::ConstInt(mp as i64, i64t), ptr];
        let func = module.func_mut(f);
        func.add_inst_detached(
            Inst::Call {
                callee: Callee::Intrinsic(Intrinsic::PchkDropObj),
                args,
            },
            None,
        )
        .0
    }

    fn instrument_function(
        &mut self,
        module: &mut Module,
        fid: FuncId,
        opts: &CompileOptions,
        promote: &Option<(String, Option<String>)>,
    ) {
        let mut placements: Vec<(InstId, Place, InstId)> = Vec::new();
        // Stack objects to drop at returns: (mp, pointer operand).
        let mut frame_objects: Vec<(u32, Operand, bool)> = Vec::new();

        // Heap allocation sites.
        let allocs: Vec<_> = self
            .analysis
            .alloc_sites
            .iter()
            .filter(|s| s.func == fid)
            .cloned()
            .collect();
        for site in allocs {
            let Some(mp) = self.pool_of_node(self.analysis.graph.find_ro(site.node)) else {
                continue;
            };
            let (res, args) = {
                let f = module.func(fid);
                let res = f.result_of(site.inst);
                let args = match f.inst(site.inst) {
                    Inst::Call { args, .. } => args.clone(),
                    _ => continue,
                };
                (res, args)
            };
            let Some(res) = res else { continue };
            let i64t = module.types.i64();
            let len: Operand = match site.size {
                SizeSpec::Arg(n) => args.get(n).copied().unwrap_or(Operand::ConstInt(0, i64t)),
                SizeSpec::Const(c) => Operand::ConstInt(c as i64, i64t),
                SizeSpec::PoolObjectSize => {
                    let decl = &module.allocators[site.allocator];
                    let size_fn = decl.size_fn.clone();
                    let pool_arg = decl.pool_arg.unwrap_or(0);
                    match size_fn.and_then(|n| module.func_by_name(&n)) {
                        Some(sf) => {
                            let desc = args.get(pool_arg).copied();
                            let (iid, v) = module.func_mut(fid).add_inst_detached(
                                Inst::Call {
                                    callee: Callee::Direct(sf),
                                    args: desc.into_iter().collect(),
                                },
                                Some(i64t),
                            );
                            placements.push((site.inst, after(), iid));
                            Operand::Value(v.unwrap())
                        }
                        None => {
                            // Fall back to the static element size.
                            let mpd = &self.annotations.metapools[mp as usize];
                            let sz = mpd.elem_type.map(|t| module.types.size_of(t)).unwrap_or(0);
                            Operand::ConstInt(sz as i64, i64t)
                        }
                    }
                }
            };
            let reg = self.mk_reg(module, fid, mp, Operand::Value(res), len, false);
            placements.push((site.inst, after(), reg));
            self.report.heap_regs += 1;
        }

        // Deallocation sites.
        let deallocs: Vec<_> = self
            .analysis
            .dealloc_sites
            .iter()
            .filter(|s| s.func == fid)
            .cloned()
            .collect();
        for site in deallocs {
            let Some(node) = site.node else { continue };
            let Some(mp) = self.pool_of_node(self.analysis.graph.find_ro(node)) else {
                continue;
            };
            let ptr = {
                let f = module.func(fid);
                match f.inst(site.inst) {
                    Inst::Call { args, .. } => {
                        let decl = &module.allocators[site.allocator];
                        let idx = if decl.pool_arg.is_some() {
                            args.len().saturating_sub(1)
                        } else {
                            0
                        };
                        args.get(idx).copied()
                    }
                    _ => None,
                }
            };
            let Some(ptr) = ptr else { continue };
            let drop = self.mk_drop(module, fid, mp, ptr);
            placements.push((site.inst, Place::Before, drop));
            self.report.drops += 1;
        }

        // Stack objects (allocas) and pseudo allocations.
        let inst_list: Vec<(BlockId, InstId)> = module.func(fid).inst_order().collect();
        for (bid, iid) in &inst_list {
            let inst = module.func(fid).inst(*iid).clone();
            match inst {
                Inst::Alloca { ty, count } => {
                    let Some(res) = module.func(fid).result_of(*iid) else {
                        continue;
                    };
                    let Some(node) = self.analysis.value_node(fid, res) else {
                        continue;
                    };
                    let Some(mp) = self.pool_of_node(node) else {
                        continue;
                    };
                    let i64t = module.types.i64();
                    let elem = module.types.size_of(ty);
                    let len = match count {
                        Operand::ConstInt(c, _) => Operand::ConstInt(elem as i64 * c, i64t),
                        dyn_count => {
                            let widened = match module.func(fid).operand_type(&dyn_count, module) {
                                t if t == i64t => dyn_count,
                                _ => {
                                    let (c, v) = module.func_mut(fid).add_inst_detached(
                                        Inst::Cast {
                                            op: CastOp::ZExt,
                                            val: dyn_count,
                                            to: i64t,
                                        },
                                        Some(i64t),
                                    );
                                    placements.push((*iid, after(), c));
                                    Operand::Value(v.unwrap())
                                }
                            };
                            let (mulid, v) = module.func_mut(fid).add_inst_detached(
                                Inst::Bin {
                                    op: sva_ir::BinOp::Mul,
                                    lhs: widened,
                                    rhs: Operand::ConstInt(elem as i64, i64t),
                                },
                                Some(i64t),
                            );
                            placements.push((*iid, after(), mulid));
                            Operand::Value(v.unwrap())
                        }
                    };
                    let escaping = {
                        let flags = self.analysis.graph.flags(node);
                        flags.stored || flags.incomplete
                    };
                    if escaping && opts.promote_stack {
                        if let Some((alloc_fn, _)) = promote {
                            // Stack-to-heap promotion: replace the alloca
                            // with `bitcast(alloc(len))`, keeping the
                            // original result value id for all users.
                            if let Some(af) = module.func_by_name(alloc_fn) {
                                let i8p = module.types.byte_ptr();
                                let tptr = module.types.ptr(ty);
                                let (call, cv) = module.func_mut(fid).add_inst_detached(
                                    Inst::Call {
                                        callee: Callee::Direct(af),
                                        args: vec![len],
                                    },
                                    Some(i8p),
                                );
                                placements.push((*iid, Place::Before, call));
                                module.func_mut(fid).insts[iid.0 as usize] = Inst::Cast {
                                    op: CastOp::Bitcast,
                                    val: Operand::Value(cv.unwrap()),
                                    to: tptr,
                                };
                                let reg =
                                    self.mk_reg(module, fid, mp, Operand::Value(res), len, false);
                                placements.push((*iid, after(), reg));
                                self.report.promotions += 1;
                                self.report.heap_regs += 1;
                                frame_objects.push((mp, Operand::Value(res), true));
                                continue;
                            }
                        }
                    }
                    let reg = self.mk_reg(module, fid, mp, Operand::Value(res), len, true);
                    placements.push((*iid, after(), reg));
                    self.report.stack_regs += 1;
                    if bid.0 == 0 {
                        // Entry-block allocas dominate every return; others
                        // are cleaned up by the VM's frame-pop sweep (the
                        // `stack` flag on the registration).
                        frame_objects.push((mp, Operand::Value(res), false));
                    }
                }
                Inst::Call {
                    callee: Callee::Intrinsic(Intrinsic::PseudoAlloc),
                    args,
                } => {
                    // Manufactured-address object (paper §4.7): register
                    // [start, end) in the result's metapool.
                    let Some(res) = module.func(fid).result_of(*iid) else {
                        continue;
                    };
                    let Some(mp) = self.pool_of_value(fid, res) else {
                        continue;
                    };
                    let i64t = module.types.i64();
                    if let (Some(Operand::ConstInt(s, _)), Some(Operand::ConstInt(e, _))) =
                        (args.first(), args.get(1))
                    {
                        let len = Operand::ConstInt(e - s, i64t);
                        let reg = self.mk_reg(module, fid, mp, Operand::Value(res), len, false);
                        placements.push((*iid, after(), reg));
                        self.report.global_regs += 1;
                    }
                }
                _ => {}
            }
        }

        // Frame-exit drops (and frees for promoted objects).
        if !frame_objects.is_empty() {
            let rets: Vec<InstId> = inst_list
                .iter()
                .filter(|(_, iid)| matches!(module.func(fid).inst(*iid), Inst::Ret { .. }))
                .map(|(_, iid)| *iid)
                .collect();
            for ret in rets {
                for (mp, ptr, promoted) in &frame_objects {
                    let drop = self.mk_drop(module, fid, *mp, *ptr);
                    placements.push((ret, Place::Before, drop));
                    self.report.drops += 1;
                    if *promoted {
                        if let Some((_, Some(free_fn))) = promote {
                            if let Some(ff) = module.func_by_name(free_fn) {
                                let i8p = module.types.byte_ptr();
                                let (cast, cv) = module.func_mut(fid).add_inst_detached(
                                    Inst::Cast {
                                        op: CastOp::Bitcast,
                                        val: *ptr,
                                        to: i8p,
                                    },
                                    Some(i8p),
                                );
                                let (call, _) = module.func_mut(fid).add_inst_detached(
                                    Inst::Call {
                                        callee: Callee::Direct(ff),
                                        args: vec![Operand::Value(cv.unwrap())],
                                    },
                                    None,
                                );
                                placements.push((ret, Place::Before, cast));
                                placements.push((ret, Place::Before, call));
                            }
                        }
                    }
                }
            }
        }

        splice(module.func_mut(fid), placements);
        // Annotate values created during instrumentation (size calls etc.)
        // so the verifier sees a complete row.
        let row = &mut self.annotations.value_pools[fid.0 as usize];
        row.resize(module.func(fid).num_values(), None);
        self.annotations.value_cells[fid.0 as usize].resize(module.func(fid).num_values(), 0);
        // Promoted alloca results keep their original annotation; the new
        // i8* call results share the same pool as the object they create.
        let f = module.func(fid);
        for (i, inst) in f.insts.iter().enumerate() {
            if let Inst::Cast {
                op: CastOp::Bitcast,
                val: Operand::Value(src),
                ..
            } = inst
            {
                if let Some(res) = f.inst_results[i] {
                    let (a, b) = (row[src.0 as usize], row[res.0 as usize]);
                    match (a, b) {
                        (Some(x), None) => row[res.0 as usize] = Some(x),
                        (None, Some(x)) => row[src.0 as usize] = Some(x),
                        _ => {}
                    }
                }
            }
        }
    }

    fn register_globals(&mut self, module: &mut Module) {
        let Some(entry) = module.entry else { return };
        if !self.analysis.analyzed[entry.0 as usize] {
            return;
        }
        let i64t = module.types.i64();
        let mut regs = Vec::new();
        for gi in 0..module.globals.len() {
            let g = sva_ir::GlobalId(gi as u32);
            let n = self.analysis.global_node(g);
            let Some(mp) = self.pool_of_node(n) else {
                continue;
            };
            let size = module.types.size_of(module.global(g).ty);
            let reg = self.mk_reg(
                module,
                entry,
                mp,
                Operand::Global(g),
                Operand::ConstInt(size as i64, i64t),
                false,
            );
            regs.push(reg);
            self.report.global_regs += 1;
        }
        // Prepend to the entry block of the kernel entry function.
        let f = module.func_mut(entry);
        let first = f.blocks[0].insts.first().copied();
        match first {
            Some(anchor) => splice(
                f,
                regs.into_iter()
                    .map(|r| (anchor, Place::Before, r))
                    .collect(),
            ),
            None => f.blocks[0].insts.extend(regs),
        }
    }
}

fn after() -> Place {
    Place::After
}

/// Splices detached instructions into block lists around their anchors.
fn splice(f: &mut sva_ir::Function, placements: Vec<(InstId, Place, InstId)>) {
    if placements.is_empty() {
        return;
    }
    let mut before: HashMap<InstId, Vec<InstId>> = HashMap::new();
    let mut after_map: HashMap<InstId, Vec<InstId>> = HashMap::new();
    for (anchor, place, inst) in placements {
        match place {
            Place::Before => before.entry(anchor).or_default().push(inst),
            Place::After => after_map.entry(anchor).or_default().push(inst),
        }
    }
    for b in &mut f.blocks {
        let old = std::mem::take(&mut b.insts);
        let mut newlist = Vec::with_capacity(old.len());
        for iid in old {
            if let Some(pre) = before.get(&iid) {
                newlist.extend(pre.iter().copied());
            }
            newlist.push(iid);
            if let Some(post) = after_map.get(&iid) {
                newlist.extend(post.iter().copied());
            }
        }
        b.insts = newlist;
    }
}

/// True when every index of a `getelementptr` is provably in range at
/// compile time, so no bounds check is needed (paper §4.5: "any array
/// indexing operation that cannot be proven safe at compile-time").
pub fn gep_statically_safe(
    m: &Module,
    f: &sva_ir::Function,
    base: &Operand,
    indices: &[Operand],
) -> bool {
    let base_ty = f.operand_type(base, m);
    if !m.types.is_ptr(base_ty) {
        return false;
    }
    let mut cur = m.types.pointee(base_ty);
    for (n, idx) in indices.iter().enumerate() {
        let c = match idx {
            Operand::ConstInt(c, _) => *c,
            _ => return false,
        };
        if n == 0 {
            // A nonzero first index walks between sibling objects; only a
            // zero first index is provably safe without object bounds.
            if c != 0 {
                return false;
            }
            continue;
        }
        match m.types.get(cur).clone() {
            Type::Array(e, len) => {
                if c < 0 || c as u64 >= len {
                    return false;
                }
                cur = e;
            }
            Type::Struct(_) => {
                let fields = m.types.struct_fields(cur);
                if c < 0 || c as usize >= fields.len() {
                    return false;
                }
                cur = fields[c as usize];
            }
            _ => return false,
        }
    }
    true
}

/// Re-exported threshold (documented in `sva-analysis`).
pub const SMALL_INT_PTR_LIMIT: i64 = SMALL_INT_PTR;

#[cfg(test)]
mod tests {
    use super::*;
    use sva_ir::build::FunctionBuilder;
    use sva_ir::{AllocatorDecl, GlobalInit, Linkage};

    fn kernel_like_module() -> Module {
        let mut m = Module::new("k");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let i64t = m.types.i64();
        let void = m.types.void();
        let kty = m.types.func(bp, vec![i64t], false);
        let kmalloc = m.add_function("kmalloc", kty, Linkage::Public);
        let fty = m.types.func(void, vec![bp], false);
        let kfree = m.add_function("kfree", fty, Linkage::Public);
        m.declare_allocator(AllocatorDecl {
            name: "kmalloc".into(),
            kind: AllocKind::Ordinary,
            alloc_fn: "kmalloc".into(),
            dealloc_fn: Some("kfree".into()),
            pool_create_fn: None,
            pool_destroy_fn: None,
            size: SizeSpec::Arg(0),
            size_fn: None,
            pool_arg: None,
            backed_by: None,
        });
        {
            let mut b = FunctionBuilder::new(&mut m, kmalloc);
            let n = b.null(i8);
            b.ret(Some(n));
        }
        {
            let mut b = FunctionBuilder::new(&mut m, kfree);
            b.ret(None);
        }
        m
    }

    fn count_intrinsic(m: &Module, f: FuncId, which: Intrinsic) -> usize {
        m.func(f)
            .inst_order()
            .filter(|(_, iid)| {
                matches!(
                    m.func(f).inst(*iid),
                    Inst::Call { callee: Callee::Intrinsic(i), .. } if *i == which
                )
            })
            .count()
    }

    #[test]
    fn heap_alloc_gets_registration() {
        let mut m = kernel_like_module();
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("driver", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let sz = b.c64(96);
            let p = b.call_named("kmalloc", vec![sz]).unwrap();
            b.call_named("kfree", vec![p]);
            b.ret(None);
        }
        let _ = bp;
        let out = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
        assert_eq!(count_intrinsic(&out.module, f, Intrinsic::PchkRegObj), 1);
        assert_eq!(count_intrinsic(&out.module, f, Intrinsic::PchkDropObj), 1);
        assert!(out.report.heap_regs == 1 && out.report.drops == 1);
        // Registration comes right after the kmalloc call, drop right
        // before the kfree call.
        let body = &out.module.func(f).blocks[0].insts;
        let kinds: Vec<String> = body
            .iter()
            .map(|iid| format!("{:?}", out.module.func(f).inst(*iid)))
            .collect();
        assert!(kinds[1].contains("PchkRegObj"), "{kinds:?}");
        assert!(kinds[2].contains("PchkDropObj"), "{kinds:?}");
    }

    #[test]
    fn annotations_cover_pointer_values() {
        let mut m = kernel_like_module();
        let i8 = m.types.i8();
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("driver", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let sz = b.c64(64);
            let p = b.call_named("kmalloc", vec![sz]).unwrap();
            let one = b.c64(1);
            let q = b.index_ptr(p, one);
            let zero = b.c8(0);
            b.store(zero, q);
            b.ret(None);
        }
        let _ = i8;
        let out = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
        let pa = out.module.pool_annotations.as_ref().unwrap();
        // p (value) and q (gep result) share the metapool.
        let row = &pa.value_pools[f.0 as usize];
        let pools: Vec<u32> = row.iter().flatten().copied().collect();
        assert!(pools.len() >= 2);
        assert!(pools.windows(2).all(|w| w[0] == w[1]), "{row:?}");
    }

    #[test]
    fn non_escaping_alloca_registered_as_stack() {
        let mut m = kernel_like_module();
        let i64t = m.types.i64();
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("local", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let s = b.alloca(i64t);
            let one = b.c64(1);
            b.store(one, s);
            b.ret(None);
        }
        let out = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
        assert_eq!(out.report.stack_regs, 1);
        assert_eq!(out.report.promotions, 0);
        assert_eq!(count_intrinsic(&out.module, f, Intrinsic::PchkDropObj), 1);
    }

    #[test]
    fn escaping_alloca_promoted_to_heap() {
        let mut m = kernel_like_module();
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let g = m.add_global("sink", p64, GlobalInit::Zero, false);
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("leaky", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let s = b.alloca(i64t);
            b.store(s, Operand::Global(g));
            b.ret(None);
        }
        let out = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
        assert_eq!(out.report.promotions, 1);
        // The alloca is gone, replaced by a kmalloc call + bitcast.
        let has_alloca = out
            .module
            .func(f)
            .inst_order()
            .any(|(_, iid)| matches!(out.module.func(f).inst(iid), Inst::Alloca { .. }));
        assert!(!has_alloca);
        // A free is emitted on the return path.
        let frees = out
            .module
            .func(f)
            .inst_order()
            .filter(|(_, iid)| {
                matches!(out.module.func(f).inst(*iid),
                    Inst::Call { callee: Callee::Direct(c), .. }
                        if out.module.func(*c).name == "kfree")
            })
            .count();
        assert_eq!(frees, 1);
    }

    #[test]
    fn globals_registered_in_entry() {
        let mut m = kernel_like_module();
        let i64t = m.types.i64();
        let arr = m.types.array(i64t, 4);
        m.add_global("table", arr, GlobalInit::Zero, false);
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("start_kernel", fty, Linkage::Public);
        m.entry = Some(f);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            b.ret(None);
        }
        let out = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
        assert!(out.report.global_regs >= 1);
        let first = out.module.func(f).blocks[0].insts[0];
        assert!(matches!(
            out.module.func(f).inst(first),
            Inst::Call {
                callee: Callee::Intrinsic(Intrinsic::PchkRegObj),
                ..
            }
        ));
    }

    #[test]
    fn metapool_descs_reflect_analysis() {
        let mut m = kernel_like_module();
        let i64t = m.types.i64();
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("typed", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let s = b.alloca(i64t);
            let one = b.c64(1);
            b.store(one, s);
            b.ret(None);
        }
        let out = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
        let pa = out.module.pool_annotations.as_ref().unwrap();
        assert!(out.report.th_metapools >= 1);
        assert!(pa
            .metapools
            .iter()
            .any(|d| d.type_homogeneous && d.elem_type.is_some()));
    }

    #[test]
    fn gep_static_safety_rules() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let arr = m.types.array(i32t, 8);
        let s = m.types.struct_type("rec", vec![i64t, arr]);
        let sp = m.types.ptr(s);
        let void = m.types.void();
        let fty = m.types.func(void, vec![sp, i64t], false);
        let f = m.add_function("t", fty, Linkage::Public);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let idx = b.param(1);
        let zero = b.c32(0);
        let one = b.c32(1);
        let three = b.c32(3);
        let nine = b.c32(9);
        let safe = vec![zero, one, three];
        let unsafe_dyn = vec![zero, one, idx];
        let unsafe_oob = vec![zero, one, nine];
        let func = m.func(f);
        assert!(gep_statically_safe(&m, func, &p, &safe));
        assert!(!gep_statically_safe(&m, func, &p, &unsafe_dyn));
        assert!(!gep_statically_safe(&m, func, &p, &unsafe_oob));
        assert!(!gep_statically_safe(&m, func, &p, &[one]));
    }
}
