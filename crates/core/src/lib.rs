//! # SVA safety-checking compiler and bytecode verifier
//!
//! The paper's primary contribution (paper §4–§5), in two halves:
//!
//! * [`compile()`] — the **safety-checking compiler**. Runs the pointer
//!   analysis, correlates kernel pools with points-to partitions
//!   (*metapools*), inserts object registrations (`pchk.reg.obj` /
//!   `pchk.drop.obj`) at every allocation, deallocation, global and stack
//!   object, promotes escaping stack objects to the heap, and encodes the
//!   metapool assignment as type annotations on the bytecode — the
//!   "encoded proof".
//!
//! * [`verifier`] — the **bytecode verifier**, the only part of this
//!   pipeline inside the trusted computing base. An *intraprocedural*
//!   type checker validates the metapool annotations (catching bugs in —
//!   or tampering with — the complex compiler), and only then inserts the
//!   run-time checks: bounds checks on `getelementptr`, load/store checks
//!   on non-type-homogeneous pools, and indirect-call checks, honouring the
//!   "reduced checks" rule for incomplete partitions.
//!
//! * [`transform`] — the §4.8 analysis-precision transforms: function
//!   cloning and indirect-call devirtualization.
//!
//! * [`inject`] — the §5 fault-injection experiment: seed the annotations
//!   with the four classes of pointer-analysis bugs and confirm the
//!   verifier rejects every one.

pub mod compile;
pub mod inject;
pub mod transform;
pub mod verifier;

pub use compile::{compile, CompileOptions, CompileReport, Compiled};
pub use inject::{inject_fault, FaultKind};
pub use verifier::{
    verify_and_insert_checks, verify_and_insert_checks_with, InsertOptions, PoolCheckError,
    VerifiedModule, VerifyReport,
};
