//! Fault injection into pointer-analysis results (paper §5).
//!
//! The paper evaluates the verifier by injecting "20 different bugs
//! (5 instances each of 4 different kinds) in the pointer analysis
//! results": incorrect variable aliasing, incorrect inter-node edges,
//! incorrect claims of type homogeneity, and insufficient merging of
//! points-to graph nodes. The verifier detected all 20. This module
//! reproduces the injection; `bench/verifier_injection` and the
//! integration tests reproduce the 20/20 result.

use sva_ir::{Callee, FuncId, Inst, Module, Operand, ValueId};

/// The four §5 bug classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Incorrect variable aliasing: a pointer value is re-annotated with a
    /// different metapool than the value it was derived from.
    VariableAliasing,
    /// Incorrect inter-node edge: a metapool's points-to edge is corrupted.
    InterNodeEdge,
    /// Incorrect claim of type homogeneity on a non-TH pool.
    FalseTypeHomogeneity,
    /// Insufficient merging: one partition is split into two, leaving
    /// values that flow together annotated with different pools.
    InsufficientMerging,
}

impl FaultKind {
    /// All four kinds.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::VariableAliasing,
        FaultKind::InterNodeEdge,
        FaultKind::FalseTypeHomogeneity,
        FaultKind::InsufficientMerging,
    ];

    /// Paper wording for the kind.
    pub fn describe(self) -> &'static str {
        match self {
            FaultKind::VariableAliasing => "incorrect variable aliasing",
            FaultKind::InterNodeEdge => "incorrect inter-node edges",
            FaultKind::FalseTypeHomogeneity => "incorrect claims of type homogeneity",
            FaultKind::InsufficientMerging => "insufficient merging of points-to graph nodes",
        }
    }
}

/// Injects the `seed`-th fault of the given kind into the module's pool
/// annotations. Returns a description of what was corrupted, or `None` if
/// no injection point of that kind exists for this seed.
///
/// Injection points are enumerated deterministically so experiments are
/// reproducible: seed *n* picks the *n*-th eligible site (wrapping).
pub fn inject_fault(m: &mut Module, kind: FaultKind, seed: usize) -> Option<String> {
    match kind {
        FaultKind::VariableAliasing => inject_aliasing(m, seed),
        FaultKind::InterNodeEdge => inject_edge(m, seed),
        FaultKind::FalseTypeHomogeneity => inject_th(m, seed),
        FaultKind::InsufficientMerging => inject_split(m, seed),
    }
}

/// Eligible sites: results of `gep` instructions (re-annotating one breaks
/// the `gep-same-pool` rule).
fn inject_aliasing(m: &mut Module, seed: usize) -> Option<String> {
    let mut sites: Vec<(FuncId, ValueId)> = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        let pa = m.pool_annotations.as_ref()?;
        for (_, iid) in f.inst_order() {
            if let Inst::Gep { .. } = f.inst(iid) {
                if let Some(v) = f.result_of(iid) {
                    if pa.value_pool(FuncId(fi as u32), v).is_some() {
                        sites.push((FuncId(fi as u32), v));
                    }
                }
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (fid, v) = sites[seed % sites.len()];
    let pa = m.pool_annotations.as_mut()?;
    let evil = pa.metapools.len() as u32;
    pa.metapools.push(sva_ir::MetaPoolDesc {
        name: format!("MPalias{seed}"),
        type_homogeneous: false,
        complete: true,
        elem_type: None,
        points_to: Vec::new(),
        fields_collapsed: false,
        userspace: false,
    });
    pa.value_pools[fid.0 as usize][v.0 as usize] = Some(evil);
    Some(format!(
        "re-annotated %{} in @{} with fresh pool {}",
        v.0,
        m.func(fid).name,
        evil
    ))
}

/// Eligible sites: metapools with a points-to edge that is actually used
/// by some load/store (corrupting it breaks `load-points-to`).
fn inject_edge(m: &mut Module, seed: usize) -> Option<String> {
    let pa = m.pool_annotations.as_ref()?;
    let mut used: Vec<u32> = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        for (_, iid) in f.inst_order() {
            if let Inst::Load { ptr } = f.inst(iid) {
                if f.result_of(iid)
                    .and_then(|v| pa.value_pool(FuncId(fi as u32), v))
                    .is_some()
                {
                    if let Operand::Value(pv) = ptr {
                        if let Some(pp) = pa.value_pool(FuncId(fi as u32), *pv) {
                            if !pa.metapools[pp as usize].points_to.is_empty() {
                                used.push(pp);
                            }
                        }
                    }
                }
            }
        }
    }
    used.sort_unstable();
    used.dedup();
    if used.is_empty() {
        return None;
    }
    let victim = used[seed % used.len()];
    let pa = m.pool_annotations.as_mut()?;
    let old = pa.metapools[victim as usize].points_to.clone();
    // Point every edge somewhere else (or drop them).
    let n = pa.metapools.len() as u32;
    if seed.is_multiple_of(2) {
        for (_, t) in pa.metapools[victim as usize].points_to.iter_mut() {
            *t = (*t + 1) % n;
        }
    } else {
        pa.metapools[victim as usize].points_to.clear();
    }
    Some(format!(
        "corrupted points-to edges of pool {victim} (was {old:?})"
    ))
}

/// Eligible sites: pools that are *not* TH (claiming TH on them violates
/// `th-elem-type` or `th-consistency`).
fn inject_th(m: &mut Module, seed: usize) -> Option<String> {
    let pa = m.pool_annotations.as_mut()?;
    let victims: Vec<usize> = pa
        .metapools
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.type_homogeneous)
        .map(|(i, _)| i)
        .collect();
    if victims.is_empty() {
        return None;
    }
    let v = victims[seed % victims.len()];
    pa.metapools[v].type_homogeneous = true;
    // Leave elem_type as-is: a None elem type trips `th-elem-type`; a
    // stale one trips `th-consistency` on the first conflicting pointer.
    Some(format!("claimed pool {v} type-homogeneous"))
}

/// Eligible sites: pools with at least two annotated values connected by
/// an instruction; splitting re-annotates one endpoint with a cloned pool.
fn inject_split(m: &mut Module, seed: usize) -> Option<String> {
    // Find a call or phi connecting two values of the same pool and break
    // one side. Calls *into* allocator functions are the trust boundary
    // where partitions are born (paper §4.4) — the verifier deliberately
    // does not bind them, so they are not injection targets.
    let allocator_fns: Vec<FuncId> = m
        .allocators
        .iter()
        .flat_map(|a| {
            [
                Some(a.alloc_fn.clone()),
                a.dealloc_fn.clone(),
                a.pool_create_fn.clone(),
                a.size_fn.clone(),
            ]
            .into_iter()
            .flatten()
        })
        .filter_map(|n| m.func_by_name(&n))
        .collect();
    let mut sites: Vec<(FuncId, ValueId, u32)> = Vec::new();
    {
        let pa = m.pool_annotations.as_ref()?;
        for (fi, f) in m.funcs.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for (_, iid) in f.inst_order() {
                match f.inst(iid) {
                    Inst::Phi { incomings, .. } => {
                        if let Some(res) = f.result_of(iid) {
                            if let Some(rp) = pa.value_pool(fid, res) {
                                let any_val = incomings
                                    .iter()
                                    .any(|(_, v)| matches!(v, Operand::Value(_)));
                                if any_val {
                                    sites.push((fid, res, rp));
                                }
                            }
                        }
                    }
                    Inst::Call {
                        callee: Callee::Direct(t),
                        args,
                    } => {
                        if allocator_fns.contains(t) {
                            continue;
                        }
                        let tf = m.func(*t);
                        for (a, p) in args.iter().zip(tf.params.iter()) {
                            if let Operand::Value(av) = a {
                                if let (Some(ap), Some(_)) =
                                    (pa.value_pool(fid, *av), pa.value_pool(*t, *p))
                                {
                                    sites.push((fid, *av, ap));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (fid, v, old) = sites[seed % sites.len()];
    let pa = m.pool_annotations.as_mut()?;
    let split = pa.metapools.len() as u32;
    let mut clone = pa.metapools[old as usize].clone();
    clone.name = format!("MPsplit{seed}");
    pa.metapools.push(clone);
    pa.value_pools[fid.0 as usize][v.0 as usize] = Some(split);
    Some(format!(
        "split pool {old}: %{} in @{} moved to clone {split}",
        v.0,
        m.func(fid).name
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::verifier::typecheck_module;
    use sva_analysis::AnalysisConfig;
    use sva_ir::build::FunctionBuilder;
    use sva_ir::{AllocKind, AllocatorDecl, GlobalInit, Linkage, SizeSpec};

    /// A module with enough pointer structure that all four fault kinds
    /// have injection points.
    fn rich_module() -> Module {
        let mut m = Module::new("rich");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let pp64 = m.types.ptr(p64);
        let void = m.types.void();
        let kty = m.types.func(bp, vec![i64t], false);
        let km = m.add_function("kmalloc", kty, Linkage::Public);
        m.declare_allocator(AllocatorDecl {
            name: "kmalloc".into(),
            kind: AllocKind::Ordinary,
            alloc_fn: "kmalloc".into(),
            dealloc_fn: None,
            pool_create_fn: None,
            pool_destroy_fn: None,
            size: SizeSpec::Arg(0),
            size_fn: None,
            pool_arg: None,
            backed_by: None,
        });
        let hty = m.types.func(void, vec![p64], false);
        let helper = m.add_function("helper", hty, Linkage::Internal);
        let fty = m.types.func(void, vec![pp64, i64t, i64t], false);
        let f = m.add_function("main3", fty, Linkage::Public);
        let gslot = m.add_global("gslot", p64, GlobalInit::Zero, false);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, km);
            let n = b.null(i8);
            b.ret(Some(n));
        }
        {
            let mut b = FunctionBuilder::new(&mut m, helper);
            let p = b.param(0);
            let one = b.c64(1);
            b.store(one, p);
            b.ret(None);
        }
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let pp = b.param(0);
            let idx = b.param(1);
            let cond0 = b.param(2);
            let t = b.block("t");
            let e = b.block("e");
            let j = b.block("j");
            let p = b.load(pp);
            let q = b.index_ptr(p, idx);
            let zero = b.c64(0);
            let c = b.icmp(sva_ir::IPred::Ne, cond0, zero);
            b.cond_br(c, t, e);
            b.switch_to(t);
            b.br(j);
            b.switch_to(e);
            b.br(j);
            b.switch_to(j);
            let merged = b.phi(p64, vec![(t, p), (e, q)]);
            b.call(helper, vec![merged]);
            // A second indexing site so every fault kind has several
            // injection points.
            let further = b.index_ptr(merged, idx);
            b.call(helper, vec![further]);
            // A second pointer-load chain (through a global slot) so the
            // inter-node-edge kind also has several victim pools.
            let zero0 = b.c64(0);
            let gp = b.gep(sva_ir::Operand::Global(gslot), vec![zero0]);
            let p2 = b.load(gp);
            let q2 = b.index_ptr(p2, idx);
            b.call(helper, vec![q2]);
            b.ret(None);
        }
        compile(m, &AnalysisConfig::kernel(), &CompileOptions::default()).module
    }

    #[test]
    fn clean_module_typechecks() {
        let m = rich_module();
        let errs = typecheck_module(&m);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn all_twenty_injected_faults_detected() {
        // The paper's experiment: 5 instances × 4 kinds, all detected.
        let mut injected = 0;
        let mut detected = 0;
        for kind in FaultKind::ALL {
            for seed in 0..5 {
                let mut m = rich_module();
                match inject_fault(&mut m, kind, seed) {
                    Some(desc) => {
                        injected += 1;
                        let errs = typecheck_module(&m);
                        assert!(!errs.is_empty(), "undetected {kind:?} seed {seed}: {desc}");
                        detected += 1;
                    }
                    None => panic!("no injection point for {kind:?} seed {seed}"),
                }
            }
        }
        assert_eq!((injected, detected), (20, 20));
    }

    #[test]
    fn descriptions_are_informative() {
        for kind in FaultKind::ALL {
            assert!(!kind.describe().is_empty());
        }
        let mut m = rich_module();
        let d = inject_fault(&mut m, FaultKind::VariableAliasing, 0).unwrap();
        assert!(d.contains("re-annotated"));
    }

    #[test]
    fn injection_is_deterministic() {
        // The experiment must be reproducible: a (kind, seed) pair always
        // picks the same injection point and produces the same module.
        for kind in FaultKind::ALL {
            let mut a = rich_module();
            let mut b = rich_module();
            let da = inject_fault(&mut a, kind, 2);
            let db = inject_fault(&mut b, kind, 2);
            assert_eq!(da, db, "{kind:?}");
            assert_eq!(
                sva_ir::bytecode::encode_module(&a),
                sva_ir::bytecode::encode_module(&b),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn injection_actually_mutates_the_annotations() {
        let clean_bytes = sva_ir::bytecode::encode_module(&rich_module());
        for kind in FaultKind::ALL {
            let mut m = rich_module();
            inject_fault(&mut m, kind, 0).unwrap();
            assert_ne!(
                sva_ir::bytecode::encode_module(&m),
                clean_bytes,
                "{kind:?} left the module unchanged"
            );
        }
    }

    #[test]
    fn injection_without_annotations_is_a_noop() {
        for kind in FaultKind::ALL {
            let mut m = Module::new("bare");
            assert!(inject_fault(&mut m, kind, 0).is_none(), "{kind:?}");
        }
    }

    #[test]
    fn seeds_enumerate_multiple_injection_points() {
        // Seeds wrap over the eligible sites; the kinds with several sites
        // in this fixture must actually spread over them — otherwise "5
        // instances" of a kind would be 5 copies of one bug. (The TH kind
        // has a single non-TH partition here; the full-kernel experiment in
        // `bench/verifier_injection` exercises its spread.)
        let expect_distinct = [
            (FaultKind::VariableAliasing, 2),
            (FaultKind::InterNodeEdge, 2),
            (FaultKind::FalseTypeHomogeneity, 1),
            (FaultKind::InsufficientMerging, 2),
        ];
        for (kind, want) in expect_distinct {
            let mut descs = std::collections::BTreeSet::new();
            for seed in 0..5 {
                let mut m = rich_module();
                descs.insert(inject_fault(&mut m, kind, seed).unwrap());
            }
            assert!(
                descs.len() >= want,
                "{kind:?}: {} distinct sites, wanted >= {want}",
                descs.len()
            );
        }
    }
}
