//! The bytecode verifier — the only trusted piece of the pipeline (§5).
//!
//! The verifier first runs the base structural/SSA/type verifier from
//! `sva-ir`, then **type-checks the metapool annotations** with purely
//! intraprocedural rules ("the typing rules only require local
//! information"):
//!
//! * indexing (`getelementptr`) and pointer casts preserve the metapool
//!   (indexing additionally lands in the annotated field cell);
//! * a load through cell `c` of pool `M` yields a pointer into
//!   `M.points_to[c]`;
//! * a store of a pointer through cell `c` of pool `M` requires the
//!   value's pool to be `M.points_to[c]`;
//! * φ/select merge only pointers of one metapool;
//! * call arguments and returns match the callee's annotated pools;
//! * a pool claimed type-homogeneous must have a consistent element type
//!   across every pointer annotated with it.
//!
//! Only after the proof checks out does the verifier insert the run-time
//! checks of §4.5 — bounds checks on unproven indexing, load/store checks
//! on non-TH pools, indirect-call checks — applying the *reduced checks*
//! rule to incomplete partitions.

use std::collections::HashMap;

use sva_ir::verify::{verify_module_with, VerifyOptions};
use sva_ir::{
    Callee, CastOp, FuncId, Inst, InstId, Intrinsic, Module, Operand, PoolAnnotations, Type,
    ValueId,
};

use crate::compile::gep_statically_safe;

/// A metapool type-checking failure: the "proof" does not check out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolCheckError {
    /// Function (by name) where the rule failed.
    pub func: String,
    /// Offending instruction.
    pub inst: Option<InstId>,
    /// Which rule failed.
    pub rule: &'static str,
    /// Human-readable details.
    pub msg: String,
}

impl std::fmt::Display for PoolCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] rule {}: {}", self.func, self.rule, self.msg)
    }
}

impl std::error::Error for PoolCheckError {}

/// Statistics from verification and check insertion.
#[derive(Clone, Copy, Default, Debug)]
pub struct VerifyReport {
    /// Bounds checks inserted.
    pub bounds_checks: u32,
    /// Bounds checks skipped: statically proven safe.
    pub bounds_static_safe: u32,
    /// Bounds checks emitted against statically known bounds (no splay
    /// lookup), paper Fig. 2 line 19.
    pub bounds_known_range: u32,
    /// Load/store checks inserted.
    pub ls_checks: u32,
    /// Load/store checks skipped: type-homogeneous pool.
    pub ls_skipped_th: u32,
    /// Load/store checks skipped: incomplete pool (reduced checks).
    pub ls_skipped_incomplete: u32,
    /// Indirect-call checks inserted.
    pub func_checks: u32,
    /// Indirect-call checks skipped: incomplete target set.
    pub func_skipped_incomplete: u32,
}

/// A module that passed the verifier with run-time checks inserted. The
/// SVM only accepts this type when safety enforcement is on.
#[derive(Debug)]
pub struct VerifiedModule {
    /// The checked, instrumented module.
    pub module: Module,
    /// Verification statistics.
    pub report: VerifyReport,
}

/// Check-insertion options (ablations of the paper's §7.1.3 optimization
/// discussion).
#[derive(Clone, Copy, Debug)]
pub struct InsertOptions {
    /// Elide bounds checks on statically-provable-safe `getelementptr`s
    /// (§7.1.3 optimization 3). Disabling this is the "check everything"
    /// ablation.
    pub elide_static_safe: bool,
    /// When the verifier can determine the bounds expressions of the
    /// source object — the base pointer is directly an allocation result,
    /// so start and size are in scope — check against them directly
    /// instead of a splay lookup (paper §4.5 / Fig. 2 line 19).
    pub known_bounds: bool,
}

impl Default for InsertOptions {
    fn default() -> Self {
        InsertOptions {
            elide_static_safe: true,
            known_bounds: true,
        }
    }
}

/// Runs the full verifier: base IR checks, metapool proof checking, then
/// run-time check insertion.
pub fn verify_and_insert_checks(module: Module) -> Result<VerifiedModule, Vec<PoolCheckError>> {
    verify_and_insert_checks_with(module, InsertOptions::default())
}

/// [`verify_and_insert_checks`] with explicit insertion options.
pub fn verify_and_insert_checks_with(
    module: Module,
    opts: InsertOptions,
) -> Result<VerifiedModule, Vec<PoolCheckError>> {
    // Base structural verification; `pchk.reg/drop` inserted by the
    // (untrusted) compiler are allowed, the *check* operations are not —
    // but the compiler never emits those, so run in permissive mode and
    // reject explicitly below if check ops are present.
    let base = verify_module_with(
        &module,
        VerifyOptions {
            allow_check_intrinsics: true,
        },
    );
    if !base.is_empty() {
        return Err(base
            .into_iter()
            .map(|e| PoolCheckError {
                func: e.func.unwrap_or_default(),
                inst: e.inst,
                rule: "base-ir",
                msg: e.msg,
            })
            .collect());
    }
    let mut errs = Vec::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        for (_, iid) in f.inst_order() {
            if let Inst::Call {
                callee: Callee::Intrinsic(i),
                ..
            } = f.inst(iid)
            {
                if matches!(
                    i,
                    Intrinsic::BoundsCheck
                        | Intrinsic::BoundsCheckRange
                        | Intrinsic::LsCheck
                        | Intrinsic::GetBounds
                        | Intrinsic::FuncCheck
                ) {
                    errs.push(PoolCheckError {
                        func: f.name.clone(),
                        inst: Some(iid),
                        rule: "no-preexisting-checks",
                        msg: format!("input bytecode already contains `{}`", i.name()),
                    });
                }
            }
        }
        let _ = fi;
    }
    if !errs.is_empty() {
        return Err(errs);
    }

    let Some(pa) = module.pool_annotations.clone() else {
        return Err(vec![PoolCheckError {
            func: String::new(),
            inst: None,
            rule: "annotations-present",
            msg: "module has no pool annotations (not produced by the safety compiler?)".into(),
        }]);
    };

    let errs = typecheck_annotations(&module, &pa);
    if !errs.is_empty() {
        return Err(errs);
    }

    let mut module = module;
    let report = insert_checks(&mut module, &pa, opts);
    Ok(VerifiedModule { module, report })
}

/// Runs only the metapool proof check (no check insertion) — used by the
/// fault-injection experiment.
pub fn typecheck_module(module: &Module) -> Vec<PoolCheckError> {
    match &module.pool_annotations {
        Some(pa) => typecheck_annotations(module, pa),
        None => vec![PoolCheckError {
            func: String::new(),
            inst: None,
            rule: "annotations-present",
            msg: "module has no pool annotations".into(),
        }],
    }
}

struct Rules<'a> {
    m: &'a Module,
    pa: &'a PoolAnnotations,
    errs: Vec<PoolCheckError>,
    /// Allocator boundary functions where call binding is exempt.
    allocator_fns: Vec<FuncId>,
}

/// True when `needle` occurs (transitively) as a field/element type of
/// `hay` — the relation that makes interior pointers pool-compatible.
fn type_nested_in(types: &sva_ir::TypeTable, hay: sva_ir::TypeId, needle: sva_ir::TypeId) -> bool {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![hay];
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        if t == needle {
            return true;
        }
        match types.get(t) {
            Type::Array(e, _) => stack.push(*e),
            Type::Struct(_) => stack.extend(types.struct_fields(t).iter().copied()),
            _ => {}
        }
    }
    false
}

fn typecheck_annotations(m: &Module, pa: &PoolAnnotations) -> Vec<PoolCheckError> {
    let allocator_fns = m
        .allocators
        .iter()
        .flat_map(|a| {
            [
                Some(a.alloc_fn.clone()),
                a.dealloc_fn.clone(),
                a.size_fn.clone(),
            ]
            .into_iter()
            .flatten()
        })
        .filter_map(|n| m.func_by_name(&n))
        .collect();
    let mut r = Rules {
        m,
        pa,
        errs: Vec::new(),
        allocator_fns,
    };

    // Structural sanity of the annotation tables themselves.
    if pa.value_pools.len() != m.funcs.len() || pa.global_pools.len() != m.globals.len() {
        r.errs.push(PoolCheckError {
            func: String::new(),
            inst: None,
            rule: "tables-shape",
            msg: "annotation tables do not match module shape".into(),
        });
        return r.errs;
    }
    for (fi, f) in m.funcs.iter().enumerate() {
        if pa.value_pools[fi].len() < f.num_values() {
            r.errs.push(PoolCheckError {
                func: f.name.clone(),
                inst: None,
                rule: "tables-shape",
                msg: "value pool row shorter than value count".into(),
            });
            return r.errs;
        }
        for mp in pa.value_pools[fi].iter().flatten() {
            if *mp as usize >= pa.metapools.len() {
                r.errs.push(PoolCheckError {
                    func: f.name.clone(),
                    inst: None,
                    rule: "tables-shape",
                    msg: format!("metapool id {mp} out of range"),
                });
                return r.errs;
            }
        }
    }

    // TH consistency: every pointer value annotated with a TH pool must
    // agree with the pool's element type.
    for (mpid, desc) in pa.metapools.iter().enumerate() {
        if !desc.type_homogeneous {
            continue;
        }
        let Some(elem) = desc.elem_type else {
            r.errs.push(PoolCheckError {
                func: String::new(),
                inst: None,
                rule: "th-elem-type",
                msg: format!("pool {} claims TH without an element type", desc.name),
            });
            continue;
        };
        for (fi, f) in m.funcs.iter().enumerate() {
            for v in 0..f.num_values() {
                if pa.value_pools[fi][v] != Some(mpid as u32) {
                    continue;
                }
                let ty = f.value_type(ValueId(v as u32));
                if !m.types.is_ptr(ty) {
                    continue;
                }
                let p = m.types.pointee(ty);
                // Byte-like pointees (i8, [N x i8]) are opaque views that
                // any pool tolerates — mirroring the analysis, which never
                // lets them define a pool's element type.
                let opaque = match m.types.get(p) {
                    Type::Int(8) => true,
                    Type::Array(e, _) => matches!(m.types.get(*e), Type::Int(8)),
                    _ => false,
                };
                // Interior pointers to (transitively nested) field types of
                // the element are fine: field indexing inside a TH object
                // stays inside the pool.
                if !opaque
                    && !m.types.same_or_array_of(p, elem)
                    && !type_nested_in(&m.types, elem, p)
                {
                    r.errs.push(PoolCheckError {
                        func: f.name.clone(),
                        inst: None,
                        rule: "th-consistency",
                        msg: format!(
                            "pool {} is TH over {} but %{} points to {}",
                            desc.name,
                            m.types.display(elem),
                            v,
                            m.types.display(p)
                        ),
                    });
                }
            }
        }
    }

    for (fi, _) in m.funcs.iter().enumerate() {
        r.check_function(FuncId(fi as u32));
    }
    r.errs
}

impl Rules<'_> {
    fn err(&mut self, f: FuncId, inst: Option<InstId>, rule: &'static str, msg: String) {
        self.errs.push(PoolCheckError {
            func: self.m.func(f).name.clone(),
            inst,
            rule,
            msg,
        });
    }

    fn pool_of(&self, f: FuncId, op: &Operand) -> Option<u32> {
        match op {
            Operand::Value(v) => self.pa.value_pool(f, *v),
            Operand::Global(g) => self.pa.global_pools[g.0 as usize],
            _ => None,
        }
    }

    fn cell_of(&self, f: FuncId, op: &Operand) -> u32 {
        match op {
            Operand::Value(v) => self.pa.value_cell(f, *v),
            _ => 0,
        }
    }

    fn points_to(&self, mp: u32, cell: u32) -> Option<u32> {
        self.pa.edge(mp, cell)
    }

    fn check_function(&mut self, fid: FuncId) {
        let f = self.m.func(fid);
        // Functions with no annotated values were not compiled with the
        // safety compiler (excluded modules): nothing to check.
        let any = (0..f.num_values()).any(|v| self.pa.value_pool(fid, ValueId(v as u32)).is_some());
        if !any {
            return;
        }
        let order: Vec<InstId> = f.inst_order().map(|(_, i)| i).collect();
        for iid in order {
            let inst = f.inst(iid).clone();
            let res_pool = f.result_of(iid).and_then(|v| self.pa.value_pool(fid, v));
            match &inst {
                Inst::Gep { base, indices } => {
                    let base_pool = self.pool_of(fid, base);
                    if base_pool != res_pool {
                        self.err(
                            fid,
                            Some(iid),
                            "gep-same-pool",
                            format!("gep base pool {base_pool:?} != result pool {res_pool:?}"),
                        );
                    }
                    // The landing cell must match the annotation (unless the
                    // pool lost field sensitivity, which forces cell 0).
                    if let (Some(mp), Some(res)) = (base_pool, f.result_of(iid)) {
                        let bty = f.operand_type(base, self.m);
                        let bcell = self.cell_of(fid, base);
                        let want = if self.pa.metapools[mp as usize].fields_collapsed {
                            0
                        } else {
                            sva_analysis::analyze::gep_cell(&self.m.types, bty, bcell, indices)
                        };
                        let got = self.pa.value_cell(fid, res);
                        if got != want {
                            self.err(
                                fid,
                                Some(iid),
                                "gep-cell",
                                format!("gep lands in cell {want} but annotation says {got}"),
                            );
                        }
                    }
                }
                Inst::Cast { op, val, .. } => {
                    if matches!(op, CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr) {
                        let vp = self.pool_of(fid, val);
                        // inttoptr of an untracked integer has no source
                        // pool; a fresh (unknown) result pool is fine.
                        if vp.is_some() && vp != res_pool {
                            self.err(
                                fid,
                                Some(iid),
                                "cast-same-pool",
                                format!("cast source pool {vp:?} != result pool {res_pool:?}"),
                            );
                        }
                    }
                }
                Inst::Load { ptr } => {
                    if let Some(rp) = res_pool {
                        match self.pool_of(fid, ptr) {
                            Some(pp) => {
                                let cell = self.cell_of(fid, ptr);
                                let edge = self.points_to(pp, cell);
                                if edge != Some(rp) {
                                    self.err(
                                        fid,
                                        Some(iid),
                                        "load-points-to",
                                        format!(
                                            "load from pool {pp} cell {cell} yields pool {rp} but edge is {edge:?}"
                                        ),
                                    );
                                }
                            }
                            None => self.err(
                                fid,
                                Some(iid),
                                "load-points-to",
                                "pointer has no pool but result does".into(),
                            ),
                        }
                    }
                }
                Inst::Store { val, ptr } => {
                    let vp = self.pool_of(fid, val);
                    if let Some(vp) = vp {
                        // Only pointer-typed stores constrain the edge.
                        let vty = f.operand_type(val, self.m);
                        if self.m.types.is_ptr(vty) {
                            match self.pool_of(fid, ptr) {
                                Some(pp) => {
                                    let cell = self.cell_of(fid, ptr);
                                    let edge = self.points_to(pp, cell);
                                    if edge != Some(vp) {
                                        self.err(
                                            fid,
                                            Some(iid),
                                            "store-points-to",
                                            format!(
                                                "store of pool {vp} into pool {pp} cell {cell} but edge is {edge:?}"
                                            ),
                                        );
                                    }
                                }
                                None => self.err(
                                    fid,
                                    Some(iid),
                                    "store-points-to",
                                    "pointer has no pool but stored value does".into(),
                                ),
                            }
                        }
                    }
                }
                Inst::Bin { lhs, rhs, .. } => {
                    // Pointer-sized integer tracking (§4.8): the result
                    // inherits the base operand's pool (left side first,
                    // mirroring the analysis). Only checked when both ends
                    // carry annotations.
                    if let Some(rp) = res_pool {
                        let src = match (lhs, rhs) {
                            (Operand::Value(_), _) => self.pool_of(fid, lhs),
                            (_, Operand::Value(_)) => self.pool_of(fid, rhs),
                            _ => None,
                        };
                        if let Some(sp) = src {
                            if sp != rp {
                                self.err(
                                    fid,
                                    Some(iid),
                                    "bin-propagate",
                                    format!(
                                        "arithmetic result pool {rp} != base operand pool {sp}"
                                    ),
                                );
                            }
                        }
                    }
                }
                Inst::Phi { incomings, .. } => {
                    if let Some(rp) = res_pool {
                        for (_, v) in incomings {
                            if matches!(
                                v,
                                Operand::Null(_) | Operand::Undef(_) | Operand::ConstInt(..)
                            ) {
                                continue;
                            }
                            let vp = self.pool_of(fid, v);
                            if vp != Some(rp) {
                                self.err(
                                    fid,
                                    Some(iid),
                                    "phi-same-pool",
                                    format!("phi merges pool {vp:?} into pool {rp}"),
                                );
                            }
                        }
                    }
                }
                Inst::Select { tval, fval, .. } => {
                    if let Some(rp) = res_pool {
                        for v in [tval, fval] {
                            if matches!(
                                v,
                                Operand::Null(_) | Operand::Undef(_) | Operand::ConstInt(..)
                            ) {
                                continue;
                            }
                            let vp = self.pool_of(fid, v);
                            if vp != Some(rp) {
                                self.err(
                                    fid,
                                    Some(iid),
                                    "select-same-pool",
                                    format!("select merges pool {vp:?} into pool {rp}"),
                                );
                            }
                        }
                    }
                }
                Inst::Call {
                    callee: Callee::Direct(t),
                    args,
                } => {
                    if self.allocator_fns.contains(t) {
                        // Allocator boundary: partitions are born here.
                        continue;
                    }
                    let tf = self.m.func(*t);
                    // Callee not compiled with annotations → skip.
                    let t_any = (0..tf.num_values())
                        .any(|v| self.pa.value_pool(*t, ValueId(v as u32)).is_some());
                    if !t_any {
                        continue;
                    }
                    for (a, p) in args.iter().zip(tf.params.iter()) {
                        let pty = tf.value_type(*p);
                        if !self.m.types.is_ptr(pty) {
                            continue;
                        }
                        if matches!(a, Operand::Null(_) | Operand::Undef(_)) {
                            continue;
                        }
                        let ap = self.pool_of(fid, a);
                        let pp = self.pa.value_pool(*t, *p);
                        if ap != pp {
                            self.err(
                                fid,
                                Some(iid),
                                "call-arg-pool",
                                format!(
                                    "arg pool {ap:?} != param pool {pp:?} calling @{}",
                                    tf.name
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Inserts the §4.5 run-time checks into a proof-checked module.
fn insert_checks(m: &mut Module, pa: &PoolAnnotations, opts: InsertOptions) -> VerifyReport {
    let mut report = VerifyReport::default();
    let i64t = m.types.i64();
    let call_sets: HashMap<(u32, u32), u32> = pa
        .call_sets
        .iter()
        .map(|(f, i, s)| ((*f, *i), *s))
        .collect();

    for fi in 0..m.funcs.len() {
        let fid = FuncId(fi as u32);
        let any =
            (0..m.func(fid).num_values()).any(|v| pa.value_pool(fid, ValueId(v as u32)).is_some());
        if !any {
            continue;
        }
        let mut placements: Vec<(InstId, bool /*after*/, InstId)> = Vec::new();
        let order: Vec<InstId> = m.func(fid).inst_order().map(|(_, i)| i).collect();
        for iid in order {
            let inst = m.func(fid).inst(iid).clone();
            match &inst {
                Inst::Gep { base, indices } => {
                    let Some(res) = m.func(fid).result_of(iid) else {
                        continue;
                    };
                    let Some(mp) = pa.value_pool(fid, res) else {
                        continue;
                    };
                    if opts.elide_static_safe && gep_statically_safe(m, m.func(fid), base, indices)
                    {
                        report.bounds_static_safe += 1;
                        continue;
                    }
                    // Known-bounds form (Fig. 2 line 19): the base pointer
                    // is an allocation result, so its bounds expressions
                    // (start = base, end = base + size-argument) are in
                    // scope and SSA dominance makes them usable here.
                    if opts.known_bounds {
                        if let Some(size_op) = alloc_size_operand(m, fid, base) {
                            let i64w = i64t;
                            let (pi, piv) = m.func_mut(fid).add_inst_detached(
                                Inst::Cast {
                                    op: CastOp::PtrToInt,
                                    val: *base,
                                    to: i64w,
                                },
                                Some(i64w),
                            );
                            let (endi, endv) = m.func_mut(fid).add_inst_detached(
                                Inst::Bin {
                                    op: sva_ir::BinOp::Add,
                                    lhs: Operand::Value(piv.unwrap()),
                                    rhs: size_op,
                                },
                                Some(i64w),
                            );
                            let args = vec![
                                Operand::Value(piv.unwrap()),
                                Operand::Value(res),
                                Operand::Value(endv.unwrap()),
                            ];
                            let (chk, _) = m.func_mut(fid).add_inst_detached(
                                Inst::Call {
                                    callee: Callee::Intrinsic(Intrinsic::BoundsCheckRange),
                                    args,
                                },
                                None,
                            );
                            placements.push((iid, true, pi));
                            placements.push((iid, true, endi));
                            placements.push((iid, true, chk));
                            report.bounds_known_range += 1;
                            continue;
                        }
                    }
                    let args = vec![
                        Operand::ConstInt(mp as i64, i64t),
                        *base,
                        Operand::Value(res),
                    ];
                    let (chk, _) = m.func_mut(fid).add_inst_detached(
                        Inst::Call {
                            callee: Callee::Intrinsic(Intrinsic::BoundsCheck),
                            args,
                        },
                        None,
                    );
                    placements.push((iid, true, chk));
                    report.bounds_checks += 1;
                }
                Inst::Load { ptr } | Inst::Store { ptr, .. } => {
                    let mp = match ptr {
                        Operand::Value(v) => pa.value_pool(fid, *v),
                        Operand::Global(g) => pa.global_pools[g.0 as usize],
                        _ => None,
                    };
                    let Some(mp) = mp else { continue };
                    let desc = &pa.metapools[mp as usize];
                    if desc.type_homogeneous {
                        report.ls_skipped_th += 1;
                        continue;
                    }
                    if !desc.complete {
                        // Reduced checks (paper §4.5): a load-store check on
                        // an incomplete partition is useless.
                        report.ls_skipped_incomplete += 1;
                        continue;
                    }
                    let args = vec![Operand::ConstInt(mp as i64, i64t), *ptr];
                    let (chk, _) = m.func_mut(fid).add_inst_detached(
                        Inst::Call {
                            callee: Callee::Intrinsic(Intrinsic::LsCheck),
                            args,
                        },
                        None,
                    );
                    placements.push((iid, false, chk));
                    report.ls_checks += 1;
                }
                Inst::Call {
                    callee: Callee::Indirect(fp),
                    ..
                } => match call_sets.get(&(fid.0, iid.0)) {
                    Some(set) => {
                        let args = vec![Operand::ConstInt(*set as i64, i64t), *fp];
                        let (chk, _) = m.func_mut(fid).add_inst_detached(
                            Inst::Call {
                                callee: Callee::Intrinsic(Intrinsic::FuncCheck),
                                args,
                            },
                            None,
                        );
                        placements.push((iid, false, chk));
                        report.func_checks += 1;
                    }
                    None => {
                        report.func_skipped_incomplete += 1;
                    }
                },
                _ => {}
            }
        }
        splice_checks(m.func_mut(fid), placements);
    }
    report
}

/// If `base` is directly the result of a declared allocator call whose
/// byte size is an argument, returns that size operand (typed i64).
fn alloc_size_operand(m: &Module, fid: FuncId, base: &Operand) -> Option<Operand> {
    let f = m.func(fid);
    // Look through bitcasts: `fi = (fib_info*) kmalloc(...)` keeps the
    // allocation's bounds (the paper's Fig. 2 does exactly this).
    let mut cur = *base;
    for _ in 0..4 {
        let Operand::Value(v) = cur else { return None };
        let sva_ir::ValueDef::Inst(def) = f.value_defs[v.0 as usize] else {
            return None;
        };
        match f.inst(def) {
            Inst::Cast {
                op: CastOp::Bitcast,
                val,
                ..
            } => cur = *val,
            Inst::Call {
                callee: Callee::Direct(t),
                args,
            } => {
                let tname = &m.func(*t).name;
                let alloc = m.allocator_for_alloc_fn(tname)?;
                let sva_ir::SizeSpec::Arg(n) = alloc.size else {
                    return None;
                };
                let size_op = *args.get(n)?;
                // Only i64-typed size operands can feed the add directly.
                let ty = f.operand_type(&size_op, m);
                return if matches!(m.types.get(ty), Type::Int(64)) {
                    Some(size_op)
                } else {
                    None
                };
            }
            _ => return None,
        }
    }
    None
}

fn splice_checks(f: &mut sva_ir::Function, placements: Vec<(InstId, bool, InstId)>) {
    if placements.is_empty() {
        return;
    }
    let mut before: HashMap<InstId, Vec<InstId>> = HashMap::new();
    let mut after: HashMap<InstId, Vec<InstId>> = HashMap::new();
    for (anchor, is_after, inst) in placements {
        if is_after {
            after.entry(anchor).or_default().push(inst);
        } else {
            before.entry(anchor).or_default().push(inst);
        }
    }
    for b in &mut f.blocks {
        let old = std::mem::take(&mut b.insts);
        let mut newlist = Vec::with_capacity(old.len());
        for iid in old {
            if let Some(pre) = before.get(&iid) {
                newlist.extend(pre.iter().copied());
            }
            newlist.push(iid);
            if let Some(post) = after.get(&iid) {
                newlist.extend(post.iter().copied());
            }
        }
        b.insts = newlist;
    }
}

/// Identifier of a typed pointer for external consumers: `TypeId` of the
/// pointee plus the metapool name — the paper's `int *M1 Q` notation.
pub fn annotated_type(m: &Module, pa: &PoolAnnotations, f: FuncId, v: ValueId) -> Option<String> {
    let mp = pa.value_pool(f, v)?;
    let ty = m.func(f).value_type(v);
    if !m.types.is_ptr(ty) {
        return None;
    }
    let pointee = m.types.pointee(ty);
    Some(format!(
        "{} *{} ",
        m.types.display(pointee),
        pa.metapools[mp as usize].name
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use sva_analysis::AnalysisConfig;
    use sva_ir::build::FunctionBuilder;
    use sva_ir::{AllocKind, AllocatorDecl, Linkage, SizeSpec};

    fn kernel_module() -> Module {
        let mut m = Module::new("k");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let i64t = m.types.i64();
        let void = m.types.void();
        // A real bump allocator so VM-run tests allocate usable memory.
        let brk0 = sva_vm::KHEAP_BASE.to_le_bytes().to_vec();
        let g_brk = m.add_global("brk", i64t, sva_ir::GlobalInit::Bytes(brk0), false);
        let kty = m.types.func(bp, vec![i64t], false);
        let kmalloc = m.add_function("kmalloc", kty, Linkage::Public);
        let fty = m.types.func(void, vec![bp], false);
        let kfree = m.add_function("kfree", fty, Linkage::Public);
        m.declare_allocator(AllocatorDecl {
            name: "kmalloc".into(),
            kind: AllocKind::Ordinary,
            alloc_fn: "kmalloc".into(),
            dealloc_fn: Some("kfree".into()),
            pool_create_fn: None,
            pool_destroy_fn: None,
            size: SizeSpec::Arg(0),
            size_fn: None,
            pool_arg: None,
            backed_by: None,
        });
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, kmalloc);
            let sz = b.param(0);
            let cur = b.load(sva_ir::Operand::Global(g_brk));
            let new = b.add(cur, sz);
            b.store(new, sva_ir::Operand::Global(g_brk));
            let p = b.inttoptr(cur, i8);
            b.ret(Some(p));
        }
        {
            let mut b = FunctionBuilder::new(&mut m, kfree);
            b.ret(None);
        }
        m
    }

    fn compiled_with_array_walk() -> Module {
        let mut m = kernel_module();
        let i64t = m.types.i64();
        let void = m.types.void();
        let fty = m.types.func(void, vec![i64t], false);
        let f = m.add_function("walker", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let idx = b.param(0);
            let sz = b.c64(256);
            let p = b.call_named("kmalloc", vec![sz]).unwrap();
            let q = b.index_ptr(p, idx); // dynamic index → bounds check
            let zero = b.c8(0);
            b.store(zero, q);
            b.ret(None);
        }
        compile(m, &AnalysisConfig::kernel(), &CompileOptions::default()).module
    }

    #[test]
    fn verifier_accepts_compiler_output() {
        let m = compiled_with_array_walk();
        let out = verify_and_insert_checks(m).expect("verifies");
        // The kmalloc-based gep gets the known-bounds form (Fig. 2 line
        // 19); nothing needs a splay-based check here.
        assert!(
            out.report.bounds_checks + out.report.bounds_known_range >= 1,
            "{:?}",
            out.report
        );
        assert!(out.report.bounds_known_range >= 1, "{:?}", out.report);
    }

    #[test]
    fn verifier_inserts_bounds_check_after_dynamic_gep() {
        let m = compiled_with_array_walk();
        let out = verify_and_insert_checks(m).unwrap();
        let f = out.module.func_by_name("walker").unwrap();
        let func = out.module.func(f);
        let mut saw_gep = false;
        let mut check_follows = false;
        let mut window = Vec::new();
        for (_, iid) in func.inst_order() {
            let inst = func.inst(iid);
            if matches!(inst, Inst::Gep { .. }) {
                saw_gep = true;
                window = vec![iid];
            } else if saw_gep && window.len() < 4 {
                if matches!(
                    inst,
                    Inst::Call {
                        callee: Callee::Intrinsic(
                            Intrinsic::BoundsCheck | Intrinsic::BoundsCheckRange
                        ),
                        ..
                    }
                ) {
                    check_follows = true;
                }
                window.push(iid);
            }
        }
        assert!(saw_gep && check_follows);
    }

    #[test]
    fn known_bounds_form_still_catches_overflow() {
        let m = compiled_with_array_walk();
        let out = verify_and_insert_checks(m).unwrap();
        let mut vm = sva_vm::Vm::new(
            out.module,
            sva_vm::VmConfig {
                kind: sva_vm::KernelKind::SvaSafe,
                ..Default::default()
            },
        )
        .unwrap();
        let r = vm.call("walker", &[255]);
        assert!(r.is_ok(), "{r:?}");
        let err = vm.call("walker", &[257]).unwrap_err();
        assert!(matches!(err, sva_vm::VmError::Safety(_)), "{err}");
    }

    #[test]
    fn th_pool_loads_need_no_ls_check() {
        let mut m = kernel_module();
        let i64t = m.types.i64();
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("typed", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let s = b.alloca(i64t);
            let one = b.c64(1);
            b.store(one, s);
            let _ = b.load(s);
            b.ret(None);
        }
        let c = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
        let out = verify_and_insert_checks(c.module).unwrap();
        assert!(out.report.ls_skipped_th >= 2, "{:?}", out.report);
        assert_eq!(out.report.ls_checks, 0);
    }

    #[test]
    fn rejects_module_without_annotations() {
        let m = kernel_module();
        let err = verify_and_insert_checks(m).unwrap_err();
        assert_eq!(err[0].rule, "annotations-present");
    }

    #[test]
    fn rejects_preexisting_check_intrinsics() {
        let mut m = kernel_module();
        let i8 = m.types.i8();
        let void = m.types.void();
        let bp = m.types.ptr(i8);
        let fty = m.types.func(void, vec![bp], false);
        let f = m.add_function("smuggler", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let zero = b.c64(0);
            let p = b.param(0);
            b.intrinsic(Intrinsic::LsCheck, vec![zero, p], None);
            b.ret(None);
        }
        m.pool_annotations = Some(PoolAnnotations {
            metapools: vec![],
            value_pools: vec![vec![]; m.funcs.len()],
            value_cells: vec![vec![]; m.funcs.len()],
            global_pools: vec![],
            func_sets: vec![],
            call_sets: vec![],
        });
        let err = verify_and_insert_checks(m).unwrap_err();
        assert!(
            err.iter().any(|e| e.rule == "no-preexisting-checks"),
            "{err:?}"
        );
    }

    #[test]
    fn detects_tampered_value_pool() {
        let mut m = compiled_with_array_walk();
        // Tamper: move the gep result into a different (fresh) pool.
        let pa = m.pool_annotations.as_mut().unwrap();
        let extra = pa.metapools.len() as u32;
        pa.metapools.push(sva_ir::MetaPoolDesc {
            name: "MPevil".into(),
            type_homogeneous: false,
            complete: true,
            elem_type: None,
            points_to: Vec::new(),
            fields_collapsed: false,
            userspace: false,
        });
        let f = m.func_by_name("walker").unwrap();
        // Find the gep result value and reassign its pool.
        let gep_res = {
            let func = m.func(f);
            func.inst_order()
                .find_map(|(_, iid)| match func.inst(iid) {
                    Inst::Gep { .. } => func.result_of(iid),
                    _ => None,
                })
                .unwrap()
        };
        m.pool_annotations.as_mut().unwrap().value_pools[f.0 as usize][gep_res.0 as usize] =
            Some(extra);
        let err = verify_and_insert_checks(m).unwrap_err();
        assert!(err.iter().any(|e| e.rule == "gep-same-pool"), "{err:?}");
    }

    #[test]
    fn detects_tampered_points_to_edge() {
        let mut m = kernel_module();
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let void = m.types.void();
        let pp64 = m.types.ptr(p64);
        let fty = m.types.func(void, vec![pp64], false);
        let f = m.add_function("chase", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let pp = b.param(0);
            let p = b.load(pp);
            let one = b.c64(1);
            b.store(one, p);
            b.ret(None);
        }
        let c = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
        let mut m = c.module;
        // Corrupt the points-to edge of the pointer-to-pointer pool.
        {
            let f2 = m.func_by_name("chase").unwrap();
            let pa = m.pool_annotations.as_mut().unwrap();
            let param0 = 0usize;
            let pool = pa.value_pools[f2.0 as usize][param0].unwrap();
            pa.metapools[pool as usize].points_to.clear();
        }
        let err = verify_and_insert_checks(m).unwrap_err();
        assert!(err.iter().any(|e| e.rule == "load-points-to"), "{err:?}");
    }

    #[test]
    fn detects_false_th_claim() {
        let m = compiled_with_array_walk();
        let mut m = m;
        {
            let pa = m.pool_annotations.as_mut().unwrap();
            // Claim some collapsed/typeless pool is TH.
            let victim = pa
                .metapools
                .iter()
                .position(|d| d.elem_type.is_none())
                .expect("some pool without elem type");
            pa.metapools[victim].type_homogeneous = true;
        }
        let err = verify_and_insert_checks(m).unwrap_err();
        assert!(err.iter().any(|e| e.rule == "th-elem-type"), "{err:?}");
    }

    #[test]
    fn annotated_type_renders_paper_notation() {
        let m = compiled_with_array_walk();
        let f = m.func_by_name("walker").unwrap();
        let pa = m.pool_annotations.as_ref().unwrap();
        // Find an annotated pointer value.
        let func = m.func(f);
        let v = (0..func.num_values() as u32)
            .map(ValueId)
            .find(|v| m.types.is_ptr(func.value_type(*v)) && pa.value_pool(f, *v).is_some())
            .unwrap();
        let s = annotated_type(&m, pa, f, v).unwrap();
        assert!(s.contains("*MP"), "{s}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use sva_analysis::AnalysisConfig;
    use sva_ir::build::FunctionBuilder;
    use sva_ir::{AllocKind, AllocatorDecl, GlobalInit, Linkage, Module, SizeSpec};

    /// A module with a pointer-to-pointer store (exercises the
    /// store-points-to rule) and a call chain (exercises call-arg-pool).
    fn chain_module() -> Module {
        let mut m = Module::new("chain");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let void = m.types.void();
        let kty = m.types.func(bp, vec![i64t], false);
        let km = m.add_function("kmalloc", kty, Linkage::Public);
        m.declare_allocator(AllocatorDecl {
            name: "kmalloc".into(),
            kind: AllocKind::Ordinary,
            alloc_fn: "kmalloc".into(),
            dealloc_fn: None,
            pool_create_fn: None,
            pool_destroy_fn: None,
            size: SizeSpec::Arg(0),
            size_fn: None,
            pool_arg: None,
            backed_by: None,
        });
        // A pointer-typed global slot: stores into it exercise the
        // store-points-to rule.
        let g = m.add_global("slot", p64, GlobalInit::Zero, false);
        let hty = m.types.func(void, vec![p64], false);
        let helper = m.add_function("helper", hty, Linkage::Internal);
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("driver", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, km);
            let n = b.null(i8);
            b.ret(Some(n));
        }
        {
            let mut b = FunctionBuilder::new(&mut m, helper);
            let p = b.param(0);
            let one = b.c64(1);
            b.store(one, p);
            b.ret(None);
        }
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let sz = b.c64(64);
            let raw = b.call(km, vec![sz]).unwrap();
            let p = b.bitcast_ptr(raw, i64t);
            // store the pointer into a pointer-to-pointer global slot
            b.store(p, sva_ir::Operand::Global(g));
            // reload and pass down a call chain
            let q = b.load(sva_ir::Operand::Global(g));
            b.call(helper, vec![q]);
            b.ret(None);
        }
        m
    }

    fn compiled() -> Module {
        compile(
            chain_module(),
            &AnalysisConfig::kernel(),
            &CompileOptions::default(),
        )
        .module
    }

    #[test]
    fn chain_module_verifies_clean() {
        let errs = typecheck_module(&compiled());
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn store_points_to_tamper_detected() {
        let mut m = compiled();
        // Retag the stored pointer's pool: the store-points-to rule fires.
        let f = m.func_by_name("driver").unwrap();
        let bitcast_res = {
            let func = m.func(f);
            func.inst_order()
                .find_map(|(_, iid)| match func.inst(iid) {
                    Inst::Cast {
                        op: CastOp::Bitcast,
                        ..
                    } => func.result_of(iid),
                    _ => None,
                })
                .unwrap()
        };
        let pa = m.pool_annotations.as_mut().unwrap();
        let evil = pa.metapools.len() as u32;
        let mut clone = pa.metapools[0].clone();
        clone.name = "MPevil2".into();
        pa.metapools.push(clone);
        pa.value_pools[f.0 as usize][bitcast_res.0 as usize] = Some(evil);
        let errs = typecheck_module(&m);
        assert!(
            errs.iter()
                .any(|e| e.rule == "store-points-to" || e.rule == "cast-same-pool"),
            "{errs:?}"
        );
    }

    #[test]
    fn call_arg_pool_tamper_detected() {
        let mut m = compiled();
        // Retag the callee's parameter pool.
        let h = m.func_by_name("helper").unwrap();
        let param = m.func(h).params[0];
        let pa = m.pool_annotations.as_mut().unwrap();
        let evil = pa.metapools.len() as u32;
        let mut clone = pa.metapools[0].clone();
        clone.name = "MPevil3".into();
        pa.metapools.push(clone);
        pa.value_pools[h.0 as usize][param.0 as usize] = Some(evil);
        let errs = typecheck_module(&m);
        assert!(
            errs.iter()
                .any(|e| e.rule == "call-arg-pool" || e.rule == "store-points-to"),
            "{errs:?}"
        );
    }

    #[test]
    fn gep_cell_tamper_detected() {
        // Build a struct access and corrupt the cell annotation.
        let mut m = Module::new("cells");
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let s = m.types.struct_type("two", vec![i64t, p64]);
        let sp = m.types.ptr(s);
        let void = m.types.void();
        let fty = m.types.func(void, vec![sp], false);
        let f = m.add_function("touch", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let p = b.param(0);
            let fp = b.field_ptr(p, 1);
            let v = b.load(fp);
            let one = b.c64(1);
            b.store(one, v);
            b.ret(None);
        }
        let mut m = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default()).module;
        assert!(typecheck_module(&m).is_empty());
        // Corrupt the gep result's cell.
        let f = m.func_by_name("touch").unwrap();
        let gep_res = {
            let func = m.func(f);
            func.inst_order()
                .find_map(|(_, iid)| match func.inst(iid) {
                    Inst::Gep { .. } => func.result_of(iid),
                    _ => None,
                })
                .unwrap()
        };
        let pa = m.pool_annotations.as_mut().unwrap();
        pa.value_cells[f.0 as usize][gep_res.0 as usize] = 0;
        let errs = typecheck_module(&m);
        assert!(
            errs.iter()
                .any(|e| e.rule == "gep-cell" || e.rule == "load-points-to"),
            "{errs:?}"
        );
    }
}
