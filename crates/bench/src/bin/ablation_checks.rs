//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. static bounds-check elision (paper §7.1.3 optimization 3) — check
//!    counts and cycle cost with and without it;
//! 2. the §4.8 analysis transforms (function cloning, devirtualization) —
//!    metapool precision with and without them;
//! 3. the §6.2 `kmalloc`-backing exposure — metapool merging with and
//!    without the `backed_by` declaration;
//! 4. the layered lookup fast path (MRU cache + page index in front of
//!    the splay tree) — wall time and lookup-layer breakdown with and
//!    without it. Virtual cycles are identical by construction: the fast
//!    path changes how a lookup is answered, not what it costs in the
//!    machine model.

use bench::run_workload_traced;
use sva_analysis::AnalysisConfig;
use sva_core::compile::{compile, CompileOptions};
use sva_core::verifier::{verify_and_insert_checks_with, InsertOptions};
use sva_kernel::harness::{boot_user, pack_arg, raw_kernel};
use sva_kernel::AS_TESTED_EXCLUSIONS;
use sva_trace::{top_report, RingConfig};
use sva_vm::{KernelKind, Vm, VmConfig};

fn run_cycles(module: sva_ir::Module, prog: &str, arg: u64) -> (u64, u64) {
    let mut vm = Vm::new(
        module,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .expect("load");
    boot_user(&mut vm, prog, arg).expect("boot");
    (vm.stats().cycles, vm.pools.total_stats().total_checks())
}

fn main() {
    let cfg = AnalysisConfig::kernel_excluding(AS_TESTED_EXCLUSIONS);

    println!("== Ablation 1: static bounds-check elision (§7.1.3 opt 3) ==");
    for (label, elide) in [("with elision (default)", true), ("without elision", false)] {
        let m = raw_kernel();
        let compiled = compile(m, &cfg, &CompileOptions::default());
        let v = verify_and_insert_checks_with(
            compiled.module,
            InsertOptions {
                elide_static_safe: elide,
                ..Default::default()
            },
        )
        .expect("verifies");
        let inserted = v.report.bounds_checks;
        let known = v.report.bounds_known_range;
        let elided = v.report.bounds_static_safe;
        let (cycles, checks) = run_cycles(v.module, "user_pipe_loop", pack_arg(100, 0, 0));
        println!(
            "  {label:<26} {inserted:>5} splay checks + {known} known-bounds, {elided:>4} elided; \
             pipe workload: {checks} dynamic checks, {cycles} cycles"
        );
    }

    println!("\n== Ablation 2: §4.8 transforms (cloning + devirtualization) ==");
    for (label, on) in [("baseline", false), ("with transforms", true)] {
        let m = raw_kernel();
        let opts = CompileOptions {
            clone_functions: on,
            devirtualize: on,
            ..CompileOptions::default()
        };
        let compiled = compile(m, &cfg, &opts);
        println!(
            "  {label:<26} {} metapools ({} TH, {} complete); {} clones, {} devirtualized",
            compiled.report.metapools,
            compiled.report.th_metapools,
            compiled.report.complete_metapools,
            compiled.report.clones,
            compiled.report.devirtualized,
        );
    }

    println!("\n== Ablation 3: kmalloc size-class exposure (§6.2 backed_by) ==");
    for (label, backed) in [("exposed (default)", true), ("merged", false)] {
        let mut m = raw_kernel();
        if !backed {
            for a in &mut m.allocators {
                if a.name == "kmalloc" {
                    a.backed_by = None;
                }
            }
        }
        let compiled = compile(m, &cfg, &CompileOptions::default());
        // Does the constant-size pipe-ring allocation share a metapool with
        // the dynamic msfilter allocation?
        let ring_site = compiled
            .analysis
            .alloc_sites
            .iter()
            .find(|s| compiled.module.func(s.func).name == "pipe_create")
            .expect("pipe ring site");
        let filter_site = compiled
            .analysis
            .alloc_sites
            .iter()
            .find(|s| compiled.module.func(s.func).name == "net_set_msfilter")
            .expect("filter site");
        let a = compiled.analysis.graph.find_ro(ring_site.node);
        let b = compiled.analysis.graph.find_ro(filter_site.node);
        println!(
            "  {label:<26} {} metapools; pipe ring & msfilter share a pool: {}",
            compiled.report.metapools,
            a == b
        );
    }

    println!("\n== Ablation 4: lookup fast path (MRU cache + page index + singleton) ==");
    // The singleton elision (DESIGN.md §4.4) answers ahead of every layer,
    // so the first two rows switch it off to ablate the *layered* path in
    // isolation; the third row is the shipping default with it on.
    for (label, fast, singleton) in [
        ("fast path, no singleton", true, false),
        ("splay-only baseline", false, false),
        ("singleton on (default)", true, true),
    ] {
        let m = raw_kernel();
        let compiled = compile(m, &cfg, &CompileOptions::default());
        let v = verify_and_insert_checks_with(compiled.module, InsertOptions::default())
            .expect("verifies");
        let mut vm = Vm::new(
            v.module,
            VmConfig {
                kind: KernelKind::SvaSafe,
                fast_path: fast,
                singleton_path: singleton,
                ..Default::default()
            },
        )
        .expect("load");
        let start = std::time::Instant::now();
        boot_user(&mut vm, "user_pipe_loop", pack_arg(100, 0, 0)).expect("boot");
        let wall = start.elapsed();
        let s = vm.stats();
        let lookups = s.singleton_hits + s.cache_hits + s.page_hits + s.tree_walks;
        println!(
            "  {label:<26} {lookups} lookups (singleton {} / cache {} / page {} / tree {}), \
             {} cycles, {:.2?} wall",
            s.singleton_hits, s.cache_hits, s.page_hits, s.tree_walks, s.cycles, wall
        );
    }

    // `--trace`: per-pool view of ablation 4's aggregate layer counts —
    // which metapools the checks hammer and which layer answers each one.
    if std::env::args().any(|a| a == "--trace") {
        let (sample, tracer) = run_workload_traced(
            KernelKind::SvaSafe,
            "user_pipe_loop",
            pack_arg(100, 0, 0),
            RingConfig::default(),
        );
        println!("\n-- traced drill-down: sva-safe pipe x100, per-pool layers --");
        println!("{}", top_report(&tracer, sample.cycles, 5));
    }
}
