//! `svaprof`: trace and profile a kernel workload under the SVM.
//!
//! Boots the mini commodity kernel with a [`RingTracer`] attached, runs a
//! user workload (the boot-kernel example's `user_hello` by default),
//! then emits:
//!
//! - a Chrome `trace_event` JSON file (load it in `chrome://tracing` or
//!   Perfetto) next to a JSONL dump of the raw event stream, both under
//!   `target/sva-trace/` (override with `SVA_TRACE_DIR`);
//! - a "top checks / top pools / top opcodes" text report on stdout with
//!   the fraction of virtual cycles the profile attributes;
//! - with `--prom`, the counters and latency histograms in Prometheus
//!   text exposition format (`<stem>.prom` in the trace directory);
//! - with `--profile-out PATH`, a hot-function profile (the top
//!   `--profile-keep` fraction of functions by attributed cycles) in the
//!   `sva-hot-profile` text format consumed by `VmConfig::hot_profile` /
//!   `Vm::with_profile` — the feedback file of the profile-guided
//!   optimizing tier (DESIGN.md §4.4).
//!
//! Two snapshot modes exercise the machine checkpoint format
//! (DESIGN.md §4.6):
//!
//! - `--snapshot-out PATH` boots the kernel to the first user-mode
//!   instruction of `--prog`, writes the paused machine as a snapshot
//!   image, then resumes it and cross-checks the completed run against a
//!   fresh uninterrupted boot (`VmStats::equivalence_key` + console).
//!   Nightly CI uploads the image as the golden post-boot artifact.
//! - `--resume PATH` restores a previously written image into a fresh
//!   machine, runs it to completion, and cross-checks against a fresh
//!   boot of the same `--prog`/`--arg`. An image from a previous format
//!   version (or a compatible rebuild) is migrated through the upcaster
//!   chain ([`Vm::restore_migrated`], DESIGN.md §4.10) — the run reports
//!   the steps taken and still gates the cross-check. Exits nonzero when
//!   neither a direct restore nor migration accepts the image, or on any
//!   divergence — nightly CI runs it against the previous night's golden
//!   images to catch accidental format breaks.
//! - `--snapshot-mid PATH` boots to the first user instruction, runs
//!   `--cut N` (default 1000) further steps so the machine is genuinely
//!   mid-workload — live domain stack, in-flight syscall — writes the
//!   machine image, then proves a restored twin finishes bit-identically
//!   to the uninterrupted machine. Nightly CI uploads this as the
//!   mid-flight golden artifact alongside the post-boot one.
//!
//! Two offline modes skip the boot entirely:
//!
//! - `--replay events.jsonl` parses a recorded JSONL dump back into
//!   events, feeds them through a *fresh* ring/profile/exporter pipeline,
//!   and validates every exporter (panic guard, JSONL round-trip,
//!   balanced Chrome spans, cumulative Prometheus histograms) — the way
//!   to reproduce an exporter bug from a bug report's attached stream.
//!   With `--shrink`, a failing stream is bisected to the minimal failing
//!   prefix, written next to the input as `<input>.min.jsonl`.
//! - `--prom-diff OLD NEW` diffs two Prometheus text exports: counter
//!   deltas and per-bucket histogram shifts. Nightly CI runs it against
//!   the previous night's artifact to catch latency-distribution drift
//!   that leaves the medians untouched.
//!
//! Usage: `cargo run --release -p bench --bin svaprof --
//!     [--prog NAME] [--arg N] [--kind sva-safe|native|sva-gcc|sva-llvm]
//!     [--top N] [--capacity N] [--prom]
//!     [--profile-out PATH] [--profile-keep FRAC]
//!     [--snapshot-out PATH] [--snapshot-mid PATH [--cut N]] [--resume PATH]
//!     [--replay PATH [--shrink]] [--prom-diff OLD NEW]`
//!
//! Exits nonzero if the captured profile is empty — CI uses that to catch
//! a silently-detached tracer — or, under `--replay`, if the stream fails
//! exporter validation.

use std::path::PathBuf;
use std::process::ExitCode;

use bench::{prof, run_workload_traced};
use sva_kernel::harness::{boot_user, boot_user_paused, make_vm};
use sva_trace::{
    metrics_to_prometheus, to_chrome_trace, to_jsonl, to_prometheus, top_report, RingConfig,
};
use sva_vm::{HotProfile, KernelKind, Vm};

/// Workload the boot-kernel example runs; the default subject here too.
const DEFAULT_PROG: &str = "user_hello";

fn trace_dir() -> PathBuf {
    if let Ok(d) = std::env::var("SVA_TRACE_DIR") {
        return PathBuf::from(d);
    }
    let mut cur = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("target").join("sva-trace");
        }
        if !cur.pop() {
            return PathBuf::from("target/sva-trace");
        }
    }
}

fn parse_kind(s: &str) -> Option<KernelKind> {
    KernelKind::ALL.into_iter().find(|k| k.label() == s)
}

struct Options {
    prog: String,
    arg: u64,
    kind: KernelKind,
    top: usize,
    capacity: usize,
    prom: bool,
    profile_out: Option<PathBuf>,
    profile_keep: f64,
    snapshot_out: Option<PathBuf>,
    snapshot_mid: Option<PathBuf>,
    cut: u64,
    resume: Option<PathBuf>,
    replay: Option<PathBuf>,
    shrink: bool,
    prom_diff: Option<(PathBuf, PathBuf)>,
    vcpus: Option<u32>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        prog: DEFAULT_PROG.to_string(),
        arg: 0,
        kind: KernelKind::SvaSafe,
        top: 10,
        capacity: RingConfig::default().capacity,
        prom: false,
        profile_out: None,
        profile_keep: 0.25,
        snapshot_out: None,
        snapshot_mid: None,
        cut: 1000,
        resume: None,
        replay: None,
        shrink: false,
        prom_diff: None,
        vcpus: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--prog" => opts.prog = val("--prog")?,
            "--arg" => {
                opts.arg = val("--arg")?.parse().map_err(|e| format!("--arg: {e}"))?;
            }
            "--kind" => {
                let s = val("--kind")?;
                opts.kind = parse_kind(&s).ok_or(format!("unknown kind {s:?}"))?;
            }
            "--top" => {
                opts.top = val("--top")?.parse().map_err(|e| format!("--top: {e}"))?;
            }
            "--capacity" => {
                opts.capacity = val("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
            }
            "--prom" => opts.prom = true,
            "--profile-out" => {
                opts.profile_out = Some(PathBuf::from(val("--profile-out")?));
            }
            "--profile-keep" => {
                opts.profile_keep = val("--profile-keep")?
                    .parse()
                    .map_err(|e| format!("--profile-keep: {e}"))?;
                if !(0.0..=1.0).contains(&opts.profile_keep) {
                    return Err("--profile-keep must be in 0..=1".to_string());
                }
            }
            "--snapshot-out" => {
                opts.snapshot_out = Some(PathBuf::from(val("--snapshot-out")?));
            }
            "--snapshot-mid" => {
                opts.snapshot_mid = Some(PathBuf::from(val("--snapshot-mid")?));
            }
            "--cut" => {
                opts.cut = val("--cut")?.parse().map_err(|e| format!("--cut: {e}"))?;
                if opts.cut == 0 {
                    return Err("--cut must be at least 1".to_string());
                }
            }
            "--resume" => opts.resume = Some(PathBuf::from(val("--resume")?)),
            "--replay" => opts.replay = Some(PathBuf::from(val("--replay")?)),
            "--shrink" => opts.shrink = true,
            "--prom-diff" => {
                let old = PathBuf::from(val("--prom-diff")?);
                let new = PathBuf::from(val("--prom-diff")?);
                opts.prom_diff = Some((old, new));
            }
            "--vcpus" => {
                let n: u32 = val("--vcpus")?
                    .parse()
                    .map_err(|e| format!("--vcpus: {e}"))?;
                if n == 0 {
                    return Err("--vcpus must be at least 1".to_string());
                }
                opts.vcpus = Some(n);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if opts.shrink && opts.replay.is_none() {
        return Err("--shrink only makes sense with --replay".to_string());
    }
    Ok(opts)
}

/// Compares a finished (resumed) machine against a fresh uninterrupted
/// boot of the same workload: exit value, equivalence-key stats and
/// console bytes must all match byte-for-byte.
fn matches_fresh_boot(vm: &mut Vm, exit: &str, kind: KernelKind, prog: &str, arg: u64) -> bool {
    let mut fresh = make_vm(kind);
    let fresh_exit = format!("{:?}", boot_user(&mut fresh, prog, arg));
    let mut ok = true;
    if exit != fresh_exit {
        eprintln!("svaprof: exit mismatch: resumed {exit}, fresh boot {fresh_exit}");
        ok = false;
    }
    let resumed = vm.stats().equivalence_key();
    let booted = fresh.stats().equivalence_key();
    if resumed != booted {
        eprintln!("svaprof: stats mismatch:\n  resumed {resumed:?}\n  fresh   {booted:?}");
        ok = false;
    }
    if vm.console != fresh.console {
        eprintln!("svaprof: console output mismatch");
        ok = false;
    }
    ok
}

/// `--snapshot-out`: boot to the first user instruction, write the paused
/// machine image, then resume and cross-check against a fresh boot.
fn snapshot_out_mode(kind: KernelKind, prog: &str, arg: u64, path: &PathBuf) -> ExitCode {
    let mut vm = make_vm(kind);
    match boot_user_paused(&mut vm, prog, arg) {
        Ok(None) => {}
        Ok(Some(e)) => {
            eprintln!("svaprof: boot exited before reaching user mode: {e:?}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("svaprof: boot failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let image = vm.snapshot();
    if let Err(e) = std::fs::write(path, &image) {
        eprintln!("svaprof: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "svaprof: post-boot snapshot of {} {}({:#x}): {} bytes -> {}",
        kind.label(),
        prog,
        arg,
        image.len(),
        path.display()
    );
    // The paused machine must finish exactly like an uninterrupted boot,
    // or the image just written captures a corrupted pause point.
    let exit = format!("{:?}", vm.run());
    if !matches_fresh_boot(&mut vm, &exit, kind, prog, arg) {
        return ExitCode::FAILURE;
    }
    println!("svaprof: resume-after-snapshot matches an uninterrupted boot");
    ExitCode::SUCCESS
}

/// `--snapshot-mid`: boot to the first user instruction, run `cut` more
/// steps so the capture lands mid-workload, write the image, and prove a
/// restored twin finishes bit-identically to the uninterrupted machine.
fn snapshot_mid_mode(kind: KernelKind, prog: &str, arg: u64, path: &PathBuf, cut: u64) -> ExitCode {
    let mut vm = make_vm(kind);
    match boot_user_paused(&mut vm, prog, arg) {
        Ok(None) => {}
        Ok(Some(e)) => {
            eprintln!("svaprof: boot exited before reaching user mode: {e:?}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("svaprof: boot failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    match vm.run_steps(cut) {
        Ok(None) => {}
        Ok(Some(e)) => {
            eprintln!(
                "svaprof: workload finished before the {cut}-step cut ({e:?}) — pick a longer workload or a smaller --cut"
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("svaprof: workload failed before the cut: {e}");
            return ExitCode::FAILURE;
        }
    }
    let image = vm.snapshot_midflight();
    if let Err(e) = std::fs::write(path, &image) {
        eprintln!("svaprof: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "svaprof: mid-flight snapshot of {} {}({:#x}) at boot+{cut} steps: {} bytes -> {}",
        kind.label(),
        prog,
        arg,
        image.len(),
        path.display()
    );
    // The restored twin and the uninterrupted machine must finish as the
    // same machine, or the image captures a corrupted cut point.
    let mut twin = make_vm(kind);
    if let Err(e) = twin.restore(&image) {
        eprintln!("svaprof: mid-flight image does not restore: {e}");
        return ExitCode::FAILURE;
    }
    let exit = format!("{:?}", vm.run());
    let twin_exit = format!("{:?}", twin.run());
    let mut ok = true;
    if exit != twin_exit {
        eprintln!("svaprof: exit mismatch: uninterrupted {exit}, resumed twin {twin_exit}");
        ok = false;
    }
    if vm.stats().equivalence_key() != twin.stats().equivalence_key() {
        eprintln!(
            "svaprof: stats mismatch:\n  uninterrupted {:?}\n  twin          {:?}",
            vm.stats().equivalence_key(),
            twin.stats().equivalence_key()
        );
        ok = false;
    }
    if vm.console != twin.console {
        eprintln!("svaprof: console output mismatch");
        ok = false;
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!("svaprof: mid-flight resume matches the uninterrupted run bit-for-bit");
    ExitCode::SUCCESS
}

/// `--resume`: restore an image into a fresh machine, run to completion,
/// and cross-check against a fresh boot of the same workload.
fn resume_mode(kind: KernelKind, prog: &str, arg: u64, path: &PathBuf) -> ExitCode {
    let image = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("svaprof: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut vm = make_vm(kind);
    match vm.restore(&image) {
        Ok(()) => {}
        // Not a current-format image of this exact build: route through
        // the migration chain (DESIGN.md §4.10). A previous-night golden
        // taken under an older format or a compatible rebuild must
        // restore this way — if migration also rejects it, the format
        // really broke and the run fails.
        Err(first) => match vm.restore_migrated(&image) {
            Ok(report) => println!(
                "svaprof: direct restore rejected ({first}); migrated from v{} via [{}]{}",
                report.from_version,
                report.steps.join(", "),
                if report.code_migrated {
                    ", code identity adopted"
                } else {
                    ""
                },
            ),
            Err(e) => {
                eprintln!(
                    "svaprof: cannot restore {}: {first}; migration also failed: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        },
    }
    println!(
        "svaprof: restored {} ({} bytes), resuming {} {}({:#x})",
        path.display(),
        image.len(),
        kind.label(),
        prog,
        arg
    );
    let exit = format!("{:?}", vm.run());
    if !matches_fresh_boot(&mut vm, &exit, kind, prog, arg) {
        return ExitCode::FAILURE;
    }
    println!("svaprof: resumed run matches a fresh boot bit-for-bit");
    ExitCode::SUCCESS
}

/// `--replay`: run a recorded stream through the exporter layer offline.
fn replay_mode(path: &PathBuf, capacity: usize, top: usize, shrink: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("svaprof: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let stream = prof::parse_jsonl(&text);
    for (line, content) in stream.bad_lines.iter().take(5) {
        eprintln!(
            "svaprof: {}:{line}: unparseable event: {content}",
            path.display()
        );
    }
    println!(
        "svaprof: replayed {} events from {} ({} bad lines)",
        stream.events.len(),
        path.display(),
        stream.bad_lines.len()
    );
    let tracer = prof::replay(&stream.events, capacity);
    let total = stream.events.last().map(|e| e.ts).unwrap_or(0);
    println!("{}", top_report(&tracer, total, top));
    match prof::replay_failure(&stream.events, capacity) {
        None => {
            if shrink {
                println!("svaprof: stream passes — nothing to shrink");
            }
            ExitCode::SUCCESS
        }
        Some(reason) => {
            eprintln!("svaprof: exporter validation FAILED: {reason}");
            if shrink {
                if let Some(n) = prof::shrink_failing_prefix(&stream.events, capacity) {
                    let out = path.with_extension("min.jsonl");
                    let min: String = stream.events[..n]
                        .iter()
                        .map(|e| e.to_json() + "\n")
                        .collect();
                    match std::fs::write(&out, min) {
                        Ok(()) => eprintln!(
                            "svaprof: minimal failing prefix: {n} of {} events -> {}",
                            stream.events.len(),
                            out.display()
                        ),
                        Err(e) => eprintln!("svaprof: cannot write {}: {e}", out.display()),
                    }
                }
            }
            ExitCode::FAILURE
        }
    }
}

/// `--vcpus N`: run the SMP scaling corpus on an N-vCPU machine and
/// export per-vCPU metrics — every `check.*`/`recovery.*`/`sched.*`
/// counter appears under `cpu<id>.` plus the machine total — to
/// `smp<N>.prom`, which the nightly `--prom-diff`s against the previous
/// night alongside the single-CPU export (DESIGN.md §4.9).
fn smp_prom_mode(vcpus: u32) -> ExitCode {
    let m = bench::smp_metrics(vcpus);
    // Every vCPU must have contributed its own check series; a missing
    // cpu<id> prefix means the per-CPU fold silently degenerated into a
    // flat machine total and the nightly diff would track nothing.
    for cpu in 0..vcpus {
        if m.counter(&format!("cpu{cpu}.check.ls_checks")) == 0 {
            eprintln!("svaprof: cpu{cpu} recorded no load/store checks — per-vCPU fold broken?");
            return ExitCode::FAILURE;
        }
    }
    let dir = trace_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("svaprof: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let prom_path = dir.join(format!("smp{vcpus}.prom"));
    if let Err(e) = std::fs::write(&prom_path, metrics_to_prometheus(&m)) {
        eprintln!("svaprof: cannot write {}: {e}", prom_path.display());
        return ExitCode::FAILURE;
    }
    println!("svaprof: {vcpus}-vCPU scaling corpus, per-CPU check/recovery counters:");
    for cpu in 0..vcpus {
        println!(
            "  cpu{cpu}: ls_checks {} bounds {} lookups s/c/p/t {}/{}/{}/{} repairs {} jobs {} steals {}",
            m.counter(&format!("cpu{cpu}.check.ls_checks")),
            m.counter(&format!("cpu{cpu}.check.bounds_checks")),
            m.counter(&format!("cpu{cpu}.check.lookup.singleton_hits")),
            m.counter(&format!("cpu{cpu}.check.lookup.cache_hits")),
            m.counter(&format!("cpu{cpu}.check.lookup.page_hits")),
            m.counter(&format!("cpu{cpu}.check.lookup.tree_walks")),
            m.counter(&format!("cpu{cpu}.recovery.repairs")),
            m.counter(&format!("cpu{cpu}.sched.jobs")),
            m.counter(&format!("cpu{cpu}.sched.steals")),
        );
    }
    println!(
        "  total: ls_checks {} bounds {} repairs {}",
        m.counter("check.ls_checks"),
        m.counter("check.bounds_checks"),
        m.counter("recovery.repairs"),
    );
    println!("prometheus:   {}", prom_path.display());
    ExitCode::SUCCESS
}

/// `--prom-diff`: counter deltas and histogram-bucket shifts between two
/// Prometheus text exports.
fn prom_diff_mode(old: &PathBuf, new: &PathBuf) -> ExitCode {
    let mut snaps = Vec::new();
    for path in [old, new] {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("svaprof: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match prof::parse_prom(&text) {
            Ok(s) => snaps.push(s),
            Err(e) => {
                eprintln!("svaprof: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let d = prof::diff_prom(&snaps[0], &snaps[1]);
    println!(
        "svaprof: prom-diff {} -> {}: {} change(s)",
        old.display(),
        new.display(),
        d.changes
    );
    print!("{}", d.report);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("svaprof: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some((old, new)) = &opts.prom_diff {
        return prom_diff_mode(old, new);
    }
    if let Some(vcpus) = opts.vcpus {
        return smp_prom_mode(vcpus);
    }
    if let Some(path) = &opts.replay {
        return replay_mode(path, opts.capacity, opts.top, opts.shrink);
    }
    if let Some(path) = &opts.snapshot_out {
        return snapshot_out_mode(opts.kind, &opts.prog, opts.arg, path);
    }
    if let Some(path) = &opts.snapshot_mid {
        return snapshot_mid_mode(opts.kind, &opts.prog, opts.arg, path, opts.cut);
    }
    if let Some(path) = &opts.resume {
        return resume_mode(opts.kind, &opts.prog, opts.arg, path);
    }

    let cfg = RingConfig {
        capacity: opts.capacity,
        ..Default::default()
    };
    let (sample, tracer) = run_workload_traced(opts.kind, &opts.prog, opts.arg, cfg);

    let dir = trace_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("svaprof: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let stem = format!("{}-{}", opts.kind.label(), opts.prog);
    let chrome_path = dir.join(format!("{stem}.trace.json"));
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    for (path, contents) in [
        (&chrome_path, to_chrome_trace(&tracer)),
        (&jsonl_path, to_jsonl(&tracer)),
    ] {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("svaprof: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    println!(
        "svaprof: {} {}({:#x}) — {} instructions, {} cycles, {:?} wall",
        opts.kind.label(),
        opts.prog,
        opts.arg,
        sample.instructions,
        sample.cycles,
        sample.wall,
    );
    println!("chrome trace: {}", chrome_path.display());
    println!("event stream: {}", jsonl_path.display());
    println!();
    println!("{}", top_report(&tracer, sample.cycles, opts.top));

    if opts.prom {
        let prom_path = dir.join(format!("{stem}.prom"));
        if let Err(e) = std::fs::write(&prom_path, to_prometheus(&tracer)) {
            eprintln!("svaprof: cannot write {}: {e}", prom_path.display());
            return ExitCode::FAILURE;
        }
        println!("prometheus:   {}", prom_path.display());
    }

    let profile = tracer.profile();
    if profile.attributed_cycles == 0 || tracer.ring().total_recorded() == 0 {
        eprintln!("svaprof: empty profile — tracer not attached?");
        return ExitCode::FAILURE;
    }

    if let Some(out) = &opts.profile_out {
        let mut ranked: Vec<(String, u64)> = profile
            .per_func
            .iter()
            .map(|(&id, cc)| (tracer.func_name(id), cc.cycles))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let hot = HotProfile::from_cycle_ranking(&ranked, opts.profile_keep);
        if let Err(e) = std::fs::write(out, hot.to_text()) {
            eprintln!("svaprof: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!(
            "hot profile:  {} ({} of {} functions)",
            out.display(),
            hot.len(),
            ranked.len()
        );
    }
    let coverage = profile.coverage(sample.cycles);
    if coverage < 0.95 {
        eprintln!(
            "svaprof: profile attributes only {:.1}% of cycles",
            100.0 * coverage
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
