//! Table 7: latency of raw kernel operations, four kernel configurations.
//!
//! Paper rows: getpid, getrusage, gettimeofday, open/close, sbrk,
//! sigaction, write, pipe, fork, fork/exec.

use bench::{arg, latency_row, print_check_breakdown, print_latency_table, run_workload_traced};
use sva_trace::{top_report, RingConfig};
use sva_vm::KernelKind;

fn main() {
    let trace = std::env::args().any(|a| a == "--trace");
    let rows = vec![
        latency_row("getpid", "user_getpid_loop", arg(2000, 0, 0), 2000),
        latency_row("getrusage", "user_getrusage_loop", arg(2000, 0, 0), 2000),
        latency_row(
            "gettimeofday",
            "user_gettimeofday_loop",
            arg(2000, 0, 0),
            2000,
        ),
        latency_row("open/close", "user_openclose_loop", arg(500, 0, 0), 500),
        latency_row("sbrk", "user_sbrk_loop", arg(2000, 0, 0), 2000),
        latency_row("sigaction", "user_sigaction_loop", arg(2000, 0, 0), 2000),
        latency_row("write", "user_write_loop", arg(500, 64, 0), 500),
        latency_row("pipe", "user_pipe_loop", arg(300, 0, 0), 300),
        latency_row("fork", "user_fork_loop", arg(60, 0, 0), 60),
        latency_row("fork/exec", "user_forkexec_loop", arg(60, 0, 0), 60),
    ];
    print_latency_table(
        "Table 7: latency increase for raw kernel operations (% of native)",
        &rows,
    );
    println!("\npaper shape: SVA-OS dominates trivial syscalls (getpid/gettimeofday);");
    println!("run-time checks dominate compute-heavy ones (open/close, pipe, fork).");

    print_check_breakdown(
        "sva-safe lookup-layer breakdown (MRU cache / page index / splay tree)",
        &[
            ("getpid", "user_getpid_loop", arg(2000, 0, 0)),
            ("open/close", "user_openclose_loop", arg(500, 0, 0)),
            ("write", "user_write_loop", arg(500, 64, 0)),
            ("pipe", "user_pipe_loop", arg(300, 0, 0)),
            ("fork", "user_fork_loop", arg(60, 0, 0)),
        ],
    );

    // `--trace`: re-run one representative row with a RingTracer attached
    // and print where its cycles actually went (per check, pool, SVA-OS
    // op). The table numbers above are untraced; this is the drill-down.
    if trace {
        let (sample, tracer) = run_workload_traced(
            KernelKind::SvaSafe,
            "user_getpid_loop",
            arg(2000, 0, 0),
            RingConfig::default(),
        );
        println!("\n-- traced drill-down: sva-safe getpid x2000 --");
        println!("{}", top_report(&tracer, sample.cycles, 5));
    }
}
