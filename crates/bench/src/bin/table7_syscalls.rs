//! Table 7: latency of raw kernel operations, four kernel configurations.
//!
//! Paper rows: getpid, getrusage, gettimeofday, open/close, sbrk,
//! sigaction, write, pipe, fork, fork/exec.
//!
//! `--opt-compare` additionally reruns a syscall subset on the sva-safe
//! kernel at `opt_level` 0 vs 2 (DESIGN.md §4.4 superinstruction fusion)
//! and writes the cycle deltas to `target/sva-bench/table7_opt_compare.json`
//! for the nightly CI artifact.
//!
//! `--vcpus 1,2,4,8` runs the SMP scaling workload (DESIGN.md §4.9) at
//! each vCPU count and writes the syscalls/sec-vs-vCPUs curve to
//! `target/sva-bench/scaling.json`, which `bench_gate` compares against
//! the checked-in baseline.

use std::path::PathBuf;

use bench::{
    arg, latency_row, print_check_breakdown, print_latency_table, print_scaling_table,
    run_workload_cfg, run_workload_traced, scaling_curve, scaling_json, scaling_speedup,
};
use sva_trace::{top_report, RingConfig};
use sva_vm::{KernelKind, VmConfig};

fn bench_dir() -> PathBuf {
    if let Ok(d) = std::env::var("SVA_BENCH_DIR") {
        return PathBuf::from(d);
    }
    let mut cur = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("target").join("sva-bench");
        }
        if !cur.pop() {
            return PathBuf::from("target/sva-bench");
        }
    }
}

/// Reruns `rows` on the sva-safe kernel with fusion off (opt 0) and on
/// (opt 2), printing the per-row cycle reduction and returning the JSON
/// artifact lines. The two runs must agree on result and instruction
/// count — fusion is behavior-preserving by construction, and this doubles
/// as an end-to-end equivalence gate on the real kernel.
fn opt_compare(rows: &[(&str, &str, u64)]) -> String {
    println!("\n== sva-safe optimizing tier: opt_level 0 vs 2 (virtual cycles) ==");
    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>10}",
        "Test", "cycles opt0", "cycles opt2", "fused execs", "saved %"
    );
    let mut json = String::from("[\n");
    for (i, (label, prog, a)) in rows.iter().enumerate() {
        let cfg = |opt| VmConfig {
            kind: KernelKind::SvaSafe,
            opt_level: opt,
            ..Default::default()
        };
        let s0 = run_workload_cfg(cfg(0), prog, *a);
        let s2 = run_workload_cfg(cfg(2), prog, *a);
        assert_eq!(s0.exit, s2.exit, "{label}: fusion changed the result");
        assert_eq!(
            s0.instructions, s2.instructions,
            "{label}: fusion changed the instruction count"
        );
        let saved = 100.0 * (s0.cycles - s2.cycles) as f64 / s0.cycles as f64;
        println!(
            "{:<22} {:>14} {:>14} {:>12} {:>9.2}%",
            label, s0.cycles, s2.cycles, s2.fused_execs, saved
        );
        json.push_str(&format!(
            "  {{\"test\":\"{label}\",\"cycles_opt0\":{},\"cycles_opt2\":{},\
             \"fused_execs\":{},\"saved_pct\":{saved:.3}}}{}\n",
            s0.cycles,
            s2.cycles,
            s2.fused_execs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("]\n");
    json
}

/// Parses `--vcpus 1,2,4` / `--vcpus=1,2,4` into the counts to sweep.
fn vcpus_arg() -> Option<Vec<u32>> {
    let args: Vec<String> = std::env::args().collect();
    let list = args.iter().enumerate().find_map(|(i, a)| {
        a.strip_prefix("--vcpus=")
            .map(str::to_string)
            .or_else(|| (a == "--vcpus").then(|| args.get(i + 1).cloned()).flatten())
    })?;
    let ns: Vec<u32> = list
        .split(',')
        .map(|s| s.trim().parse().expect("--vcpus takes e.g. 1,2,4,8"))
        .collect();
    assert!(!ns.is_empty(), "--vcpus takes e.g. 1,2,4,8");
    Some(ns)
}

fn main() {
    let trace = std::env::args().any(|a| a == "--trace");
    let compare = std::env::args().any(|a| a == "--opt-compare");
    let vcpus = vcpus_arg();

    // The scaling sweep stands alone: no point re-measuring the latency
    // table once per nightly matrix arm that only wants the curve.
    if let Some(ns) = vcpus {
        let points = scaling_curve(&ns);
        print_scaling_table(&points);
        if let Some(p4) = points.iter().find(|p| p.vcpus >= 4) {
            println!(
                "speedup at {} vCPUs: {:.2}x (acceptance floor 2.5x)",
                p4.vcpus,
                scaling_speedup(&points, p4)
            );
        }
        let dir = bench_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("scaling.json");
            match std::fs::write(&path, scaling_json(&points)) {
                Ok(()) => println!("scaling artifact: {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
        return;
    }
    let rows = vec![
        latency_row("getpid", "user_getpid_loop", arg(2000, 0, 0), 2000),
        latency_row("getrusage", "user_getrusage_loop", arg(2000, 0, 0), 2000),
        latency_row(
            "gettimeofday",
            "user_gettimeofday_loop",
            arg(2000, 0, 0),
            2000,
        ),
        latency_row("open/close", "user_openclose_loop", arg(500, 0, 0), 500),
        latency_row("sbrk", "user_sbrk_loop", arg(2000, 0, 0), 2000),
        latency_row("sigaction", "user_sigaction_loop", arg(2000, 0, 0), 2000),
        latency_row("write", "user_write_loop", arg(500, 64, 0), 500),
        latency_row("pipe", "user_pipe_loop", arg(300, 0, 0), 300),
        latency_row("fork", "user_fork_loop", arg(60, 0, 0), 60),
        latency_row("fork/exec", "user_forkexec_loop", arg(60, 0, 0), 60),
    ];
    print_latency_table(
        "Table 7: latency increase for raw kernel operations (% of native)",
        &rows,
    );
    println!("\npaper shape: SVA-OS dominates trivial syscalls (getpid/gettimeofday);");
    println!("run-time checks dominate compute-heavy ones (open/close, pipe, fork).");

    print_check_breakdown(
        "sva-safe lookup-layer breakdown (singleton / MRU cache / page index / splay tree)",
        &[
            ("getpid", "user_getpid_loop", arg(2000, 0, 0)),
            ("open/close", "user_openclose_loop", arg(500, 0, 0)),
            ("write", "user_write_loop", arg(500, 64, 0)),
            ("pipe", "user_pipe_loop", arg(300, 0, 0)),
            ("fork", "user_fork_loop", arg(60, 0, 0)),
        ],
    );

    if compare {
        let json = opt_compare(&[
            ("getpid", "user_getpid_loop", arg(2000, 0, 0)),
            ("open/close", "user_openclose_loop", arg(500, 0, 0)),
            ("write", "user_write_loop", arg(500, 64, 0)),
            ("pipe", "user_pipe_loop", arg(300, 0, 0)),
            ("fork", "user_fork_loop", arg(60, 0, 0)),
        ]);
        let dir = bench_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("table7_opt_compare.json");
            match std::fs::write(&path, &json) {
                Ok(()) => println!("opt-compare artifact: {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    }

    // `--trace`: re-run one representative row with a RingTracer attached
    // and print where its cycles actually went (per check, pool, SVA-OS
    // op). The table numbers above are untraced; this is the drill-down.
    if trace {
        let (sample, tracer) = run_workload_traced(
            KernelKind::SvaSafe,
            "user_getpid_loop",
            arg(2000, 0, 0),
            RingConfig::default(),
        );
        println!("\n-- traced drill-down: sva-safe getpid x2000 --");
        println!("{}", top_report(&tracer, sample.cycles, 5));
    }
}
