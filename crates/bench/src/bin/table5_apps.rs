//! Table 5: application latency on the four kernel configurations.
//!
//! Paper rows: bzip2, lame, gcc, ldd (local); scp, thttpd 311B/85K/cgi
//! (served). Absolute numbers differ from the paper's Pentium III; the
//! claim reproduced is the *shape*: overhead grows with %system time.

use bench::{arg, latency_row, print_latency_table};

fn main() {
    let rows = vec![
        latency_row("bzip2 (compress)", "user_bzip2", arg(24, 0, 0), 1),
        latency_row("lame (encode)", "user_lame", arg(24, 0, 0), 1),
        latency_row("gcc (compile)", "user_gcc", arg(40, 0, 0), 1),
        latency_row("ldd (syscall-bound)", "user_ldd", arg(400, 0, 0), 1),
        latency_row("scp (42MB-analog)", "user_scp", arg(64, 32 * 1024, 0), 1),
        latency_row("thttpd (311B)", "user_thttpd", arg(400, 311, 0), 1),
        latency_row("thttpd (85K)", "user_thttpd", arg(24, 85 * 1024, 0), 1),
        latency_row("thttpd (cgi)", "user_thttpd", arg(60, 4096, 1), 1),
    ];
    print_latency_table("Table 5: application latency increase (% of native)", &rows);
    println!("\npaper shape: compute-bound apps (lame/bzip2/gcc) near-zero overhead;");
    println!("kernel-intensive apps (ldd, thttpd small files) the largest.");
}
