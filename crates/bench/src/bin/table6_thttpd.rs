//! Table 6: thttpd bandwidth reduction for 311 B, 85 KB and cgi responses.

use bench::{arg, bandwidth_row, print_bandwidth_table};

fn main() {
    let rows = vec![
        bandwidth_row(
            "311 B x 400 req",
            "user_thttpd",
            arg(400, 311, 0),
            400 * 311,
        ),
        bandwidth_row(
            "85 KB x 24 req",
            "user_thttpd",
            arg(24, 85 * 1024, 0),
            24 * 85 * 1024,
        ),
        bandwidth_row("cgi x 60 req", "user_thttpd", arg(60, 4096, 1), 60 * 4096),
    ];
    print_bandwidth_table("Table 6: thttpd bandwidth reduction (% of native)", &rows);
    println!("\npaper shape: small responses hurt most (per-request kernel work);");
    println!("large transfers amortize the checks.");
}
