//! Deterministic machine-level fault-injection campaign with blast-radius
//! measurement (DESIGN.md §4.3/§4.5).
//!
//! Every [`FaultClass`] × seed × workload cell is run on **two arms**:
//!
//! * `flat`   — the recovery kernel with a single boot-time domain,
//! * `nested` — the kernel that wraps every syscall and the IRQ dispatch
//!   path in its own recovery domain (graceful degradation).
//!
//! Both arms use the same deferred fault plans (`with_defer`), so the
//! modelled faults land inside handler bodies — on the nested arm that
//! is inside the per-syscall domain. After each run the campaign disarms
//! the injector and probes the machine with a fixed syscall workload to
//! measure the blast radius: how many syscalls still answer, how many
//! were degraded to `-ENOSYS`, how many threads were stranded, and at
//! what domain depth the faults were contained.
//!
//! A JSON report lands in `target/sva-inject/faultcamp.json` (override
//! the directory with `SVA_INJECT_DIR`). Exit status is nonzero on any
//! panic, escaped safety violation, determinism failure, nested-arm
//! machine death, or unresponsive nested-arm probe, so CI gates on it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sva_inject::{FaultClass, FaultPlan, PROBE_DEFER};
use sva_kernel::harness::{
    boot_user, make_vm_nested, make_vm_recovering, pack_arg, USER_HEAP_BASE,
};
use sva_kernel::{sysd_name, SYSCALLS};
use sva_vm::{Mode, Vm, VmConfig, VmError, VmExit, VmStats};

const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];
const FUEL: u64 = 3_000_000;
/// Inject on every other trap.
const PERIOD: u64 = 2;
/// Scoped violation budget for the main grid (the degradation sub-run
/// drops it to 1 so a single violation poisons).
const BUDGET: u32 = 3;

const WORKLOADS: [(&str, u64, u64, u64); 4] = [
    ("user_getpid_loop", 200, 0, 0),
    ("user_openclose_loop", 60, 0, 0),
    ("user_pipe_loop", 40, 64, 0),
    ("user_write_loop", 80, 128, 0),
];

/// Post-fault serviceability probes: non-blocking, non-spawning syscalls
/// covering process, fs, net and time subsystems. A probe is *responsive*
/// when the call returns a value (including error codes) instead of
/// halting the machine.
const PROBES: [(&str, &[u64]); 9] = [
    ("sys_getpid", &[]),
    ("sys_getrusage", &[USER_HEAP_BASE]),
    ("sys_gettimeofday", &[USER_HEAP_BASE]),
    ("sys_sbrk", &[0]),
    ("sys_lseek", &[0, 0]),
    ("sys_close", &[7]),
    ("sys_kill", &[7, 1]),
    ("sys_socket", &[]),
    ("sys_write", &[1, USER_HEAP_BASE, 8]),
];

/// proc_table geometry (build.rs `proc_t`): 8 scalar fields + 8 signal
/// handlers + 8 fds, 8 bytes each; state is the first field. Validated
/// at startup against a clean run (`threads_stranded == 0`).
const NPROC: u64 = 8;
const PROC_STRIDE: u64 = 24 * 8;
const P_FREE: u64 = 0;
const P_ZOMBIE: u64 = 4;

const ENOSYS: i64 = -38;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Arm {
    Flat,
    Nested,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Flat => "flat",
            Arm::Nested => "nested",
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct Blast {
    /// Violations caught by a per-syscall / IRQ domain (`recov_sysd_count`).
    contained_syscall: u64,
    /// Violations that fell through to the boot domain (`recov_count`).
    contained_boot: u64,
    /// Probes that answered (any return value) after the faults.
    probes_responsive: u64,
    /// Probes that answered `-ENOSYS` (degraded syscalls, nested only).
    probes_degraded: u64,
    /// Probes that halted the machine or escaped as an error.
    probes_dead: u64,
    /// Health-table entries marked degraded (nested only).
    syscalls_degraded: u64,
    /// Live (non-FREE, non-ZOMBIE) processes stranded beyond the clean
    /// baseline of the same workload.
    threads_stranded: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct RunResult {
    injected: u64,
    stats: VmStats,
    outcome: Outcome,
    blast: Blast,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Outcome {
    /// The workload ran to completion (any exit value).
    Completed,
    /// The recovery handler halted after a pool was poisoned (abort 41).
    HaltedPoisoned,
    /// The recovery handler halted with nothing to resume (abort 42).
    HaltedClean,
    /// `Vm::run` returned a structured non-safety error (e.g. fuel).
    StructuredError(String),
    /// A safety violation escaped the recovery domain — campaign failure.
    EscapedSafety(String),
}

fn make_vm(arm: Arm, cfg: VmConfig) -> Vm {
    match arm {
        Arm::Flat => make_vm_recovering(cfg),
        Arm::Nested => make_vm_nested(cfg),
    }
}

/// Metapool ids with complete points-to info — the probe targets. The
/// flat and nested images analyze to different pool tables, so targets
/// are computed per arm.
fn complete_pools(arm: Arm) -> Vec<u32> {
    let vm = make_vm(arm, VmConfig::default());
    (0..vm.pools.len() as u32)
        .filter(|&i| vm.pools.pool(sva_rt::MetaPoolId(i)).complete)
        .collect()
}

/// Live (non-FREE, non-ZOMBIE) entries in the guest's process table.
fn live_procs(vm: &mut Vm) -> u64 {
    let Some(base) = vm.global_address("proc_table") else {
        return 0;
    };
    (0..NPROC)
        .filter(|i| {
            let st = vm
                .mem
                .read_uint(base + i * PROC_STRIDE, 8, Mode::Kernel)
                .unwrap_or(0);
            st != P_FREE && st != P_ZOMBIE
        })
        .count() as u64
}

/// Stranded-thread baseline: what a clean (fault-free) run of the
/// workload leaves in the process table.
fn clean_baseline(arm: Arm, workload: (&str, u64, u64, u64)) -> u64 {
    let mut vm = make_vm(
        arm,
        VmConfig {
            fuel: FUEL,
            ..Default::default()
        },
    );
    let (prog, iters, size, mode) = workload;
    let _ = boot_user(&mut vm, prog, pack_arg(iters, size, mode));
    live_procs(&mut vm)
}

/// Runs the post-fault probe workload and fills in the blast record.
fn measure_blast(vm: &mut Vm, arm: Arm, baseline: u64) -> Blast {
    vm.disarm_faults();
    let mut b = Blast {
        contained_syscall: vm.read_global_u64("recov_sysd_count").unwrap_or(0),
        contained_boot: vm.read_global_u64("recov_count").unwrap_or(0),
        threads_stranded: live_procs(vm).saturating_sub(baseline),
        ..Default::default()
    };
    if arm == Arm::Nested {
        if let Some(base) = vm.global_address("syscall_health") {
            b.syscalls_degraded = (0..SYSCALLS.len() as u64)
                .filter(|i| vm.mem.read_uint(base + i * 8, 8, Mode::Kernel).unwrap_or(0) != 0)
                .count() as u64;
        }
    }
    for (handler, args) in PROBES {
        let name = match arm {
            Arm::Flat => handler.to_string(),
            Arm::Nested => sysd_name(handler),
        };
        match vm.call(&name, args) {
            Ok(VmExit::Returned(v)) => {
                b.probes_responsive += 1;
                if v as i64 == ENOSYS {
                    b.probes_degraded += 1;
                }
            }
            Ok(VmExit::Halted(_)) | Err(_) => b.probes_dead += 1,
        }
    }
    b
}

fn run_one(
    arm: Arm,
    class: FaultClass,
    seed: u64,
    workload: (&str, u64, u64, u64),
    budget: u32,
    baseline: u64,
) -> Option<RunResult> {
    let targets = complete_pools(arm);
    catch_unwind(AssertUnwindSafe(move || {
        let plan = Arc::new(FaultPlan::new(class, seed, PERIOD, targets).with_defer(PROBE_DEFER));
        let cfg = VmConfig {
            fuel: FUEL,
            violation_budget: budget,
            fault_hook: Some(plan.clone()),
            ..Default::default()
        };
        let mut vm = make_vm(arm, cfg);
        let (prog, iters, size, mode) = workload;
        let r = boot_user(&mut vm, prog, pack_arg(iters, size, mode));
        let outcome = match r {
            Ok(VmExit::Halted(41)) => Outcome::HaltedPoisoned,
            Ok(VmExit::Halted(42)) => Outcome::HaltedClean,
            Ok(_) => Outcome::Completed,
            Err(VmError::Safety(e)) => Outcome::EscapedSafety(e.to_string()),
            Err(e) => Outcome::StructuredError(e.to_string()),
        };
        let blast = measure_blast(&mut vm, arm, baseline);
        RunResult {
            injected: plan.injected(),
            stats: vm.stats(),
            outcome,
            blast,
        }
    }))
    .ok()
}

#[derive(Default)]
struct Tally {
    runs: u64,
    injected: u64,
    recovered: u64,
    quarantined: u64,
    poisoned: u64,
    completed: u64,
    halted_poisoned: u64,
    halted_clean: u64,
    structured_errors: u64,
    escaped_safety: u64,
    panics: u64,
    // Blast-radius aggregates.
    contained_syscall: u64,
    contained_boot: u64,
    probes_responsive: u64,
    probes_degraded: u64,
    probes_dead: u64,
    syscalls_degraded: u64,
    threads_stranded: u64,
}

impl Tally {
    fn absorb(&mut self, r: &Option<RunResult>) {
        self.runs += 1;
        let Some(r) = r else {
            self.panics += 1;
            return;
        };
        self.injected += r.injected;
        self.recovered += r.stats.violations_recovered;
        self.quarantined += r.stats.pools_quarantined;
        self.poisoned += r.stats.pools_poisoned;
        self.contained_syscall += r.blast.contained_syscall;
        self.contained_boot += r.blast.contained_boot;
        self.probes_responsive += r.blast.probes_responsive;
        self.probes_degraded += r.blast.probes_degraded;
        self.probes_dead += r.blast.probes_dead;
        self.syscalls_degraded += r.blast.syscalls_degraded;
        self.threads_stranded += r.blast.threads_stranded;
        match &r.outcome {
            Outcome::Completed => self.completed += 1,
            Outcome::HaltedPoisoned => self.halted_poisoned += 1,
            Outcome::HaltedClean => self.halted_clean += 1,
            Outcome::StructuredError(_) => self.structured_errors += 1,
            Outcome::EscapedSafety(e) => {
                self.escaped_safety += 1;
                eprintln!("ESCAPED SAFETY VIOLATION: {e}");
            }
        }
    }

    fn machine_deaths(&self) -> u64 {
        self.halted_poisoned + self.halted_clean
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"runs\":{},\"faults_injected\":{},\"violations_recovered\":{},",
                "\"pools_quarantined\":{},\"pools_poisoned\":{},\"completed\":{},",
                "\"halted_poisoned\":{},\"halted_clean\":{},\"structured_errors\":{},",
                "\"escaped_safety\":{},\"panics\":{},",
                "\"contained_syscall\":{},\"contained_boot\":{},",
                "\"probes_responsive\":{},\"probes_degraded\":{},\"probes_dead\":{},",
                "\"syscalls_degraded\":{},\"threads_stranded\":{}}}"
            ),
            self.runs,
            self.injected,
            self.recovered,
            self.quarantined,
            self.poisoned,
            self.completed,
            self.halted_poisoned,
            self.halted_clean,
            self.structured_errors,
            self.escaped_safety,
            self.panics,
            self.contained_syscall,
            self.contained_boot,
            self.probes_responsive,
            self.probes_degraded,
            self.probes_dead,
            self.syscalls_degraded,
            self.threads_stranded,
        )
    }
}

fn report_dir() -> std::path::PathBuf {
    if let Ok(d) = std::env::var("SVA_INJECT_DIR") {
        return std::path::PathBuf::from(d);
    }
    // Anchor at the workspace root (nearest ancestor holding Cargo.lock),
    // same as the bench harness, so the report lands in one known place
    // regardless of the cwd cargo chose.
    let mut cur = std::env::var("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("target").join("sva-inject");
        }
        if !cur.pop() {
            return std::path::PathBuf::from("target/sva-inject");
        }
    }
}

fn run_arm(arm: Arm, baselines: &[u64; WORKLOADS.len()]) -> (Tally, Vec<(FaultClass, Tally)>) {
    let mut total = Tally::default();
    let mut per_class = Vec::new();
    for class in FaultClass::ALL {
        let mut tally = Tally::default();
        for seed in SEEDS {
            for (wi, workload) in WORKLOADS.into_iter().enumerate() {
                let r = run_one(arm, class, seed, workload, BUDGET, baselines[wi]);
                tally.absorb(&r);
                total.absorb(&r);
            }
        }
        println!(
            "{:7} {:18} runs {:3}  injected {:6}  recovered {:6}  deaths {:3}  contained sys/boot {:5}/{:4}  probes live {:4}",
            arm.name(),
            class.name(),
            tally.runs,
            tally.injected,
            tally.recovered,
            tally.machine_deaths(),
            tally.contained_syscall,
            tally.contained_boot,
            tally.probes_responsive,
        );
        per_class.push((class, tally));
    }
    (total, per_class)
}

fn main() {
    // Sanity gate for the proc_table geometry: a clean nested run must
    // strand nothing beyond its own baseline (i.e. the baseline math
    // sees real process states, not garbage).
    let nested_baselines: [u64; WORKLOADS.len()] =
        std::array::from_fn(|i| clean_baseline(Arm::Nested, WORKLOADS[i]));
    let flat_baselines: [u64; WORKLOADS.len()] =
        std::array::from_fn(|i| clean_baseline(Arm::Flat, WORKLOADS[i]));

    // Determinism gate on both arms: the same plan on the same workload
    // must replay bit-identically — stats, injections and blast radius.
    let mut deterministic = true;
    for arm in [Arm::Flat, Arm::Nested] {
        let b = match arm {
            Arm::Flat => flat_baselines[0],
            Arm::Nested => nested_baselines[0],
        };
        let d0 = run_one(arm, FaultClass::WildPtr, SEEDS[0], WORKLOADS[0], BUDGET, b);
        let d1 = run_one(arm, FaultClass::WildPtr, SEEDS[0], WORKLOADS[0], BUDGET, b);
        if d0 != d1 || d0.is_none() {
            deterministic = false;
            eprintln!("DETERMINISM FAILURE ({}):\n  {d0:?}\n  {d1:?}", arm.name());
        }
    }

    let (flat_total, flat_classes) = run_arm(Arm::Flat, &flat_baselines);
    let (nested_total, nested_classes) = run_arm(Arm::Nested, &nested_baselines);

    // Degradation sub-run: budget 1, so a single violation poisons its
    // pool and the owning syscall degrades to -ENOSYS while the rest of
    // the machine keeps answering.
    let mut degr = Tally::default();
    let mut degraded_runs = 0u64;
    for seed in [1, 2, 3] {
        for wi in [1usize, 3] {
            let r = run_one(
                Arm::Nested,
                FaultClass::WildPtr,
                seed,
                WORKLOADS[wi],
                1,
                nested_baselines[wi],
            );
            if let Some(rr) = &r {
                if rr.blast.syscalls_degraded > 0 {
                    degraded_runs += 1;
                }
            }
            degr.absorb(&r);
        }
    }
    println!(
        "nested  degradation(b=1)  runs {:3}  degraded-runs {:3}  syscalls-degraded {:3}  deaths {:3}  probes live {:4}",
        degr.runs,
        degraded_runs,
        degr.syscalls_degraded,
        degr.machine_deaths(),
        degr.probes_responsive,
    );

    let arm_json = |total: &Tally, classes: &[(FaultClass, Tally)]| {
        let cj: Vec<String> = classes
            .iter()
            .map(|(c, t)| format!("{{\"class\":\"{}\",\"tally\":{}}}", c.name(), t.json()))
            .collect();
        format!(
            "{{\"total\":{},\"classes\":[{}]}}",
            total.json(),
            cj.join(",")
        )
    };
    let json = format!(
        concat!(
            "{{\"campaign\":\"faultcamp\",\"deterministic\":{},",
            "\"flat\":{},\"nested\":{},",
            "\"degradation\":{{\"tally\":{},\"degraded_runs\":{}}},",
            "\"gates\":{{\"panics\":{},\"escapes\":{},\"nested_machine_deaths\":{},",
            "\"nested_probes_dead\":{},\"flat_machine_deaths\":{}}}}}\n"
        ),
        deterministic,
        arm_json(&flat_total, &flat_classes),
        arm_json(&nested_total, &nested_classes),
        degr.json(),
        degraded_runs,
        flat_total.panics + nested_total.panics + degr.panics,
        flat_total.escaped_safety + nested_total.escaped_safety + degr.escaped_safety,
        nested_total.machine_deaths() + degr.machine_deaths(),
        nested_total.probes_dead + degr.probes_dead,
        flat_total.machine_deaths(),
    );

    let dir = report_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("faultcamp.json");
        if std::fs::write(&path, &json).is_ok() {
            println!("report: {}", path.display());
        }
    }

    let panics = flat_total.panics + nested_total.panics + degr.panics;
    let escapes = flat_total.escaped_safety + nested_total.escaped_safety + degr.escaped_safety;
    println!(
        "flat:   {} injected, {} recovered, {} machine deaths, probes {}/{} live",
        flat_total.injected,
        flat_total.recovered,
        flat_total.machine_deaths(),
        flat_total.probes_responsive,
        flat_total.runs * PROBES.len() as u64,
    );
    println!(
        "nested: {} injected, {} recovered, {} machine deaths, probes {}/{} live, contained sys/boot {}/{}",
        nested_total.injected,
        nested_total.recovered,
        nested_total.machine_deaths(),
        nested_total.probes_responsive,
        nested_total.runs * PROBES.len() as u64,
        nested_total.contained_syscall,
        nested_total.contained_boot,
    );

    let mut failed = false;
    let mut fail = |cond: bool, msg: &str| {
        if cond {
            eprintln!("FAILURE: {msg}");
            failed = true;
        }
    };
    fail(panics > 0, "a campaign run panicked the host");
    fail(escapes > 0, "a safety violation escaped a recovery domain");
    fail(!deterministic, "campaign replay was not bit-identical");
    fail(
        flat_total.injected + nested_total.injected < 1000,
        "campaign injected fewer than 1000 faults",
    );
    fail(
        nested_total.machine_deaths() + degr.machine_deaths() > 0,
        "a fault killed the nested machine (blast radius escaped the syscall)",
    );
    fail(
        nested_total.probes_dead + degr.probes_dead > 0,
        "a post-fault probe found the nested machine unresponsive",
    );
    fail(
        nested_total.recovered > 0 && nested_total.contained_syscall == 0,
        "nested arm recovered faults but none at syscall depth",
    );
    fail(
        degraded_runs == 0,
        "degradation sub-run never degraded a syscall",
    );
    fail(
        nested_total.machine_deaths() >= flat_total.machine_deaths()
            && flat_total.machine_deaths() > 0,
        "nested blast radius not strictly smaller than flat",
    );
    if failed {
        std::process::exit(1);
    }
}
