//! Deterministic machine-level fault-injection campaign with blast-radius
//! measurement (DESIGN.md §4.3/§4.5), snapshot-forked (DESIGN.md §4.6).
//!
//! Every [`FaultClass`] × seed × workload cell is run on **two arms**:
//!
//! * `flat`   — the recovery kernel with a single boot-time domain,
//! * `nested` — the kernel that wraps every syscall and the IRQ dispatch
//!   path in its own recovery domain (graceful degradation).
//!
//! Both arms use the same deferred fault plans (`with_defer`), so the
//! modelled faults land inside handler bodies — on the nested arm that
//! is inside the per-syscall domain. After each run the campaign disarms
//! the injector and probes the machine with a fixed syscall workload to
//! measure the blast radius: how many syscalls still answer, how many
//! were degraded to `-ENOSYS`, how many threads were stranded, and at
//! what domain depth the faults were contained.
//!
//! **Snapshot forking.** Fault plans only act at user→kernel traps and
//! the boot runs entirely in kernel mode, so every cell of one
//! (arm, workload, budget) column shares a bit-identical post-boot
//! machine. The campaign therefore boots each column **once** with a
//! passive [`DropRecorder`] attached, pauses at the first user
//! instruction ([`boot_user_paused`]), snapshots the machine
//! ([`Vm::snapshot`]), and *forks* every (class × seed) run from the
//! in-memory image: fresh VM + fresh plan, [`Vm::restore`], replay the
//! recorded boot-time pool drops into the plan
//! ([`FaultPlan::replay_drops`], so `StaleUse` learns the same
//! use-after-free candidates a re-booted machine would), then
//! [`Vm::run`]. A fork-vs-reboot cross-check cell per arm gates that the
//! shortcut is byte-identical; `--verify-reboot` extends the check to
//! every cell and `--reboot` runs the legacy full-reboot campaign.
//!
//! **Crash forensics.** Every campaign machine runs with an always-on
//! [`FlightRecorder`] and per-cell crash capture: any machine death
//! (halt 41/42, fuel exhaustion, escape) drops a crash bundle named
//! after its grid cell into `target/sva-dbg` (override with
//! `SVA_DBG_DIR`). After the grid, every halt bundle is replayed via
//! `sva_kernel::postmortem` and must reproduce the same halt code,
//! resume code and console bit-for-bit — the `svadbg` inspector reads
//! the same bundles offline.
//!
//! **SMP arm.** After the single-CPU grid, the same 6-class grid runs
//! as concurrent job batches on a `--vcpus`-wide (default 4) nested
//! [`SmpMachine`] whose vCPUs share one epoch-published metadata plane
//! (DESIGN.md §4.9) — proving containment survives real thread
//! interleaving on the lock-free check path. Any death there drops a
//! bundle whose `cpu` field names the faulting vCPU.
//!
//! A JSON report lands in `target/sva-inject/faultcamp.json` (override
//! the directory with `SVA_INJECT_DIR`). Exit status is nonzero on any
//! panic, escaped safety violation, determinism failure, fork/reboot
//! divergence, nested-arm machine death, unresponsive nested-arm
//! probe, crash-bundle replay divergence, or SMP-arm death/escape, so
//! CI gates on it.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sva_inject::{DropRecorder, FaultClass, FaultPlan, PROBE_DEFER};
use sva_kernel::harness::{
    boot_user, boot_user_paused, make_vm_nested, make_vm_nested_patched, make_vm_nested_traced,
    make_vm_recovering_traced, pack_arg, USER_HEAP_BASE,
};
use sva_kernel::postmortem::{check_reproduction, replay};
use sva_kernel::{health_state, sysd_name, H_DEGRADED, H_LIVE, H_PROBATION, H_RETIRED, SYSCALLS};
use sva_vm::{
    CrashBundle, FlightRecorder, Mode, ResumeCode, SmpJob, SmpMachine, Vm, VmConfig, VmError,
    VmExit, VmStats,
};

/// Campaign machines carry the always-on flight recorder so crash
/// bundles embed a black-box event tail.
type CampVm = Vm<FlightRecorder>;

const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];
const FUEL: u64 = 3_000_000;
/// Inject on every other trap.
const PERIOD: u64 = 2;
/// Scoped violation budget for the main grid (the degradation sub-run
/// drops it to 1 so a single violation poisons).
const BUDGET: u32 = 3;

const WORKLOADS: [(&str, u64, u64, u64); 4] = [
    ("user_getpid_loop", 200, 0, 0),
    ("user_openclose_loop", 60, 0, 0),
    ("user_pipe_loop", 40, 64, 0),
    ("user_write_loop", 80, 128, 0),
];

/// Post-fault serviceability probes: non-blocking, non-spawning syscalls
/// covering process, fs, net and time subsystems. A probe is *responsive*
/// when the call returns a value (including error codes) instead of
/// halting the machine.
const PROBES: [(&str, &[u64]); 9] = [
    ("sys_getpid", &[]),
    ("sys_getrusage", &[USER_HEAP_BASE]),
    ("sys_gettimeofday", &[USER_HEAP_BASE]),
    ("sys_sbrk", &[0]),
    ("sys_lseek", &[0, 0]),
    ("sys_close", &[7]),
    ("sys_kill", &[7, 1]),
    ("sys_socket", &[]),
    ("sys_write", &[1, USER_HEAP_BASE, 8]),
];

/// proc_table geometry (build.rs `proc_t`): 8 scalar fields + 8 signal
/// handlers + 8 fds, 8 bytes each; state is the first field. Validated
/// at startup against a clean run (`threads_stranded == 0`).
const NPROC: u64 = 8;
const PROC_STRIDE: u64 = 24 * 8;
const P_FREE: u64 = 0;
const P_ZOMBIE: u64 = 4;

const ENOSYS: i64 = -38;
const EFAULT: i64 = -14;

/// Repair-arm timeline length: IRQ ticks driven (and probe sweeps run)
/// after the transient poison. Long enough to cover the initial repair
/// backoff (`REPAIR_DELAY_INIT`) plus the probation window many times
/// over, so a healthy repair path leaves only a handful of fenced
/// probes in the availability denominator.
const REPAIR_TIMELINE: u64 = 50;

/// Repair-arm targets: probe syscalls whose handlers dereference
/// through a metapool check, so a poisoned pool deterministically
/// degrades them. Targets whose discovery probe does not fault are
/// skipped (and logged) rather than failing the arm.
const REPAIR_TARGETS: [(&str, &[u64]); 7] = [
    ("sys_getrusage", &[USER_HEAP_BASE]),
    ("sys_gettimeofday", &[USER_HEAP_BASE]),
    ("sys_sbrk", &[0]),
    ("sys_lseek", &[0, 0]),
    ("sys_kill", &[7, 1]),
    ("sys_socket", &[]),
    ("sys_write", &[1, USER_HEAP_BASE, 8]),
];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Arm {
    Flat,
    Nested,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Flat => "flat",
            Arm::Nested => "nested",
        }
    }
}

/// How each campaign cell obtains its post-boot machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BootMode {
    /// Boot once per (arm, workload, budget), fork cells from the image.
    Fork,
    /// Legacy behavior: boot the kernel freshly for every cell.
    Reboot,
    /// Run every cell both ways and gate on byte-identical results.
    VerifyReboot,
}

impl BootMode {
    fn name(self) -> &'static str {
        match self {
            BootMode::Fork => "fork",
            BootMode::Reboot => "reboot",
            BootMode::VerifyReboot => "verify_reboot",
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct Blast {
    /// Violations caught by a per-syscall / IRQ domain (`recov_sysd_count`).
    contained_syscall: u64,
    /// Violations that fell through to the boot domain (`recov_count`).
    contained_boot: u64,
    /// Probes that answered (any return value) after the faults.
    probes_responsive: u64,
    /// Probes that answered `-ENOSYS` (degraded syscalls, nested only).
    probes_degraded: u64,
    /// Probes that halted the machine or escaped as an error.
    probes_dead: u64,
    /// Syscall health-table entries not in the live state — degraded,
    /// in probation, or retired (nested only, DESIGN.md §4.8).
    syscalls_degraded: u64,
    /// Live (non-FREE, non-ZOMBIE) processes stranded beyond the clean
    /// baseline of the same workload.
    threads_stranded: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct RunResult {
    injected: u64,
    stats: VmStats,
    outcome: Outcome,
    blast: Blast,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Outcome {
    /// The workload ran to completion (any exit value).
    Completed,
    /// The recovery handler halted after a pool was poisoned (abort 41).
    HaltedPoisoned,
    /// The recovery handler halted with nothing to resume (abort 42).
    HaltedClean,
    /// `Vm::run` returned a structured non-safety error (e.g. fuel).
    StructuredError(String),
    /// A safety violation escaped the recovery domain — campaign failure.
    EscapedSafety(String),
}

fn make_vm(arm: Arm, cfg: VmConfig) -> CampVm {
    match arm {
        Arm::Flat => make_vm_recovering_traced(cfg, FlightRecorder::default()),
        Arm::Nested => make_vm_nested_traced(cfg, FlightRecorder::default()),
    }
}

/// Metapool ids with complete points-to info — the probe targets. The
/// flat and nested images analyze to different pool tables, so targets
/// are computed per arm.
fn complete_pools(arm: Arm) -> Vec<u32> {
    let vm = make_vm(arm, VmConfig::default());
    (0..vm.pools.len() as u32)
        .filter(|&i| vm.pools.pool(sva_rt::MetaPoolId(i)).complete)
        .collect()
}

/// Live (non-FREE, non-ZOMBIE) entries in the guest's process table.
fn live_procs(vm: &mut CampVm) -> u64 {
    let Some(base) = vm.global_address("proc_table") else {
        return 0;
    };
    (0..NPROC)
        .filter(|i| {
            let st = vm
                .mem
                .read_uint(base + i * PROC_STRIDE, 8, Mode::Kernel)
                .unwrap_or(0);
            st != P_FREE && st != P_ZOMBIE
        })
        .count() as u64
}

/// Stranded-thread baseline: what a clean (fault-free) run of the
/// workload leaves in the process table.
fn clean_baseline(arm: Arm, workload: (&str, u64, u64, u64)) -> u64 {
    let mut vm = make_vm(
        arm,
        VmConfig {
            fuel: FUEL,
            ..Default::default()
        },
    );
    let (prog, iters, size, mode) = workload;
    let _ = boot_user(&mut vm, prog, pack_arg(iters, size, mode));
    live_procs(&mut vm)
}

/// Runs the post-fault probe workload and fills in the blast record.
fn measure_blast(vm: &mut CampVm, arm: Arm, baseline: u64) -> Blast {
    vm.disarm_faults();
    // A dying probe must not overwrite the real death's bundle.
    vm.disable_crash_capture();
    let mut b = Blast {
        contained_syscall: vm.read_global_u64("recov_sysd_count").unwrap_or(0),
        contained_boot: vm.read_global_u64("recov_count").unwrap_or(0),
        threads_stranded: live_procs(vm).saturating_sub(baseline),
        ..Default::default()
    };
    if arm == Arm::Nested {
        if let Some(base) = vm.global_address("subsys_health") {
            b.syscalls_degraded = (0..SYSCALLS.len() as u64)
                .filter(|i| {
                    let word = vm.mem.read_uint(base + i * 8, 8, Mode::Kernel).unwrap_or(0);
                    health_state(word) != H_LIVE as u64
                })
                .count() as u64;
        }
    }
    for (handler, args) in PROBES {
        let name = match arm {
            Arm::Flat => handler.to_string(),
            Arm::Nested => sysd_name(handler),
        };
        match vm.call(&name, args) {
            Ok(VmExit::Returned(v)) => {
                b.probes_responsive += 1;
                if v as i64 == ENOSYS {
                    b.probes_degraded += 1;
                }
            }
            Ok(VmExit::Halted(_)) | Err(_) => b.probes_dead += 1,
        }
    }
    b
}

/// A paused post-boot machine image plus the pool drops the boot emitted
/// (replayed into each fork's fresh plan so `StaleUse` learns the same
/// use-after-free candidates a re-booted machine would).
struct BootImage {
    bytes: Vec<u8>,
    boot_drops: Vec<(u32, u64)>,
}

/// Boots one (arm, workload, budget) column to the first user instruction
/// and snapshots it. Panics if the boot never reaches user mode — every
/// campaign workload must, so that is a harness bug, not a fault effect.
fn boot_image(arm: Arm, workload: (&str, u64, u64, u64), budget: u32) -> BootImage {
    let rec = Arc::new(DropRecorder::new());
    let cfg = VmConfig {
        fuel: FUEL,
        violation_budget: budget,
        fault_hook: Some(rec.clone()),
        ..Default::default()
    };
    let mut vm = make_vm(arm, cfg);
    let (prog, iters, size, mode) = workload;
    match boot_user_paused(&mut vm, prog, pack_arg(iters, size, mode)) {
        Ok(None) => BootImage {
            bytes: vm.snapshot(),
            boot_drops: rec.drops(),
        },
        other => panic!("{prog} boot never reached user mode: {other:?}"),
    }
}

/// Maps a finished workload run to its campaign outcome and blast record.
fn finish_run(
    vm: &mut CampVm,
    arm: Arm,
    baseline: u64,
    r: Result<VmExit, VmError>,
    plan: &FaultPlan,
) -> RunResult {
    let outcome = match r {
        Ok(VmExit::Halted(41)) => Outcome::HaltedPoisoned,
        Ok(VmExit::Halted(42)) => Outcome::HaltedClean,
        Ok(_) => Outcome::Completed,
        Err(VmError::Safety(e)) => Outcome::EscapedSafety(e.to_string()),
        Err(e) => Outcome::StructuredError(e.to_string()),
    };
    let blast = measure_blast(vm, arm, baseline);
    RunResult {
        injected: plan.injected(),
        stats: vm.stats(),
        outcome,
        blast,
    }
}

/// Legacy cell: boot the kernel freshly under the armed plan.
#[allow(clippy::too_many_arguments)]
fn run_one_reboot(
    arm: Arm,
    class: FaultClass,
    seed: u64,
    workload: (&str, u64, u64, u64),
    budget: u32,
    baseline: u64,
    targets: &[u32],
    tag: &str,
) -> Option<RunResult> {
    let targets = targets.to_vec();
    let tag = tag.to_string();
    catch_unwind(AssertUnwindSafe(move || {
        let plan = Arc::new(FaultPlan::new(class, seed, PERIOD, targets).with_defer(PROBE_DEFER));
        let cfg = VmConfig {
            fuel: FUEL,
            violation_budget: budget,
            fault_hook: Some(plan.clone()),
            ..Default::default()
        };
        let mut vm = make_vm(arm, cfg);
        vm.enable_crash_capture(Some(&bundle_dir()), &tag);
        let (prog, iters, size, mode) = workload;
        let r = boot_user(&mut vm, prog, pack_arg(iters, size, mode));
        finish_run(&mut vm, arm, baseline, r, &plan)
    }))
    .ok()
}

/// Snapshot-forked cell: restore the shared post-boot image into the
/// column's scratch machine (already translated — forks skip both the
/// kernel boot *and* the per-cell VM construction), arm a fresh plan,
/// replay the boot-time drops, and resume. The scratch VM carries no
/// state across cells: restore rewrites all of it.
#[allow(clippy::too_many_arguments)]
fn run_one_forked(
    vm: &mut CampVm,
    arm: Arm,
    class: FaultClass,
    seed: u64,
    baseline: u64,
    targets: &[u32],
    image: &BootImage,
    tag: &str,
) -> Option<RunResult> {
    let targets = targets.to_vec();
    catch_unwind(AssertUnwindSafe(move || {
        let plan = Arc::new(FaultPlan::new(class, seed, PERIOD, targets).with_defer(PROBE_DEFER));
        vm.restore(&image.bytes)
            .unwrap_or_else(|e| panic!("boot image rejected: {e}"));
        vm.enable_crash_capture(Some(&bundle_dir()), tag);
        vm.arm_faults(plan.clone());
        plan.replay_drops(&image.boot_drops);
        let r = vm.run();
        finish_run(vm, arm, baseline, r, &plan)
    }))
    .ok()
}

/// A scratch machine for forked cells of one (arm, budget) column. The
/// violation budget is part of the image fingerprint, so each budget
/// needs its own scratch machine.
fn scratch_vm(arm: Arm, budget: u32) -> CampVm {
    make_vm(
        arm,
        VmConfig {
            fuel: FUEL,
            violation_budget: budget,
            ..Default::default()
        },
    )
}

/// Everything one arm's grid needs: probe targets, per-workload stranded
/// baselines and (outside `--reboot`) the shared post-boot images.
struct ArmCtx {
    arm: Arm,
    targets: Vec<u32>,
    baselines: [u64; WORKLOADS.len()],
    /// `(workload index, image)` pairs at the main-grid budget.
    images: Vec<(usize, BootImage)>,
}

impl ArmCtx {
    fn build(arm: Arm, mode: BootMode) -> ArmCtx {
        let targets = complete_pools(arm);
        let baselines = std::array::from_fn(|i| clean_baseline(arm, WORKLOADS[i]));
        let images = if mode == BootMode::Reboot {
            Vec::new()
        } else {
            (0..WORKLOADS.len())
                .map(|wi| (wi, boot_image(arm, WORKLOADS[wi], BUDGET)))
                .collect()
        };
        ArmCtx {
            arm,
            targets,
            baselines,
            images,
        }
    }
}

fn image_for(images: &[(usize, BootImage)], wi: usize) -> &BootImage {
    images
        .iter()
        .find(|(i, _)| *i == wi)
        .map(|(_, img)| img)
        .expect("boot image for workload")
}

/// Runs one grid cell under the selected boot mode. In `VerifyReboot`
/// mode the cell runs both ways; a divergence bumps `mismatches` (gated
/// nonzero-exit in `main`). `scratch` is the column's reusable forked
/// machine (must match `budget`); `None` only in `Reboot` mode.
/// Deterministic grid-cell identity, used as the crash-bundle filename
/// stem so every dying cell leaves a stable, replayable artifact.
fn cell_tag(arm: Arm, class: FaultClass, seed: u64, wi: usize, budget: u32) -> String {
    format!(
        "{}-{}-s{}-w{}-b{}",
        arm.name(),
        class.name(),
        seed,
        wi,
        budget
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    mode: BootMode,
    ctx: &ArmCtx,
    scratch: Option<&mut CampVm>,
    class: FaultClass,
    seed: u64,
    wi: usize,
    budget: u32,
    images: &[(usize, BootImage)],
    mismatches: &mut u64,
    deaths: &mut BTreeSet<String>,
) -> Option<RunResult> {
    let baseline = ctx.baselines[wi];
    let tag = cell_tag(ctx.arm, class, seed, wi, budget);
    let result = match mode {
        BootMode::Reboot => run_one_reboot(
            ctx.arm,
            class,
            seed,
            WORKLOADS[wi],
            budget,
            baseline,
            &ctx.targets,
            &tag,
        ),
        BootMode::Fork => run_one_forked(
            scratch.expect("fork mode needs a scratch machine"),
            ctx.arm,
            class,
            seed,
            baseline,
            &ctx.targets,
            image_for(images, wi),
            &tag,
        ),
        BootMode::VerifyReboot => {
            let f = run_one_forked(
                scratch.expect("verify mode needs a scratch machine"),
                ctx.arm,
                class,
                seed,
                baseline,
                &ctx.targets,
                image_for(images, wi),
                &tag,
            );
            let r = run_one_reboot(
                ctx.arm,
                class,
                seed,
                WORKLOADS[wi],
                budget,
                baseline,
                &ctx.targets,
                &tag,
            );
            if f != r {
                *mismatches += 1;
                eprintln!(
                    "FORK/REBOOT MISMATCH ({} {} seed {} workload {}):\n  fork:   {f:?}\n  reboot: {r:?}",
                    ctx.arm.name(),
                    class.name(),
                    seed,
                    WORKLOADS[wi].0,
                );
            }
            f
        }
    };
    if let Some(rr) = &result {
        if matches!(rr.outcome, Outcome::HaltedPoisoned | Outcome::HaltedClean) {
            deaths.insert(tag);
        }
    }
    result
}

#[derive(Default)]
struct Tally {
    runs: u64,
    injected: u64,
    recovered: u64,
    quarantined: u64,
    poisoned: u64,
    completed: u64,
    halted_poisoned: u64,
    halted_clean: u64,
    structured_errors: u64,
    escaped_safety: u64,
    panics: u64,
    // Blast-radius aggregates.
    contained_syscall: u64,
    contained_boot: u64,
    probes_responsive: u64,
    probes_degraded: u64,
    probes_dead: u64,
    syscalls_degraded: u64,
    threads_stranded: u64,
}

impl Tally {
    fn absorb(&mut self, r: &Option<RunResult>) {
        self.runs += 1;
        let Some(r) = r else {
            self.panics += 1;
            return;
        };
        self.injected += r.injected;
        self.recovered += r.stats.violations_recovered;
        self.quarantined += r.stats.pools_quarantined;
        self.poisoned += r.stats.pools_poisoned;
        self.contained_syscall += r.blast.contained_syscall;
        self.contained_boot += r.blast.contained_boot;
        self.probes_responsive += r.blast.probes_responsive;
        self.probes_degraded += r.blast.probes_degraded;
        self.probes_dead += r.blast.probes_dead;
        self.syscalls_degraded += r.blast.syscalls_degraded;
        self.threads_stranded += r.blast.threads_stranded;
        match &r.outcome {
            Outcome::Completed => self.completed += 1,
            Outcome::HaltedPoisoned => self.halted_poisoned += 1,
            Outcome::HaltedClean => self.halted_clean += 1,
            Outcome::StructuredError(_) => self.structured_errors += 1,
            Outcome::EscapedSafety(e) => {
                self.escaped_safety += 1;
                eprintln!("ESCAPED SAFETY VIOLATION: {e}");
            }
        }
    }

    fn machine_deaths(&self) -> u64 {
        self.halted_poisoned + self.halted_clean
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"runs\":{},\"faults_injected\":{},\"violations_recovered\":{},",
                "\"pools_quarantined\":{},\"pools_poisoned\":{},\"completed\":{},",
                "\"halted_poisoned\":{},\"halted_clean\":{},\"structured_errors\":{},",
                "\"escaped_safety\":{},\"panics\":{},",
                "\"contained_syscall\":{},\"contained_boot\":{},",
                "\"probes_responsive\":{},\"probes_degraded\":{},\"probes_dead\":{},",
                "\"syscalls_degraded\":{},\"threads_stranded\":{}}}"
            ),
            self.runs,
            self.injected,
            self.recovered,
            self.quarantined,
            self.poisoned,
            self.completed,
            self.halted_poisoned,
            self.halted_clean,
            self.structured_errors,
            self.escaped_safety,
            self.panics,
            self.contained_syscall,
            self.contained_boot,
            self.probes_responsive,
            self.probes_degraded,
            self.probes_dead,
            self.syscalls_degraded,
            self.threads_stranded,
        )
    }
}

// ---- repair arm (DESIGN.md §4.8) ----------------------------------------
//
// The grid above proves faults are *contained*; the repair arm proves the
// machine *heals*. Each cell transiently poisons the one pool a target
// syscall's handler checks (attributed to that syscall's subsystem, as a
// budget-exhausting violation under its domain would), trips the poison
// once so the subsystem degrades, then drives the IRQ tick — and with it
// the kernel's repair manager — while sweeping the full probe workload
// every tick. Availability is the fraction of post-fault probes serviced
// (answered with anything but the -ENOSYS fence); the repaired subsystem
// must finish the timeline live. A separate retire drill re-poisons the
// pool after every repair until the strike budget retires the subsystem,
// proving permanent -ENOSYS without machine death.

/// 1-based recovery-subsystem id of a syscall handler (build.rs layout).
fn subsys_of(handler: &str) -> u64 {
    SYSCALLS
        .iter()
        .position(|(_, h, _)| *h == handler)
        .unwrap_or_else(|| panic!("{handler} not in SYSCALLS")) as u64
        + 1
}

/// Health-machine state of subsystem `subsys` (H_LIVE..H_RETIRED).
fn subsys_state(vm: &mut CampVm, subsys: u64) -> u64 {
    let Some(base) = vm.global_address("subsys_health") else {
        return H_LIVE as u64;
    };
    let word = vm
        .mem
        .read_uint(base + (subsys - 1) * 8, 8, Mode::Kernel)
        .unwrap_or(0);
    health_state(word)
}

/// A fresh nested machine for one repair cell: budget 1, so a single
/// tripped violation poisons the target pool.
fn repair_vm() -> Option<CampVm> {
    let mut vm = make_vm(
        Arm::Nested,
        VmConfig {
            fuel: FUEL,
            violation_budget: 1,
            ..Default::default()
        },
    );
    boot_user(&mut vm, "user_hello", 0).ok()?;
    Some(vm)
}

/// Discovers which metapool `handler` checks against: poison every pool
/// on a scratch machine, trip the syscall, and read the attributed pool
/// out of the resume code. `None` when the handler never faults (no
/// pool-checked dereference) — such targets are skipped.
fn attributed_pool(handler: &str, args: &[u64]) -> Option<u32> {
    let mut vm = repair_vm()?;
    for i in 0..vm.pools.len() as u32 {
        vm.pools.pool_mut(sva_rt::MetaPoolId(i)).note_violation(1);
    }
    match vm.call(&sysd_name(handler), args) {
        Ok(VmExit::Returned(v)) if v as i64 == EFAULT => {}
        _ => return None,
    }
    ResumeCode::decode(vm.read_global_u64("recov_last_code").ok()?)?.pool
}

#[derive(Default)]
struct RepairTally {
    cells: u64,
    /// Cells whose target subsystem finished the timeline live again
    /// after at least one `sva.recover.repair`.
    repaired_subsystems: u64,
    probes_total: u64,
    probes_serviced: u64,
    repairs: u64,
    pools_repaired: u64,
    probation_passed: u64,
    probation_failed: u64,
    /// Subsystems permanently retired during the availability cells —
    /// must be zero under default budgets.
    retired: u64,
    deaths: u64,
}

impl RepairTally {
    fn availability(&self) -> f64 {
        if self.probes_total == 0 {
            return 0.0;
        }
        self.probes_serviced as f64 / self.probes_total as f64
    }
}

/// One availability cell: degrade `handler` via a transient poison of
/// `pool`, then tick-and-probe through the repair. Returns false on a
/// machine death anywhere in the timeline.
fn run_repair_cell(t: &mut RepairTally, handler: &str, args: &[u64], pool: u32) -> bool {
    let Some(mut vm) = repair_vm() else {
        return false;
    };
    t.cells += 1;
    let subsys = subsys_of(handler);
    vm.pools
        .pool_mut(sva_rt::MetaPoolId(pool))
        .force_poison(subsys);
    // Trip the poison: the wrapped call catches the violation and the
    // subsystem degrades (-EFAULT now, fenced until repaired).
    let mut alive = matches!(
        vm.call(&sysd_name(handler), args),
        Ok(VmExit::Returned(v)) if v as i64 == EFAULT
    );
    for _ in 0..REPAIR_TIMELINE {
        // The IRQ tick advances the repair clock and runs the repair
        // manager's scan — exactly what a live machine's timer does.
        match vm.call("irqd_timer_tick", &[0]) {
            Ok(VmExit::Returned(_)) => {}
            _ => alive = false,
        }
        for (h, a) in PROBES {
            t.probes_total += 1;
            match vm.call(&sysd_name(h), a) {
                Ok(VmExit::Returned(v)) => {
                    if v as i64 != ENOSYS {
                        t.probes_serviced += 1;
                    }
                }
                Ok(VmExit::Halted(_)) | Err(_) => alive = false,
            }
        }
    }
    let s = vm.stats();
    t.repairs += s.repairs;
    t.pools_repaired += s.pools_repaired;
    t.probation_passed += s.probation_passed;
    t.probation_failed += s.probation_failed;
    t.retired += s.subsys_retired;
    if s.repairs > 0 && subsys_state(&mut vm, subsys) == H_LIVE as u64 {
        t.repaired_subsystems += 1;
    }
    if !alive {
        t.deaths += 1;
    }
    alive
}

#[derive(Default)]
struct RetireDrill {
    /// The target reached the permanently-retired state.
    retired: bool,
    /// `sva.recover.probation` verdict-2 count (kernel-side retirement).
    stats_retired: u64,
    /// Retired target answers -ENOSYS (not a halt, not a fault).
    post_retire_enosys: bool,
    /// Every other probe still serviced after the retirement.
    machine_alive: bool,
    /// Poison trips it took to exhaust the strike budget.
    trips: u64,
}

/// Retire drill: re-poison the target's pool after every repair until
/// the strike budget permanently retires the subsystem. The machine
/// must survive with the target fenced to -ENOSYS and everything else
/// serviced.
fn run_retire_drill(handler: &str, args: &[u64], pool: u32) -> RetireDrill {
    let mut d = RetireDrill::default();
    let Some(mut vm) = repair_vm() else {
        return d;
    };
    let subsys = subsys_of(handler);
    for _ in 0..200 {
        match subsys_state(&mut vm, subsys) {
            s if s == H_RETIRED as u64 => break,
            s if s == H_DEGRADED as u64 => {
                // Waiting out the backoff; the tick drives the repair.
                let _ = vm.call("irqd_timer_tick", &[0]);
            }
            s if s == H_LIVE as u64 || s == H_PROBATION as u64 => {
                d.trips += 1;
                vm.pools
                    .pool_mut(sva_rt::MetaPoolId(pool))
                    .force_poison(subsys);
                let _ = vm.call(&sysd_name(handler), args);
            }
            _ => break,
        }
    }
    d.retired = subsys_state(&mut vm, subsys) == H_RETIRED as u64;
    d.stats_retired = vm.stats().subsys_retired;
    d.post_retire_enosys = matches!(
        vm.call(&sysd_name(handler), args),
        Ok(VmExit::Returned(v)) if v as i64 == ENOSYS
    );
    d.machine_alive = PROBES
        .iter()
        .filter(|(h, _)| *h != handler)
        .all(|(h, a)| matches!(vm.call(&sysd_name(h), a), Ok(VmExit::Returned(_))));
    d
}

// ---- SMP arm (DESIGN.md §4.9) -------------------------------------------
//
// The grid and repair arms prove containment and healing on a single
// CPU; the SMP arm proves both survive *concurrency*. Each fault class
// becomes one job batch on a `--vcpus`-wide nested machine: every
// (seed, workload) cell is an [`SmpJob`] that arms its own plan (the
// same per-cell determinism the grid has) and enables crash capture, so
// an unexpected death drops a bundle whose `cpu` field names the
// faulting vCPU (`svadbg` prints it). The vCPUs share the epoch-
// published metadata plane, so the injected violations exercise the
// lock-free check path under real thread interleaving. Gates: zero
// escaped safety violations and zero machine deaths anywhere in the
// fleet, with a floor on injected faults so an accidentally-disarmed
// arm cannot pass vacuously.

/// Seeds for the SMP arm: a subset of the grid's, to bound runtime —
/// the class × workload coverage stays full.
const SMP_SEEDS: [u64; 3] = [1, 2, 3];

#[derive(Default)]
struct SmpTally {
    vcpus: u32,
    jobs: u64,
    injected: u64,
    recovered: u64,
    completed: u64,
    /// Jobs that ended in halt 41/42 — a machine death, gated zero.
    deaths: u64,
    /// Safety violations that escaped a recovery domain, gated zero.
    escapes: u64,
    structured_errors: u64,
    /// Jobs claimed off another vCPU's queue (scheduler health signal).
    steals: u64,
}

impl SmpTally {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"vcpus\":{},\"jobs\":{},\"faults_injected\":{},",
                "\"violations_recovered\":{},\"completed\":{},",
                "\"machine_deaths\":{},\"escaped_safety\":{},",
                "\"structured_errors\":{},\"steals\":{}}}"
            ),
            self.vcpus,
            self.jobs,
            self.injected,
            self.recovered,
            self.completed,
            self.deaths,
            self.escapes,
            self.structured_errors,
            self.steals,
        )
    }
}

/// Runs the 6-class grid as SMP job batches and tallies the outcomes.
fn run_smp_arm(vcpus: u32, targets: &[u32]) -> SmpTally {
    let mut t = SmpTally {
        vcpus,
        ..Default::default()
    };
    let bdir = bundle_dir();
    for class in FaultClass::ALL {
        let template = make_vm_nested(VmConfig {
            fuel: FUEL,
            violation_budget: BUDGET,
            vcpus,
            ..Default::default()
        });
        let mut machine = SmpMachine::new(template);
        let mut jobs = Vec::new();
        let mut plans = Vec::new();
        for seed in SMP_SEEDS {
            for (wi, (prog, iters, size, wmode)) in WORKLOADS.iter().enumerate() {
                let addr = machine
                    .template()
                    .func_address(prog)
                    .unwrap_or_else(|| panic!("no user program {prog}"));
                let plan = Arc::new(
                    FaultPlan::new(class, seed, PERIOD, targets.to_vec()).with_defer(PROBE_DEFER),
                );
                plans.push(plan.clone());
                let tag = format!(
                    "smp{vcpus}-{}",
                    cell_tag(Arm::Nested, class, seed, wi, BUDGET)
                );
                let dir = bdir.clone();
                jobs.push(
                    SmpJob::boot_user(tag.clone(), addr, pack_arg(*iters, *size, *wmode))
                        .with_setup(move |vm| {
                            vm.enable_crash_capture(Some(&dir), &tag);
                            vm.arm_faults(plan.clone());
                        }),
                );
            }
        }
        let r = machine.run(jobs);
        t.jobs += r.jobs.len() as u64;
        t.injected += plans.iter().map(|p| p.injected()).sum::<u64>();
        t.recovered += r.merged.violations_recovered;
        t.steals += r.cpus.iter().map(|c| c.steals).sum::<u64>();
        let mut class_deaths = 0u64;
        for j in &r.jobs {
            match &j.exit {
                Ok(VmExit::Halted(41 | 42)) => {
                    class_deaths += 1;
                    t.deaths += 1;
                    eprintln!(
                        "SMP MACHINE DEATH: {} on vCPU {}: {:?}",
                        j.label, j.cpu, j.exit
                    );
                }
                Ok(_) => t.completed += 1,
                Err(VmError::Safety(e)) => {
                    t.escapes += 1;
                    eprintln!(
                        "SMP ESCAPED SAFETY VIOLATION: {} on vCPU {}: {e}",
                        j.label, j.cpu
                    );
                }
                Err(e) => {
                    t.structured_errors += 1;
                    eprintln!("SMP structured error: {} on vCPU {}: {e}", j.label, j.cpu);
                }
            }
        }
        println!(
            "smp({})  {:18} jobs {:3}  injected {:6}  recovered {:6}  deaths {:3}  steals {:4}",
            vcpus,
            class.name(),
            r.jobs.len(),
            plans.iter().map(|p| p.injected()).sum::<u64>(),
            r.merged.violations_recovered,
            class_deaths,
            r.cpus.iter().map(|c| c.steals).sum::<u64>(),
        );
    }
    t
}

// ---- upgrade arm (DESIGN.md §4.10) ---------------------------------------
//
// The crash-consistency differential campaign behind `--upgrade`: every
// cell runs a fault-injected workload twice — once straight to terminal
// state, and once interrupted mid-flight by a snapshot that is dragged
// through the migration machinery (downgraded to the previous format,
// upcast back, and separately adopted by a *compatible rebuild* of the
// kernel) before a twin machine replays the rest. If migration preserves
// state exactly, the twin's terminal fingerprint (`VmStats::
// equivalence_key`, console bytes, resume code, faults injected) is
// byte-identical to the original's — across all 6 fault classes, so the
// cut lands inside syscalls, mid-unwind, with armed probes and skews and
// IRQ bursts pending. A coordinated-quiesce probe then exercises
// `SmpMachine::quiesce`/`resume_quiesced` at `--vcpus` and gates on the
// resumed fleet matching the quiesced run job-for-job.

/// Workload-run instruction boundary the twin is cut at — mid-workload
/// for every campaign workload (the boot image pauses at the first user
/// instruction, so this counts user-and-syscall steps only).
const UPGRADE_CUT: u64 = 5_000;
/// Workload indices the upgrade grid runs (syscall-light and
/// syscall-heavy).
const UPGRADE_WORKLOADS: [usize; 2] = [0, 3];
/// `KernelOptions::patch_salt` of the modelled compatible rebuild.
const PATCH_SALT: u64 = 0x5eed;

/// Plain (untraced) machines: the upgrade arm compares terminal
/// fingerprints across machines, and the flight recorder is host-side
/// state a snapshot deliberately does not carry.
fn upgrade_vm(vcpus: u32) -> Vm {
    make_vm_nested(VmConfig {
        fuel: FUEL,
        violation_budget: BUDGET,
        vcpus,
        ..Default::default()
    })
}

/// Terminal fingerprint of one upgrade-arm run; twins must match the
/// original field-for-field.
#[derive(Clone, Debug, PartialEq)]
struct UpgradeOutcome {
    exit: String,
    stats: VmStats,
    console: Vec<u8>,
    resume_code: u64,
    injected: u64,
}

fn upgrade_finish(vm: &mut Vm, exit: &Result<VmExit, VmError>, plan: &FaultPlan) -> UpgradeOutcome {
    UpgradeOutcome {
        exit: format!("{exit:?}"),
        stats: vm.stats().equivalence_key(),
        console: vm.console.clone(),
        resume_code: vm.read_global_u64("recov_last_code").unwrap_or(0),
        injected: plan.injected(),
    }
}

#[derive(Default)]
struct UpgradeTally {
    cells: u64,
    /// Cells whose twin was genuinely cut mid-flight (the interesting
    /// ones; gated nonzero).
    midflight_cells: u64,
    /// Cells whose workload finished before the cut (compared directly,
    /// no migration exercised).
    short_cells: u64,
    injected: u64,
    twin_divergences: u64,
    crossbuild_divergences: u64,
    migrate_errors: u64,
    migrate_panics: u64,
    migrations: u64,
    migrate_ns: u128,
    image_bytes: u64,
}

/// One twin leg: migrate `cut_img` into `vm` (optionally via a
/// downgrade to format v3 first, so the v3→v4 upcaster runs on every
/// cell), re-arm a fresh plan carrying the original plan's exported
/// state, and replay to terminal.
#[allow(clippy::too_many_arguments)]
fn upgrade_leg(
    vm: &mut Vm,
    cut_img: &[u8],
    plan_state: &(u64, Vec<(u32, u64)>),
    class: FaultClass,
    seed: u64,
    targets: &[u32],
    via_v3: bool,
    t: &mut UpgradeTally,
    tag: &str,
) -> Option<UpgradeOutcome> {
    let input = if via_v3 {
        match sva_vm::reencode_at(cut_img, 3) {
            Ok(v) => v,
            Err(e) => {
                t.migrate_errors += 1;
                eprintln!("MIGRATE ERROR {tag} (downgrade to v3): {e}");
                return None;
            }
        }
    } else {
        cut_img.to_vec()
    };
    let t0 = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| vm.restore_migrated(&input))) {
        Err(_) => {
            t.migrate_panics += 1;
            eprintln!("MIGRATE PANIC {tag}");
            None
        }
        Ok(Err(e)) => {
            t.migrate_errors += 1;
            eprintln!("MIGRATE ERROR {tag}: {e}");
            None
        }
        Ok(Ok(_report)) => {
            t.migrations += 1;
            t.migrate_ns += t0.elapsed().as_nanos();
            let plan = Arc::new(
                FaultPlan::new(class, seed, PERIOD, targets.to_vec()).with_defer(PROBE_DEFER),
            );
            plan.restore_state(plan_state.clone());
            vm.arm_faults(plan.clone());
            let r = vm.run();
            Some(upgrade_finish(vm, &r, &plan))
        }
    }
}

/// The differential grid: 6 fault classes × the campaign seeds × two
/// workloads, each cell original-vs-migrated-twin.
fn run_upgrade_grid() -> UpgradeTally {
    let mut t = UpgradeTally::default();
    let targets = complete_pools(Arm::Nested);
    let mut orig = upgrade_vm(1);
    let mut twin = upgrade_vm(1);
    let mut patched = make_vm_nested_patched(
        VmConfig {
            fuel: FUEL,
            violation_budget: BUDGET,
            ..Default::default()
        },
        PATCH_SALT,
    );
    let images: Vec<(usize, BootImage)> = UPGRADE_WORKLOADS
        .iter()
        .map(|&wi| (wi, boot_image(Arm::Nested, WORKLOADS[wi], BUDGET)))
        .collect();
    for class in FaultClass::ALL {
        let mut class_div = 0u64;
        for seed in SEEDS {
            for (wi, image) in &images {
                t.cells += 1;
                let tag = format!("upgrade-{}-s{seed}-w{wi}", class.name());
                let mk_plan = || {
                    Arc::new(
                        FaultPlan::new(class, seed, PERIOD, targets.clone())
                            .with_defer(PROBE_DEFER),
                    )
                };
                // Original: straight to terminal state.
                let plan = mk_plan();
                orig.restore(&image.bytes)
                    .unwrap_or_else(|e| panic!("boot image rejected: {e}"));
                orig.arm_faults(plan.clone());
                plan.replay_drops(&image.boot_drops);
                let r = orig.run();
                let want = upgrade_finish(&mut orig, &r, &plan);
                t.injected += want.injected;
                // Twin: identical prefix, cut mid-flight.
                let plan2 = mk_plan();
                twin.restore(&image.bytes)
                    .unwrap_or_else(|e| panic!("boot image rejected: {e}"));
                twin.arm_faults(plan2.clone());
                plan2.replay_drops(&image.boot_drops);
                match twin.run_steps(UPGRADE_CUT) {
                    Ok(Some(exit)) => {
                        // Terminal before the cut: nothing to migrate,
                        // but the two full runs must still agree.
                        t.short_cells += 1;
                        let got = upgrade_finish(&mut twin, &Ok(exit), &plan2);
                        if got != want {
                            t.twin_divergences += 1;
                            class_div += 1;
                            eprintln!(
                                "TWIN DIVERGENCE {tag} (short):\n  want {want:?}\n  got  {got:?}"
                            );
                        }
                    }
                    Err(e) => {
                        t.short_cells += 1;
                        let got = upgrade_finish(&mut twin, &Err(e), &plan2);
                        if got != want {
                            t.twin_divergences += 1;
                            class_div += 1;
                            eprintln!("TWIN DIVERGENCE {tag} (short-err):\n  want {want:?}\n  got  {got:?}");
                        }
                    }
                    Ok(None) => {
                        t.midflight_cells += 1;
                        let cut_img = twin.snapshot_midflight();
                        t.image_bytes += cut_img.len() as u64;
                        let plan_state = plan2.state_image();
                        // Leg A: same build, forced through the v3→v4
                        // upcaster (downgrade first).
                        if let Some(got) = upgrade_leg(
                            &mut twin,
                            &cut_img,
                            &plan_state,
                            class,
                            seed,
                            &targets,
                            true,
                            &mut t,
                            &tag,
                        ) {
                            if got != want {
                                t.twin_divergences += 1;
                                class_div += 1;
                                eprintln!(
                                    "TWIN DIVERGENCE {tag} (v3 roundtrip):\n  want {want:?}\n  got  {got:?}"
                                );
                            }
                        }
                        // Leg B: compatible rebuild (pad function
                        // appended) adopts the image across code_id.
                        if let Some(got) = upgrade_leg(
                            &mut patched,
                            &cut_img,
                            &plan_state,
                            class,
                            seed,
                            &targets,
                            false,
                            &mut t,
                            &tag,
                        ) {
                            if got != want {
                                t.crossbuild_divergences += 1;
                                class_div += 1;
                                eprintln!(
                                    "CROSS-BUILD DIVERGENCE {tag}:\n  want {want:?}\n  got  {got:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
        println!(
            "upgrade {:18} cells {:3}  divergences {:3}",
            class.name(),
            SEEDS.len() as u64 * UPGRADE_WORKLOADS.len() as u64,
            class_div,
        );
    }
    t
}

/// Coordinated-quiesce probe: one pinned workload per vCPU, quiesce at
/// a mid-run boundary, resume the coordinated image on a *fresh*
/// machine and require the resumed fleet to match the quiesced run
/// job-for-job.
struct QuiesceProbe {
    vcpus: u32,
    boundary: u64,
    park_spread: Duration,
    run_wall: Duration,
    image_bytes: u64,
    resume_divergences: u64,
    resume_error: Option<String>,
    jobs: u64,
}

fn run_upgrade_quiesce(vcpus: u32) -> QuiesceProbe {
    // Self-calibrating boundary: half the step count of the shortest
    // workload's clean boot+run, so every member parks mid-flight.
    let min_steps = WORKLOADS
        .iter()
        .map(|&(prog, iters, size, mode)| {
            let mut vm = upgrade_vm(1);
            let _ = boot_user(&mut vm, prog, pack_arg(iters, size, mode));
            FUEL - vm.fuel()
        })
        .min()
        .unwrap_or(FUEL);
    let boundary = min_steps / 2;
    let mut machine = SmpMachine::new(upgrade_vm(vcpus));
    let jobs: Vec<SmpJob> = (0..vcpus as usize)
        .map(|i| {
            let (prog, iters, size, mode) = WORKLOADS[i % WORKLOADS.len()];
            let addr = machine
                .template()
                .func_address(prog)
                .unwrap_or_else(|| panic!("no user program {prog}"));
            SmpJob::boot_user(
                format!("quiesce-cpu{i}-{prog}"),
                addr,
                pack_arg(iters, size, mode),
            )
        })
        .collect();
    let outcome = machine.quiesce(jobs, boundary);
    let mut probe = QuiesceProbe {
        vcpus,
        boundary,
        park_spread: outcome.park_spread,
        run_wall: outcome.report.wall,
        image_bytes: outcome.image.len() as u64,
        resume_divergences: 0,
        resume_error: None,
        jobs: outcome.report.jobs.len() as u64,
    };
    let mut fresh = SmpMachine::new(upgrade_vm(vcpus));
    match fresh.resume_quiesced(&outcome.image) {
        Err(e) => probe.resume_error = Some(e.to_string()),
        Ok(resumed) => {
            // Under a shared plane the cache-hit/page-hit split of the
            // check path is epoch-timing dependent (a concurrent vCPU's
            // publish invalidates this vCPU's range cache at a
            // scheduling-dependent instruction), so compare the folded
            // total of resolved checks, not the split.
            let smp_key = |s: &VmStats| {
                let mut k = (*s).equivalence_key();
                k.cache_hits += k.page_hits;
                k.page_hits = 0;
                k
            };
            for (a, b) in outcome.report.jobs.iter().zip(&resumed.jobs) {
                let same = format!("{:?}", a.exit) == format!("{:?}", b.exit)
                    && a.console == b.console
                    && smp_key(&a.stats) == smp_key(&b.stats);
                if !same {
                    probe.resume_divergences += 1;
                    eprintln!(
                        "QUIESCE RESUME DIVERGENCE cpu {}:\n  quiesced {:?} / {} console bytes / {:?}\n  resumed  {:?} / {} console bytes / {:?}",
                        a.cpu,
                        a.exit,
                        a.console.len(),
                        smp_key(&a.stats),
                        b.exit,
                        b.console.len(),
                        smp_key(&b.stats),
                    );
                }
            }
        }
    }
    probe
}

/// The `--upgrade` entry point: differential grid + quiesce probe, JSON
/// report, jq-friendly gates. Never returns.
fn run_upgrade_campaign(vcpus: u32) -> ! {
    let t_total = Instant::now();
    let grid = catch_unwind(AssertUnwindSafe(run_upgrade_grid)).ok();
    let grid_panicked = grid.is_none();
    let mut grid = grid.unwrap_or_default();
    if grid_panicked {
        grid.migrate_panics += 1;
    }
    let quiesce = run_upgrade_quiesce(vcpus);
    let total_wall = t_total.elapsed();
    let migrate_us_avg = if grid.migrations == 0 {
        0.0
    } else {
        grid.migrate_ns as f64 / 1000.0 / grid.migrations as f64
    };
    let image_kib_avg = grid
        .image_bytes
        .checked_div(grid.midflight_cells)
        .unwrap_or(0)
        / 1024;
    println!(
        "upgrade total: {} cells ({} mid-flight, {} short), {} migrations @ {:.0} µs avg, image {} KiB avg",
        grid.cells, grid.midflight_cells, grid.short_cells, grid.migrations, migrate_us_avg,
        image_kib_avg,
    );
    println!(
        "quiesce({}): boundary {} steps, park spread {} µs, run {} ms, image {} KiB, resume divergences {}{}",
        quiesce.vcpus,
        quiesce.boundary,
        quiesce.park_spread.as_micros(),
        quiesce.run_wall.as_millis(),
        quiesce.image_bytes / 1024,
        quiesce.resume_divergences,
        quiesce
            .resume_error
            .as_ref()
            .map(|e| format!(", RESUME ERROR: {e}"))
            .unwrap_or_default(),
    );
    let json = format!(
        concat!(
            "{{\"campaign\":\"faultcamp-upgrade\",\"cells\":{},\"midflight_cells\":{},",
            "\"short_cells\":{},\"faults_injected\":{},",
            "\"migrations\":{},\"migrate_cost_us_avg\":{:.1},\"image_kib_avg\":{},",
            "\"wall_ms\":{},",
            "\"quiesce\":{{\"vcpus\":{},\"boundary_steps\":{},\"park_spread_us\":{},",
            "\"run_wall_ms\":{},\"image_kib\":{},\"resume_ok\":{},\"jobs\":{}}},",
            "\"gates\":{{\"twin_divergences\":{},\"crossbuild_divergences\":{},",
            "\"migrate_errors\":{},\"migrate_panics\":{},",
            "\"quiesce_resume_divergences\":{}}}}}\n"
        ),
        grid.cells,
        grid.midflight_cells,
        grid.short_cells,
        grid.injected,
        grid.migrations,
        migrate_us_avg,
        image_kib_avg,
        total_wall.as_millis(),
        quiesce.vcpus,
        quiesce.boundary,
        quiesce.park_spread.as_micros(),
        quiesce.run_wall.as_millis(),
        quiesce.image_bytes / 1024,
        quiesce.resume_error.is_none(),
        quiesce.jobs,
        grid.twin_divergences,
        grid.crossbuild_divergences,
        grid.migrate_errors,
        grid.migrate_panics,
        quiesce.resume_divergences,
    );
    let dir = report_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("faultcamp-upgrade.json");
        if std::fs::write(&path, &json).is_ok() {
            println!("report: {}", path.display());
        }
    }
    let mut failed = false;
    let mut fail = |cond: bool, msg: &str| {
        if cond {
            eprintln!("FAILURE: {msg}");
            failed = true;
        }
    };
    fail(grid_panicked, "the upgrade grid panicked the host");
    fail(
        grid.twin_divergences > 0,
        "a migrated twin diverged from its original run",
    );
    fail(
        grid.crossbuild_divergences > 0,
        "a compatible-rebuild twin diverged from its original run",
    );
    fail(
        grid.migrate_errors > 0,
        "a migration failed closed mid-campaign",
    );
    fail(grid.migrate_panics > 0, "a migration panicked");
    fail(
        grid.midflight_cells == 0,
        "no cell was cut mid-flight (cut boundary miscalibrated?)",
    );
    fail(
        grid.injected < 200,
        "upgrade grid injected fewer than 200 faults (arm disarmed?)",
    );
    fail(
        quiesce.resume_error.is_some(),
        "the coordinated quiesce image did not restore",
    );
    fail(
        quiesce.resume_divergences > 0,
        "a resumed vCPU diverged from the quiesced run",
    );
    std::process::exit(if failed { 1 } else { 0 });
}

/// `target/<sub>` anchored at the workspace root (nearest ancestor
/// holding Cargo.lock), same as the bench harness, so artifacts land in
/// one known place regardless of the cwd cargo chose.
fn anchored_dir(sub: &str) -> std::path::PathBuf {
    let mut cur = std::env::var("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("target").join(sub);
        }
        if !cur.pop() {
            return std::path::PathBuf::from("target").join(sub);
        }
    }
}

fn report_dir() -> std::path::PathBuf {
    match std::env::var("SVA_INJECT_DIR") {
        Ok(d) => std::path::PathBuf::from(d),
        Err(_) => anchored_dir("sva-inject"),
    }
}

/// Where crash bundles land (`svadbg` and CI read the same files).
fn bundle_dir() -> std::path::PathBuf {
    match std::env::var("SVA_DBG_DIR") {
        Ok(d) => std::path::PathBuf::from(d),
        Err(_) => anchored_dir("sva-dbg"),
    }
}

fn run_arm(
    mode: BootMode,
    ctx: &ArmCtx,
    mismatches: &mut u64,
    deaths: &mut BTreeSet<String>,
) -> (Tally, Vec<(FaultClass, Tally)>) {
    let mut scratch = (mode != BootMode::Reboot).then(|| scratch_vm(ctx.arm, BUDGET));
    let mut total = Tally::default();
    let mut per_class = Vec::new();
    for class in FaultClass::ALL {
        let mut tally = Tally::default();
        for seed in SEEDS {
            for wi in 0..WORKLOADS.len() {
                let r = run_cell(
                    mode,
                    ctx,
                    scratch.as_mut(),
                    class,
                    seed,
                    wi,
                    BUDGET,
                    &ctx.images,
                    mismatches,
                    deaths,
                );
                tally.absorb(&r);
                total.absorb(&r);
            }
        }
        println!(
            "{:7} {:18} runs {:3}  injected {:6}  recovered {:6}  deaths {:3}  contained sys/boot {:5}/{:4}  probes live {:4}",
            ctx.arm.name(),
            class.name(),
            tally.runs,
            tally.injected,
            tally.recovered,
            tally.machine_deaths(),
            tally.contained_syscall,
            tally.contained_boot,
            tally.probes_responsive,
        );
        per_class.push((class, tally));
    }
    (total, per_class)
}

fn main() {
    let mut mode = BootMode::Fork;
    let mut smp_vcpus: u32 = 4;
    let mut upgrade = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let bad = |v: &str| {
            eprintln!("faultcamp: --vcpus takes a count >= 1, got {v:?}");
            std::process::exit(2);
        };
        match args[i].as_str() {
            "--reboot" => mode = BootMode::Reboot,
            "--verify-reboot" => mode = BootMode::VerifyReboot,
            "--upgrade" => upgrade = true,
            "--vcpus" => {
                i += 1;
                let v = args.get(i).map(String::as_str).unwrap_or("");
                smp_vcpus = v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| bad(v));
            }
            other => match other.strip_prefix("--vcpus=") {
                Some(v) => {
                    smp_vcpus = v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| bad(v));
                }
                None => {
                    eprintln!(
                        "faultcamp: unknown flag {other} (expected --reboot, --verify-reboot, --upgrade or --vcpus N)"
                    );
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }
    if upgrade {
        run_upgrade_campaign(smp_vcpus);
    }
    let t_total = Instant::now();

    // Boot/imaging phase: probe targets, clean stranded baselines (the
    // sanity gate for the proc_table geometry — a clean run must strand
    // nothing beyond its own baseline), and the shared post-boot images.
    let t_boot = Instant::now();
    let flat_ctx = ArmCtx::build(Arm::Flat, mode);
    let nested_ctx = ArmCtx::build(Arm::Nested, mode);
    let mut boot_wall = t_boot.elapsed();
    if mode != BootMode::Reboot {
        let (n, bytes) = [&flat_ctx, &nested_ctx]
            .iter()
            .flat_map(|c| &c.images)
            .fold((0u64, 0u64), |(n, b), (_, img)| {
                (n + 1, b + img.bytes.len() as u64)
            });
        println!(
            "boot images: {} columns, {} KiB total ({} ms)",
            n,
            bytes / 1024,
            boot_wall.as_millis(),
        );
    }

    // Determinism gate on both arms: the same plan on the same workload
    // must replay bit-identically — stats, injections and blast radius.
    let mut deterministic = true;
    let mut mismatches = 0u64;
    let mut deaths = BTreeSet::new();
    for ctx in [&flat_ctx, &nested_ctx] {
        let mut scratch = (mode != BootMode::Reboot).then(|| scratch_vm(ctx.arm, BUDGET));
        let mut cell = |scratch: Option<&mut CampVm>, deaths: &mut BTreeSet<String>| {
            run_cell(
                mode,
                ctx,
                scratch,
                FaultClass::WildPtr,
                SEEDS[0],
                0,
                BUDGET,
                &ctx.images,
                &mut mismatches,
                deaths,
            )
        };
        let d0 = cell(scratch.as_mut(), &mut deaths);
        let d1 = cell(scratch.as_mut(), &mut deaths);
        if d0 != d1 || d0.is_none() {
            deterministic = false;
            eprintln!(
                "DETERMINISM FAILURE ({}):\n  {d0:?}\n  {d1:?}",
                ctx.arm.name()
            );
        }
    }

    // Fork/reboot cross-check: in the default fork mode one cell per arm
    // also runs the legacy re-boot path and must match byte-identically —
    // a standing canary that forking is an optimization, not a semantic
    // change. (`--verify-reboot` extends this to every cell.)
    if mode == BootMode::Fork {
        for ctx in [&flat_ctx, &nested_ctx] {
            let mut scratch = scratch_vm(ctx.arm, BUDGET);
            let tag = cell_tag(ctx.arm, FaultClass::WildPtr, SEEDS[0], 0, BUDGET);
            let f = run_one_forked(
                &mut scratch,
                ctx.arm,
                FaultClass::WildPtr,
                SEEDS[0],
                ctx.baselines[0],
                &ctx.targets,
                image_for(&ctx.images, 0),
                &tag,
            );
            let r = run_one_reboot(
                ctx.arm,
                FaultClass::WildPtr,
                SEEDS[0],
                WORKLOADS[0],
                BUDGET,
                ctx.baselines[0],
                &ctx.targets,
                &tag,
            );
            if f != r || f.is_none() {
                mismatches += 1;
                eprintln!(
                    "FORK/REBOOT MISMATCH ({} cross-check):\n  fork:   {f:?}\n  reboot: {r:?}",
                    ctx.arm.name()
                );
            }
        }
    }

    let t_grid = Instant::now();
    let (flat_total, flat_classes) = run_arm(mode, &flat_ctx, &mut mismatches, &mut deaths);
    let (nested_total, nested_classes) = run_arm(mode, &nested_ctx, &mut mismatches, &mut deaths);
    let grid_wall = t_grid.elapsed();

    // Degradation sub-run: budget 1, so a single violation poisons its
    // pool and the owning syscall degrades to -ENOSYS while the rest of
    // the machine keeps answering. The violation budget is part of the
    // snapshot config fingerprint, so this sub-run forks from its own
    // budget-1 images.
    let degr_images: Vec<(usize, BootImage)> = if mode == BootMode::Reboot {
        Vec::new()
    } else {
        let t = Instant::now();
        let imgs = [1usize, 3]
            .into_iter()
            .map(|wi| (wi, boot_image(Arm::Nested, WORKLOADS[wi], 1)))
            .collect();
        boot_wall += t.elapsed();
        imgs
    };
    let mut degr_scratch = (mode != BootMode::Reboot).then(|| scratch_vm(Arm::Nested, 1));
    let mut degr = Tally::default();
    let mut degraded_runs = 0u64;
    for seed in [1, 2, 3] {
        for wi in [1usize, 3] {
            let r = run_cell(
                mode,
                &nested_ctx,
                degr_scratch.as_mut(),
                FaultClass::WildPtr,
                seed,
                wi,
                1,
                &degr_images,
                &mut mismatches,
                &mut deaths,
            );
            if let Some(rr) = &r {
                if rr.blast.syscalls_degraded > 0 {
                    degraded_runs += 1;
                }
            }
            degr.absorb(&r);
        }
    }
    println!(
        "nested  degradation(b=1)  runs {:3}  degraded-runs {:3}  syscalls-degraded {:3}  deaths {:3}  probes live {:4}",
        degr.runs,
        degraded_runs,
        degr.syscalls_degraded,
        degr.machine_deaths(),
        degr.probes_responsive,
    );

    // Repair arm (DESIGN.md §4.8): transiently poison each target's
    // pool, trip it, and measure availability while the IRQ-driven
    // repair manager heals the subsystem. Then the retire drill: keep
    // re-poisoning one target until the strike budget retires it — the
    // machine must shrug, not die.
    let mut repair = RepairTally::default();
    let mut repair_targets = Vec::new();
    for (handler, args) in REPAIR_TARGETS {
        match attributed_pool(handler, args) {
            Some(pool) => repair_targets.push((handler, args, pool)),
            None => println!("repair arm: {handler} never faults — skipped"),
        }
    }
    for (handler, args, pool) in &repair_targets {
        run_repair_cell(&mut repair, handler, args, *pool);
    }
    let drill = match repair_targets.first() {
        Some((handler, args, pool)) => run_retire_drill(handler, args, *pool),
        None => RetireDrill::default(),
    };
    println!(
        "nested  repair            cells {:3}  repaired {:3}  availability {:.4}  retired {:3}  probation pass/fail {:3}/{:3}",
        repair.cells,
        repair.repaired_subsystems,
        repair.availability(),
        repair.retired,
        repair.probation_passed,
        repair.probation_failed,
    );
    println!(
        "nested  retire-drill      trips {:3}  retired {}  post-retire -ENOSYS {}  machine alive {}",
        drill.trips, drill.retired, drill.post_retire_enosys, drill.machine_alive,
    );

    // SMP arm (DESIGN.md §4.9): the 6-class grid as concurrent job
    // batches on a multi-vCPU machine sharing one metadata plane.
    let smp = catch_unwind(AssertUnwindSafe(|| {
        run_smp_arm(smp_vcpus, &nested_ctx.targets)
    }))
    .ok();
    let smp_panicked = smp.is_none();
    let smp = smp.unwrap_or_default();
    println!(
        "smp({})  total             jobs {:3}  injected {:6}  recovered {:6}  deaths {:3}  escapes {:3}  steals {:4}",
        smp_vcpus, smp.jobs, smp.injected, smp.recovered, smp.deaths, smp.escapes, smp.steals,
    );

    // Crash-forensics gate: every machine death above must have left a
    // bundle whose replay reproduces the same halt code, resume code and
    // console bit-for-bit.
    let bdir = bundle_dir();
    let mut bundle_failures = 0u64;
    for tag in &deaths {
        let path = bdir.join(format!("{tag}-halt.bundle"));
        let verdict = std::fs::read(&path)
            .map_err(|e| format!("bundle not written: {e}"))
            .and_then(|bytes| CrashBundle::from_bytes(&bytes).map_err(|e| e.to_string()))
            .and_then(|b| {
                let r = replay(&b).map_err(|e| e.to_string())?;
                check_reproduction(&b, &r)
            });
        if let Err(e) = verdict {
            bundle_failures += 1;
            eprintln!("BUNDLE REPLAY FAILURE {}: {e}", path.display());
        }
    }
    println!(
        "crash bundles: {} machine-death cells, {} replay failures ({})",
        deaths.len(),
        bundle_failures,
        bdir.display(),
    );

    let total_wall = t_total.elapsed();
    let ms = |d: Duration| d.as_millis() as u64;

    let arm_json = |total: &Tally, classes: &[(FaultClass, Tally)]| {
        let cj: Vec<String> = classes
            .iter()
            .map(|(c, t)| format!("{{\"class\":\"{}\",\"tally\":{}}}", c.name(), t.json()))
            .collect();
        format!(
            "{{\"total\":{},\"classes\":[{}]}}",
            total.json(),
            cj.join(",")
        )
    };
    let json = format!(
        concat!(
            "{{\"campaign\":\"faultcamp\",\"boot_mode\":\"{}\",\"deterministic\":{},",
            "\"wall_ms\":{{\"boot_images\":{},\"grid\":{},\"total\":{}}},",
            "\"flat\":{},\"nested\":{},",
            "\"degradation\":{{\"tally\":{},\"degraded_runs\":{}}},",
            "\"repair\":{{\"cells\":{},\"repaired_subsystems\":{},\"availability\":{:.4},",
            "\"probes_total\":{},\"probes_serviced\":{},\"repairs\":{},",
            "\"pools_repaired\":{},\"probation_passed\":{},\"probation_failed\":{},",
            "\"retired_subsystems\":{},\"deaths\":{}}},",
            "\"retire_drill\":{{\"retired\":{},\"stats_retired\":{},\"trips\":{},",
            "\"post_retire_enosys\":{},\"machine_alive\":{}}},",
            "\"smp\":{},",
            "\"gates\":{{\"panics\":{},\"escapes\":{},\"nested_machine_deaths\":{},",
            "\"nested_probes_dead\":{},\"flat_machine_deaths\":{},",
            "\"fork_reboot_mismatches\":{},",
            "\"crash_bundle_cells\":{},\"bundle_replay_failures\":{},",
            "\"smp_machine_deaths\":{},\"smp_escapes\":{}}}}}\n"
        ),
        mode.name(),
        deterministic,
        ms(boot_wall),
        ms(grid_wall),
        ms(total_wall),
        arm_json(&flat_total, &flat_classes),
        arm_json(&nested_total, &nested_classes),
        degr.json(),
        degraded_runs,
        repair.cells,
        repair.repaired_subsystems,
        repair.availability(),
        repair.probes_total,
        repair.probes_serviced,
        repair.repairs,
        repair.pools_repaired,
        repair.probation_passed,
        repair.probation_failed,
        repair.retired,
        repair.deaths,
        drill.retired,
        drill.stats_retired,
        drill.trips,
        drill.post_retire_enosys,
        drill.machine_alive,
        smp.json(),
        flat_total.panics + nested_total.panics + degr.panics,
        flat_total.escaped_safety + nested_total.escaped_safety + degr.escaped_safety,
        nested_total.machine_deaths() + degr.machine_deaths(),
        nested_total.probes_dead + degr.probes_dead,
        flat_total.machine_deaths(),
        mismatches,
        deaths.len(),
        bundle_failures,
        smp.deaths,
        smp.escapes,
    );

    let dir = report_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("faultcamp.json");
        if std::fs::write(&path, &json).is_ok() {
            println!("report: {}", path.display());
        }
    }

    let panics = flat_total.panics + nested_total.panics + degr.panics;
    let escapes = flat_total.escaped_safety + nested_total.escaped_safety + degr.escaped_safety;
    println!(
        "flat:   {} injected, {} recovered, {} machine deaths, probes {}/{} live",
        flat_total.injected,
        flat_total.recovered,
        flat_total.machine_deaths(),
        flat_total.probes_responsive,
        flat_total.runs * PROBES.len() as u64,
    );
    println!(
        "nested: {} injected, {} recovered, {} machine deaths, probes {}/{} live, contained sys/boot {}/{}",
        nested_total.injected,
        nested_total.recovered,
        nested_total.machine_deaths(),
        nested_total.probes_responsive,
        nested_total.runs * PROBES.len() as u64,
        nested_total.contained_syscall,
        nested_total.contained_boot,
    );
    println!(
        "mode {}: boot/imaging {} ms, grid {} ms, total {} ms",
        mode.name(),
        ms(boot_wall),
        ms(grid_wall),
        ms(total_wall),
    );

    let mut failed = false;
    let mut fail = |cond: bool, msg: &str| {
        if cond {
            eprintln!("FAILURE: {msg}");
            failed = true;
        }
    };
    fail(panics > 0, "a campaign run panicked the host");
    fail(escapes > 0, "a safety violation escaped a recovery domain");
    fail(!deterministic, "campaign replay was not bit-identical");
    fail(
        mismatches > 0,
        "a snapshot-forked run diverged from a fresh re-boot",
    );
    fail(
        flat_total.injected + nested_total.injected < 1000,
        "campaign injected fewer than 1000 faults",
    );
    fail(
        nested_total.machine_deaths() + degr.machine_deaths() > 0,
        "a fault killed the nested machine (blast radius escaped the syscall)",
    );
    fail(
        nested_total.probes_dead + degr.probes_dead > 0,
        "a post-fault probe found the nested machine unresponsive",
    );
    fail(
        nested_total.recovered > 0 && nested_total.contained_syscall == 0,
        "nested arm recovered faults but none at syscall depth",
    );
    fail(
        degraded_runs == 0,
        "degradation sub-run never degraded a syscall",
    );
    fail(
        repair.repaired_subsystems == 0,
        "repair arm never returned a degraded subsystem to service",
    );
    fail(
        repair.availability() < 0.99,
        "repair-arm availability below 0.99",
    );
    fail(
        repair.retired > 0,
        "repair arm permanently retired a subsystem under default budgets",
    );
    fail(repair.deaths > 0, "a repair-arm cell killed the machine");
    fail(
        !(drill.retired && drill.post_retire_enosys && drill.machine_alive),
        "retire drill: strike-budget retirement must fence to -ENOSYS with the machine alive",
    );
    fail(
        nested_total.machine_deaths() >= flat_total.machine_deaths()
            && flat_total.machine_deaths() > 0,
        "nested blast radius not strictly smaller than flat",
    );
    fail(
        bundle_failures > 0,
        "a machine death's crash bundle is missing or did not replay bit-exactly",
    );
    fail(
        flat_total.machine_deaths() > 0 && deaths.is_empty(),
        "flat machines died but no cell recorded a crash bundle",
    );
    fail(smp_panicked, "the SMP arm panicked the host");
    fail(
        smp.escapes > 0,
        "a safety violation escaped a recovery domain on the SMP machine",
    );
    fail(
        smp.deaths > 0,
        "a fault killed a vCPU's machine on the SMP arm",
    );
    fail(
        smp.injected < 200,
        "SMP arm injected fewer than 200 faults (arm disarmed?)",
    );
    fail(
        smp.recovered == 0,
        "SMP arm recovered no violations (containment never exercised)",
    );
    if failed {
        std::process::exit(1);
    }
}
