//! Deterministic machine-level fault-injection campaign (DESIGN.md §4.3).
//!
//! Boots the recovery-enabled kernel under every [`FaultClass`] across a
//! grid of seeds and user workloads, asserts that no run panics the host
//! and that no kernel-mode safety violation escapes `Vm::run`, and writes
//! a JSON report to `target/sva-inject/faultcamp.json` (override the
//! directory with `SVA_INJECT_DIR`).
//!
//! Exit status is nonzero on any panic, escaped safety violation, or
//! determinism failure, so CI can gate on it directly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sva_inject::{FaultClass, FaultPlan};
use sva_kernel::harness::{boot_user, make_vm_recovering, pack_arg};
use sva_vm::{VmConfig, VmError, VmExit, VmStats};

const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];
const FUEL: u64 = 3_000_000;
/// Inject on every other trap.
const PERIOD: u64 = 2;

const WORKLOADS: [(&str, u64, u64, u64); 4] = [
    ("user_getpid_loop", 200, 0, 0),
    ("user_openclose_loop", 60, 0, 0),
    ("user_pipe_loop", 40, 64, 0),
    ("user_write_loop", 80, 128, 0),
];

#[derive(Clone, Debug, PartialEq, Eq)]
struct RunResult {
    injected: u64,
    stats: VmStats,
    outcome: Outcome,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Outcome {
    /// The workload ran to completion (any exit value).
    Completed,
    /// The recovery handler halted after a pool was poisoned (abort 41).
    HaltedPoisoned,
    /// The recovery handler halted with nothing to resume (abort 42).
    HaltedClean,
    /// `Vm::run` returned a structured non-safety error (e.g. fuel).
    StructuredError(String),
    /// A safety violation escaped the recovery domain — campaign failure.
    EscapedSafety(String),
}

/// Metapool ids with complete points-to info in the recovery kernel —
/// the pools whose checks reject unknown addresses (probe targets).
fn complete_pools() -> Vec<u32> {
    let vm = make_vm_recovering(VmConfig::default());
    (0..vm.pools.len() as u32)
        .filter(|&i| vm.pools.pool(sva_rt::MetaPoolId(i)).complete)
        .collect()
}

fn run_one(class: FaultClass, seed: u64, workload: (&str, u64, u64, u64)) -> Option<RunResult> {
    let targets = complete_pools();
    catch_unwind(AssertUnwindSafe(move || {
        let plan = Arc::new(FaultPlan::new(class, seed, PERIOD, targets));
        let cfg = VmConfig {
            fuel: FUEL,
            violation_budget: 3,
            fault_hook: Some(plan.clone()),
            ..Default::default()
        };
        let mut vm = make_vm_recovering(cfg);
        let (prog, iters, size, mode) = workload;
        let r = boot_user(&mut vm, prog, pack_arg(iters, size, mode));
        let outcome = match r {
            Ok(VmExit::Halted(41)) => Outcome::HaltedPoisoned,
            Ok(VmExit::Halted(42)) => Outcome::HaltedClean,
            Ok(_) => Outcome::Completed,
            Err(VmError::Safety(e)) => Outcome::EscapedSafety(e.to_string()),
            Err(e) => Outcome::StructuredError(e.to_string()),
        };
        RunResult {
            injected: plan.injected(),
            stats: vm.stats(),
            outcome,
        }
    }))
    .ok()
}

#[derive(Default)]
struct Tally {
    runs: u64,
    injected: u64,
    recovered: u64,
    quarantined: u64,
    poisoned: u64,
    completed: u64,
    halted_poisoned: u64,
    halted_clean: u64,
    structured_errors: u64,
    escaped_safety: u64,
    panics: u64,
}

impl Tally {
    fn absorb(&mut self, r: &Option<RunResult>) {
        self.runs += 1;
        let Some(r) = r else {
            self.panics += 1;
            return;
        };
        self.injected += r.injected;
        self.recovered += r.stats.violations_recovered;
        self.quarantined += r.stats.pools_quarantined;
        self.poisoned += r.stats.pools_poisoned;
        match &r.outcome {
            Outcome::Completed => self.completed += 1,
            Outcome::HaltedPoisoned => self.halted_poisoned += 1,
            Outcome::HaltedClean => self.halted_clean += 1,
            Outcome::StructuredError(_) => self.structured_errors += 1,
            Outcome::EscapedSafety(e) => {
                self.escaped_safety += 1;
                eprintln!("ESCAPED SAFETY VIOLATION: {e}");
            }
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"runs\":{},\"faults_injected\":{},\"violations_recovered\":{},",
                "\"pools_quarantined\":{},\"pools_poisoned\":{},\"completed\":{},",
                "\"halted_poisoned\":{},\"halted_clean\":{},\"structured_errors\":{},",
                "\"escaped_safety\":{},\"panics\":{}}}"
            ),
            self.runs,
            self.injected,
            self.recovered,
            self.quarantined,
            self.poisoned,
            self.completed,
            self.halted_poisoned,
            self.halted_clean,
            self.structured_errors,
            self.escaped_safety,
            self.panics,
        )
    }
}

fn report_dir() -> std::path::PathBuf {
    if let Ok(d) = std::env::var("SVA_INJECT_DIR") {
        return std::path::PathBuf::from(d);
    }
    // Anchor at the workspace root (nearest ancestor holding Cargo.lock),
    // same as the bench harness, so the report lands in one known place
    // regardless of the cwd cargo chose.
    let mut cur = std::env::var("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur.join("target").join("sva-inject");
        }
        if !cur.pop() {
            return std::path::PathBuf::from("target/sva-inject");
        }
    }
}

fn main() {
    // Determinism gate: the same plan on the same workload must replay
    // bit-identically (stats and injection counts included).
    let d0 = run_one(FaultClass::WildPtr, SEEDS[0], WORKLOADS[0]);
    let d1 = run_one(FaultClass::WildPtr, SEEDS[0], WORKLOADS[0]);
    let deterministic = d0 == d1 && d0.is_some();
    if !deterministic {
        eprintln!("DETERMINISM FAILURE:\n  {d0:?}\n  {d1:?}");
    }

    let mut total = Tally::default();
    let mut per_class = Vec::new();
    for class in FaultClass::ALL {
        let mut tally = Tally::default();
        for seed in SEEDS {
            for workload in WORKLOADS {
                let r = run_one(class, seed, workload);
                tally.absorb(&r);
                total.absorb(&r);
            }
        }
        println!(
            "{:18} runs {:3}  injected {:6}  recovered {:6}  completed {:3}  poisoned-halt {:3}",
            class.name(),
            tally.runs,
            tally.injected,
            tally.recovered,
            tally.completed,
            tally.halted_poisoned,
        );
        per_class.push((class, tally));
    }

    let classes_json: Vec<String> = per_class
        .iter()
        .map(|(c, t)| format!("{{\"class\":\"{}\",\"tally\":{}}}", c.name(), t.json()))
        .collect();
    let json = format!(
        "{{\"campaign\":\"faultcamp\",\"deterministic\":{},\"total\":{},\"classes\":[{}]}}\n",
        deterministic,
        total.json(),
        classes_json.join(","),
    );

    let dir = report_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("faultcamp.json");
        if std::fs::write(&path, &json).is_ok() {
            println!("report: {}", path.display());
        }
    }

    println!(
        "total: {} faults injected, {} recovered, {} panics, {} escaped",
        total.injected, total.recovered, total.panics, total.escaped_safety
    );
    let enough = total.injected >= 1000;
    if !enough {
        eprintln!("FAILURE: campaign injected fewer than 1000 faults");
    }
    if total.panics > 0 || total.escaped_safety > 0 || !deterministic || !enough {
        std::process::exit(1);
    }
}
