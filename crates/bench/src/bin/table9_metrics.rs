//! Table 9: static metrics of the safety-checking compiler — percentage of
//! loads/stores/structure-indexing/array-indexing operations on incomplete
//! and on type-safe partitions, plus allocation sites seen, for the
//! "as tested" and "entire kernel" configurations.

use sva_analysis::{analyze, compute_metrics, AccessKind, AnalysisConfig};
use sva_kernel::harness::raw_kernel;
use sva_kernel::{AS_TESTED_EXCLUSIONS, ENTIRE_KERNEL_EXCLUSIONS};

fn print_block(title: &str, exclusions: &[&str]) {
    let m = raw_kernel();
    let cfg = AnalysisConfig::kernel_excluding(exclusions);
    let r = analyze(&m, &cfg);
    let metrics = compute_metrics(&m, &r);
    println!("\n-- {title} --");
    println!("allocation sites seen: {:.1}%", metrics.pct_alloc_seen());
    println!(
        "{:<22} {:>8} {:>13} {:>11}",
        "Access Type", "Total", "Incomplete %", "TypeSafe %"
    );
    for k in AccessKind::ALL {
        let c = metrics.of(k);
        println!(
            "{:<22} {:>8} {:>13.1} {:>11.1}",
            k.label(),
            c.total,
            c.pct_incomplete(),
            c.pct_type_safe()
        );
    }
    println!(
        "partitions: {} ({} TH, {} complete)",
        metrics.partitions, metrics.th_partitions, metrics.complete_partitions
    );
}

fn main() {
    println!("== Table 9: static metrics of the safety-checking compiler ==");
    print_block(
        "Kernel as tested (mm, lib, chr excluded)",
        AS_TESTED_EXCLUSIONS,
    );
    print_block("Entire kernel", ENTIRE_KERNEL_EXCLUSIONS);
    println!("\npaper shape: high incomplete-access rates as tested, 0% for the");
    println!("entire kernel; type-safe share similar in both configurations.");
}
