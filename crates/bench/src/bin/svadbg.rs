//! `svadbg` — the crash-bundle postmortem inspector (DESIGN.md §4.7).
//!
//! ```text
//! svadbg <bundle>            print a human postmortem of the crash
//! svadbg --replay <bundle>   also restore the embedded snapshot and
//!                            reproduce the death, gating bit-exactness
//! svadbg --migrate <file>    print the migration plan (the upcaster
//!                            chain) for a bundle or snapshot, and for
//!                            bundles rewrite to the current format so
//!                            the postmortem/--replay run on builds that
//!                            postdate the capture (DESIGN.md §4.10)
//! ```
//!
//! The postmortem is everything the machine knew when it died: the crash
//! reason and detail, the decoded resume code, the machine configuration
//! and code identity, execution statistics, the recovery-domain stack,
//! the metapool dump, the degraded-syscall health table, the
//! flight-recorder tail and the console transcript.
//!
//! With `--replay` the bundle's snapshot is restored into a freshly
//! built kernel of the matching flavor and run to its next exit; for a
//! halt bundle the replay must reproduce the same halt code, resume code
//! and console byte-for-byte ([`sva_kernel::check_reproduction`]). Exit
//! status: 0 on success, 1 on a load/parse error, 2 on usage error, 3
//! when a replay diverges from the captured death.

use std::process::ExitCode;

use sva_kernel::postmortem::{check_reproduction, migrate_bundle_any, replay};
use sva_kernel::{health_state, health_state_name, health_strikes, subsys_name};
use sva_vm::{CrashBundle, ResumeCode};

/// Prints the upcaster chain an artifact would take to reach the
/// current format (`svadbg --migrate`).
fn print_plan(plan: &sva_vm::MigrationPlan) {
    println!("== migration plan ==");
    println!("container:   {}", plan.kind);
    println!(
        "format:      v{} -> v{}{}",
        plan.version,
        plan.target,
        if plan.version == plan.target {
            "  (already current)"
        } else {
            ""
        }
    );
    println!("code id:     {:#018x}", plan.code_id);
    if let Some(step) = &plan.bundle_step {
        println!("bundle:      {step}");
    }
    if plan.steps.is_empty() {
        println!("steps:       none");
    } else {
        for s in &plan.steps {
            println!("  {:7} {}", s.name, s.summary);
        }
    }
}

fn human_console(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

fn print_postmortem(bundle: &CrashBundle) {
    println!("== SVA crash bundle ==");
    println!("reason:      {}", bundle.reason);
    println!("vcpu:        {}", bundle.cpu);
    if bundle.halt_code != 0 {
        println!("halt code:   {}", bundle.halt_code);
    }
    if !bundle.detail.is_empty() {
        println!("detail:      {}", bundle.detail);
    }
    match bundle.resume_code() {
        Some(rc) => println!("resume code: {rc}  (raw {:#x})", bundle.resume_code_raw),
        None => println!("resume code: none recorded"),
    }
    println!("code id:     {:#018x}", bundle.code_id);
    match bundle.vm_config() {
        Ok(cfg) => println!(
            "config:      {:?} opt={} fast_path={} singleton={} budget={} domain_fuel={} vcpus={}",
            cfg.kind,
            cfg.opt_level,
            cfg.fast_path,
            cfg.singleton_path,
            cfg.violation_budget,
            cfg.domain_fuel,
            cfg.vcpus,
        ),
        Err(e) => println!("config:      unreplayable ({e})"),
    }

    let s = &bundle.stats;
    println!(
        "stats:       {} insts, {} cycles, {} traps, {} interrupts, {} ctx switches",
        s.instructions, s.cycles, s.traps, s.interrupts, s.context_switches
    );
    println!(
        "recovery:    {} violations recovered, {} pools quarantined, {} poisoned, {} watchdog unwinds, domains {}/{} pushed/popped",
        s.violations_recovered,
        s.pools_quarantined,
        s.pools_poisoned,
        s.watchdog_unwinds,
        s.domains_pushed,
        s.domains_popped,
    );

    println!(
        "-- recovery domains ({}, innermost last)",
        bundle.domains.len()
    );
    for (i, d) in bundle.domains.iter().enumerate() {
        println!(
            "  [{}] subsys {} fuel {} quarantined {:?}",
            i, d.subsys, d.fuel, d.quarantined_pools
        );
    }

    let hot: Vec<_> = bundle
        .pools
        .iter()
        .filter(|p| p.violations > 0 || p.quarantined || p.poisoned)
        .collect();
    println!(
        "-- metapools ({} total, {} with violations/quarantine)",
        bundle.pools.len(),
        hot.len()
    );
    for p in &hot {
        println!(
            "  #{} {:24} {} live {:5} checks {:8} violations {:3}{}{}{}",
            p.id,
            p.name,
            if p.complete {
                "complete  "
            } else {
                "incomplete"
            },
            p.live_objects,
            p.checks,
            p.violations,
            if p.quarantined { " QUARANTINED" } else { "" },
            if p.poisoned { " POISONED" } else { "" },
            if p.repairs > 0 {
                format!(" repaired x{}", p.repairs)
            } else {
                String::new()
            },
        );
    }

    println!("-- subsystem health ({} not live)", bundle.health.len());
    for &(i, w) in &bundle.health {
        let subsys = i as i64 + 1;
        println!(
            "  [{subsys}] {:18} {:9} strikes {}  (raw {w:#x})",
            subsys_name(subsys),
            health_state_name(health_state(w)),
            health_strikes(w),
        );
    }

    println!("-- flight recorder tail ({} events)", bundle.flight.len());
    for e in &bundle.flight {
        println!("  {}", e.to_json());
    }

    println!("-- console ({} bytes)", bundle.console.len());
    for line in human_console(&bundle.console).lines() {
        println!("  | {line}");
    }
}

fn main() -> ExitCode {
    let mut do_replay = false;
    let mut do_migrate = false;
    let mut path = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--replay" => do_replay = true,
            "--migrate" => do_migrate = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("svadbg: unexpected argument {other}");
                eprintln!("usage: svadbg [--replay] [--migrate] <bundle-or-snapshot>");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: svadbg [--replay] [--migrate] <bundle-or-snapshot>");
        return ExitCode::from(2);
    };

    let mut bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("svadbg: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    if do_migrate {
        let plan = match sva_vm::plan(&bytes) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("svadbg: {path}: {e}");
                return ExitCode::from(1);
            }
        };
        print_plan(&plan);
        if plan.kind != "bundle" {
            // A bare snapshot has no postmortem to print — the plan is
            // the product (restore it with `svaprof --resume`).
            return ExitCode::SUCCESS;
        }
        match migrate_bundle_any(&bytes) {
            Ok((out, report, flavor)) => {
                println!(
                    "migrated:    from v{} via [{}]{} (flavor {flavor})",
                    report.from_version,
                    report.steps.join(", "),
                    if report.code_migrated {
                        ", code identity adopted"
                    } else {
                        ""
                    },
                );
                bytes = out;
            }
            Err(e) => {
                eprintln!("svadbg: migrate: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let bundle = match CrashBundle::from_bytes(&bytes) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("svadbg: {path}: {e}");
            return ExitCode::from(1);
        }
    };

    print_postmortem(&bundle);

    if do_replay {
        println!("-- replay");
        match replay(&bundle) {
            Ok(r) => {
                println!("kernel flavor: {}", r.flavor);
                println!("exit:          {}", r.exit);
                match ResumeCode::decode(r.resume_code_raw) {
                    Some(rc) => println!("resume code:   {rc}"),
                    None => println!("resume code:   none recorded"),
                }
                match check_reproduction(&bundle, &r) {
                    Ok(()) => println!("reproduction:  exact"),
                    Err(e) => {
                        eprintln!("svadbg: REPLAY DIVERGED: {e}");
                        return ExitCode::from(3);
                    }
                }
            }
            Err(e) => {
                eprintln!("svadbg: replay failed: {e}");
                return ExitCode::from(3);
            }
        }
    }
    ExitCode::SUCCESS
}
