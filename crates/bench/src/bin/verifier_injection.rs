//! §5: verifier fault injection — 5 instances of each of 4 bug kinds
//! injected into the pointer-analysis results; the paper's verifier
//! detected all 20.

use sva_analysis::AnalysisConfig;
use sva_core::compile::{compile, CompileOptions};
use sva_core::inject::{inject_fault, FaultKind};
use sva_core::verifier::typecheck_module;
use sva_kernel::harness::raw_kernel;
use sva_kernel::ENTIRE_KERNEL_EXCLUSIONS;

fn main() {
    println!("== Verifier fault injection (paper §5) ==\n");
    let base = {
        let m = raw_kernel();
        let cfg = AnalysisConfig::kernel_excluding(ENTIRE_KERNEL_EXCLUSIONS);
        compile(m, &cfg, &CompileOptions::default()).module
    };
    assert!(
        typecheck_module(&base).is_empty(),
        "clean kernel must typecheck"
    );
    let mut total = 0;
    let mut detected = 0;
    for kind in FaultKind::ALL {
        let mut kind_detected = 0;
        for seed in 0..5 {
            let mut m = base.clone();
            let desc = inject_fault(&mut m, kind, seed).expect("injection point");
            total += 1;
            let errs = typecheck_module(&m);
            if !errs.is_empty() {
                detected += 1;
                kind_detected += 1;
            } else {
                println!("  UNDETECTED: {kind:?} seed {seed}: {desc}");
            }
        }
        println!("{:<45} {}/5 detected", kind.describe(), kind_detected);
    }
    println!("\ntotal: {detected}/{total} detected — paper: 20/20");
}
