//! Table 8: bandwidth of raw kernel operations (file read, pipe) at
//! 32 KB / 64 KB / 128 KB transfer sizes, four kernel configurations.

use bench::{arg, bandwidth_row, print_bandwidth_table};

fn main() {
    let mut rows = Vec::new();
    for (label, size) in [
        ("file read (32k)", 32 * 1024u64),
        ("file read (64k)", 64 * 1024),
        ("file read (128k)", 128 * 1024),
    ] {
        let iters = (8 * 1024 * 1024 / size).max(4);
        rows.push(bandwidth_row(
            label,
            "user_fileread_bw",
            arg(iters, size, 0),
            iters * size,
        ));
    }
    for (label, size) in [
        ("pipe (32k)", 32 * 1024u64),
        ("pipe (64k)", 64 * 1024),
        ("pipe (128k)", 128 * 1024),
    ] {
        let iters = (2 * 1024 * 1024 / size).max(2);
        rows.push(bandwidth_row(
            label,
            "user_pipe_bw",
            arg(iters, size, 0),
            iters * size,
        ));
    }
    print_bandwidth_table(
        "Table 8: bandwidth reduction for raw kernel operations (% of native)",
        &rows,
    );
    println!("\npaper shape: file read overhead small (copy in the excluded library);");
    println!("pipe overhead large (per-byte checked copies in analyzed kernel code).");
}
