//! Table 4: porting effort. The paper counts modified source lines per
//! kernel section; our kernel is born ported, so the analog is the static
//! density of porting artifacts (SVA-OS call sites, allocator calls,
//! analysis annotations) per subsystem.

use sva_kernel::harness::raw_kernel;
use sva_kernel::port_report::{port_report, render};

fn main() {
    let m = raw_kernel();
    let report = port_report(&m);
    println!("== Table 4 (analog): porting artifacts per kernel section ==\n");
    print!("{}", render(&report));
    println!("\npaper shape: SVA-OS usage concentrates in the arch-dependent core;");
    println!("allocator changes localize to mm; analysis annotations are few.");
}
